// Runs the complete TPCx-IoT benchmark kit end-to-end against a real
// in-process gateway cluster: prerequisite checks, two iterations of
// warmup + measured workload with system cleanup, data checks, metric
// computation, and the executive summary / full disclosure report.
//
// Usage: ./build/examples/benchmark_kit [substations] [total_kvps] [nodes]
//                                       [write_shards]
// Defaults are scaled down to finish in seconds; a publishable run would
// use 1800 s floors and a billion kvps. write_shards 0 = auto (one write
// shard per hardware thread).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/cluster.h"
#include "iot/benchmark_driver.h"
#include "iot/checks.h"
#include "iot/pricing.h"
#include "iot/report.h"
#include "storage/env.h"

using namespace iotdb;  // NOLINT — example brevity

int main(int argc, char** argv) {
  int substations = argc > 1 ? atoi(argv[1]) : 2;
  uint64_t total_kvps = argc > 2 ? strtoull(argv[2], nullptr, 10) : 60000;
  int nodes = argc > 3 ? atoi(argv[3]) : 3;
  int write_shards = argc > 4 ? atoi(argv[4]) : 0;

  printf("TPCx-IoT reproduction kit: %d substations, %llu kvps, %d-node "
         "SUT\n\n",
         substations, static_cast<unsigned long long>(total_kvps), nodes);

  // The System Under Test.
  cluster::ClusterOptions cluster_options;
  cluster_options.num_nodes = nodes;
  cluster_options.replication_factor = 3;
  cluster_options.shard_key_fn = iot::TpcxIotShardKey;
  cluster_options.storage_options.write_shards = write_shards;
  auto sut = cluster::Cluster::Start(cluster_options).MoveValueUnsafe();

  // Kit files under checksum: the workload parameter file. Build it, hash
  // it, then let the prerequisite file check verify it.
  auto kit_env = storage::NewMemEnv();
  std::string workload_file =
      "substations=" + std::to_string(substations) + "\n" +
      "total_kvps=" + std::to_string(total_kvps) + "\n" +
      "sensors_per_substation=200\nquery_windows_seconds=5\n";
  if (!kit_env->WriteStringToFile("/kit/workload.properties", workload_file)
           .ok()) {
    return 1;
  }
  std::string digest =
      iot::Md5OfFile(kit_env.get(), "/kit/workload.properties")
          .ValueOrDie();

  iot::BenchmarkConfig config;
  config.num_driver_instances = substations;
  config.total_kvps = total_kvps;
  config.batch_size = 500;
  config.write_shards = write_shards;
  config.min_run_seconds = 0;      // scaled-down reproduction floors
  config.min_per_sensor_rate = 0;  // (a compliant run uses 1800 s / 20)
  config.kit_files = {{"/kit/workload.properties", digest}};
  config.kit_env = kit_env.get();

  iot::BenchmarkDriver driver(config, sut.get());
  iot::BenchmarkResult result = driver.Run();
  if (!result.status.ok()) {
    fprintf(stderr, "benchmark failed: %s\n",
            result.status.ToString().c_str());
    return 1;
  }

  iot::PricedConfiguration pricing =
      iot::PricedConfiguration::ReferenceGatewayConfig(nodes);
  iot::SutDescription sut_description;
  sut_description.nodes = nodes;
  sut_description.tunables =
      "write_buffer_size=4MB l0_stall_trigger=12 write_shards=" +
      std::string(write_shards == 0 ? "auto"
                                    : std::to_string(write_shards)) +
      " (engine defaults)";

  printf("%s\n",
         iot::FullDisclosureReport(result, pricing, sut_description)
             .c_str());
  return 0;
}
