// Predictive-maintenance scenario (paper §I: vibration sensors monitoring
// machine health at thousands of samples per second): a gateway ingests a
// transformer's vibration stream, and a monitoring loop uses MAX_READING
// window comparisons to flag developing bearing damage before failure.
//
// We inject a fault at a known point in the stream and show that the
// window-comparison logic — the same primitive TPCx-IoT benchmarks —
// detects it.
//
// Run: ./build/examples/predictive_maintenance
#include <cstdio>

#include "cluster/cluster.h"
#include "common/random.h"
#include "iot/benchmark_driver.h"
#include "iot/kvp.h"
#include "iot/query.h"
#include "ycsb/bindings.h"

using namespace iotdb;  // NOLINT — example brevity

namespace {

constexpr uint64_t kMicros = 1000000;
constexpr double kHealthyVibration = 4.0;   // mm/s RMS
constexpr double kAlarmRatio = 1.8;         // now vs baseline

/// Synthesises one vibration reading: healthy noise, plus a growing fault
/// signature after fault_start.
double VibrationAt(uint64_t t_micros, uint64_t fault_start, Random* rng) {
  double v = kHealthyVibration + rng->Gaussian(0, 0.4);
  if (t_micros > fault_start) {
    double seconds_into_fault =
        static_cast<double>(t_micros - fault_start) / kMicros;
    v += 0.25 * seconds_into_fault;  // defect grows
  }
  return v < 0 ? 0 : v;
}

}  // namespace

int main() {
  cluster::ClusterOptions options;
  options.num_nodes = 2;
  options.shard_key_fn = iot::TpcxIotShardKey;
  auto gateway = cluster::Cluster::Start(options).MoveValueUnsafe();
  ycsb::ClusterDB db(gateway.get());
  iot::QueryExecutor executor(&db);

  // 60 simulated seconds of a 1 kHz vibration sensor; the bearing starts
  // failing at t = 35 s.
  const uint64_t kStart = 1000ull * kMicros;
  const uint64_t kEnd = kStart + 60 * kMicros;
  const uint64_t kFaultStart = kStart + 35 * kMicros;
  Random rng(42);

  printf("Ingesting 60s of 1kHz vibration data (fault injected at t=35s)"
         "...\n");
  std::vector<std::pair<std::string, std::string>> batch;
  for (uint64_t t = kStart; t < kEnd; t += 1000) {  // 1 kHz
    iot::Reading reading;
    reading.substation_key = "martin_sub";
    reading.sensor_key = "vibration_000";
    reading.timestamp_micros = t;
    reading.value = VibrationAt(t, kFaultStart, &rng);
    reading.unit = "millimeters_per_second";
    iot::Kvp kvp = iot::KvpCodec::Encode(reading, t);
    batch.emplace_back(std::move(kvp.key), std::move(kvp.value));
    if (batch.size() >= 2000) {
      if (!db.InsertBatch(batch).ok()) return 1;
      batch.clear();
    }
  }
  if (!batch.empty() && !db.InsertBatch(batch).ok()) return 1;

  // Monitoring sweep: every 5 simulated seconds compare the trailing 5s
  // MAX against a healthy baseline window (t = 5..10s).
  printf("\n%8s %14s %14s %8s  %s\n", "t [s]", "max now", "baseline",
         "ratio", "verdict");
  int first_alarm_second = -1;
  for (uint64_t t = kStart + 10 * kMicros; t <= kEnd; t += 5 * kMicros) {
    iot::Query query;
    query.type = iot::QueryType::kMaxReading;
    query.substation_key = "martin_sub";
    query.sensor_key = "vibration_000";
    query.recent_start_micros = t - 5 * kMicros;
    query.recent_end_micros = t;
    query.past_start_micros = kStart + 5 * kMicros;
    query.past_end_micros = kStart + 10 * kMicros;

    auto result = executor.Execute(query);
    if (!result.ok()) {
      fprintf(stderr, "query failed: %s\n",
              result.status().ToString().c_str());
      return 1;
    }
    const iot::QueryResult& qr = result.ValueOrDie();
    double ratio = qr.past_value > 0 ? qr.recent_value / qr.past_value : 0;
    bool alarm = ratio >= kAlarmRatio;
    if (alarm && first_alarm_second < 0) {
      first_alarm_second =
          static_cast<int>((t - kStart) / kMicros);
    }
    printf("%8llu %14.2f %14.2f %8.2f  %s\n",
           static_cast<unsigned long long>((t - kStart) / kMicros),
           qr.recent_value, qr.past_value, ratio,
           alarm ? "!! MAINTENANCE ALARM" : "ok");
  }

  if (first_alarm_second < 0) {
    printf("\nNo alarm raised — unexpected for this fault profile.\n");
    return 1;
  }
  printf("\nFault injected at t=35s; first alarm at t=%ds.\n",
         first_alarm_second);
  return 0;
}
