// Failover drill: the paper models a gateway that is continuously
// available ("24h a day, 7 days a week", §I). This drill takes a node of a
// 4-node / 3-way-replicated gateway down mid-operation and shows that
//   - reads and scans keep being served from surviving replicas,
//   - the cluster reports the degraded state,
//   - after recovery, writes resume across the full cluster.
//
// Run: ./build/examples/failover_drill
#include <cstdio>

#include "cluster/cluster.h"
#include "iot/benchmark_driver.h"
#include "iot/kvp.h"

using namespace iotdb;  // NOLINT — example brevity

namespace {

bool IngestReadings(cluster::Client* client, const char* sensor,
                    uint64_t start_ts, int count) {
  std::vector<std::pair<std::string, std::string>> kvps;
  for (int i = 0; i < count; ++i) {
    iot::Reading reading;
    reading.substation_key = "drill_sub";
    reading.sensor_key = sensor;
    reading.timestamp_micros = start_ts + i * 1000;
    reading.value = 60.0 + i * 0.001;
    reading.unit = "hertz";
    iot::Kvp kvp = iot::KvpCodec::Encode(reading, i);
    kvps.emplace_back(std::move(kvp.key), std::move(kvp.value));
  }
  return client->PutBatch(kvps).ok();
}

}  // namespace

int main() {
  cluster::ClusterOptions options;
  options.num_nodes = 4;
  options.replication_factor = 3;
  options.shard_key_fn = iot::TpcxIotShardKey;
  auto gateway = cluster::Cluster::Start(options).MoveValueUnsafe();
  cluster::Client client(gateway.get());

  printf("Phase 1: normal operation — ingest 20k readings\n");
  if (!IngestReadings(&client, "pmu_freq_000", 1000000, 20000)) return 1;

  // A key we will keep probing throughout.
  std::string probe_key =
      iot::KvpCodec::EncodeKey("drill_sub", "pmu_freq_000", 1000000);
  int primary = gateway->PrimaryNodeFor(probe_key);
  printf("  probe key lives on primary node %d (replicas on 3 nodes)\n",
         primary);

  printf("\nPhase 2: node %d goes down\n", primary);
  gateway->node(primary)->SetDown(true);

  auto read = client.Get(probe_key);
  printf("  point read during outage: %s\n",
         read.ok() ? "SERVED from surviving replica" : "FAILED");
  std::vector<std::pair<std::string, std::string>> rows;
  std::string start =
      iot::KvpCodec::EncodeKey("drill_sub", "pmu_freq_000", 1000000);
  std::string end =
      iot::KvpCodec::EncodeKey("drill_sub", "pmu_freq_000", 2000000);
  std::string shard(
      iot::KvpCodec::ShardPrefixOf(Slice(start)).ToStringView());
  bool scan_ok = client.Scan(shard, start, end, 0, &rows).ok();
  printf("  window scan during outage: %s (%zu rows)\n",
         scan_ok ? "SERVED" : "FAILED", rows.size());

  // MultiGet keeps working too.
  std::vector<std::string> keys = {probe_key, "nonexistent.key.x"};
  std::vector<std::optional<std::string>> values;
  bool multi_ok = client.MultiGet(keys, &values).ok();
  printf("  multi-get during outage: %s (hit=%d, miss=%d)\n",
         multi_ok ? "SERVED" : "FAILED", values[0].has_value(),
         !values[1].has_value());

  printf("\nCluster state during the outage:\n%s",
         gateway->Describe().c_str());

  printf("\nPhase 3: node %d recovers — ingest resumes cluster-wide\n",
         primary);
  gateway->node(primary)->SetDown(false);
  if (!IngestReadings(&client, "pmu_freq_001", 5000000, 20000)) return 1;
  printf("  post-recovery imbalance CoV: %.3f\n",
         gateway->PrimaryLoadImbalance());

  bool all_served = read.ok() && scan_ok && multi_ok;
  printf("\nDrill %s.\n", all_served ? "PASSED" : "FAILED");
  return all_served ? 0 : 1;
}
