// Quickstart: the three layers of the library in one file.
//
//   1. iotdb::storage::KVStore   - single-node LSM key-value store
//   2. iotdb::cluster::Cluster   - replicated multi-node gateway
//   3. iotdb::iot                - the TPCx-IoT workload on top
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "cluster/cluster.h"
#include "iot/benchmark_driver.h"
#include "iot/driver_instance.h"
#include "storage/env.h"
#include "storage/kvstore.h"
#include "ycsb/bindings.h"

using namespace iotdb;  // NOLINT — example brevity

int main() {
  // ------------------------------------------------------------------
  // 1. A single-node store: put, get, scan.
  // ------------------------------------------------------------------
  auto env = storage::NewMemEnv();  // in-memory filesystem; use
                                    // Env::Posix() for real disks
  storage::Options options;
  options.env = env.get();
  auto store = storage::KVStore::Open(options, "/demo").MoveValueUnsafe();

  store->Put(storage::WriteOptions(), "sensor.pmu_01.t100", "59.98");
  store->Put(storage::WriteOptions(), "sensor.pmu_01.t101", "60.02");
  store->Put(storage::WriteOptions(), "sensor.pmu_01.t102", "60.00");

  auto value = store->Get(storage::ReadOptions(), "sensor.pmu_01.t101");
  printf("point get  -> %s\n", value.ValueOrDie().c_str());

  std::vector<std::pair<std::string, std::string>> rows;
  store->Scan(storage::ReadOptions(), "sensor.pmu_01.t100",
              "sensor.pmu_01.t102", 0, &rows);
  printf("range scan -> %zu rows in [t100, t102)\n", rows.size());

  // ------------------------------------------------------------------
  // 2. A replicated gateway cluster.
  // ------------------------------------------------------------------
  cluster::ClusterOptions cluster_options;
  cluster_options.num_nodes = 3;
  cluster_options.replication_factor = 3;
  cluster_options.shard_key_fn = iot::TpcxIotShardKey;
  auto gateway =
      cluster::Cluster::Start(cluster_options).MoveValueUnsafe();

  cluster::Client client(gateway.get());
  client.Put("sub01.pmu_01.00000000000001000", "60.01|hertz|…");
  printf("cluster    -> key stored on %d replicas across %d nodes\n",
         gateway->effective_replication(), gateway->num_nodes());

  // ------------------------------------------------------------------
  // 3. One TPCx-IoT driver instance: ingest a substation's sensor
  //    stream while issuing the four dashboard queries.
  // ------------------------------------------------------------------
  ycsb::ClusterDB db(gateway.get());
  iot::DriverOptions driver_options;
  driver_options.substation_key = "sub01";
  driver_options.total_kvps = 30000;  // 30k readings (1 KiB each)
  driver_options.batch_size = 500;

  iot::DriverInstance driver(driver_options, &db);
  iot::DriverResult result = driver.Run();

  printf("TPCx-IoT   -> ingested %llu kvps in %.2f s (%.0f kvps/s), "
         "%llu dashboard queries (avg %.1f ms, %.0f rows/query)\n",
         static_cast<unsigned long long>(result.kvps_ingested),
         result.ElapsedSeconds(), result.IngestRate(),
         static_cast<unsigned long long>(result.queries_executed),
         result.query_latency_micros.Mean() / 1000.0,
         result.AvgRowsPerQuery());
  printf("quickstart done.\n");
  return result.status.ok() ? 0 : 1;
}
