// Smart-grid dashboard scenario (the paper's §III-A use case): a power
// substation of an electric utility streams 200 sensors into a gateway
// cluster while an operator dashboard refreshes with the four TPCx-IoT
// query templates — max, min, average, and reading count — comparing the
// last 5 seconds against a historic window.
//
// Run: ./build/examples/smart_grid_dashboard
#include <cstdio>
#include <thread>

#include "cluster/cluster.h"
#include "iot/benchmark_driver.h"
#include "iot/data_generator.h"
#include "iot/query.h"
#include "ycsb/bindings.h"

using namespace iotdb;  // NOLINT — example brevity

namespace {

void PrintDashboardRow(const iot::QueryResult& r) {
  const char* arrow = r.recent_value > r.past_value
                          ? "UP  "
                          : (r.recent_value < r.past_value ? "DOWN" : "==  ");
  printf("  %-14s %-18s now=%10.3f  past=%10.3f  %s  (%llu rows)\n",
         QueryTypeName(r.query.type), r.query.sensor_key.c_str(),
         r.recent_value, r.past_value, arrow,
         static_cast<unsigned long long>(r.rows_read));
}

}  // namespace

int main() {
  printf("Starting a 4-node gateway for substation 'larkin_sf'...\n");
  cluster::ClusterOptions options;
  options.num_nodes = 4;
  options.shard_key_fn = iot::TpcxIotShardKey;
  auto gateway = cluster::Cluster::Start(options).MoveValueUnsafe();
  ycsb::ClusterDB db(gateway.get());

  // Feed 60k readings (about 5 dashboard refresh cycles of data) from the
  // substation's 200 sensors.
  iot::DataGenerator generator("larkin_sf", 60000, /*seed=*/2026,
                               Clock::Real());
  iot::QueryGenerator query_generator("larkin_sf", 7, Clock::Real());
  iot::QueryExecutor executor(&db);

  std::vector<std::pair<std::string, std::string>> batch;
  uint64_t ingested = 0;
  int refresh = 0;
  while (generator.HasNext()) {
    batch.clear();
    while (generator.HasNext() && batch.size() < 1000) {
      iot::Kvp kvp = generator.Next();
      batch.emplace_back(std::move(kvp.key), std::move(kvp.value));
    }
    Status s = db.InsertBatch(batch);
    if (!s.ok()) {
      fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    ingested += batch.size();

    // Refresh the dashboard every 12k readings.
    if (ingested >= static_cast<uint64_t>(refresh + 1) * 12000) {
      ++refresh;
      printf("\n=== dashboard refresh %d (after %llu readings) ===\n",
             refresh, static_cast<unsigned long long>(ingested));
      for (int q = 0; q < 4; ++q) {
        iot::Query query = query_generator.Next();
        query.type = static_cast<iot::QueryType>(q);  // one of each
        auto result = executor.Execute(query);
        if (result.ok()) PrintDashboardRow(result.ValueOrDie());
      }
    }
  }

  cluster::NodeStats stats = gateway->GetAggregateStats();
  printf("\nIngested %llu readings; cluster served %llu scans reading "
         "%llu rows total.\n",
         static_cast<unsigned long long>(stats.primary_writes),
         static_cast<unsigned long long>(stats.scans),
         static_cast<unsigned long long>(stats.scan_rows_read));
  return 0;
}
