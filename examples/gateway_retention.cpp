// Gateway data-retention scenario: the paper (§I) describes gateways as
// *short-term* stores — data is forwarded to the datacenter (e.g., daily)
// and old readings age out of the gateway. This example wires the
// SensorDataRetentionFilter into a node's compaction path and shows a day
// of data shrinking to the retention window.
//
// Run: ./build/examples/gateway_retention
#include <cstdio>

#include "common/clock.h"
#include "iot/kvp.h"
#include "iot/retention.h"
#include "storage/env.h"
#include "storage/kvstore.h"

using namespace iotdb;  // NOLINT — example brevity

int main() {
  constexpr uint64_t kMicros = 1000000;
  constexpr uint64_t kHour = 3600 * kMicros;

  // Simulated "now": end of a 24-hour day; the gateway keeps 2 hours.
  ManualClock clock(24 * kHour);
  iot::SensorDataRetentionFilter retention(2 * kHour, &clock);

  auto env = storage::NewMemEnv();
  storage::Options options;
  options.env = env.get();
  options.compaction_filter = &retention;
  auto store =
      storage::KVStore::Open(options, "/gateway").MoveValueUnsafe();

  // Ingest one reading per minute per sensor for 4 sensors over 24 hours.
  printf("Ingesting 24h of data (4 sensors, 1 reading/min each)...\n");
  const char* sensors[] = {"pmu_freq_000", "ltc_gas_000", "leakage_000",
                           "vibration_000"};
  uint64_t ingested = 0;
  for (uint64_t t = 0; t < 24 * kHour; t += 60 * kMicros) {
    for (const char* sensor : sensors) {
      iot::Reading reading;
      reading.substation_key = "larkin_sf";
      reading.sensor_key = sensor;
      reading.timestamp_micros = t;
      reading.value = 42.0;
      reading.unit = "unit";
      iot::Kvp kvp = iot::KvpCodec::Encode(reading, t);
      if (!store->Put(storage::WriteOptions(), kvp.key, kvp.value).ok()) {
        return 1;
      }
      ++ingested;
    }
  }
  printf("  %llu readings stored (%.1f MiB logical)\n",
         static_cast<unsigned long long>(ingested),
         ingested * 1024.0 / (1 << 20));
  printf("  live keys before compaction: %llu\n",
         static_cast<unsigned long long>(store->CountKeysSlow()));

  printf("\nRunning compaction with a 2-hour retention window...\n");
  if (!store->CompactAll().ok()) return 1;

  uint64_t remaining = store->CountKeysSlow();
  printf("  live keys after compaction:  %llu (expected ~%d: last 2h x 4 "
         "sensors x 60/min)\n",
         static_cast<unsigned long long>(remaining), 2 * 60 * 4);

  auto stats = store->GetStats();
  printf("  compactions run: %llu, bytes rewritten: %.1f MiB\n",
         static_cast<unsigned long long>(stats.compactions),
         stats.bytes_compacted / 1048576.0);

  // The freshest reading is still servable.
  std::string newest_key = iot::KvpCodec::EncodeKey(
      "larkin_sf", "pmu_freq_000", 24 * kHour - 60 * kMicros);
  bool fresh_ok =
      store->Get(storage::ReadOptions(), newest_key).ok();
  // An aged-out reading is gone.
  std::string old_key =
      iot::KvpCodec::EncodeKey("larkin_sf", "pmu_freq_000", 0);
  bool old_gone =
      store->Get(storage::ReadOptions(), old_key).status().IsNotFound();
  printf("  newest reading readable: %s, midnight reading aged out: %s\n",
         fresh_ok ? "yes" : "NO", old_gone ? "yes" : "NO");
  return fresh_ok && old_gone ? 0 : 1;
}
