# Empty compiler generated dependencies file for iotdb_storage.
# This may be replaced when dependencies are built.
