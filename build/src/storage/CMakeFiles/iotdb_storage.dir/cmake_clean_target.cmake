file(REMOVE_RECURSE
  "libiotdb_storage.a"
)
