
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block.cc" "src/storage/CMakeFiles/iotdb_storage.dir/block.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/block.cc.o.d"
  "/root/repo/src/storage/block_builder.cc" "src/storage/CMakeFiles/iotdb_storage.dir/block_builder.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/block_builder.cc.o.d"
  "/root/repo/src/storage/bloom.cc" "src/storage/CMakeFiles/iotdb_storage.dir/bloom.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/bloom.cc.o.d"
  "/root/repo/src/storage/cache.cc" "src/storage/CMakeFiles/iotdb_storage.dir/cache.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/cache.cc.o.d"
  "/root/repo/src/storage/comparator.cc" "src/storage/CMakeFiles/iotdb_storage.dir/comparator.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/comparator.cc.o.d"
  "/root/repo/src/storage/db_iter.cc" "src/storage/CMakeFiles/iotdb_storage.dir/db_iter.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/db_iter.cc.o.d"
  "/root/repo/src/storage/env.cc" "src/storage/CMakeFiles/iotdb_storage.dir/env.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/env.cc.o.d"
  "/root/repo/src/storage/iterator.cc" "src/storage/CMakeFiles/iotdb_storage.dir/iterator.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/iterator.cc.o.d"
  "/root/repo/src/storage/kvstore.cc" "src/storage/CMakeFiles/iotdb_storage.dir/kvstore.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/kvstore.cc.o.d"
  "/root/repo/src/storage/log_reader.cc" "src/storage/CMakeFiles/iotdb_storage.dir/log_reader.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/log_reader.cc.o.d"
  "/root/repo/src/storage/log_writer.cc" "src/storage/CMakeFiles/iotdb_storage.dir/log_writer.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/log_writer.cc.o.d"
  "/root/repo/src/storage/memtable.cc" "src/storage/CMakeFiles/iotdb_storage.dir/memtable.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/memtable.cc.o.d"
  "/root/repo/src/storage/merger.cc" "src/storage/CMakeFiles/iotdb_storage.dir/merger.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/merger.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/storage/CMakeFiles/iotdb_storage.dir/table.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/table.cc.o.d"
  "/root/repo/src/storage/table_builder.cc" "src/storage/CMakeFiles/iotdb_storage.dir/table_builder.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/table_builder.cc.o.d"
  "/root/repo/src/storage/version.cc" "src/storage/CMakeFiles/iotdb_storage.dir/version.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/version.cc.o.d"
  "/root/repo/src/storage/write_batch.cc" "src/storage/CMakeFiles/iotdb_storage.dir/write_batch.cc.o" "gcc" "src/storage/CMakeFiles/iotdb_storage.dir/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iotdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
