file(REMOVE_RECURSE
  "CMakeFiles/iotdb_iot.dir/benchmark_driver.cc.o"
  "CMakeFiles/iotdb_iot.dir/benchmark_driver.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/checks.cc.o"
  "CMakeFiles/iotdb_iot.dir/checks.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/config.cc.o"
  "CMakeFiles/iotdb_iot.dir/config.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/data_generator.cc.o"
  "CMakeFiles/iotdb_iot.dir/data_generator.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/driver_host_model.cc.o"
  "CMakeFiles/iotdb_iot.dir/driver_host_model.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/driver_instance.cc.o"
  "CMakeFiles/iotdb_iot.dir/driver_instance.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/experiments.cc.o"
  "CMakeFiles/iotdb_iot.dir/experiments.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/kvp.cc.o"
  "CMakeFiles/iotdb_iot.dir/kvp.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/metrics.cc.o"
  "CMakeFiles/iotdb_iot.dir/metrics.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/pricing.cc.o"
  "CMakeFiles/iotdb_iot.dir/pricing.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/query.cc.o"
  "CMakeFiles/iotdb_iot.dir/query.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/report.cc.o"
  "CMakeFiles/iotdb_iot.dir/report.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/retention.cc.o"
  "CMakeFiles/iotdb_iot.dir/retention.cc.o.d"
  "CMakeFiles/iotdb_iot.dir/sensor.cc.o"
  "CMakeFiles/iotdb_iot.dir/sensor.cc.o.d"
  "libiotdb_iot.a"
  "libiotdb_iot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotdb_iot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
