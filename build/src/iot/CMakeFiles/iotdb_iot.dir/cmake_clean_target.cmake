file(REMOVE_RECURSE
  "libiotdb_iot.a"
)
