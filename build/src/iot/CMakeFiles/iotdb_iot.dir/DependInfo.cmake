
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iot/benchmark_driver.cc" "src/iot/CMakeFiles/iotdb_iot.dir/benchmark_driver.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/benchmark_driver.cc.o.d"
  "/root/repo/src/iot/checks.cc" "src/iot/CMakeFiles/iotdb_iot.dir/checks.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/checks.cc.o.d"
  "/root/repo/src/iot/config.cc" "src/iot/CMakeFiles/iotdb_iot.dir/config.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/config.cc.o.d"
  "/root/repo/src/iot/data_generator.cc" "src/iot/CMakeFiles/iotdb_iot.dir/data_generator.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/data_generator.cc.o.d"
  "/root/repo/src/iot/driver_host_model.cc" "src/iot/CMakeFiles/iotdb_iot.dir/driver_host_model.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/driver_host_model.cc.o.d"
  "/root/repo/src/iot/driver_instance.cc" "src/iot/CMakeFiles/iotdb_iot.dir/driver_instance.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/driver_instance.cc.o.d"
  "/root/repo/src/iot/experiments.cc" "src/iot/CMakeFiles/iotdb_iot.dir/experiments.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/experiments.cc.o.d"
  "/root/repo/src/iot/kvp.cc" "src/iot/CMakeFiles/iotdb_iot.dir/kvp.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/kvp.cc.o.d"
  "/root/repo/src/iot/metrics.cc" "src/iot/CMakeFiles/iotdb_iot.dir/metrics.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/metrics.cc.o.d"
  "/root/repo/src/iot/pricing.cc" "src/iot/CMakeFiles/iotdb_iot.dir/pricing.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/pricing.cc.o.d"
  "/root/repo/src/iot/query.cc" "src/iot/CMakeFiles/iotdb_iot.dir/query.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/query.cc.o.d"
  "/root/repo/src/iot/report.cc" "src/iot/CMakeFiles/iotdb_iot.dir/report.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/report.cc.o.d"
  "/root/repo/src/iot/retention.cc" "src/iot/CMakeFiles/iotdb_iot.dir/retention.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/retention.cc.o.d"
  "/root/repo/src/iot/sensor.cc" "src/iot/CMakeFiles/iotdb_iot.dir/sensor.cc.o" "gcc" "src/iot/CMakeFiles/iotdb_iot.dir/sensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ycsb/CMakeFiles/iotdb_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/iotdb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iotdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iotdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iotdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
