# Empty dependencies file for iotdb_iot.
# This may be replaced when dependencies are built.
