# Empty dependencies file for iotdb_ycsb.
# This may be replaced when dependencies are built.
