file(REMOVE_RECURSE
  "libiotdb_ycsb.a"
)
