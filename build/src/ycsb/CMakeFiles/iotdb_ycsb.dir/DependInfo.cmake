
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ycsb/client.cc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/client.cc.o" "gcc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/client.cc.o.d"
  "/root/repo/src/ycsb/core_workload.cc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/core_workload.cc.o" "gcc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/core_workload.cc.o.d"
  "/root/repo/src/ycsb/db.cc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/db.cc.o" "gcc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/db.cc.o.d"
  "/root/repo/src/ycsb/generator.cc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/generator.cc.o" "gcc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/generator.cc.o.d"
  "/root/repo/src/ycsb/measurements.cc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/measurements.cc.o" "gcc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/measurements.cc.o.d"
  "/root/repo/src/ycsb/status_reporter.cc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/status_reporter.cc.o" "gcc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/status_reporter.cc.o.d"
  "/root/repo/src/ycsb/workloads.cc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/workloads.cc.o" "gcc" "src/ycsb/CMakeFiles/iotdb_ycsb.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/iotdb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iotdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iotdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
