file(REMOVE_RECURSE
  "CMakeFiles/iotdb_ycsb.dir/client.cc.o"
  "CMakeFiles/iotdb_ycsb.dir/client.cc.o.d"
  "CMakeFiles/iotdb_ycsb.dir/core_workload.cc.o"
  "CMakeFiles/iotdb_ycsb.dir/core_workload.cc.o.d"
  "CMakeFiles/iotdb_ycsb.dir/db.cc.o"
  "CMakeFiles/iotdb_ycsb.dir/db.cc.o.d"
  "CMakeFiles/iotdb_ycsb.dir/generator.cc.o"
  "CMakeFiles/iotdb_ycsb.dir/generator.cc.o.d"
  "CMakeFiles/iotdb_ycsb.dir/measurements.cc.o"
  "CMakeFiles/iotdb_ycsb.dir/measurements.cc.o.d"
  "CMakeFiles/iotdb_ycsb.dir/status_reporter.cc.o"
  "CMakeFiles/iotdb_ycsb.dir/status_reporter.cc.o.d"
  "CMakeFiles/iotdb_ycsb.dir/workloads.cc.o"
  "CMakeFiles/iotdb_ycsb.dir/workloads.cc.o.d"
  "libiotdb_ycsb.a"
  "libiotdb_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotdb_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
