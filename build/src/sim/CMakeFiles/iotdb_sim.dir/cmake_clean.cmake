file(REMOVE_RECURSE
  "CMakeFiles/iotdb_sim.dir/resource.cc.o"
  "CMakeFiles/iotdb_sim.dir/resource.cc.o.d"
  "CMakeFiles/iotdb_sim.dir/simulator.cc.o"
  "CMakeFiles/iotdb_sim.dir/simulator.cc.o.d"
  "libiotdb_sim.a"
  "libiotdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotdb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
