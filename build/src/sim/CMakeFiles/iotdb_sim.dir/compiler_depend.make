# Empty compiler generated dependencies file for iotdb_sim.
# This may be replaced when dependencies are built.
