file(REMOVE_RECURSE
  "libiotdb_sim.a"
)
