# Empty compiler generated dependencies file for iotdb_cluster.
# This may be replaced when dependencies are built.
