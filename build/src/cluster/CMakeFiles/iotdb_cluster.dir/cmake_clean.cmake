file(REMOVE_RECURSE
  "CMakeFiles/iotdb_cluster.dir/cluster.cc.o"
  "CMakeFiles/iotdb_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/iotdb_cluster.dir/node.cc.o"
  "CMakeFiles/iotdb_cluster.dir/node.cc.o.d"
  "libiotdb_cluster.a"
  "libiotdb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotdb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
