file(REMOVE_RECURSE
  "libiotdb_cluster.a"
)
