file(REMOVE_RECURSE
  "CMakeFiles/iotdb_common.dir/arena.cc.o"
  "CMakeFiles/iotdb_common.dir/arena.cc.o.d"
  "CMakeFiles/iotdb_common.dir/clock.cc.o"
  "CMakeFiles/iotdb_common.dir/clock.cc.o.d"
  "CMakeFiles/iotdb_common.dir/coding.cc.o"
  "CMakeFiles/iotdb_common.dir/coding.cc.o.d"
  "CMakeFiles/iotdb_common.dir/crc32c.cc.o"
  "CMakeFiles/iotdb_common.dir/crc32c.cc.o.d"
  "CMakeFiles/iotdb_common.dir/histogram.cc.o"
  "CMakeFiles/iotdb_common.dir/histogram.cc.o.d"
  "CMakeFiles/iotdb_common.dir/logging.cc.o"
  "CMakeFiles/iotdb_common.dir/logging.cc.o.d"
  "CMakeFiles/iotdb_common.dir/md5.cc.o"
  "CMakeFiles/iotdb_common.dir/md5.cc.o.d"
  "CMakeFiles/iotdb_common.dir/properties.cc.o"
  "CMakeFiles/iotdb_common.dir/properties.cc.o.d"
  "CMakeFiles/iotdb_common.dir/random.cc.o"
  "CMakeFiles/iotdb_common.dir/random.cc.o.d"
  "CMakeFiles/iotdb_common.dir/rate_limiter.cc.o"
  "CMakeFiles/iotdb_common.dir/rate_limiter.cc.o.d"
  "CMakeFiles/iotdb_common.dir/status.cc.o"
  "CMakeFiles/iotdb_common.dir/status.cc.o.d"
  "CMakeFiles/iotdb_common.dir/thread_pool.cc.o"
  "CMakeFiles/iotdb_common.dir/thread_pool.cc.o.d"
  "libiotdb_common.a"
  "libiotdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
