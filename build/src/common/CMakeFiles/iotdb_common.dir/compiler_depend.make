# Empty compiler generated dependencies file for iotdb_common.
# This may be replaced when dependencies are built.
