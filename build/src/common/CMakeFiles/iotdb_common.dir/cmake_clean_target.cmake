file(REMOVE_RECURSE
  "libiotdb_common.a"
)
