# Empty compiler generated dependencies file for benchmark_kit.
# This may be replaced when dependencies are built.
