file(REMOVE_RECURSE
  "CMakeFiles/benchmark_kit.dir/benchmark_kit.cpp.o"
  "CMakeFiles/benchmark_kit.dir/benchmark_kit.cpp.o.d"
  "benchmark_kit"
  "benchmark_kit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_kit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
