# Empty compiler generated dependencies file for smart_grid_dashboard.
# This may be replaced when dependencies are built.
