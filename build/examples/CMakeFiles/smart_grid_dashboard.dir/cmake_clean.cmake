file(REMOVE_RECURSE
  "CMakeFiles/smart_grid_dashboard.dir/smart_grid_dashboard.cpp.o"
  "CMakeFiles/smart_grid_dashboard.dir/smart_grid_dashboard.cpp.o.d"
  "smart_grid_dashboard"
  "smart_grid_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_grid_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
