# Empty dependencies file for gateway_retention.
# This may be replaced when dependencies are built.
