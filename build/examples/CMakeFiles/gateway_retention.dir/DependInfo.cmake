
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/gateway_retention.cpp" "examples/CMakeFiles/gateway_retention.dir/gateway_retention.cpp.o" "gcc" "examples/CMakeFiles/gateway_retention.dir/gateway_retention.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iot/CMakeFiles/iotdb_iot.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/iotdb_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/iotdb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iotdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iotdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iotdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
