file(REMOVE_RECURSE
  "CMakeFiles/gateway_retention.dir/gateway_retention.cpp.o"
  "CMakeFiles/gateway_retention.dir/gateway_retention.cpp.o.d"
  "gateway_retention"
  "gateway_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gateway_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
