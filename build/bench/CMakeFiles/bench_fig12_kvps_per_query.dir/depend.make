# Empty dependencies file for bench_fig12_kvps_per_query.
# This may be replaced when dependencies are built.
