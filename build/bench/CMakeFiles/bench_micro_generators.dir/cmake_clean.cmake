file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_generators.dir/bench_micro_generators.cc.o"
  "CMakeFiles/bench_micro_generators.dir/bench_micro_generators.cc.o.d"
  "bench_micro_generators"
  "bench_micro_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
