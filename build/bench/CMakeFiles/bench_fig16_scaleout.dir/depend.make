# Empty dependencies file for bench_fig16_scaleout.
# This may be replaced when dependencies are built.
