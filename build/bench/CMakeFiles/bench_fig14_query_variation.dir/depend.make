# Empty dependencies file for bench_fig14_query_variation.
# This may be replaced when dependencies are built.
