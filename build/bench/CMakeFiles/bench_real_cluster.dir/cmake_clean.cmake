file(REMOVE_RECURSE
  "CMakeFiles/bench_real_cluster.dir/bench_real_cluster.cc.o"
  "CMakeFiles/bench_real_cluster.dir/bench_real_cluster.cc.o.d"
  "bench_real_cluster"
  "bench_real_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_real_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
