# Empty dependencies file for bench_real_cluster.
# This may be replaced when dependencies are built.
