file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_per_sensor_rate.dir/bench_fig11_per_sensor_rate.cc.o"
  "CMakeFiles/bench_fig11_per_sensor_rate.dir/bench_fig11_per_sensor_rate.cc.o.d"
  "bench_fig11_per_sensor_rate"
  "bench_fig11_per_sensor_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_per_sensor_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
