# Empty compiler generated dependencies file for bench_fig08_driver_generation.
# This may be replaced when dependencies are built.
