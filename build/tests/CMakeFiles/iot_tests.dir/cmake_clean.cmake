file(REMOVE_RECURSE
  "CMakeFiles/iot_tests.dir/iot/benchmark_test.cc.o"
  "CMakeFiles/iot_tests.dir/iot/benchmark_test.cc.o.d"
  "CMakeFiles/iot_tests.dir/iot/config_test.cc.o"
  "CMakeFiles/iot_tests.dir/iot/config_test.cc.o.d"
  "CMakeFiles/iot_tests.dir/iot/datagen_query_test.cc.o"
  "CMakeFiles/iot_tests.dir/iot/datagen_query_test.cc.o.d"
  "CMakeFiles/iot_tests.dir/iot/experiments_test.cc.o"
  "CMakeFiles/iot_tests.dir/iot/experiments_test.cc.o.d"
  "CMakeFiles/iot_tests.dir/iot/integration_test.cc.o"
  "CMakeFiles/iot_tests.dir/iot/integration_test.cc.o.d"
  "CMakeFiles/iot_tests.dir/iot/kvp_test.cc.o"
  "CMakeFiles/iot_tests.dir/iot/kvp_test.cc.o.d"
  "iot_tests"
  "iot_tests.pdb"
  "iot_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
