
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/iot/benchmark_test.cc" "tests/CMakeFiles/iot_tests.dir/iot/benchmark_test.cc.o" "gcc" "tests/CMakeFiles/iot_tests.dir/iot/benchmark_test.cc.o.d"
  "/root/repo/tests/iot/config_test.cc" "tests/CMakeFiles/iot_tests.dir/iot/config_test.cc.o" "gcc" "tests/CMakeFiles/iot_tests.dir/iot/config_test.cc.o.d"
  "/root/repo/tests/iot/datagen_query_test.cc" "tests/CMakeFiles/iot_tests.dir/iot/datagen_query_test.cc.o" "gcc" "tests/CMakeFiles/iot_tests.dir/iot/datagen_query_test.cc.o.d"
  "/root/repo/tests/iot/experiments_test.cc" "tests/CMakeFiles/iot_tests.dir/iot/experiments_test.cc.o" "gcc" "tests/CMakeFiles/iot_tests.dir/iot/experiments_test.cc.o.d"
  "/root/repo/tests/iot/integration_test.cc" "tests/CMakeFiles/iot_tests.dir/iot/integration_test.cc.o" "gcc" "tests/CMakeFiles/iot_tests.dir/iot/integration_test.cc.o.d"
  "/root/repo/tests/iot/kvp_test.cc" "tests/CMakeFiles/iot_tests.dir/iot/kvp_test.cc.o" "gcc" "tests/CMakeFiles/iot_tests.dir/iot/kvp_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iot/CMakeFiles/iotdb_iot.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/iotdb_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/iotdb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iotdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iotdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iotdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
