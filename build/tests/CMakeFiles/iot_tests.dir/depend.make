# Empty dependencies file for iot_tests.
# This may be replaced when dependencies are built.
