file(REMOVE_RECURSE
  "CMakeFiles/ycsb_tests.dir/ycsb/generator_test.cc.o"
  "CMakeFiles/ycsb_tests.dir/ycsb/generator_test.cc.o.d"
  "CMakeFiles/ycsb_tests.dir/ycsb/status_reporter_test.cc.o"
  "CMakeFiles/ycsb_tests.dir/ycsb/status_reporter_test.cc.o.d"
  "CMakeFiles/ycsb_tests.dir/ycsb/workload_presets_test.cc.o"
  "CMakeFiles/ycsb_tests.dir/ycsb/workload_presets_test.cc.o.d"
  "CMakeFiles/ycsb_tests.dir/ycsb/workload_test.cc.o"
  "CMakeFiles/ycsb_tests.dir/ycsb/workload_test.cc.o.d"
  "ycsb_tests"
  "ycsb_tests.pdb"
  "ycsb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
