# Empty compiler generated dependencies file for ycsb_tests.
# This may be replaced when dependencies are built.
