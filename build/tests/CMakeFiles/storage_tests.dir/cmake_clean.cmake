file(REMOVE_RECURSE
  "CMakeFiles/storage_tests.dir/storage/compaction_filter_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/compaction_filter_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/comparator_options_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/comparator_options_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/env_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/env_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/format_property_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/format_property_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/iterator_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/iterator_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/kvstore_property_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/kvstore_property_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/kvstore_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/kvstore_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/log_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/log_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/skiplist_memtable_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/skiplist_memtable_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage/table_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage/table_test.cc.o.d"
  "storage_tests"
  "storage_tests.pdb"
  "storage_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
