
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/compaction_filter_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/compaction_filter_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/compaction_filter_test.cc.o.d"
  "/root/repo/tests/storage/comparator_options_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/comparator_options_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/comparator_options_test.cc.o.d"
  "/root/repo/tests/storage/env_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/env_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/env_test.cc.o.d"
  "/root/repo/tests/storage/format_property_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/format_property_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/format_property_test.cc.o.d"
  "/root/repo/tests/storage/iterator_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/iterator_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/iterator_test.cc.o.d"
  "/root/repo/tests/storage/kvstore_property_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/kvstore_property_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/kvstore_property_test.cc.o.d"
  "/root/repo/tests/storage/kvstore_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/kvstore_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/kvstore_test.cc.o.d"
  "/root/repo/tests/storage/log_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/log_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/log_test.cc.o.d"
  "/root/repo/tests/storage/skiplist_memtable_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/skiplist_memtable_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/skiplist_memtable_test.cc.o.d"
  "/root/repo/tests/storage/table_test.cc" "tests/CMakeFiles/storage_tests.dir/storage/table_test.cc.o" "gcc" "tests/CMakeFiles/storage_tests.dir/storage/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iot/CMakeFiles/iotdb_iot.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/iotdb_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/iotdb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iotdb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iotdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iotdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
