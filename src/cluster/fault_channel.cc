#include "cluster/fault_channel.h"

#include <chrono>

#include "common/clock.h"
#include "obs/metrics.h"

namespace iotdb {
namespace cluster {

namespace {

struct FaultChannelInstruments {
  obs::Counter* dropped;
  obs::Counter* duplicated;
  obs::Counter* reordered;
  obs::Counter* partition_blocked;
};

FaultChannelInstruments& Instruments() {
  static FaultChannelInstruments instruments = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return FaultChannelInstruments{
        registry.GetCounter("cluster.channel.dropped"),
        registry.GetCounter("cluster.channel.duplicated"),
        registry.GetCounter("cluster.channel.reordered"),
        registry.GetCounter("cluster.channel.partition_blocked")};
  }();
  return instruments;
}

}  // namespace

FaultChannel::FaultChannel(std::unique_ptr<Channel> base, uint64_t seed)
    : base_(std::move(base)), rng_(seed == 0 ? 0xfa17c4a7 : seed) {
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

FaultChannel::~FaultChannel() { Shutdown(); }

void FaultChannel::RegisterEndpoint(int endpoint, Handler handler) {
  base_->RegisterEndpoint(endpoint, std::move(handler));
}

void FaultChannel::UnregisterEndpoint(int endpoint) {
  base_->UnregisterEndpoint(endpoint);
}

bool FaultChannel::Send(Message msg) {
  uint64_t delay_micros = 0;
  bool duplicate = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    counters_.sent++;
    if (!ReachableLocked(msg.src, msg.dst)) {
      counters_.partition_blocked++;
      if (obs::Enabled()) Instruments().partition_blocked->Increment();
      // Swallowed silently: a real network gives no synchronous failure
      // signal either — the sender finds out via its own timeout.
      return true;
    }
    if (drop_p_ > 0.0 && rng_.NextDouble() < drop_p_) {
      counters_.dropped++;
      if (obs::Enabled()) Instruments().dropped->Increment();
      return true;
    }
    if (duplicate_p_ > 0.0 && rng_.NextDouble() < duplicate_p_) {
      duplicate = true;
      counters_.duplicated++;
      if (obs::Enabled()) Instruments().duplicated->Increment();
    }
    auto it = endpoint_delay_.find(msg.dst);
    uint64_t lo = delay_min_micros_, hi = delay_max_micros_;
    if (it != endpoint_delay_.end()) {
      lo = it->second.first;
      hi = it->second.second;
    }
    if (hi > 0) {
      delay_micros = (hi > lo) ? rng_.UniformRange(lo, hi + 1) : lo;
      if (delay_micros > 0) counters_.delayed++;
    }
    if (reorder_p_ > 0.0 && reorder_window_micros_ > 0 &&
        rng_.NextDouble() < reorder_p_) {
      delay_micros += rng_.UniformRange(1, reorder_window_micros_ + 1);
      counters_.reordered++;
      if (obs::Enabled()) Instruments().reordered->Increment();
    }
    if (delay_micros > 0) {
      uint64_t due = Clock::MonotonicMicros() + delay_micros;
      Message copy;
      if (duplicate) copy = msg;  // rows are shared, so this is cheap
      delayed_.push(DelayedMessage{due, next_seq_++, std::move(msg)});
      if (duplicate) {
        delayed_.push(DelayedMessage{due, next_seq_++, std::move(copy)});
      }
    }
  }
  if (delay_micros > 0) {
    timer_cv_.notify_one();
    return true;
  }
  bool sent = base_->Send(msg);
  if (duplicate) base_->Send(std::move(msg));
  return sent;
}

void FaultChannel::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      base_->Shutdown();
      return;
    }
    stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  base_->Shutdown();
}

void FaultChannel::SetDefaultDelay(uint64_t min_micros, uint64_t max_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  delay_min_micros_ = min_micros;
  delay_max_micros_ = max_micros;
}

void FaultChannel::SetEndpointDelay(int endpoint, uint64_t min_micros,
                                    uint64_t max_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoint_delay_[endpoint] = {min_micros, max_micros};
}

void FaultChannel::SetDropProbability(double p) {
  std::lock_guard<std::mutex> lock(mu_);
  drop_p_ = p;
}

void FaultChannel::SetDuplicateProbability(double p) {
  std::lock_guard<std::mutex> lock(mu_);
  duplicate_p_ = p;
}

void FaultChannel::SetReorderProbability(double p, uint64_t window_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  reorder_p_ = p;
  reorder_window_micros_ = window_micros;
}

void FaultChannel::Isolate(int endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  isolated_.insert(endpoint);
}

void FaultChannel::PartitionOneWay(int src, int dst) {
  std::lock_guard<std::mutex> lock(mu_);
  blocked_pairs_.insert({src, dst});
}

void FaultChannel::Heal(int endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  isolated_.erase(endpoint);
  for (auto it = blocked_pairs_.begin(); it != blocked_pairs_.end();) {
    if (it->first == endpoint || it->second == endpoint) {
      it = blocked_pairs_.erase(it);
    } else {
      ++it;
    }
  }
}

void FaultChannel::HealAll() {
  std::lock_guard<std::mutex> lock(mu_);
  isolated_.clear();
  blocked_pairs_.clear();
}

bool FaultChannel::Reachable(int src, int dst) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ReachableLocked(src, dst);
}

bool FaultChannel::ReachableLocked(int src, int dst) const {
  if (isolated_.count(src) || isolated_.count(dst)) return false;
  return blocked_pairs_.count({src, dst}) == 0;
}

NetFaultCounters FaultChannel::GetCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void FaultChannel::TimerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stop_) return;
    if (delayed_.empty()) {
      timer_cv_.wait(lock, [this] { return stop_ || !delayed_.empty(); });
      continue;
    }
    uint64_t now = Clock::MonotonicMicros();
    uint64_t due = delayed_.top().due_micros;
    if (due > now) {
      timer_cv_.wait_for(lock, std::chrono::microseconds(due - now));
      continue;
    }
    Message msg = std::move(const_cast<DelayedMessage&>(delayed_.top()).msg);
    delayed_.pop();
    lock.unlock();
    base_->Send(std::move(msg));
    lock.lock();
  }
}

}  // namespace cluster
}  // namespace iotdb
