#ifndef IOTDB_CLUSTER_NODE_H_
#define IOTDB_CLUSTER_NODE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/kvstore.h"

namespace iotdb {
namespace cluster {

/// Per-node operation counters (exposed through Cluster::GetNodeStats).
struct NodeStats {
  uint64_t writes = 0;           // kvps written (primary + replica)
  uint64_t primary_writes = 0;   // kvps written as primary
  uint64_t reads = 0;
  uint64_t scans = 0;
  uint64_t scan_rows_read = 0;
  uint64_t bytes_written = 0;
};

/// One gateway node: a region server wrapping a private KVStore instance.
/// All member functions are thread-safe.
class Node {
 public:
  static Result<std::unique_ptr<Node>> Start(int id,
                                             const storage::Options& options,
                                             const std::string& data_dir);

  int id() const { return id_; }
  bool is_down() const { return down_.load(std::memory_order_acquire); }
  void SetDown(bool down) { down_.store(down, std::memory_order_release); }

  storage::KVStore* store() { return store_.get(); }

  /// Applies a replicated write batch. `as_primary` only affects counters.
  Status ApplyBatch(storage::WriteBatch* batch, bool as_primary,
                    uint64_t kvps, uint64_t bytes);

  Result<std::string> Get(const Slice& key);

  Status Scan(const Slice& start, const Slice& end_exclusive, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out);

  NodeStats GetStats() const;

  /// Drops all data and reopens the store (TPCx-IoT system cleanup).
  Status Purge();

 private:
  Node(int id, const storage::Options& options, std::string data_dir);

  const int id_;
  storage::Options options_;
  const std::string data_dir_;
  std::unique_ptr<storage::KVStore> store_;
  std::atomic<bool> down_{false};

  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> primary_writes_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> scans_{0};
  std::atomic<uint64_t> scan_rows_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace cluster
}  // namespace iotdb

#endif  // IOTDB_CLUSTER_NODE_H_
