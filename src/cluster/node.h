#ifndef IOTDB_CLUSTER_NODE_H_
#define IOTDB_CLUSTER_NODE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/corruption_reporter.h"
#include "storage/fault_env.h"
#include "storage/kvstore.h"

namespace iotdb {
namespace cluster {

/// Per-node operation counters (exposed through Cluster::GetNodeStats).
struct NodeStats {
  uint64_t writes = 0;           // kvps written (primary + replica)
  uint64_t primary_writes = 0;   // kvps written as primary
  uint64_t reads = 0;
  uint64_t scans = 0;
  uint64_t scan_rows_read = 0;
  uint64_t bytes_written = 0;
  /// Replica writes that could not be applied because this node was down;
  /// the cluster records them as hints instead of silently dropping them.
  uint64_t skipped_replica_writes = 0;
};

/// One gateway node: a region server wrapping a private KVStore instance.
/// All member functions are thread-safe. Lifecycle transitions (Crash,
/// Restart, Purge) serialise against in-flight operations with a
/// reader/writer lock.
class Node {
 public:
  /// Invoked when this node's store quarantines a corrupt file. May run on
  /// a store background thread with store locks held: only enqueue.
  using QuarantineHandler =
      std::function<void(int node_id, const std::string& path,
                        const Status& cause)>;

  /// `fault_env` (optional, not owned) enables realistic crash simulation:
  /// Crash() uses it to discard every byte the store had not yet synced.
  /// `on_quarantine` (optional) observes corrupt-file quarantines; the
  /// cluster uses it to trigger replica-driven repair.
  static Result<std::unique_ptr<Node>> Start(
      int id, const storage::Options& options, const std::string& data_dir,
      storage::FaultInjectionEnv* fault_env = nullptr,
      QuarantineHandler on_quarantine = nullptr);

  int id() const { return id_; }
  const std::string& data_dir() const { return data_dir_; }

  bool is_down() const { return down_.load(std::memory_order_acquire); }

  /// Liveness toggle for tests: marks the node unreachable without touching
  /// its store. Real failure scenarios go through Crash()/Restart(), which
  /// also lose/recover state.
  void SetDown(bool down) { down_.store(down, std::memory_order_release); }

  /// True while the store is open (false between Crash() and Restart()).
  bool is_running() const;

  /// True when the node went down via Crash(): acknowledged-but-unsynced
  /// writes died with it, so rejoin needs replica catch-up beyond hint
  /// replay. Cleared by the cluster after recovery completes.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  void ClearCrashed() { crashed_.store(false, std::memory_order_release); }

  /// True from the moment the store quarantines a corrupt file until the
  /// cluster finishes re-copying this node's shards from healthy replicas.
  /// While set, reads are refused with Status::Corruption so clients fail
  /// over — a quarantine removes keys, so a local miss (or a stale deeper-
  /// level version) can no longer be trusted. Writes proceed normally.
  bool under_repair() const {
    return under_repair_.load(std::memory_order_acquire);
  }
  void ClearUnderRepair() {
    under_repair_.store(false, std::memory_order_release);
  }

  /// Corrupt files this node's store has quarantined since start.
  uint64_t files_quarantined() const {
    return files_quarantined_.load(std::memory_order_relaxed);
  }

  /// Direct store access for tests and cluster-internal recovery. The
  /// caller must know the node is not concurrently crashing/restarting.
  storage::KVStore* store() { return store_.get(); }

  /// Simulated abrupt process crash: marks the node down, tears the store
  /// down without an orderly shutdown and — when a fault env is attached —
  /// drops all data the store had not yet Sync()ed (including torn WAL
  /// tails). Without a fault env this degrades to an orderly stop (the
  /// backing env keeps everything that was appended). Idempotent.
  Status Crash();

  /// Reopens the store through the normal KVStore::Open recovery path (WAL
  /// replay + manifest load). The node stays marked down; the cluster
  /// flips it up once replica catch-up has converged.
  Status Restart();

  /// Applies a replicated write batch. `as_primary` only affects counters.
  Status ApplyBatch(storage::WriteBatch* batch, bool as_primary,
                    uint64_t kvps, uint64_t bytes);

  /// Vectorized variant of ApplyBatch: hands the shared replicated rows
  /// straight to KVStore::PutMany, which routes them to write shards in a
  /// single pass — no intermediate per-replica WriteBatch copy.
  Status ApplyRows(
      const std::vector<std::pair<std::string, std::string>>& rows,
      bool as_primary, uint64_t kvps, uint64_t bytes);

  /// Applies replayed hint rows. Unlike ApplyBatch this succeeds while the
  /// node is still marked down (rejoin catch-up runs before the node is
  /// flipped live) and bumps no throughput counters — the rows were already
  /// counted when the original write was accepted.
  Status ApplyHintBatch(
      const std::vector<std::pair<std::string, std::string>>& rows);

  Result<std::string> Get(const Slice& key);

  Status Scan(const Slice& start, const Slice& end_exclusive, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out);

  /// Counts replica writes skipped because this node was down (recorded as
  /// hints by the cluster).
  void CountSkippedReplicaWrites(uint64_t kvps) {
    skipped_replica_writes_.fetch_add(kvps, std::memory_order_relaxed);
  }

  NodeStats GetStats() const;

  /// Drops all data and reopens the store (TPCx-IoT system cleanup). Also
  /// recovers a crashed node into a clean, live state.
  Status Purge();

 private:
  /// Bridges the store's CorruptionReporter callback onto the node.
  class CorruptionListener final : public storage::CorruptionReporter {
   public:
    explicit CorruptionListener(Node* node) : node_(node) {}
    void OnQuarantine(const std::string& path, const Status& cause) override;

   private:
    Node* const node_;
  };

  Node(int id, const storage::Options& options, std::string data_dir,
       storage::FaultInjectionEnv* fault_env, QuarantineHandler on_quarantine);

  Status NotRunningError() const;
  Status UnderRepairError() const;
  void OnStoreQuarantine(const std::string& path, const Status& cause);

  const int id_;
  /// cluster.node<id>.primary_kvps — feeds the timeline's per-node op
  /// series (the load-balance view of Figure 15, time-resolved).
  obs::Counter* const obs_primary_kvps_;
  CorruptionListener corruption_listener_{this};
  storage::Options options_;
  const std::string data_dir_;
  storage::FaultInjectionEnv* const fault_env_;  // may be null
  const QuarantineHandler on_quarantine_;        // may be null

  /// Shared: normal operations. Exclusive: store open/close transitions.
  mutable std::shared_mutex lifecycle_mu_;
  std::unique_ptr<storage::KVStore> store_;
  std::atomic<bool> down_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> under_repair_{false};
  std::atomic<uint64_t> files_quarantined_{0};

  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> primary_writes_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> scans_{0};
  std::atomic<uint64_t> scan_rows_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> skipped_replica_writes_{0};
};

}  // namespace cluster
}  // namespace iotdb

#endif  // IOTDB_CLUSTER_NODE_H_
