#ifndef IOTDB_CLUSTER_OPTIONS_H_
#define IOTDB_CLUSTER_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/slice.h"
#include "storage/options.h"

namespace iotdb {
namespace cluster {

/// Extracts the sharding key from a row key. Rows with equal shard keys are
/// guaranteed to live in the same region, so range scans within one shard
/// key touch a single node. TPCx-IoT shards by (substation, sensor) prefix.
using ShardKeyFn = std::function<Slice(const Slice&)>;

/// Configuration of an in-process gateway cluster.
struct ClusterOptions {
  /// Number of gateway nodes (the paper evaluates 2, 4, and 8).
  int num_nodes = 2;

  /// Synchronous replicas per write. TPCx-IoT's prerequisite check requires
  /// three-way replication; replicas land on distinct nodes, so the
  /// effective copy count is min(replication_factor, num_nodes).
  int replication_factor = 3;

  /// Storage engine options applied to every node's store. The env defaults
  /// to one shared MemEnv created by the cluster.
  storage::Options storage_options;

  /// Directory prefix for node stores within the env.
  std::string data_root = "/gateway";

  /// Shard key extractor; defaults to the whole key.
  ShardKeyFn shard_key_fn;
};

}  // namespace cluster
}  // namespace iotdb

#endif  // IOTDB_CLUSTER_OPTIONS_H_
