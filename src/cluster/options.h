#ifndef IOTDB_CLUSTER_OPTIONS_H_
#define IOTDB_CLUSTER_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/slice.h"
#include "storage/options.h"

namespace iotdb {
namespace cluster {

/// Extracts the sharding key from a row key. Rows with equal shard keys are
/// guaranteed to live in the same region, so range scans within one shard
/// key touch a single node. TPCx-IoT shards by (substation, sensor) prefix.
using ShardKeyFn = std::function<Slice(const Slice&)>;

/// Client-side retry behaviour: bounded exponential backoff with jitter and
/// a per-operation deadline. Retries apply to transient failures (IOError,
/// Busy, TimedOut); permanently-down replicas are handled by degraded-mode
/// writes and read failover instead.
struct RetryPolicy {
  /// Total attempts (first try included). <= 1 disables retries.
  int max_attempts = 3;

  /// Backoff before the first retry; doubles (see multiplier) per attempt.
  uint64_t initial_backoff_micros = 200;

  /// Upper bound on a single backoff sleep.
  uint64_t max_backoff_micros = 50'000;

  double backoff_multiplier = 2.0;

  /// Fraction of the backoff randomised away (0 = deterministic, 1 = the
  /// sleep is uniform in [0, backoff]). Decorrelates competing clients.
  double jitter = 0.5;

  /// Overall wall-clock budget for one client operation, retries and
  /// backoff sleeps included. 0 = no deadline.
  uint64_t op_deadline_micros = 0;
};

/// Configuration of an in-process gateway cluster.
struct ClusterOptions {
  /// Number of gateway nodes (the paper evaluates 2, 4, and 8).
  int num_nodes = 2;

  /// Synchronous replicas per write. TPCx-IoT's prerequisite check requires
  /// three-way replication; replicas land on distinct nodes, so the
  /// effective copy count is min(replication_factor, num_nodes).
  int replication_factor = 3;

  /// Storage engine options applied to every node's store. The env defaults
  /// to one shared MemEnv created by the cluster.
  storage::Options storage_options;

  /// Directory prefix for node stores within the env.
  std::string data_root = "/gateway";

  /// Shard key extractor; defaults to the whole key.
  ShardKeyFn shard_key_fn;

  /// Client retry/deadline behaviour for Put/Get/Scan.
  RetryPolicy retry_policy;

  /// Hinted handoff: writes destined for a down replica are buffered (up to
  /// this many kvps per node) and replayed when the node rejoins. Overflow
  /// falls back to a full shard re-copy from a live replica at restart.
  uint64_t max_hints_per_node = 1 << 16;

  /// Wraps every node's env in a shared FaultInjectionEnv (seeded with
  /// fault_seed) so the harness can inject IO errors and simulate node
  /// crashes. Off by default: production runs pay no decoration cost.
  bool enable_fault_injection = false;
  uint64_t fault_seed = 0;

  /// Replica acks required before a write is reported durable. 0 = majority
  /// of the effective replica count (eff/2 + 1, i.e. 2-of-3). Replicas that
  /// are known down at send time are covered by hinted handoff and do not
  /// count toward the denominator, so single-node degraded clusters still
  /// accept writes; replicas that are up but unreachable (partitioned) are
  /// quorum-governed and can make writes fail Unavailable.
  int write_quorum = 0;

  /// Overall deadline for one replicated write (fan-out to quorum decision)
  /// when retry_policy.op_deadline_micros is 0. Measured on the monotonic
  /// clock. Expiry fails the write with Status::Unavailable.
  uint64_t write_timeout_micros = 2'000'000;

  /// Once quorum is met, laggard replicas get this long to ack before their
  /// share of the write is converted into a hint (straggler tolerance).
  uint64_t straggler_timeout_micros = 150'000;

  /// Period of the background hint-drain thread that replays buffered hints
  /// to live nodes over the channel.
  uint64_t hint_drain_interval_micros = 20'000;

  /// Wraps the replication channel in a FaultChannel (seeded with
  /// net_fault_seed) so the harness can inject delays, drops, duplicates,
  /// reorders, and partitions. Off by default.
  bool enable_net_fault_injection = false;
  uint64_t net_fault_seed = 0;
};

}  // namespace cluster
}  // namespace iotdb

#endif  // IOTDB_CLUSTER_OPTIONS_H_
