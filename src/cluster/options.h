#ifndef IOTDB_CLUSTER_OPTIONS_H_
#define IOTDB_CLUSTER_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/slice.h"
#include "storage/options.h"

namespace iotdb {
namespace cluster {

/// Extracts the sharding key from a row key. Rows with equal shard keys are
/// guaranteed to live in the same region, so range scans within one shard
/// key touch a single node. TPCx-IoT shards by (substation, sensor) prefix.
using ShardKeyFn = std::function<Slice(const Slice&)>;

/// Client-side retry behaviour: bounded exponential backoff with jitter and
/// a per-operation deadline. Retries apply to transient failures (IOError,
/// Busy, TimedOut); permanently-down replicas are handled by degraded-mode
/// writes and read failover instead.
struct RetryPolicy {
  /// Total attempts (first try included). <= 1 disables retries.
  int max_attempts = 3;

  /// Backoff before the first retry; doubles (see multiplier) per attempt.
  uint64_t initial_backoff_micros = 200;

  /// Upper bound on a single backoff sleep.
  uint64_t max_backoff_micros = 50'000;

  double backoff_multiplier = 2.0;

  /// Fraction of the backoff randomised away (0 = deterministic, 1 = the
  /// sleep is uniform in [0, backoff]). Decorrelates competing clients.
  double jitter = 0.5;

  /// Overall wall-clock budget for one client operation, retries and
  /// backoff sleeps included. 0 = no deadline.
  uint64_t op_deadline_micros = 0;
};

/// Configuration of an in-process gateway cluster.
struct ClusterOptions {
  /// Number of gateway nodes (the paper evaluates 2, 4, and 8).
  int num_nodes = 2;

  /// Synchronous replicas per write. TPCx-IoT's prerequisite check requires
  /// three-way replication; replicas land on distinct nodes, so the
  /// effective copy count is min(replication_factor, num_nodes).
  int replication_factor = 3;

  /// Storage engine options applied to every node's store. The env defaults
  /// to one shared MemEnv created by the cluster.
  storage::Options storage_options;

  /// Directory prefix for node stores within the env.
  std::string data_root = "/gateway";

  /// Shard key extractor; defaults to the whole key.
  ShardKeyFn shard_key_fn;

  /// Client retry/deadline behaviour for Put/Get/Scan.
  RetryPolicy retry_policy;

  /// Hinted handoff: writes destined for a down replica are buffered (up to
  /// this many kvps per node) and replayed when the node rejoins. Overflow
  /// falls back to a full shard re-copy from a live replica at restart.
  uint64_t max_hints_per_node = 1 << 16;

  /// Wraps every node's env in a shared FaultInjectionEnv (seeded with
  /// fault_seed) so the harness can inject IO errors and simulate node
  /// crashes. Off by default: production runs pay no decoration cost.
  bool enable_fault_injection = false;
  uint64_t fault_seed = 0;
};

}  // namespace cluster
}  // namespace iotdb

#endif  // IOTDB_CLUSTER_OPTIONS_H_
