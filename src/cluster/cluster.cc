#include "cluster/cluster.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/bloom.h"  // reuse BloomHash as the shard hash

namespace iotdb {
namespace cluster {

namespace {

// Rows per batch when catching a restarted node up via full shard re-copy.
constexpr size_t kRecopyBatchRows = 512;
// Matches the WaitReplicationIdle default (cluster.h).
constexpr uint64_t kReplicationIdleMicros = 60'000'000;

/// Global `cluster.*` registry instruments, resolved once. Shared by every
/// Cluster/Client in the process (mirrors the per-cluster FaultRecoveryStats
/// and NodeStats, which stay exact and per-instance).
struct ClusterInstruments {
  obs::LatencyHistogram* fanout_micros;
  obs::Gauge* hint_queue_depth;
  obs::Counter* hints_recorded_kvps;
  obs::Counter* hints_replayed_kvps;
  obs::Counter* retry_attempts;
  obs::Counter* degraded_batches;
  obs::Counter* read_repair_served;
  obs::Counter* quarantined_files;
  obs::Counter* corruption_repairs;
  obs::Counter* quorum_met_writes;
  obs::Counter* unavailable_writes;
  obs::Counter* straggler_hint_kvps;
  obs::Counter* deadline_exceeded;
  obs::Counter* duplicate_acks;
};

ClusterInstruments& Instruments() {
  static ClusterInstruments instruments = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return ClusterInstruments{
        registry.GetHistogram("cluster.replication.fanout_micros"),
        registry.GetGauge("cluster.hints.queue_depth"),
        registry.GetCounter("cluster.hints.recorded_kvps"),
        registry.GetCounter("cluster.hints.replayed_kvps"),
        registry.GetCounter("cluster.retry.attempts"),
        registry.GetCounter("cluster.write.degraded_batches"),
        registry.GetCounter("cluster.read_repair.served"),
        registry.GetCounter("cluster.read_repair.quarantined_files"),
        registry.GetCounter("cluster.read_repair.shard_recopies"),
        registry.GetCounter("cluster.quorum.writes_met"),
        registry.GetCounter("cluster.quorum.writes_unavailable"),
        registry.GetCounter("cluster.hints.straggler_kvps"),
        registry.GetCounter("cluster.client.deadline_exceeded"),
        registry.GetCounter("cluster.quorum.duplicate_acks")};
  }();
  return instruments;
}

bool IsRetryable(const Status& s) {
  return s.IsIOError() || s.IsBusy() || s.IsTimedOut();
}

uint64_t SplitMix(std::atomic<uint64_t>& state) {
  uint64_t z = state.fetch_add(0x9E3779B97F4A7C15ull,
                               std::memory_order_relaxed) +
               0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t BackoffWithJitter(const RetryPolicy& policy, int completed_attempts,
                           std::atomic<uint64_t>& jitter_state) {
  double backoff = static_cast<double>(policy.initial_backoff_micros) *
                   std::pow(policy.backoff_multiplier,
                            std::max(0, completed_attempts - 1));
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff_micros));
  if (policy.jitter > 0) {
    // Subtract a random fraction of `jitter * backoff` so concurrent
    // clients retrying the same fault decorrelate.
    double fraction = static_cast<double>(SplitMix(jitter_state) >> 11) *
                      (1.0 / (1ull << 53));
    backoff *= 1.0 - policy.jitter * fraction;
  }
  return static_cast<uint64_t>(backoff);
}

}  // namespace

Cluster::Cluster(const ClusterOptions& options) : options_(options) {}

Cluster::~Cluster() {
  ShutdownReplication();
  // Nodes hold stores using fault_env_; destroy them first.
  nodes_.clear();
  // Gauges are process-global levels: with this cluster gone its queues no
  // longer exist, so zero them or the next cluster in the process inherits
  // ghost depth (bench_real_cluster runs several clusters back to back).
  Instruments().hint_queue_depth->Set(0);
  for (obs::Gauge* gauge : node_hint_depth_) gauge->Set(0);
}

void Cluster::ShutdownReplication() {
  {
    std::lock_guard<std::mutex> lock(writes_mu_);
    if (replication_shutdown_) return;
    replication_shutdown_ = true;
    for (auto& [id, pw] : pending_writes_) {
      if (!pw->done) {
        pw->done = true;
        pw->quorum_met = false;
        pw->error = Status::Aborted("cluster shutting down");
      }
    }
    pending_writes_.clear();
  }
  writes_cv_.notify_all();
  timer_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(hints_mu_);
    drain_shutdown_ = true;
  }
  hints_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(hint_ack_mu_);
    hint_shutdown_ = true;
  }
  hint_ack_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  if (drain_thread_.joinable()) drain_thread_.join();
  // Joins every mailbox/timer thread; no handler runs past this point, so
  // the nodes_ teardown that follows cannot race a delivery.
  if (channel_ != nullptr) channel_->Shutdown();
}

Result<std::unique_ptr<Cluster>> Cluster::Start(
    const ClusterOptions& options) {
  auto cluster = std::unique_ptr<Cluster>(new Cluster(options));
  if (cluster->options_.num_nodes < 1) {
    return Status::InvalidArgument("cluster needs at least one node");
  }
  if (cluster->options_.storage_options.env == nullptr) {
    cluster->owned_env_ = storage::NewMemEnv();
    cluster->options_.storage_options.env = cluster->owned_env_.get();
  }
  if (cluster->options_.enable_fault_injection) {
    cluster->fault_env_ = std::make_unique<storage::FaultInjectionEnv>(
        cluster->options_.storage_options.env, cluster->options_.fault_seed);
    cluster->options_.storage_options.env = cluster->fault_env_.get();
  }
  cluster->hints_.resize(static_cast<size_t>(cluster->options_.num_nodes));
  auto& registry = obs::MetricsRegistry::Global();
  for (int i = 0; i < cluster->options_.num_nodes; ++i) {
    cluster->node_hint_depth_.push_back(registry.GetGauge(
        "cluster.node" + std::to_string(i) + ".hint_queue_depth"));
  }
  Cluster* raw = cluster.get();

  // The replication plane: an in-process channel, optionally wrapped in the
  // seeded network-fault decorator.
  auto base = NewInProcessChannel();
  if (cluster->options_.enable_net_fault_injection) {
    auto faulty = std::make_unique<FaultChannel>(
        std::move(base), cluster->options_.net_fault_seed);
    cluster->net_fault_channel_ = faulty.get();
    cluster->channel_ = std::move(faulty);
  } else {
    cluster->channel_ = std::move(base);
  }
  cluster->channel_->RegisterEndpoint(
      kCoordinatorEndpoint,
      [raw](Message msg) { raw->HandleCoordinatorMessage(std::move(msg)); });
  cluster->channel_->RegisterEndpoint(
      kHintServiceEndpoint,
      [raw](Message msg) { raw->HandleHintServiceMessage(std::move(msg)); });

  auto on_quarantine = [raw](int node_id, const std::string& path,
                             const Status& cause) {
    raw->OnNodeQuarantine(node_id, path, cause);
  };
  for (int i = 0; i < cluster->options_.num_nodes; ++i) {
    std::string dir =
        cluster->options_.data_root + "/node" + std::to_string(i);
    IOTDB_ASSIGN_OR_RETURN(
        auto node,
        Node::Start(i, cluster->options_.storage_options, dir,
                    cluster->fault_env_.get(), on_quarantine));
    cluster->nodes_.push_back(std::move(node));
  }
  // Replica endpoints only go live once every node exists: a handler
  // indexes nodes_ by id.
  for (int i = 0; i < cluster->options_.num_nodes; ++i) {
    cluster->channel_->RegisterEndpoint(i, [raw, i](Message msg) {
      raw->HandleReplicaMessage(i, std::move(msg));
    });
  }
  cluster->timer_thread_ = std::thread([raw] { raw->TimerLoop(); });
  cluster->drain_thread_ = std::thread([raw] { raw->HintDrainLoop(); });
  return cluster;
}

void Cluster::OnNodeQuarantine(int node_id, const std::string& path,
                               const Status& cause) {
  // May run on a store background thread with store locks held: only
  // record and enqueue — repair happens in RunPendingRepairs().
  (void)path;
  (void)cause;
  std::lock_guard<std::mutex> lock(hints_mu_);
  fault_stats_.corrupt_files_quarantined++;
  pending_repair_.insert(node_id);
  if (obs::Enabled()) Instruments().quarantined_files->Increment();
}

void Cluster::RecordReadRepair() {
  std::lock_guard<std::mutex> lock(hints_mu_);
  fault_stats_.read_repairs++;
  if (obs::Enabled()) Instruments().read_repair_served->Increment();
}

std::vector<int> Cluster::PendingRepairNodes() const {
  std::lock_guard<std::mutex> lock(hints_mu_);
  return std::vector<int>(pending_repair_.begin(), pending_repair_.end());
}

Status Cluster::RunPendingRepairs() {
  std::set<int> pending;
  {
    std::lock_guard<std::mutex> lock(hints_mu_);
    pending.swap(pending_repair_);
  }
  Status first_error;
  for (int id : pending) {
    Node* node = nodes_[id].get();
    if (node->is_down() || !node->is_running()) {
      // Defer: the RestartNode path re-copies a crashed node's shards
      // anyway, and its quarantine flag forces a re-copy there too.
      std::lock_guard<std::mutex> lock(hints_mu_);
      pending_repair_.insert(id);
      continue;
    }
    Status s = RecopyShards(id);
    if (!s.ok()) {
      if (first_error.ok()) first_error = s;
      std::lock_guard<std::mutex> lock(hints_mu_);
      pending_repair_.insert(id);  // retry on the next pass
      continue;
    }
    // Every key the node replicates has been re-written from a healthy
    // replica; local reads are trustworthy again.
    node->ClearUnderRepair();
    std::lock_guard<std::mutex> lock(hints_mu_);
    fault_stats_.corruption_repairs++;
    if (obs::Enabled()) Instruments().corruption_repairs->Increment();
  }
  return first_error;
}

Clock* Cluster::clock() const {
  return options_.storage_options.clock != nullptr
             ? options_.storage_options.clock
             : Clock::Real();
}

int Cluster::effective_replication() const {
  return std::min(options_.replication_factor, num_nodes());
}

int Cluster::write_quorum() const {
  int eff = effective_replication();
  if (options_.write_quorum > 0) return std::min(options_.write_quorum, eff);
  return eff / 2 + 1;  // majority
}

Slice Cluster::ShardKeyOf(const Slice& row_key) const {
  if (options_.shard_key_fn) return options_.shard_key_fn(row_key);
  return row_key;
}

int Cluster::PrimaryNodeFor(const Slice& row_key) const {
  uint32_t h = storage::BloomHash(ShardKeyOf(row_key));
  return static_cast<int>(h % static_cast<uint32_t>(num_nodes()));
}

std::vector<int> Cluster::ReplicaNodesFor(const Slice& row_key) const {
  return ReplicaNodesForShardKey(ShardKeyOf(row_key));
}

std::vector<int> Cluster::ReplicaNodesForShardKey(
    const Slice& shard_key) const {
  uint32_t h = storage::BloomHash(shard_key);
  int primary = static_cast<int>(h % static_cast<uint32_t>(num_nodes()));
  int replicas = effective_replication();
  std::vector<int> result;
  result.reserve(replicas);
  for (int i = 0; i < replicas; ++i) {
    result.push_back((primary + i) % num_nodes());
  }
  return result;
}

bool Cluster::IsNodeReachable(int node_id) const {
  if (net_fault_channel_ == nullptr) return true;
  return net_fault_channel_->Reachable(kCoordinatorEndpoint, node_id) &&
         net_fault_channel_->Reachable(node_id, kCoordinatorEndpoint);
}

Status Cluster::CrashNode(int id) {
  if (id < 0 || id >= num_nodes()) {
    return Status::InvalidArgument("no such node: " + std::to_string(id));
  }
  IOTDB_RETURN_NOT_OK(nodes_[id]->Crash());
  {
    std::lock_guard<std::mutex> lock(hints_mu_);
    fault_stats_.node_crashes++;
    // A crashed node lost unsynced state, so rejoin takes a full shard
    // re-copy no matter what — hints buffered for it are dead weight, and
    // their queue depth would haunt the timeline for as long as the node
    // stays down. Reuse the overflow path: drop the rows now; `overflowed`
    // keeps TryRecordHint from buffering more and forces the re-copy.
    hints_[id].rows.clear();
    hints_[id].rows.shrink_to_fit();
    hints_[id].overflowed = true;
    UpdateHintDepthGaugeLocked();
  }
  hints_cv_.notify_all();  // a WaitReplicationIdle no longer waits on id
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Channel handlers (run on channel delivery threads)
// ---------------------------------------------------------------------------

void Cluster::HandleReplicaMessage(int node_id, Message msg) {
  Node* node = nodes_[node_id].get();
  switch (msg.kind) {
    case MessageKind::kWriteRequest: {
      // Sequence numbers are assigned per node store, so each replica
      // ingests the shared rows directly (vectorized, shard-routed).
      // The message's trace header becomes the mailbox thread's current
      // context, so the storage write path below links its group-commit
      // spans into the originating op's flow; the apply also gets its own
      // breadcrumb so replica-side storage stages enter the attribution
      // histograms.
      const bool traced =
          msg.trace_id != 0 && obs::TraceBuffer::Enabled();
      obs::TraceContext apply_ctx;
      if (traced) {
        apply_ctx.trace_id = msg.trace_id;
        apply_ctx.span_id = obs::TraceContext::NextId();
        apply_ctx.parent_id = msg.parent_span_id;
      }
      obs::ScopedOpBreadcrumb breadcrumb("cluster.replica_apply",
                                         msg.trace_id, msg.kvps);
      const uint64_t t0 = traced || breadcrumb.active()
                              ? clock()->NowMicros()
                              : 0;
      Status s;
      {
        obs::ScopedTraceContext ctx_scope(apply_ctx);
        s = node->ApplyRows(*msg.rows, msg.as_primary, msg.kvps, msg.bytes);
      }
      if (t0 != 0) {
        const uint64_t elapsed = clock()->NowMicros() - t0;
        breadcrumb.Complete(t0, elapsed);
        if (traced) {
          obs::TraceBuffer::Record("cluster.replica_apply", t0, elapsed,
                                   apply_ctx, "kvps", msg.kvps);
        }
      }
      Message ack;
      ack.kind = MessageKind::kWriteAck;
      ack.request_id = msg.request_id;
      ack.src = node_id;
      ack.dst = kCoordinatorEndpoint;
      ack.kvps = msg.kvps;
      ack.trace_id = msg.trace_id;
      ack.parent_span_id = msg.parent_span_id;
      ack.status = std::move(s);
      channel_->Send(std::move(ack));
      return;
    }
    case MessageKind::kHintReplay: {
      const bool traced =
          msg.trace_id != 0 && obs::TraceBuffer::Enabled();
      obs::TraceContext apply_ctx;
      if (traced) {
        apply_ctx.trace_id = msg.trace_id;
        apply_ctx.span_id = obs::TraceContext::NextId();
        apply_ctx.parent_id = msg.parent_span_id;
      }
      const uint64_t t0 = traced ? clock()->NowMicros() : 0;
      Status s;
      {
        obs::ScopedTraceContext ctx_scope(apply_ctx);
        s = node->ApplyHintBatch(*msg.rows);
      }
      if (traced) {
        obs::TraceBuffer::Record("cluster.hint_apply", t0,
                                 clock()->NowMicros() - t0, apply_ctx,
                                 "kvps", msg.kvps);
      }
      Message ack;
      ack.kind = MessageKind::kHintAck;
      ack.request_id = msg.request_id;
      ack.src = node_id;
      ack.dst = kHintServiceEndpoint;
      ack.trace_id = msg.trace_id;
      ack.parent_span_id = msg.parent_span_id;
      ack.status = std::move(s);
      channel_->Send(std::move(ack));
      return;
    }
    default:
      return;  // acks never target a replica endpoint
  }
}

void Cluster::HandleCoordinatorMessage(Message msg) {
  if (msg.kind != MessageKind::kWriteAck) return;
  std::lock_guard<std::mutex> lock(writes_mu_);
  if (replication_shutdown_) return;
  auto it = pending_writes_.find(msg.request_id);
  if (it == pending_writes_.end()) {
    // Late delivery for an already-resolved write (or a fault-injected
    // duplicate of its final ack).
    availability_.duplicate_acks_ignored++;
    if (obs::Enabled()) Instruments().duplicate_acks->Increment();
    return;
  }
  std::shared_ptr<PendingWrite> pw = it->second;
  int slot = -1;
  for (size_t i = 0; i < pw->replicas.size(); ++i) {
    if (pw->replicas[i] == msg.src) {
      slot = static_cast<int>(i);
      break;
    }
  }
  if (slot < 0 || pw->states[slot] != ReplicaState::kPending) {
    availability_.duplicate_acks_ignored++;
    if (obs::Enabled()) Instruments().duplicate_acks->Increment();
    return;
  }
  if (msg.status.ok()) {
    pw->states[slot] = ReplicaState::kAcked;
    pw->acks++;
    if (!pw->done && pw->acks >= pw->required) {
      FinalizeLocked(msg.request_id, pw.get(), /*met=*/true, Status::OK());
    }
  } else {
    Node* node = nodes_[msg.src].get();
    int max_attempts = std::max(1, options_.retry_policy.max_attempts);
    if (IsRetryable(msg.status) && !node->is_down() &&
        pw->attempts[slot] < max_attempts) {
      if (obs::Enabled()) Instruments().retry_attempts->Increment();
      ArmTimerLocked(
          TimerKind::kResend,
          Clock::MonotonicMicros() +
              RetryBackoffMicros(pw->attempts[slot]),
          msg.request_id, slot);
    } else {
      if (pw->error.ok()) pw->error = msg.status;
      HintReplicaSlotLocked(msg.request_id, pw.get(), slot);
    }
  }
  bool all_resolved = true;
  for (ReplicaState s : pw->states) {
    if (s == ReplicaState::kPending) all_resolved = false;
  }
  if (pw->done && all_resolved) {
    pending_writes_.erase(msg.request_id);
    writes_cv_.notify_all();
  }
}

void Cluster::HandleHintServiceMessage(Message msg) {
  if (msg.kind != MessageKind::kHintAck) return;
  {
    std::lock_guard<std::mutex> lock(hint_ack_mu_);
    hint_acks_[msg.request_id] = std::move(msg.status);
  }
  hint_ack_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Quorum write machinery
// ---------------------------------------------------------------------------

uint64_t Cluster::RetryBackoffMicros(int completed_attempts) {
  return BackoffWithJitter(options_.retry_policy, completed_attempts,
                           jitter_state_);
}

void Cluster::ArmTimerLocked(TimerKind kind, uint64_t due_micros,
                             uint64_t request_id, int replica_slot) {
  timers_.push(
      TimerEvent{due_micros, next_timer_seq_++, kind, request_id,
                 replica_slot});
  timer_cv_.notify_one();
}

void Cluster::SendWriteRequestLocked(uint64_t request_id, PendingWrite* pw,
                                     int slot) {
  pw->attempts[slot]++;
  Message msg;
  msg.kind = MessageKind::kWriteRequest;
  msg.request_id = request_id;
  msg.src = kCoordinatorEndpoint;
  msg.dst = pw->replicas[slot];
  msg.as_primary = (slot == pw->primary_slot);
  msg.kvps = pw->kvps;
  msg.bytes = pw->bytes;
  msg.trace_id = pw->ctx.trace_id;
  msg.parent_span_id = pw->ctx.span_id;
  msg.rows = pw->rows;
  // A false return means the channel is shutting down; the deadline timer
  // resolves the write either way.
  channel_->Send(std::move(msg));
}

void Cluster::HintReplicaSlotLocked(uint64_t request_id, PendingWrite* pw,
                                    int slot) {
  int node_id = pw->replicas[slot];
  pw->states[slot] = ReplicaState::kHinted;
  Node* node = nodes_[node_id].get();
  if (!(node->is_down() && TryRecordHint(node_id, *pw->rows))) {
    ForceRecordHint(node_id, *pw->rows);
  }
  int hinted = 0;
  for (ReplicaState s : pw->states) {
    if (s == ReplicaState::kHinted) hinted++;
  }
  // Hinted replicas leave the quorum denominator: their rows are durable in
  // the hint buffer (or covered by the re-copy that an overflow forces), so
  // the write only needs a quorum of the remainder.
  pw->required = std::max(
      1, std::min(write_quorum(),
                  static_cast<int>(pw->replicas.size()) - hinted));
  if (pw->done) return;
  if (pw->acks >= pw->required) {
    FinalizeLocked(request_id, pw, /*met=*/true, Status::OK());
    return;
  }
  bool any_pending = false;
  for (ReplicaState s : pw->states) {
    if (s == ReplicaState::kPending) any_pending = true;
  }
  if (!any_pending) {
    Status error = pw->error.ok()
                       ? Status::Unavailable("no replica could apply the "
                                             "write (all hinted)")
                       : Status::Unavailable("quorum lost: " +
                                             pw->error.ToString());
    FinalizeLocked(request_id, pw, /*met=*/false, std::move(error));
  }
}

void Cluster::FinalizeLocked(uint64_t request_id, PendingWrite* pw, bool met,
                             Status error) {
  pw->done = true;
  pw->quorum_met = met;
  // Attempted and its outcome move together so the FDR invariant
  // `attempted == quorum_met + unavailable` holds at any snapshot.
  availability_.writes_attempted++;
  if (met) {
    availability_.writes_quorum_met++;
    if (obs::Enabled()) Instruments().quorum_met_writes->Increment();
    if (obs::TraceBuffer::Enabled() && pw->start_wall_micros != 0) {
      // Wall-clock timestamps so the span shares the storage/driver spans'
      // timeline (monotonic start_micros keeps driving the timers); the
      // pending write's context links the ack into the op's flow.
      obs::TraceBuffer::Record(
          "cluster.quorum_ack", pw->start_wall_micros,
          clock()->NowMicros() - pw->start_wall_micros, pw->ctx, "acks",
          static_cast<uint64_t>(pw->acks));
    }
    bool any_pending = false;
    int hinted = 0;
    for (ReplicaState s : pw->states) {
      if (s == ReplicaState::kPending) any_pending = true;
      if (s == ReplicaState::kHinted) hinted++;
    }
    if (hinted > 0 && obs::Enabled()) {
      Instruments().degraded_batches->Increment();
    }
    if (any_pending && !pw->straggler_timer_armed) {
      pw->straggler_timer_armed = true;
      ArmTimerLocked(TimerKind::kStraggler,
                     Clock::MonotonicMicros() +
                         options_.straggler_timeout_micros,
                     request_id);
    }
  } else {
    availability_.writes_unavailable++;
    pw->error = std::move(error);
    if (obs::Enabled()) Instruments().unavailable_writes->Increment();
  }
  writes_cv_.notify_all();
}

std::shared_ptr<Cluster::PendingWrite> Cluster::QuorumWriteStart(
    const std::vector<int>& replicas, std::shared_ptr<const Rows> rows,
    uint64_t kvps, uint64_t bytes) {
  auto pw = std::make_shared<PendingWrite>();
  pw->replicas = replicas;
  pw->states.assign(replicas.size(), ReplicaState::kPending);
  pw->attempts.assign(replicas.size(), 0);
  pw->rows = std::move(rows);
  pw->kvps = kvps;
  pw->bytes = bytes;
  pw->start_micros = Clock::MonotonicMicros();
  if (obs::TraceBuffer::Enabled()) {
    pw->start_wall_micros = clock()->NowMicros();
    const obs::TraceContext& caller = obs::CurrentTraceContext();
    if (caller.valid()) pw->ctx = caller.Child();
  }
  uint64_t deadline_micros =
      options_.retry_policy.op_deadline_micros > 0
          ? options_.retry_policy.op_deadline_micros
          : options_.write_timeout_micros;

  std::lock_guard<std::mutex> lock(writes_mu_);
  if (replication_shutdown_) {
    pw->done = true;
    pw->error = Status::Aborted("cluster shutting down");
    return pw;
  }
  uint64_t request_id = next_request_id_++;
  int hinted = 0;
  for (size_t slot = 0; slot < pw->replicas.size(); ++slot) {
    Node* node = nodes_[pw->replicas[slot]].get();
    if (node->is_down() && TryRecordHint(pw->replicas[slot], *pw->rows)) {
      pw->states[slot] = ReplicaState::kHinted;
      hinted++;
    }
  }
  pw->required = std::max(
      1, std::min(write_quorum(),
                  static_cast<int>(pw->replicas.size()) - hinted));
  if (hinted == static_cast<int>(pw->replicas.size())) {
    // Nothing to send: every replica is down. Hints preserve the rows, but
    // nothing acked, so the write cannot be reported durable.
    FinalizeLocked(request_id, pw.get(), /*met=*/false,
                   Status::Unavailable("all replicas down for shard"));
    return pw;
  }
  pending_writes_[request_id] = pw;
  pw->request_id = request_id;
  for (size_t slot = 0; slot < pw->replicas.size(); ++slot) {
    if (pw->states[slot] != ReplicaState::kPending) continue;
    if (pw->primary_slot < 0) pw->primary_slot = static_cast<int>(slot);
    SendWriteRequestLocked(request_id, pw.get(), static_cast<int>(slot));
  }
  ArmTimerLocked(TimerKind::kDeadline, pw->start_micros + deadline_micros,
                 request_id);
  return pw;
}

Status Cluster::QuorumWriteWait(const std::shared_ptr<PendingWrite>& pw) {
  std::unique_lock<std::mutex> lock(writes_mu_);
  writes_cv_.wait(lock, [&] { return pw->done; });
  if (pw->quorum_met) return Status::OK();
  return pw->error.ok() ? Status::Unavailable("write failed") : pw->error;
}

Status Cluster::QuorumWrite(const std::vector<int>& replicas,
                            std::shared_ptr<const Rows> rows, uint64_t kvps,
                            uint64_t bytes) {
  return QuorumWriteWait(QuorumWriteStart(replicas, std::move(rows), kvps,
                                          bytes));
}

void Cluster::TimerLoop() {
  std::unique_lock<std::mutex> lock(writes_mu_);
  for (;;) {
    if (replication_shutdown_) return;
    if (timers_.empty()) {
      timer_cv_.wait(lock, [this] {
        return replication_shutdown_ || !timers_.empty();
      });
      continue;
    }
    uint64_t now = Clock::MonotonicMicros();
    if (timers_.top().due_micros > now) {
      timer_cv_.wait_for(
          lock, std::chrono::microseconds(timers_.top().due_micros - now));
      continue;
    }
    TimerEvent ev = timers_.top();
    timers_.pop();
    auto it = pending_writes_.find(ev.request_id);
    if (it == pending_writes_.end()) continue;
    std::shared_ptr<PendingWrite> pw = it->second;
    switch (ev.kind) {
      case TimerKind::kResend: {
        if (pw->states[ev.replica_slot] != ReplicaState::kPending) break;
        Node* node = nodes_[pw->replicas[ev.replica_slot]].get();
        if (node->is_down()) {
          HintReplicaSlotLocked(ev.request_id, pw.get(), ev.replica_slot);
        } else {
          SendWriteRequestLocked(ev.request_id, pw.get(), ev.replica_slot);
        }
        break;
      }
      case TimerKind::kStraggler:
      case TimerKind::kDeadline: {
        if (!pw->done) {
          // Only a deadline can fire on an unresolved write.
          availability_.deadline_exceeded++;
          if (obs::Enabled()) Instruments().deadline_exceeded->Increment();
          FinalizeLocked(ev.request_id, pw.get(), /*met=*/false,
                         Status::Unavailable(
                             "write deadline exceeded before quorum (" +
                             std::to_string(pw->acks) + "/" +
                             std::to_string(pw->required) + " acks)"));
        } else {
          // Quorum met but laggards remain: absorb them into hinted
          // handoff so the write can retire.
          for (size_t slot = 0; slot < pw->states.size(); ++slot) {
            if (pw->states[slot] != ReplicaState::kPending) continue;
            pw->states[slot] = ReplicaState::kHinted;
            int node_id = pw->replicas[slot];
            Node* node = nodes_[node_id].get();
            if (!(node->is_down() &&
                  TryRecordHint(node_id, *pw->rows))) {
              ForceRecordHint(node_id, *pw->rows);
            }
            availability_.straggler_hinted_kvps += pw->kvps;
            if (obs::Enabled()) {
              Instruments().straggler_hint_kvps->Add(pw->kvps);
            }
          }
        }
        pending_writes_.erase(ev.request_id);
        writes_cv_.notify_all();
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Hinted handoff
// ---------------------------------------------------------------------------

void Cluster::UpdateHintDepthGaugeLocked() {
  // No obs::Enabled() gate: a Set is one relaxed store, and skipping it
  // left the gauge frozen at whatever depth it had when the switch was
  // last on — every later snapshot then reported that stale level.
  int64_t total = 0;
  for (size_t i = 0; i < hints_.size(); ++i) {
    int64_t depth = static_cast<int64_t>(hints_[i].rows.size());
    total += depth;
    node_hint_depth_[i]->Set(depth);
  }
  Instruments().hint_queue_depth->Set(total);
}

void Cluster::RecordHintLocked(int node_id, const Rows& rows) {
  nodes_[node_id]->CountSkippedReplicaWrites(rows.size());
  fault_stats_.hinted_kvps += rows.size();
  if (obs::Enabled()) {
    Instruments().hints_recorded_kvps->Add(rows.size());
  }
  HintBuffer& buf = hints_[node_id];
  if (buf.overflowed) return;  // already due for a full re-copy
  if (buf.rows.size() + rows.size() > options_.max_hints_per_node) {
    buf.overflowed = true;
    buf.rows.clear();
    buf.rows.shrink_to_fit();
    fault_stats_.hint_overflows++;
    UpdateHintDepthGaugeLocked();
    return;
  }
  buf.rows.insert(buf.rows.end(), rows.begin(), rows.end());
  UpdateHintDepthGaugeLocked();
}

bool Cluster::TryRecordHint(int node_id, const Rows& rows) {
  Node* node = nodes_[node_id].get();
  std::lock_guard<std::mutex> lock(hints_mu_);
  if (!node->is_down()) return false;  // lost a race with RestartNode
  RecordHintLocked(node_id, rows);
  return true;
}

void Cluster::ForceRecordHint(int node_id, const Rows& rows) {
  std::lock_guard<std::mutex> lock(hints_mu_);
  RecordHintLocked(node_id, rows);
}

Status Cluster::SendHintBatchAndWait(int node_id,
                                     std::shared_ptr<const Rows> rows) {
  uint64_t replay_id;
  {
    std::lock_guard<std::mutex> lock(hint_ack_mu_);
    if (hint_shutdown_) return Status::Aborted("cluster shutting down");
    replay_id = next_hint_id_++;
  }
  obs::TraceSpan replay_span("cluster.hint_replay", nullptr, clock());
  replay_span.SetArg("kvps", rows->size());
  Message msg;
  msg.kind = MessageKind::kHintReplay;
  msg.request_id = replay_id;
  msg.src = kHintServiceEndpoint;
  msg.dst = node_id;
  msg.kvps = rows->size();
  if (obs::TraceBuffer::Enabled()) {
    // Hint replays are background ops with no enclosing request: mint a
    // fresh trace so the replay and the replica's apply link as one flow.
    replay_span.SetContext(obs::TraceContext::Mint());
    msg.trace_id = replay_span.context().trace_id;
    msg.parent_span_id = replay_span.context().span_id;
  }
  msg.rows = std::move(rows);
  if (!channel_->Send(std::move(msg))) {
    replay_span.Cancel();
    return Status::IOError("replication channel closed");
  }
  std::unique_lock<std::mutex> lock(hint_ack_mu_);
  bool acked = hint_ack_cv_.wait_for(
      lock, std::chrono::microseconds(options_.write_timeout_micros),
      [&] { return hint_shutdown_ || hint_acks_.count(replay_id) > 0; });
  if (hint_shutdown_) {
    replay_span.Cancel();
    return Status::Aborted("cluster shutting down");
  }
  if (!acked) {
    replay_span.Cancel();
    return Status::TimedOut("hint replay to node " +
                            std::to_string(node_id) + " timed out");
  }
  Status s = std::move(hint_acks_[replay_id]);
  hint_acks_.erase(replay_id);
  if (!s.ok()) replay_span.Cancel();
  return s;
}

void Cluster::HintDrainLoop() {
  std::unique_lock<std::mutex> lock(hints_mu_);
  while (!drain_shutdown_) {
    hints_cv_.wait_for(
        lock,
        std::chrono::microseconds(options_.hint_drain_interval_micros),
        [this] { return drain_shutdown_; });
    if (drain_shutdown_) return;
    for (int id = 0; id < static_cast<int>(hints_.size()); ++id) {
      Node* node = nodes_[id].get();
      // Down nodes drain at RestartNode; overflowed buffers wait for the
      // full re-copy there too.
      if (node->is_down() || !node->is_running()) continue;
      HintBuffer& buf = hints_[id];
      if (buf.overflowed || buf.rows.empty()) continue;
      auto rows = std::make_shared<Rows>(std::move(buf.rows));
      buf.rows.clear();
      hints_in_flight_++;
      UpdateHintDepthGaugeLocked();
      lock.unlock();
      Status s = SendHintBatchAndWait(id, rows);
      lock.lock();
      hints_in_flight_--;
      if (s.ok()) {
        fault_stats_.hint_replayed_kvps += rows->size();
        if (obs::Enabled()) {
          Instruments().hints_replayed_kvps->Add(rows->size());
        }
      } else if (!hints_[id].overflowed) {
        // Put the rows back in front of anything hinted meanwhile, keeping
        // replay order; the next tick retries. (An overflow meanwhile means
        // a re-copy will cover them.)
        hints_[id].rows.insert(hints_[id].rows.begin(), rows->begin(),
                               rows->end());
        UpdateHintDepthGaugeLocked();
      }
      if (drain_shutdown_) return;
    }
    // Wake WaitReplicationIdle waiters so their predicate re-checks at
    // least once per tick (liveness transitions don't signal otherwise).
    hints_cv_.notify_all();
  }
}

Status Cluster::RestartNode(int id) {
  if (id < 0 || id >= num_nodes()) {
    return Status::InvalidArgument("no such node: " + std::to_string(id));
  }
  Node* node = nodes_[id].get();
  IOTDB_RETURN_NOT_OK(node->Restart());

  // A crashed node lost acknowledged-but-unsynced writes, so its own
  // recovery is not enough; an overflowed hint buffer lost the replay log.
  // Either way only a full re-copy from live replicas reconverges — the
  // hints are then redundant (live replicas already hold those writes).
  bool recopy = node->crashed() || node->under_repair();
  {
    std::lock_guard<std::mutex> lock(hints_mu_);
    if (hints_[id].overflowed) recopy = true;
  }
  if (recopy) {
    // Quorum acks let a write succeed while a *live* replica is still only
    // hinted, so a copy source's store can be missing rows it is the
    // designated copier for. Wait for live-node hints to drain first so
    // every source is complete; rows hinted to this node itself are
    // covered by the post-copy drain rounds below.
    {
      std::unique_lock<std::mutex> lock(hints_mu_);
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(kReplicationIdleMicros);
      bool drained = hints_cv_.wait_until(lock, deadline, [this, id] {
        if (drain_shutdown_) return true;
        if (hints_in_flight_ > 0) return false;
        for (size_t i = 0; i < hints_.size(); ++i) {
          if (static_cast<int>(i) == id) continue;
          Node* other = nodes_[i].get();
          if (other->is_down() || !other->is_running()) continue;
          if (hints_[i].overflowed) continue;
          if (!hints_[i].rows.empty()) return false;
        }
        return true;
      });
      if (!drained) {
        return Status::TimedOut("re-copy sources still draining hints");
      }
      hints_[id].rows.clear();
      hints_[id].overflowed = false;
      UpdateHintDepthGaugeLocked();
    }
    IOTDB_RETURN_NOT_OK(RecopyShards(id));
    if (node->under_repair()) {
      node->ClearUnderRepair();
      std::lock_guard<std::mutex> lock(hints_mu_);
      pending_repair_.erase(id);
      fault_stats_.corruption_repairs++;
      if (obs::Enabled()) Instruments().corruption_repairs->Increment();
    }
  }

  // Drain hints in rounds over the channel; writers may keep hinting while
  // a round replays (the node is still marked down, which ApplyHintBatch
  // permits). The round that observes an empty buffer flips the node up
  // while still holding hints_mu_, so no writer can record a hint that
  // would never be replayed (TryRecordHint re-checks is_down under the
  // same mutex).
  for (;;) {
    std::shared_ptr<Rows> pending;
    {
      std::lock_guard<std::mutex> lock(hints_mu_);
      if (hints_[id].rows.empty()) {
        node->SetDown(false);
        node->ClearCrashed();
        fault_stats_.node_restarts++;
        return Status::OK();
      }
      pending = std::make_shared<Rows>(std::move(hints_[id].rows));
      hints_[id].rows.clear();
      UpdateHintDepthGaugeLocked();
    }
    Status s = SendHintBatchAndWait(id, pending);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(hints_mu_);
      hints_[id].rows.insert(hints_[id].rows.begin(), pending->begin(),
                             pending->end());
      UpdateHintDepthGaugeLocked();
      return s;
    }
    std::lock_guard<std::mutex> lock(hints_mu_);
    fault_stats_.hint_replayed_kvps += pending->size();
    if (obs::Enabled()) {
      Instruments().hints_replayed_kvps->Add(pending->size());
    }
  }
}

Status Cluster::WaitReplicationIdle(uint64_t timeout_micros) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_micros);
  {
    std::unique_lock<std::mutex> lock(writes_mu_);
    bool idle = writes_cv_.wait_until(lock, deadline, [this] {
      return replication_shutdown_ || pending_writes_.empty();
    });
    if (!idle) {
      return Status::TimedOut("quorum writes still in flight");
    }
  }
  {
    std::unique_lock<std::mutex> lock(hints_mu_);
    auto drained = [this] {
      if (drain_shutdown_) return true;
      if (hints_in_flight_ > 0) return false;
      for (size_t i = 0; i < hints_.size(); ++i) {
        Node* node = nodes_[i].get();
        if (node->is_down() || !node->is_running()) continue;
        if (hints_[i].overflowed) continue;
        if (!hints_[i].rows.empty()) return false;
      }
      return true;
    };
    if (!hints_cv_.wait_until(lock, deadline, drained)) {
      return Status::TimedOut("hint buffers still draining");
    }
  }
  return Status::OK();
}

Status Cluster::RecopyShards(int target_id) {
  obs::TraceSpan recopy_span("cluster.shard_recopy", nullptr, clock());
  uint64_t total_copied = 0;
  Node* target = nodes_[target_id].get();
  for (auto& source : nodes_) {
    if (source->id() == target_id) continue;
    if (source->is_down() || !source->is_running()) continue;
    if (source->under_repair()) continue;  // untrustworthy copy source
    auto iter = source->store()->NewIterator(storage::ReadOptions());
    storage::WriteBatch batch;
    size_t batch_rows = 0;
    uint64_t copied = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      // Copy every key the target replicates from every live source.
      // Electing a single copier per key would halve the write volume, but
      // a quorum-acked row can be missing from any one source's snapshot
      // (its apply may still be hinted or queued); replica values are
      // identical, so redundant puts are safe and close that gap.
      bool target_holds = false;
      for (int r : ReplicaNodesFor(iter->key())) {
        if (r == target_id) {
          target_holds = true;
          break;
        }
      }
      if (!target_holds) continue;
      batch.Put(iter->key(), iter->value());
      if (++batch_rows >= kRecopyBatchRows) {
        IOTDB_RETURN_NOT_OK(
            target->store()->Write(storage::WriteOptions(), &batch));
        copied += batch_rows;
        batch.Clear();
        batch_rows = 0;
      }
    }
    IOTDB_RETURN_NOT_OK(iter->status());
    if (batch_rows > 0) {
      IOTDB_RETURN_NOT_OK(
          target->store()->Write(storage::WriteOptions(), &batch));
      copied += batch_rows;
    }
    total_copied += copied;
    std::lock_guard<std::mutex> lock(hints_mu_);
    fault_stats_.recopied_kvps += copied;
  }
  recopy_span.SetArg("kvps", total_copied);
  return Status::OK();
}

FaultRecoveryStats Cluster::GetFaultRecoveryStats() const {
  std::lock_guard<std::mutex> lock(hints_mu_);
  return fault_stats_;
}

AvailabilityStats Cluster::GetAvailabilityStats() const {
  std::lock_guard<std::mutex> lock(writes_mu_);
  return availability_;
}

NodeStats Cluster::GetAggregateStats() const {
  NodeStats total;
  for (const auto& node : nodes_) {
    NodeStats s = node->GetStats();
    total.writes += s.writes;
    total.primary_writes += s.primary_writes;
    total.reads += s.reads;
    total.scans += s.scans;
    total.scan_rows_read += s.scan_rows_read;
    total.bytes_written += s.bytes_written;
    total.skipped_replica_writes += s.skipped_replica_writes;
  }
  return total;
}

std::string Cluster::Describe() {
  std::string out;
  char line[320];
  NodeStats total = GetAggregateStats();
  snprintf(line, sizeof(line),
           "cluster: %d nodes, replication %d (effective %d, quorum %d), "
           "imbalance CoV %.3f\n",
           num_nodes(), options_.replication_factor,
           effective_replication(), write_quorum(), PrimaryLoadImbalance());
  out += line;
  for (const auto& node : nodes_) {
    NodeStats stats = node->GetStats();
    const char* state = node->is_down()
                            ? (node->is_running() ? "DOWN" : "CRASHED")
                            : "up";
    if (!node->is_running()) {
      snprintf(line, sizeof(line),
               "  node %d [%s]: %llu primary kvps, store closed, "
               "%llu skipped replica kvps\n",
               node->id(), state,
               static_cast<unsigned long long>(stats.primary_writes),
               static_cast<unsigned long long>(
                   stats.skipped_replica_writes));
      out += line;
      continue;
    }
    storage::KVStoreStats engine = node->store()->GetStats();
    double share = total.primary_writes == 0
                       ? 0
                       : 100.0 * stats.primary_writes /
                             total.primary_writes;
    int total_files = 0;
    for (int level = 0; level < storage::kNumLevels; ++level) {
      total_files += engine.num_files[level];
    }
    uint64_t cache_lookups = engine.block_cache_hits +
                             engine.block_cache_misses;
    snprintf(line, sizeof(line),
             "  node %d [%s]: %llu primary kvps (%.1f%%), %llu scans, "
             "L0=%d files=%d flushes=%llu compactions=%llu "
             "stall=%.1fms cache-hit=%.0f%% skipped=%llu\n",
             node->id(), state,
             static_cast<unsigned long long>(stats.primary_writes), share,
             static_cast<unsigned long long>(stats.scans),
             engine.num_files[0], total_files,
             static_cast<unsigned long long>(engine.memtable_flushes),
             static_cast<unsigned long long>(engine.compactions),
             engine.write_stall_micros / 1000.0,
             cache_lookups == 0
                 ? 0.0
                 : 100.0 * engine.block_cache_hits / cache_lookups,
             static_cast<unsigned long long>(stats.skipped_replica_writes));
    out += line;
  }
  AvailabilityStats avail = GetAvailabilityStats();
  if (avail.writes_attempted > 0) {
    snprintf(line, sizeof(line),
             "  availability: %llu writes (%llu quorum-met, %llu "
             "unavailable), %llu straggler-hinted kvps, %llu deadline "
             "exceeded\n",
             static_cast<unsigned long long>(avail.writes_attempted),
             static_cast<unsigned long long>(avail.writes_quorum_met),
             static_cast<unsigned long long>(avail.writes_unavailable),
             static_cast<unsigned long long>(avail.straggler_hinted_kvps),
             static_cast<unsigned long long>(avail.deadline_exceeded));
    out += line;
  }
  FaultRecoveryStats faults = GetFaultRecoveryStats();
  if (faults.node_crashes + faults.node_restarts + faults.hinted_kvps +
          faults.hint_overflows + faults.recopied_kvps >
      0) {
    snprintf(line, sizeof(line),
             "  faults: %llu crashes, %llu restarts, %llu hinted kvps "
             "(%llu replayed, %llu overflows), %llu re-copied kvps\n",
             static_cast<unsigned long long>(faults.node_crashes),
             static_cast<unsigned long long>(faults.node_restarts),
             static_cast<unsigned long long>(faults.hinted_kvps),
             static_cast<unsigned long long>(faults.hint_replayed_kvps),
             static_cast<unsigned long long>(faults.hint_overflows),
             static_cast<unsigned long long>(faults.recopied_kvps));
    out += line;
  }
  if (faults.corrupt_files_quarantined + faults.read_repairs +
          faults.corruption_repairs >
      0) {
    snprintf(line, sizeof(line),
             "  integrity: %llu corrupt files quarantined, %llu reads "
             "re-served from healthy replicas, %llu shard re-copies\n",
             static_cast<unsigned long long>(
                 faults.corrupt_files_quarantined),
             static_cast<unsigned long long>(faults.read_repairs),
             static_cast<unsigned long long>(faults.corruption_repairs));
    out += line;
  }
  return out;
}

double Cluster::PrimaryLoadImbalance() const {
  double sum = 0, sum_squares = 0;
  int live = 0;
  for (const auto& node : nodes_) {
    if (node->is_down()) continue;
    double writes = static_cast<double>(node->GetStats().primary_writes);
    sum += writes;
    sum_squares += writes * writes;
    live++;
  }
  if (live == 0 || sum == 0) return 0;
  double mean = sum / live;
  double variance = sum_squares / live - mean * mean;
  return variance <= 0 ? 0 : std::sqrt(variance) / mean;
}

Status Cluster::PurgeAll() {
  // Quiesce first: an in-flight quorum write or hint replay landing after
  // the wipe would resurrect purged rows.
  IOTDB_RETURN_NOT_OK(WaitReplicationIdle());
  for (auto& node : nodes_) {
    IOTDB_RETURN_NOT_OK(node->Purge());
  }
  std::lock_guard<std::mutex> lock(hints_mu_);
  for (auto& buf : hints_) {
    buf.rows.clear();
    buf.overflowed = false;
  }
  pending_repair_.clear();  // Purge rebuilt every store from scratch
  UpdateHintDepthGaugeLocked();
  return Status::OK();
}

Status Cluster::FlushAll() {
  IOTDB_RETURN_NOT_OK(WaitReplicationIdle());
  for (auto& node : nodes_) {
    if (!node->is_running()) continue;  // crashed; nothing to flush
    IOTDB_RETURN_NOT_OK(node->store()->FlushMemTable());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

uint64_t Client::NextRand() { return SplitMix(jitter_state_); }

uint64_t Client::BackoffMicros(int completed_attempts) {
  return BackoffWithJitter(cluster_->options().retry_policy,
                           completed_attempts, jitter_state_);
}

Status Client::RetryOp(const std::function<Status()>& op, Node* node) {
  const RetryPolicy& policy = cluster_->options().retry_policy;
  // Deadline arithmetic runs on the monotonic clock: a wall-clock step
  // (NTP, suspend) must not stretch or collapse the retry budget.
  const uint64_t start = Clock::MonotonicMicros();
  const int max_attempts = std::max(1, policy.max_attempts);
  Status s;
  for (int attempt = 1;; ++attempt) {
    s = op();
    if (s.ok() || !IsRetryable(s)) return s;
    // A down node is not a transient fault: the caller fails over (reads)
    // or records a hint (writes).
    if (node != nullptr && node->is_down()) return s;
    if (attempt >= max_attempts) return s;
    uint64_t backoff = BackoffMicros(attempt);
    if (policy.op_deadline_micros > 0 &&
        Clock::MonotonicMicros() - start + backoff >=
            policy.op_deadline_micros) {
      if (obs::Enabled()) Instruments().deadline_exceeded->Increment();
      return Status::TimedOut("op deadline exceeded after " +
                              std::to_string(attempt) +
                              " attempts: " + s.message());
    }
    if (obs::Enabled()) Instruments().retry_attempts->Increment();
    obs::AddStageMicros(obs::Stage::kRetryBackoff, backoff);
    cluster_->clock()->SleepMicros(backoff);
  }
}

Status Client::WriteShardBatch(
    const std::vector<int>& replicas,
    std::vector<std::pair<std::string, std::string>> rows, uint64_t kvps,
    uint64_t bytes) {
  obs::TraceSpan fanout_span("cluster.fanout", Instruments().fanout_micros,
                             cluster_->clock());
  fanout_span.SetArg("kvps", kvps);
  obs::TraceContext fanout_ctx;
  if (obs::TraceBuffer::Enabled()) {
    const obs::TraceContext& caller = obs::CurrentTraceContext();
    if (caller.valid()) {
      fanout_ctx = caller.Child();
      fanout_span.SetContext(fanout_ctx);
    }
  }
  // The pending write derives its context from the thread's current one;
  // attribution splits the op into send (start) and quorum wait.
  obs::ScopedTraceContext ctx_scope(fanout_ctx);
  obs::OpBreadcrumb* bc = obs::CurrentBreadcrumb();
  const uint64_t t0 = bc != nullptr ? cluster_->clock()->NowMicros() : 0;
  std::shared_ptr<Cluster::PendingWrite> pw = cluster_->QuorumWriteStart(
      replicas, std::make_shared<const Cluster::Rows>(std::move(rows)), kvps,
      bytes);
  uint64_t sent = 0;
  if (bc != nullptr) {
    sent = cluster_->clock()->NowMicros();
    obs::AddStageMicros(obs::Stage::kFanoutSend, sent - t0);
  }
  Status s = cluster_->QuorumWriteWait(pw);
  if (bc != nullptr) {
    obs::AddStageMicros(obs::Stage::kQuorumWait,
                        cluster_->clock()->NowMicros() - sent);
  }
  if (!s.ok()) {
    fanout_span.Cancel();  // failed fan-outs would skew the latency profile
  }
  return s;
}

Status Client::Put(const Slice& key, const Slice& value) {
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back(key.ToString(), value.ToString());
  return WriteShardBatch(cluster_->ReplicaNodesFor(key), std::move(rows), 1,
                         key.size() + value.size());
}

Status Client::PutBatch(
    const std::vector<std::pair<std::string, std::string>>& kvps) {
  // Group rows by primary node; each group replicates as one batch. The
  // groups are pipelined: every group's fan-out is launched before any
  // quorum is awaited, so one slow shard does not serialise the flush.
  struct Group {
    std::vector<std::pair<std::string, std::string>> rows;
    uint64_t bytes = 0;
  };
  std::unordered_map<int, Group> groups;
  uint64_t total_kvps = 0;
  for (const auto& [key, value] : kvps) {
    Group& g = groups[cluster_->PrimaryNodeFor(key)];
    g.rows.emplace_back(key, value);
    g.bytes += key.size() + value.size();
    total_kvps++;
  }
  obs::TraceSpan fanout_span("cluster.fanout", Instruments().fanout_micros,
                             cluster_->clock());
  fanout_span.SetArg("kvps", total_kvps);
  obs::TraceContext fanout_ctx;
  if (obs::TraceBuffer::Enabled()) {
    const obs::TraceContext& caller = obs::CurrentTraceContext();
    if (caller.valid()) {
      fanout_ctx = caller.Child();
      fanout_span.SetContext(fanout_ctx);
    }
  }
  // Every pipelined pending write derives its context from the fan-out
  // span, so one driver batch traces as driver → fanout → per-group quorum
  // writes. The send/wait boundary splits the attribution stages.
  obs::ScopedTraceContext ctx_scope(fanout_ctx);
  obs::OpBreadcrumb* bc = obs::CurrentBreadcrumb();
  const uint64_t send_t0 =
      bc != nullptr ? cluster_->clock()->NowMicros() : 0;
  std::vector<std::shared_ptr<Cluster::PendingWrite>> in_flight;
  in_flight.reserve(groups.size());
  for (auto& [primary, group] : groups) {
    int replicas = cluster_->effective_replication();
    std::vector<int> replica_ids;
    replica_ids.reserve(replicas);
    for (int i = 0; i < replicas; ++i) {
      replica_ids.push_back((primary + i) % cluster_->num_nodes());
    }
    uint64_t group_kvps = group.rows.size();
    in_flight.push_back(cluster_->QuorumWriteStart(
        replica_ids,
        std::make_shared<const Cluster::Rows>(std::move(group.rows)),
        group_kvps, group.bytes));
  }
  uint64_t sent = 0;
  if (bc != nullptr) {
    sent = cluster_->clock()->NowMicros();
    obs::AddStageMicros(obs::Stage::kFanoutSend, sent - send_t0);
  }
  Status first_error;
  for (auto& pw : in_flight) {
    Status s = cluster_->QuorumWriteWait(pw);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  if (bc != nullptr) {
    obs::AddStageMicros(obs::Stage::kQuorumWait,
                        cluster_->clock()->NowMicros() - sent);
  }
  if (!first_error.ok()) fanout_span.Cancel();
  return first_error;
}

Result<std::string> Client::Get(const Slice& key) {
  Status last_error = Status::IOError("no replicas available");
  bool corrupt_seen = false;
  bool live_error_seen = false;
  int absent_live = 0;   // reachable replicas that returned NotFound
  int absent_down = 0;   // down replicas (their misses are hint-covered)
  for (int node_id : cluster_->ReplicaNodesFor(key)) {
    Node* node = cluster_->node(node_id);
    // A partitioned replica can neither serve a value nor vouch for
    // absence; it simply abstains.
    if (!cluster_->IsNodeReachable(node_id)) continue;
    if (node->is_down()) {
      absent_down++;
      continue;
    }
    std::string value;
    Status s = RetryOp(
        [&]() {
          auto result = node->Get(key);
          if (result.ok()) value = std::move(result).MoveValueUnsafe();
          return result.status();
        },
        node);
    if (s.ok()) {
      if (corrupt_seen) cluster_->RecordReadRepair();
      return value;
    }
    if (s.IsCorruption()) {
      // This replica quarantined data (or is fenced while under repair):
      // neither a value nor NotFound from it can be trusted. Fail over.
      corrupt_seen = true;
      last_error = s;
      continue;
    }
    if (s.IsNotFound()) {
      absent_live++;
      last_error = s;
      continue;
    }
    live_error_seen = true;
    last_error = s;
  }
  // Absence needs confirmation by a read quorum R = eff - W + 1: any
  // quorum-acked write intersects those R replicas, so one replica's miss
  // (say, a node still catching up after restart) can no longer masquerade
  // as a deleted/lost key. Down replicas count toward confirmation — their
  // missed writes live in hint buffers or are covered by the rejoin
  // re-copy — but at least one live replica must actually report the miss.
  int confirm_needed =
      cluster_->effective_replication() - cluster_->write_quorum() + 1;
  if (absent_live >= 1 && absent_live + absent_down >= confirm_needed) {
    if (corrupt_seen) cluster_->RecordReadRepair();
    return Status::NotFound("key absent (confirmed by " +
                            std::to_string(absent_live + absent_down) +
                            " replicas)");
  }
  if (absent_live >= 1 && !live_error_seen && !corrupt_seen) {
    return Status::Unavailable(
        "cannot confirm key absence: too few replicas reachable");
  }
  return last_error;
}

Status Client::MultiGet(const std::vector<std::string>& keys,
                        std::vector<std::optional<std::string>>* out) {
  out->assign(keys.size(), std::nullopt);
  Status first_error;
  for (size_t i = 0; i < keys.size(); ++i) {
    auto result = Get(keys[i]);
    if (result.ok()) {
      (*out)[i] = std::move(result).MoveValueUnsafe();
    } else if (!result.status().IsNotFound() && first_error.ok()) {
      first_error = result.status();
    }
  }
  return first_error;
}

Status Client::Scan(const Slice& shard_key, const Slice& start,
                    const Slice& end_exclusive, size_t limit,
                    std::vector<std::pair<std::string, std::string>>* out) {
  Status last_error = Status::IOError("no replicas available");
  bool corrupt_seen = false;
  for (int node_id : cluster_->ReplicaNodesForShardKey(shard_key)) {
    Node* node = cluster_->node(node_id);
    if (node->is_down()) continue;
    if (!cluster_->IsNodeReachable(node_id)) continue;
    size_t before = out->size();
    Status s = RetryOp(
        [&]() {
          out->resize(before);  // drop partial results of a failed attempt
          return node->Scan(start, end_exclusive, limit, out);
        },
        node);
    if (s.ok()) {
      if (corrupt_seen) cluster_->RecordReadRepair();
      return s;
    }
    if (s.IsCorruption()) corrupt_seen = true;
    last_error = s;
  }
  return last_error;
}

}  // namespace cluster
}  // namespace iotdb
