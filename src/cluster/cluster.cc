#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "storage/bloom.h"  // reuse BloomHash as the shard hash

namespace iotdb {
namespace cluster {

Cluster::Cluster(const ClusterOptions& options) : options_(options) {}

Cluster::~Cluster() = default;

Result<std::unique_ptr<Cluster>> Cluster::Start(
    const ClusterOptions& options) {
  auto cluster = std::unique_ptr<Cluster>(new Cluster(options));
  if (cluster->options_.num_nodes < 1) {
    return Status::InvalidArgument("cluster needs at least one node");
  }
  if (cluster->options_.storage_options.env == nullptr) {
    cluster->owned_env_ = storage::NewMemEnv();
    cluster->options_.storage_options.env = cluster->owned_env_.get();
  }
  for (int i = 0; i < cluster->options_.num_nodes; ++i) {
    std::string dir =
        cluster->options_.data_root + "/node" + std::to_string(i);
    IOTDB_ASSIGN_OR_RETURN(
        auto node,
        Node::Start(i, cluster->options_.storage_options, dir));
    cluster->nodes_.push_back(std::move(node));
  }
  return cluster;
}

int Cluster::effective_replication() const {
  return std::min(options_.replication_factor, num_nodes());
}

Slice Cluster::ShardKeyOf(const Slice& row_key) const {
  if (options_.shard_key_fn) return options_.shard_key_fn(row_key);
  return row_key;
}

int Cluster::PrimaryNodeFor(const Slice& row_key) const {
  uint32_t h = storage::BloomHash(ShardKeyOf(row_key));
  return static_cast<int>(h % static_cast<uint32_t>(num_nodes()));
}

std::vector<int> Cluster::ReplicaNodesFor(const Slice& row_key) const {
  return ReplicaNodesForShardKey(ShardKeyOf(row_key));
}

std::vector<int> Cluster::ReplicaNodesForShardKey(
    const Slice& shard_key) const {
  uint32_t h = storage::BloomHash(shard_key);
  int primary = static_cast<int>(h % static_cast<uint32_t>(num_nodes()));
  int replicas = effective_replication();
  std::vector<int> result;
  result.reserve(replicas);
  for (int i = 0; i < replicas; ++i) {
    result.push_back((primary + i) % num_nodes());
  }
  return result;
}

NodeStats Cluster::GetAggregateStats() const {
  NodeStats total;
  for (const auto& node : nodes_) {
    NodeStats s = node->GetStats();
    total.writes += s.writes;
    total.primary_writes += s.primary_writes;
    total.reads += s.reads;
    total.scans += s.scans;
    total.scan_rows_read += s.scan_rows_read;
    total.bytes_written += s.bytes_written;
  }
  return total;
}

std::string Cluster::Describe() {
  std::string out;
  char line[256];
  NodeStats total = GetAggregateStats();
  snprintf(line, sizeof(line),
           "cluster: %d nodes, replication %d (effective %d), imbalance "
           "CoV %.3f\n",
           num_nodes(), options_.replication_factor,
           effective_replication(), PrimaryLoadImbalance());
  out += line;
  for (const auto& node : nodes_) {
    NodeStats stats = node->GetStats();
    storage::KVStoreStats engine = node->store()->GetStats();
    double share = total.primary_writes == 0
                       ? 0
                       : 100.0 * stats.primary_writes /
                             total.primary_writes;
    int total_files = 0;
    for (int level = 0; level < storage::kNumLevels; ++level) {
      total_files += engine.num_files[level];
    }
    uint64_t cache_lookups = engine.block_cache_hits +
                             engine.block_cache_misses;
    snprintf(line, sizeof(line),
             "  node %d [%s]: %llu primary kvps (%.1f%%), %llu scans, "
             "L0=%d files=%d flushes=%llu compactions=%llu "
             "stall=%.1fms cache-hit=%.0f%%\n",
             node->id(), node->is_down() ? "DOWN" : "up",
             static_cast<unsigned long long>(stats.primary_writes), share,
             static_cast<unsigned long long>(stats.scans),
             engine.num_files[0], total_files,
             static_cast<unsigned long long>(engine.memtable_flushes),
             static_cast<unsigned long long>(engine.compactions),
             engine.write_stall_micros / 1000.0,
             cache_lookups == 0
                 ? 0.0
                 : 100.0 * engine.block_cache_hits / cache_lookups);
    out += line;
  }
  return out;
}

double Cluster::PrimaryLoadImbalance() const {
  double sum = 0, sum_squares = 0;
  int live = 0;
  for (const auto& node : nodes_) {
    if (node->is_down()) continue;
    double writes = static_cast<double>(node->GetStats().primary_writes);
    sum += writes;
    sum_squares += writes * writes;
    live++;
  }
  if (live == 0 || sum == 0) return 0;
  double mean = sum / live;
  double variance = sum_squares / live - mean * mean;
  return variance <= 0 ? 0 : std::sqrt(variance) / mean;
}

Status Cluster::PurgeAll() {
  for (auto& node : nodes_) {
    IOTDB_RETURN_NOT_OK(node->Purge());
  }
  return Status::OK();
}

Status Cluster::FlushAll() {
  for (auto& node : nodes_) {
    IOTDB_RETURN_NOT_OK(node->store()->FlushMemTable());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Status Client::Put(const Slice& key, const Slice& value) {
  std::vector<int> replicas = cluster_->ReplicaNodesFor(key);
  bool primary = true;
  for (int node_id : replicas) {
    storage::WriteBatch batch;
    batch.Put(key, value);
    IOTDB_RETURN_NOT_OK(cluster_->node(node_id)->ApplyBatch(
        &batch, primary, 1, key.size() + value.size()));
    primary = false;
  }
  return Status::OK();
}

Status Client::PutBatch(
    const std::vector<std::pair<std::string, std::string>>& kvps) {
  // Group rows by primary node; each group replicates as one batch.
  struct Group {
    storage::WriteBatch batch;
    uint64_t kvps = 0;
    uint64_t bytes = 0;
  };
  std::unordered_map<int, Group> groups;
  for (const auto& [key, value] : kvps) {
    Group& g = groups[cluster_->PrimaryNodeFor(key)];
    g.batch.Put(key, value);
    g.kvps++;
    g.bytes += key.size() + value.size();
  }
  for (auto& [primary, group] : groups) {
    int replicas = cluster_->effective_replication();
    for (int i = 0; i < replicas; ++i) {
      int node_id = (primary + i) % cluster_->num_nodes();
      // WriteBatch sequence numbers are assigned per node store, so each
      // replica gets its own copy of the batch.
      storage::WriteBatch copy;
      copy.Append(group.batch);
      IOTDB_RETURN_NOT_OK(cluster_->node(node_id)->ApplyBatch(
          &copy, /*as_primary=*/i == 0, group.kvps, group.bytes));
    }
  }
  return Status::OK();
}

Result<std::string> Client::Get(const Slice& key) {
  Status last_error = Status::IOError("no replicas available");
  for (int node_id : cluster_->ReplicaNodesFor(key)) {
    Node* node = cluster_->node(node_id);
    if (node->is_down()) continue;
    auto result = node->Get(key);
    if (result.ok() || result.status().IsNotFound()) return result;
    last_error = result.status();
  }
  return last_error;
}

Status Client::MultiGet(const std::vector<std::string>& keys,
                        std::vector<std::optional<std::string>>* out) {
  out->assign(keys.size(), std::nullopt);
  Status first_error;
  for (size_t i = 0; i < keys.size(); ++i) {
    auto result = Get(keys[i]);
    if (result.ok()) {
      (*out)[i] = std::move(result).MoveValueUnsafe();
    } else if (!result.status().IsNotFound() && first_error.ok()) {
      first_error = result.status();
    }
  }
  return first_error;
}

Status Client::Scan(const Slice& shard_key, const Slice& start,
                    const Slice& end_exclusive, size_t limit,
                    std::vector<std::pair<std::string, std::string>>* out) {
  Status last_error = Status::IOError("no replicas available");
  for (int node_id : cluster_->ReplicaNodesForShardKey(shard_key)) {
    Node* node = cluster_->node(node_id);
    if (node->is_down()) continue;
    Status s = node->Scan(start, end_exclusive, limit, out);
    if (s.ok()) return s;
    last_error = s;
  }
  return last_error;
}

}  // namespace cluster
}  // namespace iotdb
