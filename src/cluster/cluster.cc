#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/bloom.h"  // reuse BloomHash as the shard hash

namespace iotdb {
namespace cluster {

namespace {

// Rows per batch when catching a restarted node up via full shard re-copy.
constexpr size_t kRecopyBatchRows = 512;

/// Global `cluster.*` registry instruments, resolved once. Shared by every
/// Cluster/Client in the process (mirrors the per-cluster FaultRecoveryStats
/// and NodeStats, which stay exact and per-instance).
struct ClusterInstruments {
  obs::LatencyHistogram* fanout_micros;
  obs::Gauge* hint_queue_depth;
  obs::Counter* hints_recorded_kvps;
  obs::Counter* hints_replayed_kvps;
  obs::Counter* retry_attempts;
  obs::Counter* degraded_batches;
  obs::Counter* read_repair_served;
  obs::Counter* quarantined_files;
  obs::Counter* corruption_repairs;
};

ClusterInstruments& Instruments() {
  static ClusterInstruments instruments = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return ClusterInstruments{
        registry.GetHistogram("cluster.replication.fanout_micros"),
        registry.GetGauge("cluster.hints.queue_depth"),
        registry.GetCounter("cluster.hints.recorded_kvps"),
        registry.GetCounter("cluster.hints.replayed_kvps"),
        registry.GetCounter("cluster.retry.attempts"),
        registry.GetCounter("cluster.write.degraded_batches"),
        registry.GetCounter("cluster.read_repair.served"),
        registry.GetCounter("cluster.read_repair.quarantined_files"),
        registry.GetCounter("cluster.read_repair.shard_recopies")};
  }();
  return instruments;
}

}  // namespace

Cluster::Cluster(const ClusterOptions& options) : options_(options) {}

Cluster::~Cluster() {
  // Nodes hold stores using fault_env_; destroy them first.
  nodes_.clear();
  // Gauges are process-global levels: with this cluster gone its queues no
  // longer exist, so zero them or the next cluster in the process inherits
  // ghost depth (bench_real_cluster runs several clusters back to back).
  Instruments().hint_queue_depth->Set(0);
  for (obs::Gauge* gauge : node_hint_depth_) gauge->Set(0);
}

Result<std::unique_ptr<Cluster>> Cluster::Start(
    const ClusterOptions& options) {
  auto cluster = std::unique_ptr<Cluster>(new Cluster(options));
  if (cluster->options_.num_nodes < 1) {
    return Status::InvalidArgument("cluster needs at least one node");
  }
  if (cluster->options_.storage_options.env == nullptr) {
    cluster->owned_env_ = storage::NewMemEnv();
    cluster->options_.storage_options.env = cluster->owned_env_.get();
  }
  if (cluster->options_.enable_fault_injection) {
    cluster->fault_env_ = std::make_unique<storage::FaultInjectionEnv>(
        cluster->options_.storage_options.env, cluster->options_.fault_seed);
    cluster->options_.storage_options.env = cluster->fault_env_.get();
  }
  cluster->hints_.resize(static_cast<size_t>(cluster->options_.num_nodes));
  auto& registry = obs::MetricsRegistry::Global();
  for (int i = 0; i < cluster->options_.num_nodes; ++i) {
    cluster->node_hint_depth_.push_back(registry.GetGauge(
        "cluster.node" + std::to_string(i) + ".hint_queue_depth"));
  }
  Cluster* raw = cluster.get();
  auto on_quarantine = [raw](int node_id, const std::string& path,
                             const Status& cause) {
    raw->OnNodeQuarantine(node_id, path, cause);
  };
  for (int i = 0; i < cluster->options_.num_nodes; ++i) {
    std::string dir =
        cluster->options_.data_root + "/node" + std::to_string(i);
    IOTDB_ASSIGN_OR_RETURN(
        auto node,
        Node::Start(i, cluster->options_.storage_options, dir,
                    cluster->fault_env_.get(), on_quarantine));
    cluster->nodes_.push_back(std::move(node));
  }
  return cluster;
}

void Cluster::OnNodeQuarantine(int node_id, const std::string& path,
                               const Status& cause) {
  // May run on a store background thread with store locks held: only
  // record and enqueue — repair happens in RunPendingRepairs().
  (void)path;
  (void)cause;
  std::lock_guard<std::mutex> lock(hints_mu_);
  fault_stats_.corrupt_files_quarantined++;
  pending_repair_.insert(node_id);
  if (obs::Enabled()) Instruments().quarantined_files->Increment();
}

void Cluster::RecordReadRepair() {
  std::lock_guard<std::mutex> lock(hints_mu_);
  fault_stats_.read_repairs++;
  if (obs::Enabled()) Instruments().read_repair_served->Increment();
}

std::vector<int> Cluster::PendingRepairNodes() const {
  std::lock_guard<std::mutex> lock(hints_mu_);
  return std::vector<int>(pending_repair_.begin(), pending_repair_.end());
}

Status Cluster::RunPendingRepairs() {
  std::set<int> pending;
  {
    std::lock_guard<std::mutex> lock(hints_mu_);
    pending.swap(pending_repair_);
  }
  Status first_error;
  for (int id : pending) {
    Node* node = nodes_[id].get();
    if (node->is_down() || !node->is_running()) {
      // Defer: the RestartNode path re-copies a crashed node's shards
      // anyway, and its quarantine flag forces a re-copy there too.
      std::lock_guard<std::mutex> lock(hints_mu_);
      pending_repair_.insert(id);
      continue;
    }
    Status s = RecopyShards(id);
    if (!s.ok()) {
      if (first_error.ok()) first_error = s;
      std::lock_guard<std::mutex> lock(hints_mu_);
      pending_repair_.insert(id);  // retry on the next pass
      continue;
    }
    // Every key the node replicates has been re-written from a healthy
    // replica; local reads are trustworthy again.
    node->ClearUnderRepair();
    std::lock_guard<std::mutex> lock(hints_mu_);
    fault_stats_.corruption_repairs++;
    if (obs::Enabled()) Instruments().corruption_repairs->Increment();
  }
  return first_error;
}

Clock* Cluster::clock() const {
  return options_.storage_options.clock != nullptr
             ? options_.storage_options.clock
             : Clock::Real();
}

int Cluster::effective_replication() const {
  return std::min(options_.replication_factor, num_nodes());
}

Slice Cluster::ShardKeyOf(const Slice& row_key) const {
  if (options_.shard_key_fn) return options_.shard_key_fn(row_key);
  return row_key;
}

int Cluster::PrimaryNodeFor(const Slice& row_key) const {
  uint32_t h = storage::BloomHash(ShardKeyOf(row_key));
  return static_cast<int>(h % static_cast<uint32_t>(num_nodes()));
}

std::vector<int> Cluster::ReplicaNodesFor(const Slice& row_key) const {
  return ReplicaNodesForShardKey(ShardKeyOf(row_key));
}

std::vector<int> Cluster::ReplicaNodesForShardKey(
    const Slice& shard_key) const {
  uint32_t h = storage::BloomHash(shard_key);
  int primary = static_cast<int>(h % static_cast<uint32_t>(num_nodes()));
  int replicas = effective_replication();
  std::vector<int> result;
  result.reserve(replicas);
  for (int i = 0; i < replicas; ++i) {
    result.push_back((primary + i) % num_nodes());
  }
  return result;
}

Status Cluster::CrashNode(int id) {
  if (id < 0 || id >= num_nodes()) {
    return Status::InvalidArgument("no such node: " + std::to_string(id));
  }
  IOTDB_RETURN_NOT_OK(nodes_[id]->Crash());
  std::lock_guard<std::mutex> lock(hints_mu_);
  fault_stats_.node_crashes++;
  // A crashed node lost unsynced state, so rejoin takes a full shard
  // re-copy no matter what — hints buffered for it are dead weight, and
  // their queue depth would haunt the timeline for as long as the node
  // stays down. Reuse the overflow path: drop the rows now; `overflowed`
  // keeps TryRecordHint from buffering more and forces the re-copy.
  hints_[id].rows.clear();
  hints_[id].rows.shrink_to_fit();
  hints_[id].overflowed = true;
  UpdateHintDepthGaugeLocked();
  return Status::OK();
}

Status Cluster::RestartNode(int id) {
  if (id < 0 || id >= num_nodes()) {
    return Status::InvalidArgument("no such node: " + std::to_string(id));
  }
  Node* node = nodes_[id].get();
  IOTDB_RETURN_NOT_OK(node->Restart());

  // A crashed node lost acknowledged-but-unsynced writes, so its own
  // recovery is not enough; an overflowed hint buffer lost the replay log.
  // Either way only a full re-copy from live replicas reconverges — the
  // hints are then redundant (live replicas already hold those writes).
  bool recopy = node->crashed() || node->under_repair();
  {
    std::lock_guard<std::mutex> lock(hints_mu_);
    if (hints_[id].overflowed) recopy = true;
    if (recopy) {
      hints_[id].rows.clear();
      hints_[id].overflowed = false;
      UpdateHintDepthGaugeLocked();
    }
  }
  if (recopy) {
    IOTDB_RETURN_NOT_OK(RecopyShards(id));
    if (node->under_repair()) {
      node->ClearUnderRepair();
      std::lock_guard<std::mutex> lock(hints_mu_);
      pending_repair_.erase(id);
      fault_stats_.corruption_repairs++;
      if (obs::Enabled()) Instruments().corruption_repairs->Increment();
    }
  }

  // Drain hints in rounds; writers may keep hinting while a round replays.
  // The round that observes an empty buffer flips the node up while still
  // holding hints_mu_, so no writer can record a hint that would never be
  // replayed (TryRecordHint re-checks is_down under the same mutex).
  for (;;) {
    std::vector<std::pair<std::string, std::string>> pending;
    {
      std::lock_guard<std::mutex> lock(hints_mu_);
      if (hints_[id].rows.empty()) {
        node->SetDown(false);
        node->ClearCrashed();
        fault_stats_.node_restarts++;
        return Status::OK();
      }
      pending.swap(hints_[id].rows);
      UpdateHintDepthGaugeLocked();
    }
    storage::WriteBatch batch;
    for (const auto& [key, value] : pending) {
      batch.Put(key, value);
    }
    obs::TraceSpan replay_span("cluster.hint_replay", nullptr, clock());
    replay_span.SetArg("kvps", pending.size());
    // Applied directly to the store: the node is still marked down, so
    // ApplyBatch would refuse, and catch-up writes should not skew the
    // client-visible operation counters.
    IOTDB_RETURN_NOT_OK(
        node->store()->Write(storage::WriteOptions(), &batch));
    replay_span.Stop();
    std::lock_guard<std::mutex> lock(hints_mu_);
    fault_stats_.hint_replayed_kvps += pending.size();
    if (obs::Enabled()) {
      Instruments().hints_replayed_kvps->Add(pending.size());
    }
  }
}

void Cluster::UpdateHintDepthGaugeLocked() {
  // No obs::Enabled() gate: a Set is one relaxed store, and skipping it
  // left the gauge frozen at whatever depth it had when the switch was
  // last on — every later snapshot then reported that stale level.
  int64_t total = 0;
  for (size_t i = 0; i < hints_.size(); ++i) {
    int64_t depth = static_cast<int64_t>(hints_[i].rows.size());
    total += depth;
    node_hint_depth_[i]->Set(depth);
  }
  Instruments().hint_queue_depth->Set(total);
}

bool Cluster::TryRecordHint(
    int node_id,
    const std::vector<std::pair<std::string, std::string>>& rows) {
  Node* node = nodes_[node_id].get();
  std::lock_guard<std::mutex> lock(hints_mu_);
  if (!node->is_down()) return false;  // lost a race with RestartNode
  node->CountSkippedReplicaWrites(rows.size());
  fault_stats_.hinted_kvps += rows.size();
  if (obs::Enabled()) {
    Instruments().hints_recorded_kvps->Add(rows.size());
  }
  HintBuffer& buf = hints_[node_id];
  if (buf.overflowed) return true;  // already due for a full re-copy
  if (buf.rows.size() + rows.size() > options_.max_hints_per_node) {
    buf.overflowed = true;
    buf.rows.clear();
    buf.rows.shrink_to_fit();
    fault_stats_.hint_overflows++;
    UpdateHintDepthGaugeLocked();
    return true;
  }
  buf.rows.insert(buf.rows.end(), rows.begin(), rows.end());
  UpdateHintDepthGaugeLocked();
  return true;
}

Status Cluster::RecopyShards(int target_id) {
  obs::TraceSpan recopy_span("cluster.shard_recopy", nullptr, clock());
  uint64_t total_copied = 0;
  Node* target = nodes_[target_id].get();
  for (auto& source : nodes_) {
    if (source->id() == target_id) continue;
    if (source->is_down() || !source->is_running()) continue;
    if (source->under_repair()) continue;  // untrustworthy copy source
    auto iter = source->store()->NewIterator(storage::ReadOptions());
    storage::WriteBatch batch;
    size_t batch_rows = 0;
    uint64_t copied = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      // Copy a key iff the target replicates it and this source is the
      // first live replica for it — exactly one source per key.
      bool target_holds = false;
      int copier = -1;
      for (int r : ReplicaNodesFor(iter->key())) {
        if (r == target_id) {
          target_holds = true;
        } else if (copier < 0 && !nodes_[r]->is_down() &&
                   nodes_[r]->is_running() && !nodes_[r]->under_repair()) {
          copier = r;
        }
      }
      if (!target_holds || copier != source->id()) continue;
      batch.Put(iter->key(), iter->value());
      if (++batch_rows >= kRecopyBatchRows) {
        IOTDB_RETURN_NOT_OK(
            target->store()->Write(storage::WriteOptions(), &batch));
        copied += batch_rows;
        batch.Clear();
        batch_rows = 0;
      }
    }
    IOTDB_RETURN_NOT_OK(iter->status());
    if (batch_rows > 0) {
      IOTDB_RETURN_NOT_OK(
          target->store()->Write(storage::WriteOptions(), &batch));
      copied += batch_rows;
    }
    total_copied += copied;
    std::lock_guard<std::mutex> lock(hints_mu_);
    fault_stats_.recopied_kvps += copied;
  }
  recopy_span.SetArg("kvps", total_copied);
  return Status::OK();
}

FaultRecoveryStats Cluster::GetFaultRecoveryStats() const {
  std::lock_guard<std::mutex> lock(hints_mu_);
  return fault_stats_;
}

NodeStats Cluster::GetAggregateStats() const {
  NodeStats total;
  for (const auto& node : nodes_) {
    NodeStats s = node->GetStats();
    total.writes += s.writes;
    total.primary_writes += s.primary_writes;
    total.reads += s.reads;
    total.scans += s.scans;
    total.scan_rows_read += s.scan_rows_read;
    total.bytes_written += s.bytes_written;
    total.skipped_replica_writes += s.skipped_replica_writes;
  }
  return total;
}

std::string Cluster::Describe() {
  std::string out;
  char line[320];
  NodeStats total = GetAggregateStats();
  snprintf(line, sizeof(line),
           "cluster: %d nodes, replication %d (effective %d), imbalance "
           "CoV %.3f\n",
           num_nodes(), options_.replication_factor,
           effective_replication(), PrimaryLoadImbalance());
  out += line;
  for (const auto& node : nodes_) {
    NodeStats stats = node->GetStats();
    const char* state = node->is_down()
                            ? (node->is_running() ? "DOWN" : "CRASHED")
                            : "up";
    if (!node->is_running()) {
      snprintf(line, sizeof(line),
               "  node %d [%s]: %llu primary kvps, store closed, "
               "%llu skipped replica kvps\n",
               node->id(), state,
               static_cast<unsigned long long>(stats.primary_writes),
               static_cast<unsigned long long>(
                   stats.skipped_replica_writes));
      out += line;
      continue;
    }
    storage::KVStoreStats engine = node->store()->GetStats();
    double share = total.primary_writes == 0
                       ? 0
                       : 100.0 * stats.primary_writes /
                             total.primary_writes;
    int total_files = 0;
    for (int level = 0; level < storage::kNumLevels; ++level) {
      total_files += engine.num_files[level];
    }
    uint64_t cache_lookups = engine.block_cache_hits +
                             engine.block_cache_misses;
    snprintf(line, sizeof(line),
             "  node %d [%s]: %llu primary kvps (%.1f%%), %llu scans, "
             "L0=%d files=%d flushes=%llu compactions=%llu "
             "stall=%.1fms cache-hit=%.0f%% skipped=%llu\n",
             node->id(), state,
             static_cast<unsigned long long>(stats.primary_writes), share,
             static_cast<unsigned long long>(stats.scans),
             engine.num_files[0], total_files,
             static_cast<unsigned long long>(engine.memtable_flushes),
             static_cast<unsigned long long>(engine.compactions),
             engine.write_stall_micros / 1000.0,
             cache_lookups == 0
                 ? 0.0
                 : 100.0 * engine.block_cache_hits / cache_lookups,
             static_cast<unsigned long long>(stats.skipped_replica_writes));
    out += line;
  }
  FaultRecoveryStats faults = GetFaultRecoveryStats();
  if (faults.node_crashes + faults.node_restarts + faults.hinted_kvps +
          faults.hint_overflows + faults.recopied_kvps >
      0) {
    snprintf(line, sizeof(line),
             "  faults: %llu crashes, %llu restarts, %llu hinted kvps "
             "(%llu replayed, %llu overflows), %llu re-copied kvps\n",
             static_cast<unsigned long long>(faults.node_crashes),
             static_cast<unsigned long long>(faults.node_restarts),
             static_cast<unsigned long long>(faults.hinted_kvps),
             static_cast<unsigned long long>(faults.hint_replayed_kvps),
             static_cast<unsigned long long>(faults.hint_overflows),
             static_cast<unsigned long long>(faults.recopied_kvps));
    out += line;
  }
  if (faults.corrupt_files_quarantined + faults.read_repairs +
          faults.corruption_repairs >
      0) {
    snprintf(line, sizeof(line),
             "  integrity: %llu corrupt files quarantined, %llu reads "
             "re-served from healthy replicas, %llu shard re-copies\n",
             static_cast<unsigned long long>(
                 faults.corrupt_files_quarantined),
             static_cast<unsigned long long>(faults.read_repairs),
             static_cast<unsigned long long>(faults.corruption_repairs));
    out += line;
  }
  return out;
}

double Cluster::PrimaryLoadImbalance() const {
  double sum = 0, sum_squares = 0;
  int live = 0;
  for (const auto& node : nodes_) {
    if (node->is_down()) continue;
    double writes = static_cast<double>(node->GetStats().primary_writes);
    sum += writes;
    sum_squares += writes * writes;
    live++;
  }
  if (live == 0 || sum == 0) return 0;
  double mean = sum / live;
  double variance = sum_squares / live - mean * mean;
  return variance <= 0 ? 0 : std::sqrt(variance) / mean;
}

Status Cluster::PurgeAll() {
  for (auto& node : nodes_) {
    IOTDB_RETURN_NOT_OK(node->Purge());
  }
  std::lock_guard<std::mutex> lock(hints_mu_);
  for (auto& buf : hints_) {
    buf.rows.clear();
    buf.overflowed = false;
  }
  pending_repair_.clear();  // Purge rebuilt every store from scratch
  UpdateHintDepthGaugeLocked();
  return Status::OK();
}

Status Cluster::FlushAll() {
  for (auto& node : nodes_) {
    if (!node->is_running()) continue;  // crashed; nothing to flush
    IOTDB_RETURN_NOT_OK(node->store()->FlushMemTable());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

namespace {

bool IsRetryable(const Status& s) {
  return s.IsIOError() || s.IsBusy() || s.IsTimedOut();
}

}  // namespace

uint64_t Client::NextRand() {
  // splitmix64 over an atomically-incremented counter.
  uint64_t z = jitter_state_.fetch_add(0x9E3779B97F4A7C15ull,
                                       std::memory_order_relaxed) +
               0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Client::BackoffMicros(int completed_attempts) {
  const RetryPolicy& policy = cluster_->options().retry_policy;
  double backoff = static_cast<double>(policy.initial_backoff_micros) *
                   std::pow(policy.backoff_multiplier,
                            std::max(0, completed_attempts - 1));
  backoff =
      std::min(backoff, static_cast<double>(policy.max_backoff_micros));
  if (policy.jitter > 0) {
    // Subtract a random fraction of `jitter * backoff` so concurrent
    // clients retrying the same fault decorrelate.
    double fraction =
        static_cast<double>(NextRand() >> 11) * (1.0 / (1ull << 53));
    backoff *= 1.0 - policy.jitter * fraction;
  }
  return static_cast<uint64_t>(backoff);
}

Status Client::RetryOp(const std::function<Status()>& op, Node* node) {
  const RetryPolicy& policy = cluster_->options().retry_policy;
  Clock* clock = cluster_->clock();
  const uint64_t start = clock->NowMicros();
  const int max_attempts = std::max(1, policy.max_attempts);
  Status s;
  for (int attempt = 1;; ++attempt) {
    s = op();
    if (s.ok() || !IsRetryable(s)) return s;
    // A down node is not a transient fault: the caller fails over (reads)
    // or records a hint (writes).
    if (node != nullptr && node->is_down()) return s;
    if (attempt >= max_attempts) return s;
    uint64_t backoff = BackoffMicros(attempt);
    if (policy.op_deadline_micros > 0 &&
        clock->NowMicros() - start + backoff >= policy.op_deadline_micros) {
      return Status::TimedOut("op deadline exceeded after " +
                              std::to_string(attempt) +
                              " attempts: " + s.message());
    }
    if (obs::Enabled()) Instruments().retry_attempts->Increment();
    clock->SleepMicros(backoff);
  }
}

Status Client::WriteShardBatch(
    const std::vector<int>& replicas, const storage::WriteBatch& batch,
    const std::vector<std::pair<std::string, std::string>>& rows,
    uint64_t kvps, uint64_t bytes) {
  obs::TraceSpan fanout_span("cluster.fanout", Instruments().fanout_micros,
                             cluster_->clock());
  fanout_span.SetArg("kvps", kvps);
  int applied = 0;
  bool degraded = false;
  Status first_error;
  for (int node_id : replicas) {
    Node* node = cluster_->node(node_id);
    if (node->is_down() && cluster_->TryRecordHint(node_id, rows)) {
      degraded = true;
      continue;
    }
    // WriteBatch sequence numbers are assigned per node store, so each
    // replica gets its own copy of the batch.
    storage::WriteBatch copy;
    copy.Append(batch);
    Status s = RetryOp(
        [&]() {
          return node->ApplyBatch(&copy, /*as_primary=*/applied == 0, kvps,
                                  bytes);
        },
        node);
    if (s.ok()) {
      applied++;
      continue;
    }
    // The node may have gone down mid-write (e.g. crashed under us):
    // degrade to a hint instead of failing the whole operation.
    if (node->is_down() && cluster_->TryRecordHint(node_id, rows)) {
      degraded = true;
      continue;
    }
    if (first_error.ok()) first_error = s;
  }
  if (degraded && applied > 0 && obs::Enabled()) {
    Instruments().degraded_batches->Increment();
  }
  if (applied > 0) return Status::OK();
  fanout_span.Cancel();  // failed fan-outs would skew the latency profile
  if (!first_error.ok()) return first_error;
  return Status::IOError("no live replicas for shard");
}

Status Client::Put(const Slice& key, const Slice& value) {
  storage::WriteBatch batch;
  batch.Put(key, value);
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back(key.ToString(), value.ToString());
  return WriteShardBatch(cluster_->ReplicaNodesFor(key), batch, rows, 1,
                         key.size() + value.size());
}

Status Client::PutBatch(
    const std::vector<std::pair<std::string, std::string>>& kvps) {
  // Group rows by primary node; each group replicates as one batch.
  struct Group {
    storage::WriteBatch batch;
    std::vector<std::pair<std::string, std::string>> rows;
    uint64_t bytes = 0;
  };
  std::unordered_map<int, Group> groups;
  for (const auto& [key, value] : kvps) {
    Group& g = groups[cluster_->PrimaryNodeFor(key)];
    g.batch.Put(key, value);
    g.rows.emplace_back(key, value);
    g.bytes += key.size() + value.size();
  }
  for (auto& [primary, group] : groups) {
    int replicas = cluster_->effective_replication();
    std::vector<int> replica_ids;
    replica_ids.reserve(replicas);
    for (int i = 0; i < replicas; ++i) {
      replica_ids.push_back((primary + i) % cluster_->num_nodes());
    }
    IOTDB_RETURN_NOT_OK(WriteShardBatch(replica_ids, group.batch, group.rows,
                                        group.rows.size(), group.bytes));
  }
  return Status::OK();
}

Result<std::string> Client::Get(const Slice& key) {
  Status last_error = Status::IOError("no replicas available");
  bool corrupt_seen = false;
  for (int node_id : cluster_->ReplicaNodesFor(key)) {
    Node* node = cluster_->node(node_id);
    if (node->is_down()) continue;
    std::string value;
    Status s = RetryOp(
        [&]() {
          auto result = node->Get(key);
          if (result.ok()) value = std::move(result).MoveValueUnsafe();
          return result.status();
        },
        node);
    if (s.ok()) {
      if (corrupt_seen) cluster_->RecordReadRepair();
      return value;
    }
    if (s.IsCorruption()) {
      // This replica quarantined data (or is fenced while under repair):
      // neither a value nor NotFound from it can be trusted. Fail over.
      corrupt_seen = true;
      last_error = s;
      continue;
    }
    if (s.IsNotFound()) {
      if (corrupt_seen) cluster_->RecordReadRepair();
      return s;
    }
    last_error = s;
  }
  return last_error;
}

Status Client::MultiGet(const std::vector<std::string>& keys,
                        std::vector<std::optional<std::string>>* out) {
  out->assign(keys.size(), std::nullopt);
  Status first_error;
  for (size_t i = 0; i < keys.size(); ++i) {
    auto result = Get(keys[i]);
    if (result.ok()) {
      (*out)[i] = std::move(result).MoveValueUnsafe();
    } else if (!result.status().IsNotFound() && first_error.ok()) {
      first_error = result.status();
    }
  }
  return first_error;
}

Status Client::Scan(const Slice& shard_key, const Slice& start,
                    const Slice& end_exclusive, size_t limit,
                    std::vector<std::pair<std::string, std::string>>* out) {
  Status last_error = Status::IOError("no replicas available");
  bool corrupt_seen = false;
  for (int node_id : cluster_->ReplicaNodesForShardKey(shard_key)) {
    Node* node = cluster_->node(node_id);
    if (node->is_down()) continue;
    size_t before = out->size();
    Status s = RetryOp(
        [&]() {
          out->resize(before);  // drop partial results of a failed attempt
          return node->Scan(start, end_exclusive, limit, out);
        },
        node);
    if (s.ok()) {
      if (corrupt_seen) cluster_->RecordReadRepair();
      return s;
    }
    if (s.IsCorruption()) corrupt_seen = true;
    last_error = s;
  }
  return last_error;
}

}  // namespace cluster
}  // namespace iotdb
