#ifndef IOTDB_CLUSTER_CHANNEL_H_
#define IOTDB_CLUSTER_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace iotdb {
namespace cluster {

/// Well-known endpoint ids. Node endpoints are their non-negative node ids;
/// the coordinator (client-side quorum state machine) and the cluster's hint
/// drain service get reserved negative ids so a single channel instance can
/// route every message in the system.
constexpr int kCoordinatorEndpoint = -1;
constexpr int kHintServiceEndpoint = -2;

enum class MessageKind : unsigned char {
  kWriteRequest = 0,  // coordinator -> replica: apply a batch of rows
  kWriteAck = 1,      // replica -> coordinator: outcome of a kWriteRequest
  kHintReplay = 2,    // hint service -> replica: replay buffered hint rows
  kHintAck = 3,       // replica -> hint service: outcome of a kHintReplay
};

/// A self-contained message. Rows are shared (immutable after send) so that a
/// fan-out to three replicas — plus any fault-injected duplicates — does not
/// copy the payload per delivery.
struct Message {
  MessageKind kind = MessageKind::kWriteRequest;
  uint64_t request_id = 0;
  int src = 0;
  int dst = 0;
  bool as_primary = false;
  uint64_t kvps = 0;
  uint64_t bytes = 0;
  /// Causal-trace carriage (a wire header field, like request_id): the
  /// sending op's trace id and span id. A receiver handling the message on
  /// behalf of that op derives its spans as children of `parent_span_id`,
  /// so one replicated write stays a single linked flow across the channel
  /// boundary. Zero = untraced. Acks echo the request's values back.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  std::shared_ptr<const std::vector<std::pair<std::string, std::string>>> rows;
  Status status;  // meaningful on acks
};

/// An asynchronous, unidirectional-per-send message boundary between cluster
/// participants. Delivery is at-most-once, asynchronous (Send never blocks on
/// the handler), and FIFO per destination endpoint for the in-process
/// implementation; decorators may weaken ordering and delivery (see
/// FaultChannel). Handlers run on channel-owned threads and must not call
/// back into Send for the same destination synchronously holding locks the
/// sender holds.
///
/// The interface is deliberately transport-shaped: a socket implementation
/// would satisfy it by serializing Message and dialing per-endpoint
/// connections, with no changes to the replication logic above it.
class Channel {
 public:
  virtual ~Channel() = default;

  using Handler = std::function<void(Message)>;

  /// Registers the receive handler for an endpoint. Re-registering an id
  /// replaces the handler but keeps queued messages.
  virtual void RegisterEndpoint(int endpoint, Handler handler) = 0;

  /// Stops delivery to the endpoint and discards its queue. Blocks until the
  /// endpoint's in-flight handler invocation (if any) returns.
  virtual void UnregisterEndpoint(int endpoint) = 0;

  /// Enqueues a message for asynchronous delivery. Returns false if the
  /// channel is shut down or the destination was never registered; a true
  /// return does not guarantee delivery (the endpoint may unregister, or a
  /// faulty decorator may drop the message).
  virtual bool Send(Message msg) = 0;

  /// Stops all delivery threads and discards queued messages. Idempotent.
  virtual void Shutdown() = 0;
};

/// A loopback Channel: each endpoint gets a mailbox drained by a dedicated
/// thread, giving real asynchrony and per-destination FIFO order.
std::unique_ptr<Channel> NewInProcessChannel();

}  // namespace cluster
}  // namespace iotdb

#endif  // IOTDB_CLUSTER_CHANNEL_H_
