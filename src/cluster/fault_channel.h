#ifndef IOTDB_CLUSTER_FAULT_CHANNEL_H_
#define IOTDB_CLUSTER_FAULT_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/channel.h"
#include "common/random.h"

namespace iotdb {
namespace cluster {

/// Counts of fault decisions taken at Send time. `sent` counts every Send
/// call; a message is counted once per terminal decision (a blocked message
/// is not also counted as dropped).
struct NetFaultCounters {
  uint64_t sent = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t delayed = 0;
  uint64_t partition_blocked = 0;
};

/// A Channel decorator that injects network faults with a seeded RNG:
/// one-way delivery delays, probabilistic drop/duplicate/reorder, and
/// symmetric or asymmetric partitions. All decisions happen at Send time, so
/// a single-threaded sender with a fixed seed sees a deterministic fault
/// sequence regardless of receiver scheduling.
///
/// Delays and reorders are served by one timer thread with a deadline heap;
/// a reorder is modeled as an extra random delay within the reorder window,
/// which lets later sends overtake the deferred message.
class FaultChannel : public Channel {
 public:
  FaultChannel(std::unique_ptr<Channel> base, uint64_t seed);
  ~FaultChannel() override;

  // Channel interface: registration passes straight through to the base
  // channel; Send applies the configured faults first.
  void RegisterEndpoint(int endpoint, Handler handler) override;
  void UnregisterEndpoint(int endpoint) override;
  bool Send(Message msg) override;
  void Shutdown() override;

  /// One-way delivery delay applied to every message (uniform in
  /// [min, max] microseconds). Zero/zero disables.
  void SetDefaultDelay(uint64_t min_micros, uint64_t max_micros);

  /// One-way delay for messages destined to `endpoint`; overrides the
  /// default. Models one slow (straggler) replica.
  void SetEndpointDelay(int endpoint, uint64_t min_micros,
                        uint64_t max_micros);

  void SetDropProbability(double p);
  void SetDuplicateProbability(double p);
  void SetReorderProbability(double p, uint64_t window_micros);

  /// Symmetric partition: no messages to or from `endpoint` are delivered.
  void Isolate(int endpoint);

  /// Asymmetric partition: messages from `src` to `dst` are blocked; the
  /// reverse direction still flows.
  void PartitionOneWay(int src, int dst);

  void Heal(int endpoint);
  void HealAll();

  /// Whether a message from `src` to `dst` would currently be delivered
  /// (ignoring probabilistic drop). Senders use this to skip known-dark
  /// destinations.
  bool Reachable(int src, int dst) const;

  NetFaultCounters GetCounters() const;

 private:
  struct DelayedMessage {
    uint64_t due_micros;
    uint64_t seq;  // tiebreak so equal deadlines keep send order
    Message msg;
    bool operator>(const DelayedMessage& other) const {
      if (due_micros != other.due_micros) return due_micros > other.due_micros;
      return seq > other.seq;
    }
  };

  bool ReachableLocked(int src, int dst) const;
  void TimerLoop();

  std::unique_ptr<Channel> base_;

  mutable std::mutex mu_;
  Random rng_;
  uint64_t delay_min_micros_ = 0;
  uint64_t delay_max_micros_ = 0;
  std::unordered_map<int, std::pair<uint64_t, uint64_t>> endpoint_delay_;
  double drop_p_ = 0.0;
  double duplicate_p_ = 0.0;
  double reorder_p_ = 0.0;
  uint64_t reorder_window_micros_ = 0;
  std::set<int> isolated_;
  std::set<std::pair<int, int>> blocked_pairs_;
  NetFaultCounters counters_;

  std::condition_variable timer_cv_;
  std::priority_queue<DelayedMessage, std::vector<DelayedMessage>,
                      std::greater<DelayedMessage>>
      delayed_;
  uint64_t next_seq_ = 0;
  bool stop_ = false;
  std::thread timer_thread_;
};

}  // namespace cluster
}  // namespace iotdb

#endif  // IOTDB_CLUSTER_FAULT_CHANNEL_H_
