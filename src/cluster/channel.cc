#include "cluster/channel.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/metrics.h"

namespace iotdb {
namespace cluster {

namespace {

struct ChannelInstruments {
  obs::Counter* sent;
  obs::Counter* delivered;
};

ChannelInstruments& Instruments() {
  static ChannelInstruments instruments = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return ChannelInstruments{registry.GetCounter("cluster.channel.sent"),
                              registry.GetCounter("cluster.channel.delivered")};
  }();
  return instruments;
}

/// One endpoint's inbox plus the thread that drains it. The thread is the
/// only consumer, so per-destination FIFO order falls out for free.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> queue;
  Channel::Handler handler;
  bool stop = false;
  std::thread thread;
};

class InProcessChannel : public Channel {
 public:
  ~InProcessChannel() override { Shutdown(); }

  void RegisterEndpoint(int endpoint, Handler handler) override {
    std::shared_ptr<Mailbox> box;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      auto it = mailboxes_.find(endpoint);
      if (it != mailboxes_.end()) {
        std::lock_guard<std::mutex> box_lock(it->second->mu);
        it->second->handler = std::move(handler);
        return;
      }
      box = std::make_shared<Mailbox>();
      box->handler = std::move(handler);
      mailboxes_[endpoint] = box;
    }
    box->thread = std::thread([box] { DrainLoop(box.get()); });
  }

  void UnregisterEndpoint(int endpoint) override {
    std::shared_ptr<Mailbox> box;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = mailboxes_.find(endpoint);
      if (it == mailboxes_.end()) return;
      box = std::move(it->second);
      mailboxes_.erase(it);
    }
    StopMailbox(box.get());
  }

  bool Send(Message msg) override {
    std::shared_ptr<Mailbox> box;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return false;
      auto it = mailboxes_.find(msg.dst);
      if (it == mailboxes_.end()) return false;
      box = it->second;
    }
    {
      std::lock_guard<std::mutex> box_lock(box->mu);
      if (box->stop) return false;
      box->queue.push_back(std::move(msg));
    }
    box->cv.notify_one();
    if (obs::Enabled()) Instruments().sent->Increment();
    return true;
  }

  void Shutdown() override {
    std::unordered_map<int, std::shared_ptr<Mailbox>> boxes;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      shutdown_ = true;
      boxes.swap(mailboxes_);
    }
    for (auto& [endpoint, box] : boxes) StopMailbox(box.get());
  }

 private:
  static void DrainLoop(Mailbox* box) {
    std::unique_lock<std::mutex> lock(box->mu);
    for (;;) {
      box->cv.wait(lock, [box] { return box->stop || !box->queue.empty(); });
      if (box->stop) return;
      Message msg = std::move(box->queue.front());
      box->queue.pop_front();
      Handler handler = box->handler;
      lock.unlock();
      if (handler) {
        handler(std::move(msg));
        if (obs::Enabled()) Instruments().delivered->Increment();
      }
      lock.lock();
    }
  }

  static void StopMailbox(Mailbox* box) {
    {
      std::lock_guard<std::mutex> lock(box->mu);
      box->stop = true;
      box->queue.clear();
    }
    box->cv.notify_all();
    if (box->thread.joinable()) box->thread.join();
  }

  std::mutex mu_;
  bool shutdown_ = false;
  std::unordered_map<int, std::shared_ptr<Mailbox>> mailboxes_;
};

}  // namespace

std::unique_ptr<Channel> NewInProcessChannel() {
  return std::make_unique<InProcessChannel>();
}

}  // namespace cluster
}  // namespace iotdb
