#ifndef IOTDB_CLUSTER_CLUSTER_H_
#define IOTDB_CLUSTER_CLUSTER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "cluster/options.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"

namespace iotdb {
namespace cluster {

class Client;

/// An in-process gateway cluster (the System Under Test of TPCx-IoT): N
/// nodes each running a KVStore, hash-sharded by a configurable shard key,
/// with synchronous replication to `replication_factor` distinct nodes.
///
///   ClusterOptions opts;
///   opts.num_nodes = 8;
///   auto cluster = Cluster::Start(opts).MoveValueUnsafe();
///   Client client(cluster.get());
///   client.Put(key, value);
class Cluster {
 public:
  static Result<std::unique_ptr<Cluster>> Start(const ClusterOptions& options);

  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node* node(int i) { return nodes_[i].get(); }

  const ClusterOptions& options() const { return options_; }

  /// Effective number of distinct replicas per write.
  int effective_replication() const;

  /// Shard id (primary node) for a row key.
  int PrimaryNodeFor(const Slice& row_key) const;

  /// Distinct replica node ids for a row key, primary first.
  std::vector<int> ReplicaNodesFor(const Slice& row_key) const;

  /// Replica node ids for an already-extracted shard key (no shard_key_fn
  /// application), primary first.
  std::vector<int> ReplicaNodesForShardKey(const Slice& shard_key) const;

  /// Aggregated and per-node statistics.
  NodeStats GetNodeStats(int i) const { return nodes_[i]->GetStats(); }
  NodeStats GetAggregateStats() const;

  /// Multi-line human-readable cluster state: per-node liveness, primary
  /// write share, storage-engine shape (files per level, stalls, cache
  /// hit rate). The operator-facing "describe cluster" output.
  std::string Describe();

  /// Coefficient of variation of primary-write load across live nodes:
  /// 0 = perfectly balanced. The balancer metric behind Figure 15.
  double PrimaryLoadImbalance() const;

  /// Purges all data from every node (TPCx-IoT system cleanup between
  /// benchmark iterations).
  Status PurgeAll();

  /// Flushes every node's memtable (used by deterministic tests).
  Status FlushAll();

 private:
  explicit Cluster(const ClusterOptions& options);

  Slice ShardKeyOf(const Slice& row_key) const;

  ClusterOptions options_;
  std::unique_ptr<storage::Env> owned_env_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

/// Routing client. Cheap to copy construct per thread; thread-safe because
/// nodes are.
class Client {
 public:
  explicit Client(Cluster* cluster) : cluster_(cluster) {}

  /// Writes one kvp to all replicas, synchronously.
  Status Put(const Slice& key, const Slice& value);

  /// Writes a group of kvps: groups by primary node, then applies each
  /// group's batch to that shard's replica set. Mirrors the HBase client
  /// write buffer flush path.
  Status PutBatch(
      const std::vector<std::pair<std::string, std::string>>& kvps);

  /// Reads from the primary, failing over to replicas if it is down.
  Result<std::string> Get(const Slice& key);

  /// Point-reads many keys; out[i] is the value for keys[i] or empty when
  /// absent/unreadable. Returns the first non-NotFound error encountered,
  /// OK otherwise. Groups nothing (reads are independent), but saves the
  /// per-call routing setup.
  Status MultiGet(const std::vector<std::string>& keys,
                  std::vector<std::optional<std::string>>* out);

  /// Range scan within a single shard: `shard_key` routes the request; the
  /// scan range [start, end_exclusive) must lie within that shard's rows.
  Status Scan(const Slice& shard_key, const Slice& start,
              const Slice& end_exclusive, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out);

 private:
  Cluster* cluster_;
};

}  // namespace cluster
}  // namespace iotdb

#endif  // IOTDB_CLUSTER_CLUSTER_H_
