#ifndef IOTDB_CLUSTER_CLUSTER_H_
#define IOTDB_CLUSTER_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/channel.h"
#include "cluster/fault_channel.h"
#include "cluster/node.h"
#include "cluster/options.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/env.h"
#include "storage/fault_env.h"

namespace iotdb {
namespace cluster {

class Client;

/// Counters of the cluster's fault-recovery machinery. Cumulative since
/// cluster start (PurgeAll does not reset them).
struct FaultRecoveryStats {
  uint64_t node_crashes = 0;     // CrashNode() calls that took a node down
  uint64_t node_restarts = 0;    // nodes brought back up (catch-up converged)
  uint64_t hinted_kvps = 0;      // writes buffered for a down replica
  uint64_t hint_replayed_kvps = 0;  // hints applied during catch-up
  uint64_t hint_overflows = 0;   // hint buffers dropped for a full re-copy
  uint64_t recopied_kvps = 0;    // kvps restored by full shard re-copy
  uint64_t corrupt_files_quarantined = 0;  // files node stores moved aside
  uint64_t corruption_repairs = 0;  // shard re-copies healing a quarantine
  uint64_t read_repairs = 0;  // reads re-served from a healthy replica after
                              // another replica returned Corruption
};

/// Write-availability accounting for the quorum replication path. Every
/// replicated write resolves to exactly one of quorum-met or unavailable, so
/// `writes_attempted == writes_quorum_met + writes_unavailable` holds at any
/// snapshot (all three are incremented together when a write resolves).
/// Cumulative since cluster start.
struct AvailabilityStats {
  uint64_t writes_attempted = 0;    // replicated write batches resolved
  uint64_t writes_quorum_met = 0;   // resolved with quorum acks (success)
  uint64_t writes_unavailable = 0;  // resolved Unavailable (quorum lost)
  /// kvps hinted because a replica missed the straggler window after quorum
  /// was already met (laggards absorbed by hinted handoff).
  uint64_t straggler_hinted_kvps = 0;
  /// Writes failed by the per-request deadline (subset of unavailable).
  uint64_t deadline_exceeded = 0;
  /// Acks that arrived for an already-resolved replica slot (duplicate or
  /// post-finalize delivery); counted and dropped.
  uint64_t duplicate_acks_ignored = 0;
};

/// An in-process gateway cluster (the System Under Test of TPCx-IoT): N
/// nodes each running a KVStore, hash-sharded by a configurable shard key,
/// replicating each write to `replication_factor` distinct nodes.
///
///   ClusterOptions opts;
///   opts.num_nodes = 8;
///   auto cluster = Cluster::Start(opts).MoveValueUnsafe();
///   Client client(cluster.get());
///   client.Put(key, value);
///
/// Replication is asynchronous over an explicit message Channel: the write
/// path fans a batch out to every replica mailbox, then blocks only until a
/// write quorum (default majority) of acks returns. Laggard replicas get a
/// straggler window after quorum and are then absorbed by hinted handoff;
/// replicas known down at send time are hinted immediately and excluded
/// from the quorum denominator (so degraded single-survivor clusters still
/// accept writes). A write that cannot reach quorum — e.g. under a network
/// partition injected by the FaultChannel — fails fast with
/// Status::Unavailable. A node that went down through CrashNode() (losing
/// unsynced state), or whose hint buffer overflowed, is caught up by a full
/// shard re-copy from live replicas at RestartNode().
class Cluster {
 public:
  static Result<std::unique_ptr<Cluster>> Start(const ClusterOptions& options);

  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node* node(int i) { return nodes_[i].get(); }

  const ClusterOptions& options() const { return options_; }

  Clock* clock() const;

  /// Non-null when options().enable_fault_injection is set; shared by all
  /// node stores, so the harness can set rates / inspect fault counters.
  storage::FaultInjectionEnv* fault_env() { return fault_env_.get(); }

  /// Non-null when options().enable_net_fault_injection is set: the
  /// replication channel's fault decorator (delays, drops, partitions).
  FaultChannel* net_fault_channel() { return net_fault_channel_; }

  /// Effective number of distinct replicas per write.
  int effective_replication() const;

  /// Acks required for a write to report success: options().write_quorum
  /// clamped to the effective replication, or a majority when 0.
  int write_quorum() const;

  /// Shard id (primary node) for a row key.
  int PrimaryNodeFor(const Slice& row_key) const;

  /// Distinct replica node ids for a row key, primary first.
  std::vector<int> ReplicaNodesFor(const Slice& row_key) const;

  /// Replica node ids for an already-extracted shard key (no shard_key_fn
  /// application), primary first.
  std::vector<int> ReplicaNodesForShardKey(const Slice& shard_key) const;

  /// Simulates an abrupt node failure: the node drops off the cluster and —
  /// when fault injection is enabled — loses everything its store had not
  /// yet synced, exactly like a killed process.
  Status CrashNode(int id);

  /// Brings a node back: reopens its store through WAL/manifest recovery,
  /// catches it up (hint replay over the channel, or full shard re-copy
  /// after a crash or hint overflow) and only then marks it live again.
  Status RestartNode(int id);

  FaultRecoveryStats GetFaultRecoveryStats() const;

  AvailabilityStats GetAvailabilityStats() const;

  /// Blocks until the replication plane is quiescent: no in-flight quorum
  /// writes, and every hint buffer destined to a live node has drained.
  /// Hints for down nodes don't block (they drain at RestartNode). Returns
  /// TimedOut if the plane is still busy after `timeout_micros`. The
  /// default is sized for heavily oversubscribed CI machines, where a
  /// loaded drain can take tens of seconds; an idle plane returns at once.
  Status WaitReplicationIdle(uint64_t timeout_micros = 60'000'000);

  /// Heals every node whose store quarantined a corrupt file since the last
  /// call: re-copies its shards from healthy replicas, then lifts the node's
  /// under-repair read fence. Nodes currently down stay pending (their
  /// RestartNode path re-copies anyway). Safe to call from a monitor thread
  /// while the workload keeps running.
  Status RunPendingRepairs();

  /// Node ids with a pending corruption repair (quarantined, not yet
  /// re-copied).
  std::vector<int> PendingRepairNodes() const;

  /// Aggregated and per-node statistics.
  NodeStats GetNodeStats(int i) const { return nodes_[i]->GetStats(); }
  NodeStats GetAggregateStats() const;

  /// Multi-line human-readable cluster state: per-node liveness, primary
  /// write share, storage-engine shape (files per level, stalls, cache
  /// hit rate) and fault-recovery counters. The operator-facing "describe
  /// cluster" output.
  std::string Describe();

  /// Coefficient of variation of primary-write load across live nodes:
  /// 0 = perfectly balanced. The balancer metric behind Figure 15.
  double PrimaryLoadImbalance() const;

  /// Purges all data from every node (TPCx-IoT system cleanup between
  /// benchmark iterations). Quiesces replication first so no in-flight
  /// write or hint replay lands after the wipe. Also discards pending
  /// hints; fault-recovery counters keep accumulating.
  Status PurgeAll();

  /// Flushes every running node's memtable (used by deterministic tests).
  Status FlushAll();

 private:
  friend class Client;

  using Rows = std::vector<std::pair<std::string, std::string>>;

  explicit Cluster(const ClusterOptions& options);

  Slice ShardKeyOf(const Slice& row_key) const;

 public:
  struct PendingWrite;

 private:
  /// Replicates one shard batch over the channel and blocks until quorum,
  /// Unavailable, or the per-request deadline. The write path of Client.
  Status QuorumWrite(const std::vector<int>& replicas,
                     std::shared_ptr<const Rows> rows, uint64_t kvps,
                     uint64_t bytes);

  /// Split write path for pipelining: Start registers the write and fans it
  /// out without blocking; Wait blocks until it resolves. Client::PutBatch
  /// launches every shard group before awaiting any quorum.
  std::shared_ptr<PendingWrite> QuorumWriteStart(
      const std::vector<int>& replicas, std::shared_ptr<const Rows> rows,
      uint64_t kvps, uint64_t bytes);
  Status QuorumWriteWait(const std::shared_ptr<PendingWrite>& pw);

  /// True when the coordinator can currently reach the node over the
  /// channel (always true without net fault injection). Reads use this to
  /// skip partitioned replicas.
  bool IsNodeReachable(int node_id) const;

  /// Buffers `rows` for a down replica. Returns false — without recording
  /// anything — when the node turned out to be up (the caller lost a race
  /// with RestartNode and must apply the write normally).
  bool TryRecordHint(int node_id, const Rows& rows);

  /// Buffers `rows` for a replica regardless of its liveness: the sweeper
  /// for laggards (straggler timeout) and permanently-failing-but-up
  /// replicas. The background drain replays these once the node responds.
  void ForceRecordHint(int node_id, const Rows& rows);
  void RecordHintLocked(int node_id, const Rows& rows);

  /// Rebuilds a restarted node's shards from the first live replica of each
  /// shard (the node itself excluded). Exactly one source copies each key.
  Status RecopyShards(int target_id);

  /// Store quarantine callback (may run on a store background thread with
  /// store locks held): records the event and queues the node for repair.
  void OnNodeQuarantine(int node_id, const std::string& path,
                        const Status& cause);

  /// Counts a read answered by a healthy replica after another replica
  /// returned Corruption (called by Client).
  void RecordReadRepair();

  /// Refreshes the cluster.hints.queue_depth gauge (total buffered hint
  /// rows across nodes) and the per-node cluster.node<id>.hint_queue_depth
  /// gauges. Unconditional — gauges are levels the timeline samples, so
  /// they must track reality even while the obs switch is off (gating them
  /// froze stale depth into every later snapshot). Caller holds hints_mu_.
  void UpdateHintDepthGaugeLocked();

  // --- quorum write machinery (all guarded by writes_mu_) ---

  enum class ReplicaState : unsigned char { kPending, kAcked, kHinted };

 public:
  struct PendingWrite {
    std::vector<int> replicas;
    std::vector<ReplicaState> states;
    std::vector<int> attempts;  // send attempts per replica slot
    std::shared_ptr<const Rows> rows;
    uint64_t request_id = 0;
    uint64_t kvps = 0;
    uint64_t bytes = 0;
    int acks = 0;
    int required = 0;      // recomputed as replicas resolve to hinted
    int primary_slot = -1; // first slot fanned out; carries as_primary
    bool done = false;     // resolved (either way); clients wait on this
    bool quorum_met = false;
    bool straggler_timer_armed = false;
    Status error;
    uint64_t start_micros = 0;       // monotonic, drives timers/deadlines
    uint64_t start_wall_micros = 0;  // wall clock, for trace timestamps
    /// The quorum write's own span in the requesting op's trace (invalid
    /// when the op is untraced). Stamped into every outgoing request
    /// message; the quorum-ack span records under it.
    obs::TraceContext ctx;
  };

 private:

  enum class TimerKind : unsigned char { kResend, kStraggler, kDeadline };

  struct TimerEvent {
    uint64_t due_micros;
    uint64_t seq;
    TimerKind kind;
    uint64_t request_id;
    int replica_slot;  // kResend only
    bool operator>(const TimerEvent& other) const {
      if (due_micros != other.due_micros) return due_micros > other.due_micros;
      return seq > other.seq;
    }
  };

  /// Channel delivery handlers.
  void HandleReplicaMessage(int node_id, Message msg);
  void HandleCoordinatorMessage(Message msg);
  void HandleHintServiceMessage(Message msg);

  /// Resolves replica `slot` of `pw` to hinted, recomputing the quorum
  /// denominator, and finalises the write if that decided it. Caller holds
  /// writes_mu_.
  void HintReplicaSlotLocked(uint64_t request_id, PendingWrite* pw, int slot);
  void FinalizeLocked(uint64_t request_id, PendingWrite* pw, bool met,
                      Status error);
  void ArmTimerLocked(TimerKind kind, uint64_t due_micros,
                      uint64_t request_id, int replica_slot = -1);
  void SendWriteRequestLocked(uint64_t request_id, PendingWrite* pw,
                              int slot);
  uint64_t RetryBackoffMicros(int completed_attempts);

  void TimerLoop();
  void HintDrainLoop();

  /// Replays one hint batch to a node over the channel and waits for the
  /// ack (bounded by write_timeout). Used by the drain thread and by
  /// RestartNode catch-up (the node may still be marked down).
  Status SendHintBatchAndWait(int node_id, std::shared_ptr<const Rows> rows);

  void ShutdownReplication();

  ClusterOptions options_;
  std::unique_ptr<storage::Env> owned_env_;
  std::unique_ptr<storage::FaultInjectionEnv> fault_env_;  // may be null
  std::vector<std::unique_ptr<Node>> nodes_;

  /// The replication message plane. Owned; `net_fault_channel_` aliases it
  /// when net fault injection is on.
  std::unique_ptr<Channel> channel_;
  FaultChannel* net_fault_channel_ = nullptr;

  mutable std::mutex writes_mu_;
  std::condition_variable writes_cv_;  // write resolved / all writes idle
  std::condition_variable timer_cv_;
  std::unordered_map<uint64_t, std::shared_ptr<PendingWrite>> pending_writes_;
  std::priority_queue<TimerEvent, std::vector<TimerEvent>,
                      std::greater<TimerEvent>>
      timers_;
  uint64_t next_request_id_ = 1;
  uint64_t next_timer_seq_ = 0;
  AvailabilityStats availability_;
  bool replication_shutdown_ = false;
  std::atomic<uint64_t> jitter_state_{0x9E3779B97F4A7C15ull};
  std::thread timer_thread_;

  /// Hint replay ack rendezvous (hint service endpoint).
  std::mutex hint_ack_mu_;
  std::condition_variable hint_ack_cv_;
  std::unordered_map<uint64_t, Status> hint_acks_;  // id -> outcome
  uint64_t next_hint_id_ = 1;
  bool hint_shutdown_ = false;

  struct HintBuffer {
    std::vector<std::pair<std::string, std::string>> rows;
    bool overflowed = false;
  };

  /// Guards hints_ and fault_stats_, and serialises the hint-or-apply
  /// decision against the down->up flip in RestartNode. Lock order:
  /// writes_mu_ before hints_mu_; never the reverse.
  mutable std::mutex hints_mu_;
  std::condition_variable hints_cv_;  // drain tick / in-flight returned
  std::vector<HintBuffer> hints_;  // one per node
  int hints_in_flight_ = 0;  // batches swapped out for channel replay
  bool drain_shutdown_ = false;
  std::thread drain_thread_;
  /// cluster.node<id>.hint_queue_depth, parallel to hints_. The gauges are
  /// process-global; the destructor zeroes them so a later cluster (or the
  /// timeline) never sees ghost depth from this one.
  std::vector<obs::Gauge*> node_hint_depth_;
  FaultRecoveryStats fault_stats_;
  /// Node ids whose stores quarantined a corrupt file and still await a
  /// shard re-copy (guarded by hints_mu_).
  std::set<int> pending_repair_;
};

/// Routing client. A single instance may be shared by many threads (nodes
/// are thread-safe and the retry jitter state is atomic).
///
/// Writes replicate asynchronously over the cluster channel and return once
/// a write quorum of replicas acked (Status::Unavailable when quorum cannot
/// be reached before the deadline). Reads retry transient failures with
/// bounded exponential backoff + jitter under a per-op deadline
/// (ClusterOptions::retry_policy) and fail over across replicas.
class Client {
 public:
  explicit Client(Cluster* cluster) : cluster_(cluster) {}

  Client(const Client& rhs) : cluster_(rhs.cluster_) {}
  Client& operator=(const Client& rhs) {
    cluster_ = rhs.cluster_;
    return *this;
  }

  /// Writes one kvp to all replicas; returns once a quorum acked. Replicas
  /// missed because they were down (or lagged past the straggler window)
  /// get hints.
  Status Put(const Slice& key, const Slice& value);

  /// Writes a group of kvps: groups by primary node, then replicates each
  /// group's batch to that shard's replica set. Mirrors the HBase client
  /// write buffer flush path.
  Status PutBatch(
      const std::vector<std::pair<std::string, std::string>>& kvps);

  /// Reads from the primary, failing over to replicas when it is down or
  /// unreachable. A NotFound is only reported once enough replicas confirm
  /// absence to rule out a quorum-acked write they missed.
  Result<std::string> Get(const Slice& key);

  /// Point-reads many keys; out[i] is the value for keys[i] or empty when
  /// absent/unreadable. Returns the first non-NotFound error encountered,
  /// OK otherwise. Groups nothing (reads are independent), but saves the
  /// per-call routing setup.
  Status MultiGet(const std::vector<std::string>& keys,
                  std::vector<std::optional<std::string>>* out);

  /// Range scan within a single shard: `shard_key` routes the request; the
  /// scan range [start, end_exclusive) must lie within that shard's rows.
  Status Scan(const Slice& shard_key, const Slice& start,
              const Slice& end_exclusive, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out);

 private:
  /// Replicates one shard's batch via the cluster's quorum write path.
  Status WriteShardBatch(
      const std::vector<int>& replicas,
      std::vector<std::pair<std::string, std::string>> rows, uint64_t kvps,
      uint64_t bytes);

  /// Runs `op` under the retry policy. Retries transient failures (IOError/
  /// Busy/TimedOut) with exponential backoff + jitter until max_attempts or
  /// the op deadline (measured on the monotonic clock); gives up immediately
  /// when `node` goes down (the caller fails over instead).
  Status RetryOp(const std::function<Status()>& op, Node* node);

  uint64_t NextRand();
  uint64_t BackoffMicros(int completed_attempts);

  Cluster* cluster_;
  /// Jitter RNG state (splitmix64 over an atomic counter: thread-safe and
  /// allocation-free; determinism is not needed for jitter).
  std::atomic<uint64_t> jitter_state_{0x243F6A8885A308D3ull};
};

}  // namespace cluster
}  // namespace iotdb

#endif  // IOTDB_CLUSTER_CLUSTER_H_
