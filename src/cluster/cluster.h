#ifndef IOTDB_CLUSTER_CLUSTER_H_
#define IOTDB_CLUSTER_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/node.h"
#include "cluster/options.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "storage/fault_env.h"

namespace iotdb {
namespace cluster {

class Client;

/// Counters of the cluster's fault-recovery machinery. Cumulative since
/// cluster start (PurgeAll does not reset them).
struct FaultRecoveryStats {
  uint64_t node_crashes = 0;     // CrashNode() calls that took a node down
  uint64_t node_restarts = 0;    // nodes brought back up (catch-up converged)
  uint64_t hinted_kvps = 0;      // writes buffered for a down replica
  uint64_t hint_replayed_kvps = 0;  // hints applied during catch-up
  uint64_t hint_overflows = 0;   // hint buffers dropped for a full re-copy
  uint64_t recopied_kvps = 0;    // kvps restored by full shard re-copy
  uint64_t corrupt_files_quarantined = 0;  // files node stores moved aside
  uint64_t corruption_repairs = 0;  // shard re-copies healing a quarantine
  uint64_t read_repairs = 0;  // reads re-served from a healthy replica after
                              // another replica returned Corruption
};

/// An in-process gateway cluster (the System Under Test of TPCx-IoT): N
/// nodes each running a KVStore, hash-sharded by a configurable shard key,
/// with synchronous replication to `replication_factor` distinct nodes.
///
///   ClusterOptions opts;
///   opts.num_nodes = 8;
///   auto cluster = Cluster::Start(opts).MoveValueUnsafe();
///   Client client(cluster.get());
///   client.Put(key, value);
///
/// Fault tolerance: writes to a shard with down replicas succeed in degraded
/// mode — the missed replica writes are buffered as bounded per-node hints
/// and replayed when the node rejoins via RestartNode(). A node that went
/// down through CrashNode() (losing unsynced state), or whose hint buffer
/// overflowed, is instead caught up by a full shard re-copy from the first
/// live replica of each of its shards.
class Cluster {
 public:
  static Result<std::unique_ptr<Cluster>> Start(const ClusterOptions& options);

  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node* node(int i) { return nodes_[i].get(); }

  const ClusterOptions& options() const { return options_; }

  Clock* clock() const;

  /// Non-null when options().enable_fault_injection is set; shared by all
  /// node stores, so the harness can set rates / inspect fault counters.
  storage::FaultInjectionEnv* fault_env() { return fault_env_.get(); }

  /// Effective number of distinct replicas per write.
  int effective_replication() const;

  /// Shard id (primary node) for a row key.
  int PrimaryNodeFor(const Slice& row_key) const;

  /// Distinct replica node ids for a row key, primary first.
  std::vector<int> ReplicaNodesFor(const Slice& row_key) const;

  /// Replica node ids for an already-extracted shard key (no shard_key_fn
  /// application), primary first.
  std::vector<int> ReplicaNodesForShardKey(const Slice& shard_key) const;

  /// Simulates an abrupt node failure: the node drops off the cluster and —
  /// when fault injection is enabled — loses everything its store had not
  /// yet synced, exactly like a killed process.
  Status CrashNode(int id);

  /// Brings a node back: reopens its store through WAL/manifest recovery,
  /// catches it up (hint replay, or full shard re-copy after a crash or
  /// hint overflow) and only then marks it live again.
  Status RestartNode(int id);

  FaultRecoveryStats GetFaultRecoveryStats() const;

  /// Heals every node whose store quarantined a corrupt file since the last
  /// call: re-copies its shards from healthy replicas, then lifts the node's
  /// under-repair read fence. Nodes currently down stay pending (their
  /// RestartNode path re-copies anyway). Safe to call from a monitor thread
  /// while the workload keeps running.
  Status RunPendingRepairs();

  /// Node ids with a pending corruption repair (quarantined, not yet
  /// re-copied).
  std::vector<int> PendingRepairNodes() const;

  /// Aggregated and per-node statistics.
  NodeStats GetNodeStats(int i) const { return nodes_[i]->GetStats(); }
  NodeStats GetAggregateStats() const;

  /// Multi-line human-readable cluster state: per-node liveness, primary
  /// write share, storage-engine shape (files per level, stalls, cache
  /// hit rate) and fault-recovery counters. The operator-facing "describe
  /// cluster" output.
  std::string Describe();

  /// Coefficient of variation of primary-write load across live nodes:
  /// 0 = perfectly balanced. The balancer metric behind Figure 15.
  double PrimaryLoadImbalance() const;

  /// Purges all data from every node (TPCx-IoT system cleanup between
  /// benchmark iterations). Also discards pending hints; fault-recovery
  /// counters keep accumulating.
  Status PurgeAll();

  /// Flushes every running node's memtable (used by deterministic tests).
  Status FlushAll();

 private:
  friend class Client;

  explicit Cluster(const ClusterOptions& options);

  Slice ShardKeyOf(const Slice& row_key) const;

  /// Buffers `rows` for a down replica. Returns false — without recording
  /// anything — when the node turned out to be up (the caller lost a race
  /// with RestartNode and must apply the write normally).
  bool TryRecordHint(int node_id,
                     const std::vector<std::pair<std::string, std::string>>&
                         rows);

  /// Rebuilds a restarted node's shards from the first live replica of each
  /// shard (the node itself excluded). Exactly one source copies each key.
  Status RecopyShards(int target_id);

  /// Store quarantine callback (may run on a store background thread with
  /// store locks held): records the event and queues the node for repair.
  void OnNodeQuarantine(int node_id, const std::string& path,
                        const Status& cause);

  /// Counts a read answered by a healthy replica after another replica
  /// returned Corruption (called by Client).
  void RecordReadRepair();

  /// Refreshes the cluster.hints.queue_depth gauge (total buffered hint
  /// rows across nodes) and the per-node cluster.node<id>.hint_queue_depth
  /// gauges. Unconditional — gauges are levels the timeline samples, so
  /// they must track reality even while the obs switch is off (gating them
  /// froze stale depth into every later snapshot). Caller holds hints_mu_.
  void UpdateHintDepthGaugeLocked();

  ClusterOptions options_;
  std::unique_ptr<storage::Env> owned_env_;
  std::unique_ptr<storage::FaultInjectionEnv> fault_env_;  // may be null
  std::vector<std::unique_ptr<Node>> nodes_;

  struct HintBuffer {
    std::vector<std::pair<std::string, std::string>> rows;
    bool overflowed = false;
  };

  /// Guards hints_ and fault_stats_, and serialises the hint-or-apply
  /// decision against the down->up flip in RestartNode.
  mutable std::mutex hints_mu_;
  std::vector<HintBuffer> hints_;  // one per node
  /// cluster.node<id>.hint_queue_depth, parallel to hints_. The gauges are
  /// process-global; the destructor zeroes them so a later cluster (or the
  /// timeline) never sees ghost depth from this one.
  std::vector<obs::Gauge*> node_hint_depth_;
  FaultRecoveryStats fault_stats_;
  /// Node ids whose stores quarantined a corrupt file and still await a
  /// shard re-copy (guarded by hints_mu_).
  std::set<int> pending_repair_;
};

/// Routing client. A single instance may be shared by many threads (nodes
/// are thread-safe and the retry jitter state is atomic).
///
/// All operations retry transient failures with bounded exponential backoff
/// + jitter under a per-op deadline (ClusterOptions::retry_policy). Writes
/// to shards with down replicas succeed in degraded mode, recording hints
/// for the missed replicas.
class Client {
 public:
  explicit Client(Cluster* cluster) : cluster_(cluster) {}

  Client(const Client& rhs) : cluster_(rhs.cluster_) {}
  Client& operator=(const Client& rhs) {
    cluster_ = rhs.cluster_;
    return *this;
  }

  /// Writes one kvp to all replicas, synchronously. Succeeds when at least
  /// one replica applied it; missed (down) replicas get hints.
  Status Put(const Slice& key, const Slice& value);

  /// Writes a group of kvps: groups by primary node, then applies each
  /// group's batch to that shard's replica set. Mirrors the HBase client
  /// write buffer flush path.
  Status PutBatch(
      const std::vector<std::pair<std::string, std::string>>& kvps);

  /// Reads from the primary, failing over to replicas if it is down.
  Result<std::string> Get(const Slice& key);

  /// Point-reads many keys; out[i] is the value for keys[i] or empty when
  /// absent/unreadable. Returns the first non-NotFound error encountered,
  /// OK otherwise. Groups nothing (reads are independent), but saves the
  /// per-call routing setup.
  Status MultiGet(const std::vector<std::string>& keys,
                  std::vector<std::optional<std::string>>* out);

  /// Range scan within a single shard: `shard_key` routes the request; the
  /// scan range [start, end_exclusive) must lie within that shard's rows.
  Status Scan(const Slice& shard_key, const Slice& start,
              const Slice& end_exclusive, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out);

 private:
  /// Applies one shard's batch to its replica set in degraded mode: down
  /// replicas get hints, live ones are written with retries; OK when >= 1
  /// replica applied the batch.
  Status WriteShardBatch(
      const std::vector<int>& replicas, const storage::WriteBatch& batch,
      const std::vector<std::pair<std::string, std::string>>& rows,
      uint64_t kvps, uint64_t bytes);

  /// Runs `op` under the retry policy. Retries transient failures (IOError/
  /// Busy/TimedOut) with exponential backoff + jitter until max_attempts or
  /// the op deadline; gives up immediately when `node` goes down (the
  /// caller fails over or records a hint instead).
  Status RetryOp(const std::function<Status()>& op, Node* node);

  uint64_t NextRand();
  uint64_t BackoffMicros(int completed_attempts);

  Cluster* cluster_;
  /// Jitter RNG state (splitmix64 over an atomic counter: thread-safe and
  /// allocation-free; determinism is not needed for jitter).
  std::atomic<uint64_t> jitter_state_{0x243F6A8885A308D3ull};
};

}  // namespace cluster
}  // namespace iotdb

#endif  // IOTDB_CLUSTER_CLUSTER_H_
