#include "cluster/node.h"

#include <mutex>
#include <span>
#include <vector>

#include "obs/metrics.h"

namespace iotdb {
namespace cluster {

namespace {

/// Global per-op counters, aggregated across all nodes (per-node NodeStats
/// atomics stay exact for Describe()/load-balance math).
struct NodeInstruments {
  obs::Counter* writes;
  obs::Counter* reads;
  obs::Counter* scans;
  obs::Counter* scan_rows;
  obs::Counter* bytes_written;
};

NodeInstruments& Instruments() {
  static NodeInstruments instruments = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return NodeInstruments{registry.GetCounter("cluster.ops.writes"),
                           registry.GetCounter("cluster.ops.reads"),
                           registry.GetCounter("cluster.ops.scans"),
                           registry.GetCounter("cluster.ops.scan_rows"),
                           registry.GetCounter("cluster.ops.bytes_written")};
  }();
  return instruments;
}

}  // namespace

void Node::CorruptionListener::OnQuarantine(const std::string& path,
                                            const Status& cause) {
  node_->OnStoreQuarantine(path, cause);
}

Node::Node(int id, const storage::Options& options, std::string data_dir,
           storage::FaultInjectionEnv* fault_env,
           QuarantineHandler on_quarantine)
    : id_(id),
      obs_primary_kvps_(obs::MetricsRegistry::Global().GetCounter(
          "cluster.node" + std::to_string(id) + ".primary_kvps")),
      options_(options),
      data_dir_(std::move(data_dir)),
      fault_env_(fault_env),
      on_quarantine_(std::move(on_quarantine)) {
  // Every (re)open of the store reports quarantines back to this node.
  options_.corruption_reporter = &corruption_listener_;
}

Result<std::unique_ptr<Node>> Node::Start(
    int id, const storage::Options& options, const std::string& data_dir,
    storage::FaultInjectionEnv* fault_env, QuarantineHandler on_quarantine) {
  auto node = std::unique_ptr<Node>(
      new Node(id, options, data_dir, fault_env, std::move(on_quarantine)));
  IOTDB_ASSIGN_OR_RETURN(node->store_,
                         storage::KVStore::Open(node->options_, data_dir));
  return node;
}

void Node::OnStoreQuarantine(const std::string& path, const Status& cause) {
  // Runs with store locks held: record, flag, forward — nothing else.
  files_quarantined_.fetch_add(1, std::memory_order_relaxed);
  under_repair_.store(true, std::memory_order_release);
  if (on_quarantine_) on_quarantine_(id_, path, cause);
}

bool Node::is_running() const {
  std::shared_lock<std::shared_mutex> lock(lifecycle_mu_);
  return store_ != nullptr;
}

Status Node::NotRunningError() const {
  return Status::IOError("node " + std::to_string(id_) + " is down");
}

Status Node::Crash() {
  // New operations are rejected from here on; in-flight store IO starts
  // failing once the fault env marks the data dir crashed, which also
  // unblocks writers stalled on background work.
  down_.store(true, std::memory_order_release);
  if (fault_env_ != nullptr) fault_env_->MarkCrashed(data_dir_);
  {
    std::unique_lock<std::shared_mutex> lock(lifecycle_mu_);
    store_.reset();  // waits for in-flight ops (shared holders) to drain
  }
  if (fault_env_ != nullptr) {
    IOTDB_RETURN_NOT_OK(fault_env_->Crash(data_dir_));
  }
  crashed_.store(true, std::memory_order_release);
  return Status::OK();
}

Status Node::Restart() {
  if (fault_env_ != nullptr) fault_env_->ClearCrashed(data_dir_);
  std::unique_lock<std::shared_mutex> lock(lifecycle_mu_);
  if (store_ == nullptr) {
    IOTDB_ASSIGN_OR_RETURN(store_,
                           storage::KVStore::Open(options_, data_dir_));
  }
  // Still marked down: the cluster flips the node up after catch-up.
  return Status::OK();
}

Status Node::ApplyBatch(storage::WriteBatch* batch, bool as_primary,
                        uint64_t kvps, uint64_t bytes) {
  std::shared_lock<std::shared_mutex> lock(lifecycle_mu_);
  if (is_down() || store_ == nullptr) return NotRunningError();
  IOTDB_RETURN_NOT_OK(store_->Write(storage::WriteOptions(), batch));
  writes_.fetch_add(kvps, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  if (as_primary) {
    primary_writes_.fetch_add(kvps, std::memory_order_relaxed);
  }
  if (obs::Enabled()) {
    Instruments().writes->Add(kvps);
    Instruments().bytes_written->Add(bytes);
    if (as_primary) obs_primary_kvps_->Add(kvps);
  }
  return Status::OK();
}

Status Node::ApplyRows(
    const std::vector<std::pair<std::string, std::string>>& rows,
    bool as_primary, uint64_t kvps, uint64_t bytes) {
  std::shared_lock<std::shared_mutex> lock(lifecycle_mu_);
  if (is_down() || store_ == nullptr) return NotRunningError();
  std::vector<storage::KvEntry> entries;
  entries.reserve(rows.size());
  for (const auto& [key, value] : rows) {
    entries.push_back({Slice(key), Slice(value)});
  }
  IOTDB_RETURN_NOT_OK(store_->PutMany(
      storage::WriteOptions(),
      std::span<const storage::KvEntry>(entries.data(), entries.size())));
  writes_.fetch_add(kvps, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  if (as_primary) {
    primary_writes_.fetch_add(kvps, std::memory_order_relaxed);
  }
  if (obs::Enabled()) {
    Instruments().writes->Add(kvps);
    Instruments().bytes_written->Add(bytes);
    if (as_primary) obs_primary_kvps_->Add(kvps);
  }
  return Status::OK();
}

Status Node::ApplyHintBatch(
    const std::vector<std::pair<std::string, std::string>>& rows) {
  std::shared_lock<std::shared_mutex> lock(lifecycle_mu_);
  if (store_ == nullptr) return NotRunningError();
  std::vector<storage::KvEntry> entries;
  entries.reserve(rows.size());
  for (const auto& [key, value] : rows) {
    entries.push_back({Slice(key), Slice(value)});
  }
  return store_->PutMany(
      storage::WriteOptions(),
      std::span<const storage::KvEntry>(entries.data(), entries.size()));
}

Status Node::UnderRepairError() const {
  return Status::Corruption("node " + std::to_string(id_) +
                            " is under corruption repair; read from another "
                            "replica");
}

Result<std::string> Node::Get(const Slice& key) {
  std::shared_lock<std::shared_mutex> lock(lifecycle_mu_);
  if (is_down() || store_ == nullptr) return NotRunningError();
  // A quarantine removed keys from this store: a local miss — or a stale
  // deeper-level version — cannot be trusted until shards are re-copied.
  if (under_repair()) return UnderRepairError();
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) Instruments().reads->Increment();
  return store_->Get(storage::ReadOptions(), key);
}

Status Node::Scan(const Slice& start, const Slice& end_exclusive,
                  size_t limit,
                  std::vector<std::pair<std::string, std::string>>* out) {
  std::shared_lock<std::shared_mutex> lock(lifecycle_mu_);
  if (is_down() || store_ == nullptr) return NotRunningError();
  if (under_repair()) return UnderRepairError();
  scans_.fetch_add(1, std::memory_order_relaxed);
  size_t before = out->size();
  IOTDB_RETURN_NOT_OK(
      store_->Scan(storage::ReadOptions(), start, end_exclusive, limit, out));
  scan_rows_read_.fetch_add(out->size() - before, std::memory_order_relaxed);
  if (obs::Enabled()) {
    Instruments().scans->Increment();
    Instruments().scan_rows->Add(out->size() - before);
  }
  return Status::OK();
}

NodeStats Node::GetStats() const {
  NodeStats stats;
  stats.writes = writes_.load(std::memory_order_relaxed);
  stats.primary_writes = primary_writes_.load(std::memory_order_relaxed);
  stats.reads = reads_.load(std::memory_order_relaxed);
  stats.scans = scans_.load(std::memory_order_relaxed);
  stats.scan_rows_read = scan_rows_read_.load(std::memory_order_relaxed);
  stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  stats.skipped_replica_writes =
      skipped_replica_writes_.load(std::memory_order_relaxed);
  return stats;
}

Status Node::Purge() {
  if (fault_env_ != nullptr) fault_env_->ClearCrashed(data_dir_);
  std::unique_lock<std::shared_mutex> lock(lifecycle_mu_);
  store_.reset();
  IOTDB_RETURN_NOT_OK(storage::KVStore::Destroy(options_, data_dir_));
  IOTDB_ASSIGN_OR_RETURN(store_, storage::KVStore::Open(options_, data_dir_));
  crashed_.store(false, std::memory_order_release);
  down_.store(false, std::memory_order_release);
  under_repair_.store(false, std::memory_order_release);
  files_quarantined_ = 0;
  writes_ = 0;
  primary_writes_ = 0;
  reads_ = 0;
  scans_ = 0;
  scan_rows_read_ = 0;
  bytes_written_ = 0;
  skipped_replica_writes_ = 0;
  return Status::OK();
}

}  // namespace cluster
}  // namespace iotdb
