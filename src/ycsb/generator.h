#ifndef IOTDB_YCSB_GENERATOR_H_
#define IOTDB_YCSB_GENERATOR_H_

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace iotdb {
namespace ycsb {

/// Number-stream generators in the YCSB tradition. TPCx-IoT keeps YCSB's
/// generator layer (the kit is a YCSB derivative); the core TPCx-IoT
/// workload uses counter/uniform streams while CoreWorkload exposes the full
/// set for general benchmarking.
class Generator {
 public:
  virtual ~Generator() = default;
  /// Next value of the stream.
  virtual uint64_t Next() = 0;
  /// Most recent value returned by Next().
  virtual uint64_t Last() = 0;
};

/// Uniformly random values in [lb, ub] inclusive.
class UniformGenerator final : public Generator {
 public:
  UniformGenerator(uint64_t lb, uint64_t ub, uint64_t seed = 7)
      : lb_(lb), ub_(ub), rng_(seed), last_(lb) {
    assert(lb <= ub);
  }

  uint64_t Next() override { return last_ = rng_.UniformRange(lb_, ub_); }
  uint64_t Last() override { return last_; }

 private:
  uint64_t lb_, ub_;
  Random rng_;
  uint64_t last_;
};

/// Monotonic counter; thread-safe (YCSB uses it for insert key order).
class CounterGenerator final : public Generator {
 public:
  explicit CounterGenerator(uint64_t start) : counter_(start) {}

  uint64_t Next() override {
    return counter_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t Last() override {
    return counter_.load(std::memory_order_relaxed) - 1;
  }

  void Set(uint64_t value) {
    counter_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> counter_;
};

/// Zipfian-distributed values in [0, n): popular items are chosen far more
/// often. Implements the Gray et al. algorithm used by YCSB, including
/// support for growing item counts.
class ZipfianGenerator final : public Generator {
 public:
  static constexpr double kZipfianConstant = 0.99;

  ZipfianGenerator(uint64_t items, double zipfian_constant = kZipfianConstant,
                   uint64_t seed = 7);

  uint64_t Next() override;
  uint64_t Last() override { return last_; }

  /// Grows the item universe (used by the latest distribution).
  void SetItemCount(uint64_t items);

 private:
  static double ZetaStatic(uint64_t n, double theta);

  uint64_t items_;
  double theta_;
  double zeta_n_;
  double alpha_, zeta2theta_, eta_;
  Random rng_;
  uint64_t last_ = 0;
};

/// Zipfian with the popular items scattered across the keyspace via FNV
/// hashing, so hot keys are not clustered (YCSB "scrambled zipfian").
class ScrambledZipfianGenerator final : public Generator {
 public:
  explicit ScrambledZipfianGenerator(uint64_t items, uint64_t seed = 7)
      : items_(items), zipfian_(items, ZipfianGenerator::kZipfianConstant,
                                seed) {}

  uint64_t Next() override;
  uint64_t Last() override { return last_; }

 private:
  uint64_t items_;
  ZipfianGenerator zipfian_;
  uint64_t last_ = 0;
};

/// Skews towards the most recently inserted items: item = last_insert - z
/// where z is zipfian. Used by YCSB workload D.
class SkewedLatestGenerator final : public Generator {
 public:
  explicit SkewedLatestGenerator(CounterGenerator* basis, uint64_t seed = 7)
      : basis_(basis), zipfian_(basis->Last() + 1,
                                ZipfianGenerator::kZipfianConstant, seed) {}

  uint64_t Next() override;
  uint64_t Last() override { return last_; }

 private:
  CounterGenerator* basis_;
  ZipfianGenerator zipfian_;
  uint64_t last_ = 0;
};

/// A fraction of accesses go to a "hot" subset of the keyspace.
class HotspotGenerator final : public Generator {
 public:
  HotspotGenerator(uint64_t lb, uint64_t ub, double hot_set_fraction,
                   double hot_op_fraction, uint64_t seed = 7)
      : lb_(lb),
        hot_items_(static_cast<uint64_t>((ub - lb + 1) * hot_set_fraction)),
        cold_items_((ub - lb + 1) - hot_items_),
        hot_op_fraction_(hot_op_fraction),
        rng_(seed) {
    if (hot_items_ == 0) hot_items_ = 1;
  }

  uint64_t Next() override {
    if (rng_.NextDouble() < hot_op_fraction_) {
      last_ = lb_ + rng_.Uniform(hot_items_);
    } else {
      last_ = lb_ + hot_items_ +
              rng_.Uniform(cold_items_ == 0 ? 1 : cold_items_);
    }
    return last_;
  }
  uint64_t Last() override { return last_; }

 private:
  uint64_t lb_;
  uint64_t hot_items_;
  uint64_t cold_items_;
  double hot_op_fraction_;
  Random rng_;
  uint64_t last_ = 0;
};

/// Weighted choice over a small set of labels (operation mix).
class DiscreteGenerator {
 public:
  explicit DiscreteGenerator(uint64_t seed = 7) : rng_(seed) {}

  void AddValue(std::string value, double weight) {
    values_.emplace_back(std::move(value), weight);
    total_weight_ += weight;
  }

  /// Weighted-random label. Requires at least one value.
  const std::string& Next();

  double total_weight() const { return total_weight_; }

 private:
  std::vector<std::pair<std::string, double>> values_;
  double total_weight_ = 0;
  Random rng_;
};

/// 64-bit FNV-1a, used by the scrambled zipfian and YCSB key hashing.
uint64_t FnvHash64(uint64_t value);

}  // namespace ycsb
}  // namespace iotdb

#endif  // IOTDB_YCSB_GENERATOR_H_
