#ifndef IOTDB_YCSB_CORE_WORKLOAD_H_
#define IOTDB_YCSB_CORE_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/properties.h"
#include "common/random.h"
#include "common/result.h"
#include "ycsb/db.h"
#include "ycsb/generator.h"
#include "ycsb/measurements.h"

namespace iotdb {
namespace ycsb {

/// YCSB's CoreWorkload: a configurable read/update/insert/scan mix over a
/// keyspace with a pluggable request distribution. Kept because TPCx-IoT is
/// a YCSB derivative and the framework remains generally useful; the
/// TPCx-IoT-specific workload lives in iot::DriverInstance.
///
/// Recognised properties (YCSB names):
///   recordcount, operationcount, fieldlength,
///   readproportion, updateproportion, insertproportion, scanproportion,
///   requestdistribution = uniform | zipfian | latest,
///   maxscanlength, insertstart, seed
class CoreWorkload {
 public:
  static Result<std::unique_ptr<CoreWorkload>> Create(
      const Properties& props);

  /// One load-phase insert.
  Status DoInsert(DB* db, Measurements* measurements);

  /// One transaction-phase operation according to the mix.
  Status DoTransaction(DB* db, Measurements* measurements);

  uint64_t record_count() const { return record_count_; }
  uint64_t operation_count() const { return operation_count_; }

  /// Key encoding used by the workload ("user" + zero-padded hash).
  static std::string BuildKeyName(uint64_t key_num);

 private:
  CoreWorkload() = default;

  std::string NextSequenceKey();
  std::string NextTransactionKey();
  std::string BuildValue();

  uint64_t record_count_ = 0;
  uint64_t operation_count_ = 0;
  size_t field_length_ = 100;
  uint64_t max_scan_length_ = 100;

  std::mutex mu_;
  std::unique_ptr<CounterGenerator> insert_key_sequence_;
  std::unique_ptr<Generator> key_chooser_;
  std::unique_ptr<UniformGenerator> scan_length_chooser_;
  DiscreteGenerator op_chooser_;
  Random value_rng_{42};
};

}  // namespace ycsb
}  // namespace iotdb

#endif  // IOTDB_YCSB_CORE_WORKLOAD_H_
