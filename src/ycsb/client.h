#ifndef IOTDB_YCSB_CLIENT_H_
#define IOTDB_YCSB_CLIENT_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "ycsb/core_workload.h"
#include "ycsb/db.h"
#include "ycsb/measurements.h"

namespace iotdb {
namespace ycsb {

/// Multi-threaded workload executor (YCSB's Client). Each thread runs the
/// shared workload against the shared DB binding; an optional target
/// throughput throttles the aggregate operation rate.
struct ClientOptions {
  int threads = 1;
  /// Target operations/second across all threads; 0 = unthrottled.
  double target_ops_per_sec = 0;
};

struct ClientResult {
  uint64_t operations = 0;
  uint64_t failures = 0;
  uint64_t elapsed_micros = 0;
  double Throughput() const {
    return elapsed_micros == 0
               ? 0.0
               : static_cast<double>(operations) * 1e6 / elapsed_micros;
  }
};

/// Runs workload->record_count() inserts (the YCSB load phase).
ClientResult RunLoadPhase(const ClientOptions& options, DB* db,
                          CoreWorkload* workload, Measurements* measurements);

/// Runs workload->operation_count() transactions.
ClientResult RunTransactionPhase(const ClientOptions& options, DB* db,
                                 CoreWorkload* workload,
                                 Measurements* measurements);

}  // namespace ycsb
}  // namespace iotdb

#endif  // IOTDB_YCSB_CLIENT_H_
