#ifndef IOTDB_YCSB_MEASUREMENTS_H_
#define IOTDB_YCSB_MEASUREMENTS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/histogram.h"

namespace iotdb {
namespace ycsb {

/// Thread-safe per-operation-type latency measurements (YCSB's measurement
/// subsystem). Latencies are recorded in microseconds.
class Measurements {
 public:
  Measurements() = default;
  Measurements(const Measurements&) = delete;
  Measurements& operator=(const Measurements&) = delete;

  void Record(const std::string& op, uint64_t latency_micros);
  void RecordFailure(const std::string& op);

  /// Snapshot of one operation type's histogram (zeroed if unseen).
  Histogram GetHistogram(const std::string& op) const;
  uint64_t GetFailures(const std::string& op) const;

  /// All op types seen so far.
  std::map<std::string, Histogram> Snapshot() const;

  /// Merges another Measurements into this one.
  void Merge(const Measurements& other);

  void Reset();

  /// Multi-line "op count mean p95 p99 max" report.
  std::string Report() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, uint64_t> failures_;
};

}  // namespace ycsb
}  // namespace iotdb

#endif  // IOTDB_YCSB_MEASUREMENTS_H_
