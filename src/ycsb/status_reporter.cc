#include "ycsb/status_reporter.h"

#include <cstdio>

#include "common/logging.h"

namespace iotdb {
namespace ycsb {

StatusReporter::StatusReporter(const std::atomic<uint64_t>* counter,
                               uint64_t interval_micros, Callback on_sample)
    : counter_(counter),
      interval_micros_(interval_micros > 0 ? interval_micros : 1000000),
      on_sample_(std::move(on_sample)),
      clock_(Clock::Real()) {
  if (!on_sample_) {
    on_sample_ = [](const Sample& sample) {
      IOTDB_LOG(Info) << Format(sample);
    };
  }
}

StatusReporter::~StatusReporter() { Stop(); }

void StatusReporter::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  start_micros_ = clock_->NowMicros();
  thread_ = std::thread([this] { Loop(); });
}

void StatusReporter::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  if (thread_.joinable()) thread_.join();
}

void StatusReporter::Loop() {
  uint64_t last_ops = counter_->load(std::memory_order_relaxed);
  uint64_t last_time = start_micros_;
  while (running_.load(std::memory_order_relaxed)) {
    // Sleep in small slices so Stop() returns promptly.
    uint64_t slept = 0;
    while (slept < interval_micros_ &&
           running_.load(std::memory_order_relaxed)) {
      uint64_t slice = std::min<uint64_t>(interval_micros_ - slept, 20000);
      clock_->SleepMicros(slice);
      slept += slice;
    }

    uint64_t now = clock_->NowMicros();
    uint64_t ops = counter_->load(std::memory_order_relaxed);
    Sample sample;
    sample.elapsed_micros = now - start_micros_;
    sample.total_ops = ops;
    uint64_t interval = now - last_time;
    sample.interval_ops_per_sec =
        interval == 0 ? 0
                      : static_cast<double>(ops - last_ops) * 1e6 / interval;
    sample.cumulative_ops_per_sec =
        sample.elapsed_micros == 0
            ? 0
            : static_cast<double>(ops) * 1e6 / sample.elapsed_micros;
    on_sample_(sample);
    last_ops = ops;
    last_time = now;
  }
}

std::string StatusReporter::Format(const Sample& sample) {
  char buf[160];
  snprintf(buf, sizeof(buf),
           "%llu sec: %llu operations; current %.0f ops/sec, overall "
           "%.0f ops/sec",
           static_cast<unsigned long long>(sample.elapsed_micros / 1000000),
           static_cast<unsigned long long>(sample.total_ops),
           sample.interval_ops_per_sec, sample.cumulative_ops_per_sec);
  return buf;
}

}  // namespace ycsb
}  // namespace iotdb
