#include "ycsb/workloads.h"

#include <cctype>

namespace iotdb {
namespace ycsb {

Result<Properties> StandardWorkload(char name) {
  Properties props;
  props.Set("recordcount", "1000");
  props.Set("operationcount", "1000");
  props.Set("requestdistribution", "zipfian");
  props.Set("readproportion", "0");
  props.Set("updateproportion", "0");
  props.Set("insertproportion", "0");
  props.Set("scanproportion", "0");

  switch (tolower(static_cast<unsigned char>(name))) {
    case 'a':
      props.Set("readproportion", "0.5");
      props.Set("updateproportion", "0.5");
      break;
    case 'b':
      props.Set("readproportion", "0.95");
      props.Set("updateproportion", "0.05");
      break;
    case 'c':
      props.Set("readproportion", "1.0");
      break;
    case 'd':
      props.Set("readproportion", "0.95");
      props.Set("insertproportion", "0.05");
      props.Set("requestdistribution", "latest");
      break;
    case 'e':
      props.Set("scanproportion", "0.95");
      props.Set("insertproportion", "0.05");
      props.Set("maxscanlength", "100");
      break;
    case 'f':
      props.Set("readproportion", "0.5");
      props.Set("updateproportion", "0.5");
      break;
    default:
      return Status::InvalidArgument(
          std::string("unknown standard workload: ") + name);
  }
  return props;
}

}  // namespace ycsb
}  // namespace iotdb
