#ifndef IOTDB_YCSB_DB_H_
#define IOTDB_YCSB_DB_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace iotdb {
namespace ycsb {

/// YCSB's database interface layer: the seam between workloads and systems
/// under test. TPCx-IoT drives a gateway cluster binding; tests can drive a
/// single KVStore or a null sink.
class DB {
 public:
  virtual ~DB() = default;

  virtual Status Insert(const Slice& key, const Slice& value) = 0;

  /// Batch insert; default loops over Insert. Bindings with a client write
  /// buffer override this (the HBase path TPCx-IoT exercises).
  virtual Status InsertBatch(
      const std::vector<std::pair<std::string, std::string>>& kvps);

  virtual Result<std::string> Read(const Slice& key) = 0;

  virtual Status Update(const Slice& key, const Slice& value) {
    return Insert(key, value);
  }

  virtual Status Delete(const Slice& /*key*/) {
    return Status::NotSupported("Delete");
  }

  /// Range scan: rows in [start, end_exclusive), at most `limit` when
  /// limit > 0. `shard_key` routes sharded bindings; unsharded bindings may
  /// ignore it.
  virtual Status Scan(const Slice& shard_key, const Slice& start,
                      const Slice& end_exclusive, size_t limit,
                      std::vector<std::pair<std::string, std::string>>* out)
      = 0;
};

/// A binding that discards writes and returns empty reads. Reproduces the
/// paper's Figure 8 setup of redirecting driver output to /dev/null to
/// measure bare generation speed.
class NullDB final : public DB {
 public:
  Status Insert(const Slice&, const Slice&) override { return Status::OK(); }
  Status InsertBatch(const std::vector<std::pair<std::string, std::string>>&)
      override {
    return Status::OK();
  }
  Result<std::string> Read(const Slice&) override {
    return Status::NotFound("null db");
  }
  Status Scan(const Slice&, const Slice&, const Slice&, size_t,
              std::vector<std::pair<std::string, std::string>>*) override {
    return Status::OK();
  }
};

}  // namespace ycsb
}  // namespace iotdb

#endif  // IOTDB_YCSB_DB_H_
