#ifndef IOTDB_YCSB_WORKLOADS_H_
#define IOTDB_YCSB_WORKLOADS_H_

#include "common/properties.h"
#include "common/result.h"

namespace iotdb {
namespace ycsb {

/// The six standard YCSB core workload presets, as property sets ready for
/// CoreWorkload::Create. Record/operation counts default to small values;
/// override before use.
///
///   A: update heavy (50/50 read/update, zipfian)
///   B: read mostly (95/5 read/update, zipfian)
///   C: read only (100 read, zipfian)
///   D: read latest (95/5 read/insert, latest)
///   E: short ranges (95/5 scan/insert, zipfian)
///   F: read-modify-write (50 read / 50 update, zipfian; the RMW pair is
///      approximated as an update since CoreWorkload has no combined op)
Result<Properties> StandardWorkload(char name);

}  // namespace ycsb
}  // namespace iotdb

#endif  // IOTDB_YCSB_WORKLOADS_H_
