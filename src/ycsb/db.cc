#include "ycsb/db.h"

namespace iotdb {
namespace ycsb {

Status DB::InsertBatch(
    const std::vector<std::pair<std::string, std::string>>& kvps) {
  for (const auto& [key, value] : kvps) {
    IOTDB_RETURN_NOT_OK(Insert(key, value));
  }
  return Status::OK();
}

}  // namespace ycsb
}  // namespace iotdb
