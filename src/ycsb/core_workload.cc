#include "ycsb/core_workload.h"

#include <cinttypes>
#include <cstdio>

#include "common/clock.h"

namespace iotdb {
namespace ycsb {

std::string CoreWorkload::BuildKeyName(uint64_t key_num) {
  // YCSB hashes ordered keys so inserts spread over the keyspace.
  uint64_t hashed = FnvHash64(key_num);
  char buf[32];
  snprintf(buf, sizeof(buf), "user%020" PRIu64, hashed);
  return std::string(buf);
}

Result<std::unique_ptr<CoreWorkload>> CoreWorkload::Create(
    const Properties& props) {
  auto workload = std::unique_ptr<CoreWorkload>(new CoreWorkload());

  IOTDB_ASSIGN_OR_RETURN(int64_t record_count,
                         props.GetInt("recordcount", 1000));
  IOTDB_ASSIGN_OR_RETURN(int64_t operation_count,
                         props.GetInt("operationcount", 1000));
  IOTDB_ASSIGN_OR_RETURN(int64_t field_length,
                         props.GetInt("fieldlength", 100));
  IOTDB_ASSIGN_OR_RETURN(int64_t max_scan_length,
                         props.GetInt("maxscanlength", 100));
  IOTDB_ASSIGN_OR_RETURN(int64_t insert_start,
                         props.GetInt("insertstart", 0));
  IOTDB_ASSIGN_OR_RETURN(int64_t seed, props.GetInt("seed", 7));
  IOTDB_ASSIGN_OR_RETURN(double read_proportion,
                         props.GetDouble("readproportion", 0.95));
  IOTDB_ASSIGN_OR_RETURN(double update_proportion,
                         props.GetDouble("updateproportion", 0.05));
  IOTDB_ASSIGN_OR_RETURN(double insert_proportion,
                         props.GetDouble("insertproportion", 0.0));
  IOTDB_ASSIGN_OR_RETURN(double scan_proportion,
                         props.GetDouble("scanproportion", 0.0));

  if (record_count <= 0) {
    return Status::InvalidArgument("recordcount must be positive");
  }

  workload->record_count_ = static_cast<uint64_t>(record_count);
  workload->operation_count_ = static_cast<uint64_t>(operation_count);
  workload->field_length_ = static_cast<size_t>(field_length);
  workload->max_scan_length_ = static_cast<uint64_t>(max_scan_length);

  workload->insert_key_sequence_ = std::make_unique<CounterGenerator>(
      static_cast<uint64_t>(insert_start) + workload->record_count_);

  std::string distribution = props.Get("requestdistribution", "zipfian");
  if (distribution == "uniform") {
    workload->key_chooser_ = std::make_unique<UniformGenerator>(
        0, workload->record_count_ - 1, seed);
  } else if (distribution == "zipfian") {
    workload->key_chooser_ = std::make_unique<ScrambledZipfianGenerator>(
        workload->record_count_, seed);
  } else if (distribution == "latest") {
    workload->key_chooser_ = std::make_unique<SkewedLatestGenerator>(
        workload->insert_key_sequence_.get(), seed);
  } else {
    return Status::InvalidArgument("unknown requestdistribution: " +
                                   distribution);
  }

  workload->scan_length_chooser_ = std::make_unique<UniformGenerator>(
      1, workload->max_scan_length_, seed + 1);

  if (read_proportion > 0) {
    workload->op_chooser_.AddValue("READ", read_proportion);
  }
  if (update_proportion > 0) {
    workload->op_chooser_.AddValue("UPDATE", update_proportion);
  }
  if (insert_proportion > 0) {
    workload->op_chooser_.AddValue("INSERT", insert_proportion);
  }
  if (scan_proportion > 0) {
    workload->op_chooser_.AddValue("SCAN", scan_proportion);
  }
  if (workload->op_chooser_.total_weight() <= 0) {
    return Status::InvalidArgument("operation mix has zero total weight");
  }
  return workload;
}

std::string CoreWorkload::BuildValue() {
  return value_rng_.RandomPrintableString(field_length_);
}

Status CoreWorkload::DoInsert(DB* db, Measurements* measurements) {
  std::string key;
  std::string value;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t key_num = insert_key_sequence_->Next() - record_count_;
    key = BuildKeyName(key_num);
    value = BuildValue();
  }
  uint64_t start = Clock::Real()->NowMicros();
  Status s = db->Insert(key, value);
  uint64_t elapsed = Clock::Real()->NowMicros() - start;
  if (s.ok()) {
    measurements->Record("INSERT", elapsed);
  } else {
    measurements->RecordFailure("INSERT");
  }
  return s;
}

Status CoreWorkload::DoTransaction(DB* db, Measurements* measurements) {
  std::string op;
  std::string key;
  std::string value;
  uint64_t scan_length = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    op = op_chooser_.Next();
    if (op == "INSERT") {
      key = BuildKeyName(insert_key_sequence_->Next());
      value = BuildValue();
    } else {
      uint64_t key_num;
      do {
        key_num = key_chooser_->Next();
      } while (key_num > insert_key_sequence_->Last());
      key = BuildKeyName(key_num);
      if (op == "UPDATE") value = BuildValue();
      if (op == "SCAN") scan_length = scan_length_chooser_->Next();
    }
  }

  uint64_t start = Clock::Real()->NowMicros();
  Status s;
  if (op == "READ") {
    auto r = db->Read(key);
    // NotFound is a valid outcome for hashed keyspaces under "latest".
    s = r.ok() || r.status().IsNotFound() ? Status::OK() : r.status();
  } else if (op == "UPDATE") {
    s = db->Update(key, value);
  } else if (op == "INSERT") {
    s = db->Insert(key, value);
  } else if (op == "SCAN") {
    std::vector<std::pair<std::string, std::string>> rows;
    s = db->Scan(key, key, Slice(), scan_length, &rows);
  }
  uint64_t elapsed = Clock::Real()->NowMicros() - start;
  if (s.ok()) {
    measurements->Record(op, elapsed);
  } else {
    measurements->RecordFailure(op);
  }
  return s;
}

}  // namespace ycsb
}  // namespace iotdb
