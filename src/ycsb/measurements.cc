#include "ycsb/measurements.h"

#include <cstdio>

#include "obs/metrics.h"

namespace iotdb {
namespace ycsb {

void Measurements::Record(const std::string& op, uint64_t latency_micros) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    histograms_[op].Add(latency_micros);
  }
  // Mirror into the global registry so per-op-type latency shows up in
  // --metrics-out snapshots alongside storage/cluster instruments.
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetHistogram("ycsb.op." + op + "_micros")
        ->Record(latency_micros);
  }
}

void Measurements::RecordFailure(const std::string& op) {
  std::lock_guard<std::mutex> lock(mu_);
  failures_[op]++;
}

Histogram Measurements::GetHistogram(const std::string& op) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(op);
  if (it == histograms_.end()) return Histogram();
  Histogram copy;
  copy.Merge(it->second);
  return copy;
}

uint64_t Measurements::GetFailures(const std::string& op) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = failures_.find(op);
  return it == failures_.end() ? 0 : it->second;
}

std::map<std::string, Histogram> Measurements::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Histogram> out;
  for (const auto& [op, hist] : histograms_) {
    out[op].Merge(hist);
  }
  return out;
}

void Measurements::Merge(const Measurements& other) {
  auto snapshot = other.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [op, hist] : snapshot) {
    histograms_[op].Merge(hist);
  }
}

void Measurements::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_.clear();
  failures_.clear();
}

std::string Measurements::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [op, hist] : histograms_) {
    snprintf(line, sizeof(line),
             "[%s] count=%llu mean=%.1fus p95=%.1fus p99=%.1fus max=%lluus\n",
             op.c_str(), static_cast<unsigned long long>(hist.count()),
             hist.Mean(), hist.Percentile(95), hist.Percentile(99),
             static_cast<unsigned long long>(hist.max()));
    out += line;
  }
  return out;
}

}  // namespace ycsb
}  // namespace iotdb
