#include "ycsb/client.h"

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rate_limiter.h"

namespace iotdb {
namespace ycsb {

namespace {

ClientResult RunPhase(const ClientOptions& options, uint64_t total_ops,
                      const std::function<Status()>& one_op) {
  ClientResult result;
  if (total_ops == 0) return result;

  std::atomic<uint64_t> remaining{total_ops};
  std::atomic<uint64_t> failures{0};
  std::unique_ptr<RateLimiter> limiter;
  if (options.target_ops_per_sec > 0) {
    limiter = std::make_unique<RateLimiter>(
        options.target_ops_per_sec,
        options.target_ops_per_sec / 10 + 1, Clock::Real());
  }

  auto worker = [&]() {
    for (;;) {
      uint64_t prev = remaining.fetch_sub(1, std::memory_order_relaxed);
      if (prev == 0 || prev > total_ops) break;  // drained (underflow guard)
      if (limiter != nullptr) limiter->Acquire();
      if (!one_op().ok()) failures.fetch_add(1, std::memory_order_relaxed);
    }
  };

  uint64_t start = Clock::Real()->NowMicros();
  int num_threads = options.threads > 0 ? options.threads : 1;
  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }
  result.elapsed_micros = Clock::Real()->NowMicros() - start;
  result.operations = total_ops;
  result.failures = failures.load();
  return result;
}

}  // namespace

ClientResult RunLoadPhase(const ClientOptions& options, DB* db,
                          CoreWorkload* workload,
                          Measurements* measurements) {
  return RunPhase(options, workload->record_count(),
                  [&] { return workload->DoInsert(db, measurements); });
}

ClientResult RunTransactionPhase(const ClientOptions& options, DB* db,
                                 CoreWorkload* workload,
                                 Measurements* measurements) {
  return RunPhase(options, workload->operation_count(),
                  [&] { return workload->DoTransaction(db, measurements); });
}

}  // namespace ycsb
}  // namespace iotdb
