#include "ycsb/generator.h"

namespace iotdb {
namespace ycsb {

uint64_t FnvHash64(uint64_t value) {
  constexpr uint64_t kOffsetBasis = 0xCBF29CE484222325ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t hash = kOffsetBasis;
  for (int i = 0; i < 8; ++i) {
    uint64_t octet = value & 0xff;
    value >>= 8;
    hash ^= octet;
    hash *= kPrime;
  }
  return hash;
}

ZipfianGenerator::ZipfianGenerator(uint64_t items, double zipfian_constant,
                                   uint64_t seed)
    : items_(items), theta_(zipfian_constant), rng_(seed) {
  assert(items_ > 0);
  zeta_n_ = ZetaStatic(items_, theta_);
  zeta2theta_ = ZetaStatic(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zeta_n_);
}

double ZipfianGenerator::ZetaStatic(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

void ZipfianGenerator::SetItemCount(uint64_t items) {
  if (items == items_) return;
  // Incremental zeta would be faster; recompute is fine at our item counts.
  items_ = items;
  zeta_n_ = ZetaStatic(items_, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zeta_n_);
}

uint64_t ZipfianGenerator::Next() {
  double u = rng_.NextDouble();
  double uz = u * zeta_n_;
  if (uz < 1.0) {
    last_ = 0;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    last_ = 1;
  } else {
    last_ = static_cast<uint64_t>(
        static_cast<double>(items_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (last_ >= items_) last_ = items_ - 1;
  }
  return last_;
}

uint64_t ScrambledZipfianGenerator::Next() {
  uint64_t z = zipfian_.Next();
  last_ = FnvHash64(z) % items_;
  return last_;
}

uint64_t SkewedLatestGenerator::Next() {
  uint64_t max = basis_->Last();
  zipfian_.SetItemCount(max + 1);
  uint64_t offset = zipfian_.Next();
  last_ = max - offset;
  return last_;
}

const std::string& DiscreteGenerator::Next() {
  assert(!values_.empty());
  double chooser = rng_.NextDouble() * total_weight_;
  for (const auto& [value, weight] : values_) {
    chooser -= weight;
    if (chooser < 0) return value;
  }
  return values_.back().first;
}

}  // namespace ycsb
}  // namespace iotdb
