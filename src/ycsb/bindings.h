#ifndef IOTDB_YCSB_BINDINGS_H_
#define IOTDB_YCSB_BINDINGS_H_

#include <memory>
#include <span>
#include <vector>

#include "cluster/cluster.h"
#include "storage/kvstore.h"
#include "ycsb/db.h"

namespace iotdb {
namespace ycsb {

/// Binding to the in-process gateway cluster — the System Under Test of the
/// TPCx-IoT reproduction. Does not own the cluster.
class ClusterDB final : public DB {
 public:
  explicit ClusterDB(cluster::Cluster* cluster)
      : client_(cluster) {}

  Status Insert(const Slice& key, const Slice& value) override {
    return client_.Put(key, value);
  }

  Status InsertBatch(const std::vector<std::pair<std::string, std::string>>&
                         kvps) override {
    return client_.PutBatch(kvps);
  }

  Result<std::string> Read(const Slice& key) override {
    return client_.Get(key);
  }

  Status Scan(const Slice& shard_key, const Slice& start,
              const Slice& end_exclusive, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out)
      override {
    return client_.Scan(shard_key, start, end_exclusive, limit, out);
  }

 private:
  cluster::Client client_;
};

/// Binding to a single local KVStore (no sharding/replication); used by
/// unit tests and the quickstart example.
class KVStoreDB final : public DB {
 public:
  explicit KVStoreDB(storage::KVStore* store) : store_(store) {}

  Status Insert(const Slice& key, const Slice& value) override {
    return store_->Put(storage::WriteOptions(), key, value);
  }

  Status InsertBatch(const std::vector<std::pair<std::string, std::string>>&
                         kvps) override {
    // Vectorized ingest: one PutMany call routes the whole buffer to the
    // store's write shards instead of committing row by row.
    std::vector<storage::KvEntry> entries;
    entries.reserve(kvps.size());
    for (const auto& [key, value] : kvps) {
      entries.push_back({Slice(key), Slice(value)});
    }
    return store_->PutMany(
        storage::WriteOptions(),
        std::span<const storage::KvEntry>(entries.data(), entries.size()));
  }

  Result<std::string> Read(const Slice& key) override {
    return store_->Get(storage::ReadOptions(), key);
  }

  Status Delete(const Slice& key) override {
    return store_->Delete(storage::WriteOptions(), key);
  }

  Status Scan(const Slice& /*shard_key*/, const Slice& start,
              const Slice& end_exclusive, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out)
      override {
    return store_->Scan(storage::ReadOptions(), start, end_exclusive, limit,
                        out);
  }

 private:
  storage::KVStore* store_;
};

}  // namespace ycsb
}  // namespace iotdb

#endif  // IOTDB_YCSB_BINDINGS_H_
