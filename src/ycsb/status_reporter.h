#ifndef IOTDB_YCSB_STATUS_REPORTER_H_
#define IOTDB_YCSB_STATUS_REPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/clock.h"

namespace iotdb {
namespace ycsb {

/// YCSB-style status thread: while running, samples an operation counter at
/// a fixed interval and reports interval + cumulative throughput. The
/// benchmark driver uses it for progress lines during long ingests.
class StatusReporter {
 public:
  /// Reported once per interval.
  struct Sample {
    uint64_t elapsed_micros = 0;
    uint64_t total_ops = 0;
    double interval_ops_per_sec = 0;
    double cumulative_ops_per_sec = 0;
  };
  using Callback = std::function<void(const Sample&)>;

  /// counter: a monotonically increasing op count read on each tick.
  /// on_sample defaults to a one-line stderr log.
  StatusReporter(const std::atomic<uint64_t>* counter,
                 uint64_t interval_micros, Callback on_sample = nullptr);
  ~StatusReporter();

  StatusReporter(const StatusReporter&) = delete;
  StatusReporter& operator=(const StatusReporter&) = delete;

  /// Starts the sampling thread. Idempotent.
  void Start();

  /// Stops and joins, emitting one final sample. Idempotent.
  void Stop();

  /// Renders a sample as the canonical one-line status string.
  static std::string Format(const Sample& sample);

 private:
  void Loop();

  const std::atomic<uint64_t>* counter_;
  uint64_t interval_micros_;
  Callback on_sample_;
  Clock* clock_;

  std::atomic<bool> running_{false};
  std::thread thread_;
  uint64_t start_micros_ = 0;
};

}  // namespace ycsb
}  // namespace iotdb

#endif  // IOTDB_YCSB_STATUS_REPORTER_H_
