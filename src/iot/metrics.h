#ifndef IOTDB_IOT_METRICS_H_
#define IOTDB_IOT_METRICS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace iotdb {
namespace iot {

/// Timing facts of one measured workload execution.
struct RunMetrics {
  uint64_t kvps_ingested = 0;   // N_i of the paper
  uint64_t ts_start_micros = 0;  // TS_start,i
  uint64_t ts_end_micros = 0;    // TS_end,i

  /// True when the window is well-formed (end strictly after start). An
  /// inverted or empty window means broken clock plumbing; IoTps() over it
  /// would report a fake rate, so Validate() makes it a hard error.
  bool HasValidWindow() const { return ts_end_micros > ts_start_micros; }

  /// InvalidArgument with both timestamps when the window is inverted or
  /// empty; surfaced in the FDR instead of a silent zero rate.
  Status Validate() const;

  /// Signed on purpose: an inverted window yields a negative duration
  /// instead of a huge wrapped unsigned one.
  double ElapsedSeconds() const {
    return (static_cast<double>(ts_end_micros) -
            static_cast<double>(ts_start_micros)) /
           1e6;
  }

  /// Equation 4: the effective ingestion rate of this run. Callers must
  /// Validate() first; on an invalid window this returns 0 rather than
  /// garbage, but 0 is not a meaningful rate.
  double IoTps() const {
    double elapsed = ElapsedSeconds();
    return elapsed <= 0 ? 0.0
                        : static_cast<double>(kvps_ingested) / elapsed;
  }
};

/// Selects the performance run between the two measured runs: the one
/// reporting the lower IoTps (the conservative choice the spec's
/// tie-breaking reduces to when both runs ingest the same kvp count).
int PerformanceRunIndex(const RunMetrics& run1, const RunMetrics& run2);

/// Equation 5: price-performance in $ per IoTps.
double PricePerformance(double total_cost_usd, const RunMetrics& run);

/// Formats an IoTps value the way results are published.
std::string FormatIoTps(double iotps);

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_METRICS_H_
