#ifndef IOTDB_IOT_DATA_GENERATOR_H_
#define IOTDB_IOT_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "iot/kvp.h"
#include "iot/rules.h"
#include "iot/sensor.h"

namespace iotdb {
namespace iot {

/// Generates the sensor-reading stream of one power substation (one TPCx-IoT
/// driver instance). Readings round-robin across the 200-sensor catalog.
/// Each reading is stamped with the current clock time (bumped by 1 µs when
/// needed so row keys stay unique), which is what makes the dashboard
/// queries' "last 5 seconds" window line up with the ingest rate the way
/// the paper's Figure 12 shows.
///
/// Generation is deliberately allocation-light: Figure 8 measures the bare
/// generation speed of this path.
class DataGenerator {
 public:
  /// `substation_key` must not contain '.' (the key separator).
  /// `total_readings` is this driver's share of kvps (Equation 3).
  /// `clock` provides timestamps (real for benchmark runs, manual for
  /// deterministic tests).
  DataGenerator(std::string substation_key, uint64_t total_readings,
                uint64_t seed, Clock* clock,
                const SensorCatalog* catalog = &SensorCatalog::Default());

  /// False when the driver's share is exhausted.
  bool HasNext() const { return generated_ < total_readings_; }

  /// Generates and encodes the next reading. Requires HasNext().
  Kvp Next();

  /// Generates the next reading without encoding (used by the simulation
  /// harness, which accounts bytes but stores aggregates).
  Reading NextReading();

  uint64_t generated() const { return generated_; }
  uint64_t total_readings() const { return total_readings_; }
  const std::string& substation_key() const { return substation_key_; }
  uint64_t last_timestamp_micros() const { return last_timestamp_; }

 private:
  std::string substation_key_;
  uint64_t total_readings_;
  uint64_t generated_ = 0;
  uint64_t last_timestamp_ = 0;
  size_t sensor_index_ = 0;
  Random rng_;
  Clock* clock_;
  const SensorCatalog* catalog_;
};

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_DATA_GENERATOR_H_
