#ifndef IOTDB_IOT_PRICING_H_
#define IOTDB_IOT_PRICING_H_

#include <cstdint>
#include <string>
#include <vector>

namespace iotdb {
namespace iot {

/// Category of a priced line item (TPC pricing specification).
enum class PriceCategory {
  kHardware,
  kSoftware,
  kMaintenance,  // three-year maintenance, required
  kOther,
};

const char* PriceCategoryName(PriceCategory category);

/// One line item of the priced configuration.
struct LineItem {
  std::string description;
  std::string part_number;
  PriceCategory category = PriceCategory::kHardware;
  double unit_price_usd = 0;
  int quantity = 1;
  double discount_fraction = 0;  // committed discount, 0..1
  /// Availability date as YYYY-MM-DD; the system availability metric is the
  /// max across items.
  std::string availability_date;

  double ExtendedPrice() const {
    return unit_price_usd * quantity * (1.0 - discount_fraction);
  }
};

/// The priced configuration of a TPCx-IoT result: everything in the SUT
/// plus three-year maintenance; end-user devices and FDR-production tools
/// are excluded by rule.
class PricedConfiguration {
 public:
  void Add(LineItem item) { items_.push_back(std::move(item)); }

  const std::vector<LineItem>& items() const { return items_; }

  double TotalCost() const;
  double CostInCategory(PriceCategory category) const;

  /// Latest availability date across all line items ("" when empty).
  std::string SystemAvailabilityDate() const;

  /// Validates TPC pricing rules: non-empty, positive prices, maintenance
  /// present, availability dates set.
  bool Validate(std::string* problem) const;

  /// A representative configuration modeled on the paper's SUT: `nodes`
  /// Cisco-UCS-class blade servers, two fabric interconnects, SSDs, the
  /// (free) open-source software stack, and three-year support.
  static PricedConfiguration ReferenceGatewayConfig(int nodes);

 private:
  std::vector<LineItem> items_;
};

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_PRICING_H_
