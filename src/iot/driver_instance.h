#ifndef IOTDB_IOT_DRIVER_INSTANCE_H_
#define IOTDB_IOT_DRIVER_INSTANCE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/status.h"
#include "iot/data_generator.h"
#include "iot/query.h"
#include "iot/rules.h"
#include "ycsb/db.h"
#include "ycsb/measurements.h"

namespace iotdb {
namespace iot {

/// Configuration of one TPCx-IoT driver instance (one simulated power
/// substation).
struct DriverOptions {
  std::string substation_key;
  /// This driver's share of the total kvps (Equation 3).
  uint64_t total_kvps = 0;
  /// Client-side write buffer, in kvps per flush (the HBase client write
  /// buffer analogue).
  size_t batch_size = 200;
  uint64_t seed = 1;
  Clock* clock = nullptr;  // defaults to Clock::Real()
};

/// Outcome of one driver instance's workload execution.
struct DriverResult {
  Status status;
  std::string substation_key;
  uint64_t kvps_ingested = 0;
  uint64_t queries_executed = 0;
  uint64_t query_rows_read = 0;  // across both windows of every query
  uint64_t start_micros = 0;
  uint64_t end_micros = 0;
  Histogram query_latency_micros;
  Histogram insert_batch_latency_micros;

  double ElapsedSeconds() const {
    return static_cast<double>(end_micros - start_micros) / 1e6;
  }
  double IngestRate() const {
    double s = ElapsedSeconds();
    return s <= 0 ? 0.0 : static_cast<double>(kvps_ingested) / s;
  }
  double AvgRowsPerQuery() const {
    return queries_executed == 0
               ? 0.0
               : static_cast<double>(query_rows_read) / queries_executed;
  }
};

/// One TPCx-IoT driver instance: ingests this substation's sensor stream in
/// batches while issuing 5 dashboard queries for every 10,000 readings,
/// concurrently with ingestion (the queries run interleaved on the driver's
/// thread, against data being written by all drivers).
class DriverInstance {
 public:
  DriverInstance(const DriverOptions& options, ycsb::DB* db);

  /// Blocking; returns when this driver's kvps share is ingested, an error
  /// occurs, or *abort becomes true. Safe to call from its own thread.
  DriverResult Run(std::atomic<bool>* abort = nullptr,
                   ycsb::Measurements* measurements = nullptr);

 private:
  DriverOptions options_;
  ycsb::DB* db_;
};

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_DRIVER_INSTANCE_H_
