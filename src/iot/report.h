#ifndef IOTDB_IOT_REPORT_H_
#define IOTDB_IOT_REPORT_H_

#include <string>

#include "iot/benchmark_driver.h"
#include "iot/pricing.h"
#include "storage/env.h"

namespace iotdb {
namespace iot {

/// Descriptive facts about the SUT that the FDR must disclose.
struct SutDescription {
  std::string sponsor = "tpcx-iot-cpp reproduction";
  std::string system_name = "in-process gateway cluster";
  int nodes = 0;
  std::string cpu_description = "simulated 2x Intel Xeon E5-2680 v4";
  std::string memory_description = "256 GB per node";
  std::string storage_description = "2x 3.8 TB SATA SSD per node";
  std::string network_description = "2x 10 GbE fabric interconnect";
  std::string software_description =
      "iotdb LSM key-value store, 3-way replication";
  std::string tunables;  // changed-from-default parameters
};

/// Renders the executive summary: the three primary metrics plus the
/// price-configuration totals.
std::string ExecutiveSummary(const BenchmarkResult& result,
                             const PricedConfiguration& pricing,
                             const SutDescription& sut);

/// Renders the full disclosure report: configuration diagrams (textual),
/// tunables, per-iteration timings, check outcomes, and the priced
/// configuration line items.
std::string FullDisclosureReport(const BenchmarkResult& result,
                                 const PricedConfiguration& pricing,
                                 const SutDescription& sut);

/// Writes `dir`/executive_summary.txt and `dir`/full_disclosure_report.txt
/// — the artefacts a result publication ships.
Status WriteReportFiles(storage::Env* env, const std::string& dir,
                        const BenchmarkResult& result,
                        const PricedConfiguration& pricing,
                        const SutDescription& sut);

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_REPORT_H_
