#include "iot/checks.h"

#include <cstdio>

#include "common/md5.h"
#include "iot/kvp.h"
#include "iot/rules.h"

namespace iotdb {
namespace iot {

Result<std::string> Md5OfFile(storage::Env* env, const std::string& path) {
  std::string contents;
  IOTDB_RETURN_NOT_OK(env->ReadFileToString(path, &contents));
  return Md5::HexDigest(Slice(contents));
}

CheckResult FileCheck(storage::Env* env, const std::vector<KitFile>& files) {
  CheckResult result;
  result.name = "file check";
  for (const KitFile& file : files) {
    auto digest = Md5OfFile(env, file.path);
    if (!digest.ok()) {
      result.detail = file.path + ": " + digest.status().ToString();
      return result;
    }
    if (digest.ValueOrDie() != file.expected_md5_hex) {
      result.detail = file.path + ": checksum mismatch (got " +
                      digest.ValueOrDie() + ", want " +
                      file.expected_md5_hex + ")";
      return result;
    }
  }
  result.passed = true;
  result.detail = std::to_string(files.size()) + " kit files verified";
  return result;
}

CheckResult ReplicationCheck(cluster::Cluster* cluster, int probes) {
  CheckResult result;
  result.name = "data replication check";

  if (cluster->options().replication_factor < 3) {
    result.detail = "SUT configured with replication factor " +
                    std::to_string(cluster->options().replication_factor) +
                    " (three-way replication required)";
    return result;
  }

  // Probe: write marker rows and verify each replica node holds them.
  cluster::Client client(cluster);
  for (int i = 0; i < probes; ++i) {
    std::string key = "replcheck." + std::to_string(i) + ".probe";
    std::string value = "probe-value-" + std::to_string(i);
    Status s = client.Put(key, value);
    if (!s.ok()) {
      result.detail = "probe write failed: " + s.ToString();
      return result;
    }
    // The quorum coordinator acks before the slowest replica applies;
    // quiesce so the direct per-node reads below see all three copies.
    s = cluster->WaitReplicationIdle();
    if (!s.ok()) {
      result.detail = "replication did not quiesce: " + s.ToString();
      return result;
    }
    std::vector<int> replicas = cluster->ReplicaNodesFor(key);
    int copies = 0;
    for (int node_id : replicas) {
      auto read = cluster->node(node_id)->store()->Get(
          storage::ReadOptions(), key);
      if (read.ok() && read.ValueOrDie() == value) copies++;
    }
    int required = cluster->effective_replication();
    if (copies < required) {
      result.detail = "probe " + std::to_string(i) + " found on " +
                      std::to_string(copies) + "/" +
                      std::to_string(required) + " replicas";
      return result;
    }
  }
  result.passed = true;
  char buf[128];
  snprintf(buf, sizeof(buf),
           "replication factor %d across %d nodes verified with %d probes",
           cluster->options().replication_factor, cluster->num_nodes(),
           probes);
  result.detail = buf;
  return result;
}

CheckResult DataCheck(const DataCheckInput& input) {
  CheckResult result;
  result.name = "data check";
  char buf[256];

  if (input.ingested_kvps != input.expected_kvps) {
    snprintf(buf, sizeof(buf),
             "ingested %llu kvps, expected %llu",
             static_cast<unsigned long long>(input.ingested_kvps),
             static_cast<unsigned long long>(input.expected_kvps));
    result.detail = buf;
    return result;
  }
  if (input.elapsed_seconds < input.min_run_seconds) {
    snprintf(buf, sizeof(buf),
             "workload execution took %.1fs, below the %.0fs floor",
             input.elapsed_seconds, input.min_run_seconds);
    result.detail = buf;
    return result;
  }
  double sensors = static_cast<double>(input.substations) *
                   Rules::kSensorsPerSubstation;
  double per_sensor = input.elapsed_seconds <= 0 || sensors <= 0
                          ? 0
                          : input.ingested_kvps /
                                input.elapsed_seconds / sensors;
  if (per_sensor < input.min_per_sensor_rate) {
    snprintf(buf, sizeof(buf),
             "per-sensor ingest rate %.1f kvps/s below the %.0f kvps/s floor",
             per_sensor, input.min_per_sensor_rate);
    result.detail = buf;
    return result;
  }
  if (input.enforce_query_rows &&
      input.avg_rows_per_query < input.min_rows_per_query) {
    snprintf(buf, sizeof(buf),
             "average %.1f kvps aggregated per query below the %.0f floor",
             input.avg_rows_per_query, input.min_rows_per_query);
    result.detail = buf;
    return result;
  }

  result.passed = true;
  snprintf(buf, sizeof(buf),
           "%llu kvps in %.1fs (%.1f kvps/s/sensor, %.1f rows/query)",
           static_cast<unsigned long long>(input.ingested_kvps),
           input.elapsed_seconds, per_sensor, input.avg_rows_per_query);
  result.detail = buf;
  return result;
}

}  // namespace iot
}  // namespace iotdb
