#include "iot/run_timeline.h"

#include <algorithm>
#include <cmath>

#include "iot/rules.h"

namespace iotdb {
namespace iot {

namespace {

/// Indices of intervals long enough to carry a rate estimate: at least
/// half the cadence. The final flushed interval is usually a short tail
/// whose rate is noise; a half-cadence floor keeps real intervals (the
/// sampler thread can wake slightly early) while dropping the tail.
std::vector<size_t> CompleteIntervals(const obs::Timeline& timeline) {
  std::vector<size_t> indices;
  const double min_seconds =
      static_cast<double>(timeline.cadence_micros) / 1e6 * 0.5;
  for (size_t i = 0; i < timeline.intervals.size(); ++i) {
    if (timeline.intervals[i].DurationSeconds() >= min_seconds) {
      indices.push_back(i);
    }
  }
  return indices;
}

double MeanIngestRate(const obs::Timeline& timeline,
                      const std::vector<size_t>& indices) {
  if (indices.empty()) return 0;
  double sum = 0;
  for (size_t i : indices) {
    sum += timeline.intervals[i].Rate("driver.ingest.kvps");
  }
  return sum / static_cast<double>(indices.size());
}

}  // namespace

RunTimelineAnalysis AnalyzeRunTimeline(const obs::Timeline& warmup,
                                       const obs::Timeline& measured) {
  RunTimelineAnalysis analysis;

  std::vector<size_t> indices = CompleteIntervals(measured);
  analysis.intervals_analyzed = indices.size();
  if (indices.empty()) return analysis;

  std::vector<double> rates;
  rates.reserve(indices.size());
  for (size_t i : indices) {
    rates.push_back(measured.intervals[i].Rate("driver.ingest.kvps"));
  }

  double sum = 0;
  for (double r : rates) sum += r;
  analysis.mean_ingest_rate = sum / static_cast<double>(rates.size());

  if (analysis.mean_ingest_rate > 0 && rates.size() > 1) {
    double sq = 0;
    for (double r : rates) {
      double d = r - analysis.mean_ingest_rate;
      sq += d * d;
    }
    // Sample variance: a short timeline should not understate its spread.
    double variance = sq / static_cast<double>(rates.size() - 1);
    analysis.ingest_rate_cov =
        std::sqrt(variance) / analysis.mean_ingest_rate;
  }
  analysis.cov_ok = analysis.ingest_rate_cov <= Rules::kMaxSteadyStateCov;

  std::vector<size_t> warmup_indices = CompleteIntervals(warmup);
  if (!warmup_indices.empty() && analysis.mean_ingest_rate > 0) {
    double warmup_mean = MeanIngestRate(warmup, warmup_indices);
    analysis.warmup_drift =
        std::fabs(analysis.mean_ingest_rate - warmup_mean) /
        analysis.mean_ingest_rate;
    analysis.warmup_compared = true;
  }
  analysis.drift_ok = analysis.warmup_drift <= Rules::kMaxWarmupDrift;

  // Dip attribution: intervals below kDipRateFraction of the median rate,
  // annotated with the storage/cluster activity that coincided.
  std::vector<double> sorted_rates = rates;
  std::sort(sorted_rates.begin(), sorted_rates.end());
  double median = sorted_rates[sorted_rates.size() / 2];
  if (median > 0) {
    for (size_t k = 0; k < indices.size(); ++k) {
      if (rates[k] >= median * Rules::kDipRateFraction) continue;
      const obs::TimelineInterval& interval = measured.intervals[indices[k]];
      TimelineDip dip;
      dip.interval_index = indices[k];
      dip.start_micros = interval.start_micros;
      dip.ingest_rate = rates[k];
      dip.fraction_of_median = rates[k] / median;
      dip.stall_micros = interval.CounterDelta("storage.write.stall_micros");
      dip.compaction_bytes =
          interval.CounterDelta("storage.compaction.bytes_read") +
          interval.CounterDelta("storage.compaction.bytes_written");
      dip.flush_bytes =
          interval.CounterDelta("storage.memtable.bytes_flushed");
      dip.scrub_bytes =
          interval.CounterDelta("storage.scrub.bytes_checked");
      dip.hint_queue_depth =
          interval.GaugeValue("cluster.hints.queue_depth");
      analysis.dips.push_back(dip);
    }
  }
  return analysis;
}

}  // namespace iot
}  // namespace iotdb
