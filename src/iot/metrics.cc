#include "iot/metrics.h"

#include <cstdio>

namespace iotdb {
namespace iot {

Status RunMetrics::Validate() const {
  if (HasValidWindow()) return Status::OK();
  return Status::InvalidArgument(
      "invalid measurement window: ts_end (" +
      std::to_string(ts_end_micros) + " us) is not after ts_start (" +
      std::to_string(ts_start_micros) + " us)");
}

int PerformanceRunIndex(const RunMetrics& run1, const RunMetrics& run2) {
  // The spec picks run m with N_m < N_n; with equal kvp counts that reduces
  // to the slower (lower-IoTps) run.
  if (run1.kvps_ingested != run2.kvps_ingested) {
    return run1.kvps_ingested < run2.kvps_ingested ? 0 : 1;
  }
  return run1.IoTps() <= run2.IoTps() ? 0 : 1;
}

double PricePerformance(double total_cost_usd, const RunMetrics& run) {
  double iotps = run.IoTps();
  return iotps <= 0 ? 0.0 : total_cost_usd / iotps;
}

std::string FormatIoTps(double iotps) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.2f IoTps", iotps);
  return buf;
}

}  // namespace iot
}  // namespace iotdb
