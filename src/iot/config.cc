#include "iot/config.h"

#include <set>

namespace iotdb {
namespace iot {

Result<BenchmarkConfig> LoadBenchmarkConfig(const Properties& props) {
  static const std::set<std::string> kKnownKeys = {
      "driver_instances",     "total_kvps",         "batch_size",
      "store.write_shards",
      "seed",                 "min_run_seconds",    "min_per_sensor_rate",
      "min_rows_per_query",   "enforce_query_rows", "skip_warmup",
      "repeatability_tolerance", "timeline.cadence_ms",
      "fault.kill_node",      "fault.at_ops",       "fault.restart_after_ops",
      "fault.corrupt_sstable", "fault.corrupt_at_ops", "fault.corrupt_bits",
      "fault.corrupt_target",  "fault.net_partition_node",
      "fault.net_partition_at_ops", "fault.net_heal_after_ops",
      "fault.net_delay_node", "fault.net_delay_ms", "fault.net_drop_pct",
      "fault.net_dup_pct",    "fault.net_reorder_pct"};
  for (const auto& [key, value] : props.map()) {
    if (kKnownKeys.count(key) == 0) {
      return Status::InvalidArgument("unknown benchmark property: " + key);
    }
  }

  BenchmarkConfig config;
  IOTDB_ASSIGN_OR_RETURN(int64_t instances,
                         props.GetInt("driver_instances", 1));
  IOTDB_ASSIGN_OR_RETURN(
      int64_t total_kvps,
      props.GetInt("total_kvps",
                   static_cast<int64_t>(Rules::kDefaultTotalKvps)));
  IOTDB_ASSIGN_OR_RETURN(int64_t batch_size, props.GetInt("batch_size", 200));
  IOTDB_ASSIGN_OR_RETURN(int64_t write_shards,
                         props.GetInt("store.write_shards", 0));
  IOTDB_ASSIGN_OR_RETURN(int64_t seed, props.GetInt("seed", 42));
  IOTDB_ASSIGN_OR_RETURN(
      config.min_run_seconds,
      props.GetDouble("min_run_seconds", Rules::kMinRunSeconds));
  IOTDB_ASSIGN_OR_RETURN(
      config.min_per_sensor_rate,
      props.GetDouble("min_per_sensor_rate", Rules::kMinPerSensorRate));
  IOTDB_ASSIGN_OR_RETURN(
      config.min_rows_per_query,
      props.GetDouble("min_rows_per_query", Rules::kMinKvpsPerQuery));
  IOTDB_ASSIGN_OR_RETURN(config.enforce_query_rows,
                         props.GetBool("enforce_query_rows", false));
  IOTDB_ASSIGN_OR_RETURN(config.skip_warmup,
                         props.GetBool("skip_warmup", false));
  IOTDB_ASSIGN_OR_RETURN(config.repeatability_tolerance,
                         props.GetDouble("repeatability_tolerance", 0));
  IOTDB_ASSIGN_OR_RETURN(int64_t timeline_cadence_ms,
                         props.GetInt("timeline.cadence_ms", 1000));
  if (timeline_cadence_ms < 1) {
    return Status::InvalidArgument("timeline.cadence_ms must be >= 1");
  }
  config.timeline_cadence_micros =
      static_cast<uint64_t>(timeline_cadence_ms) * 1000;
  IOTDB_ASSIGN_OR_RETURN(int64_t fault_kill_node,
                         props.GetInt("fault.kill_node", -1));
  IOTDB_ASSIGN_OR_RETURN(int64_t fault_at_ops,
                         props.GetInt("fault.at_ops", 0));
  IOTDB_ASSIGN_OR_RETURN(int64_t fault_restart_after_ops,
                         props.GetInt("fault.restart_after_ops", 0));

  if (fault_at_ops < 0 || fault_restart_after_ops < 0) {
    return Status::InvalidArgument(
        "fault.at_ops and fault.restart_after_ops must be >= 0");
  }
  if (fault_kill_node < 0 &&
      (fault_at_ops > 0 || fault_restart_after_ops > 0)) {
    return Status::InvalidArgument(
        "fault.at_ops/fault.restart_after_ops require fault.kill_node");
  }
  config.fault_kill_node = static_cast<int>(fault_kill_node);
  config.fault_at_ops = static_cast<uint64_t>(fault_at_ops);
  config.fault_restart_after_ops =
      static_cast<uint64_t>(fault_restart_after_ops);

  IOTDB_ASSIGN_OR_RETURN(int64_t corrupt_node,
                         props.GetInt("fault.corrupt_sstable", -1));
  IOTDB_ASSIGN_OR_RETURN(int64_t corrupt_at_ops,
                         props.GetInt("fault.corrupt_at_ops", 0));
  IOTDB_ASSIGN_OR_RETURN(int64_t corrupt_bits,
                         props.GetInt("fault.corrupt_bits", 8));
  if (corrupt_at_ops < 0) {
    return Status::InvalidArgument("fault.corrupt_at_ops must be >= 0");
  }
  if (corrupt_node < 0 && corrupt_at_ops > 0) {
    return Status::InvalidArgument(
        "fault.corrupt_at_ops requires fault.corrupt_sstable");
  }
  if (corrupt_node >= 0 && corrupt_bits < 1) {
    return Status::InvalidArgument("fault.corrupt_bits must be >= 1");
  }
  config.fault_corrupt_node = static_cast<int>(corrupt_node);
  config.fault_corrupt_at_ops = static_cast<uint64_t>(corrupt_at_ops);
  config.fault_corrupt_bits = static_cast<int>(corrupt_bits);
  config.fault_corrupt_target = props.Get("fault.corrupt_target", "sstable");
  if (config.fault_corrupt_target != "sstable" &&
      config.fault_corrupt_target != "vlog") {
    return Status::InvalidArgument(
        "fault.corrupt_target must be sstable or vlog");
  }

  IOTDB_ASSIGN_OR_RETURN(int64_t net_partition_node,
                         props.GetInt("fault.net_partition_node", -1));
  IOTDB_ASSIGN_OR_RETURN(int64_t net_partition_at_ops,
                         props.GetInt("fault.net_partition_at_ops", 0));
  IOTDB_ASSIGN_OR_RETURN(int64_t net_heal_after_ops,
                         props.GetInt("fault.net_heal_after_ops", 0));
  IOTDB_ASSIGN_OR_RETURN(int64_t net_delay_node,
                         props.GetInt("fault.net_delay_node", -1));
  IOTDB_ASSIGN_OR_RETURN(int64_t net_delay_ms,
                         props.GetInt("fault.net_delay_ms", 0));
  IOTDB_ASSIGN_OR_RETURN(config.fault_net_drop_pct,
                         props.GetDouble("fault.net_drop_pct", 0));
  IOTDB_ASSIGN_OR_RETURN(config.fault_net_dup_pct,
                         props.GetDouble("fault.net_dup_pct", 0));
  IOTDB_ASSIGN_OR_RETURN(config.fault_net_reorder_pct,
                         props.GetDouble("fault.net_reorder_pct", 0));
  if (net_partition_at_ops < 0 || net_heal_after_ops < 0) {
    return Status::InvalidArgument(
        "fault.net_partition_at_ops and fault.net_heal_after_ops must be "
        ">= 0");
  }
  if (net_partition_node < 0 &&
      (net_partition_at_ops > 0 || net_heal_after_ops > 0)) {
    return Status::InvalidArgument(
        "fault.net_partition_at_ops/fault.net_heal_after_ops require "
        "fault.net_partition_node");
  }
  if (net_delay_ms < 0) {
    return Status::InvalidArgument("fault.net_delay_ms must be >= 0");
  }
  if (net_delay_node < 0 && net_delay_ms > 0) {
    return Status::InvalidArgument(
        "fault.net_delay_ms requires fault.net_delay_node");
  }
  if (net_delay_node >= 0 && net_delay_ms < 1) {
    return Status::InvalidArgument(
        "fault.net_delay_node requires fault.net_delay_ms >= 1");
  }
  for (double p : {config.fault_net_drop_pct, config.fault_net_dup_pct,
                   config.fault_net_reorder_pct}) {
    if (p < 0 || p > 1) {
      return Status::InvalidArgument(
          "fault.net_drop_pct/dup_pct/reorder_pct must be in [0, 1]");
    }
  }
  config.fault_net_partition_node = static_cast<int>(net_partition_node);
  config.fault_net_partition_at_ops =
      static_cast<uint64_t>(net_partition_at_ops);
  config.fault_net_heal_after_ops =
      static_cast<uint64_t>(net_heal_after_ops);
  config.fault_net_delay_node = static_cast<int>(net_delay_node);
  config.fault_net_delay_ms = static_cast<uint64_t>(net_delay_ms);

  if (instances < 1) {
    return Status::InvalidArgument("driver_instances must be >= 1");
  }
  if (total_kvps < instances) {
    return Status::InvalidArgument("total_kvps must cover every driver");
  }
  if (batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (write_shards < 0 || write_shards > 64) {
    return Status::InvalidArgument(
        "store.write_shards must be in [0, 64] (0 = auto)");
  }
  config.num_driver_instances = static_cast<int>(instances);
  config.total_kvps = static_cast<uint64_t>(total_kvps);
  config.batch_size = static_cast<size_t>(batch_size);
  config.write_shards = static_cast<int>(write_shards);
  config.seed = static_cast<uint64_t>(seed);
  return config;
}

Properties BenchmarkConfigToProperties(const BenchmarkConfig& config) {
  Properties props;
  props.Set("driver_instances",
            std::to_string(config.num_driver_instances));
  props.Set("total_kvps", std::to_string(config.total_kvps));
  props.Set("batch_size", std::to_string(config.batch_size));
  if (config.write_shards != 0) {
    props.Set("store.write_shards", std::to_string(config.write_shards));
  }
  props.Set("seed", std::to_string(config.seed));
  props.Set("min_run_seconds", std::to_string(config.min_run_seconds));
  props.Set("min_per_sensor_rate",
            std::to_string(config.min_per_sensor_rate));
  props.Set("min_rows_per_query",
            std::to_string(config.min_rows_per_query));
  props.Set("enforce_query_rows",
            config.enforce_query_rows ? "true" : "false");
  props.Set("skip_warmup", config.skip_warmup ? "true" : "false");
  props.Set("timeline.cadence_ms",
            std::to_string(config.timeline_cadence_micros / 1000));
  if (config.fault_kill_node >= 0) {
    props.Set("fault.kill_node", std::to_string(config.fault_kill_node));
    props.Set("fault.at_ops", std::to_string(config.fault_at_ops));
    props.Set("fault.restart_after_ops",
              std::to_string(config.fault_restart_after_ops));
  }
  if (config.fault_corrupt_node >= 0) {
    props.Set("fault.corrupt_sstable",
              std::to_string(config.fault_corrupt_node));
    props.Set("fault.corrupt_at_ops",
              std::to_string(config.fault_corrupt_at_ops));
    props.Set("fault.corrupt_bits",
              std::to_string(config.fault_corrupt_bits));
    props.Set("fault.corrupt_target", config.fault_corrupt_target);
  }
  if (config.fault_net_partition_node >= 0) {
    props.Set("fault.net_partition_node",
              std::to_string(config.fault_net_partition_node));
    props.Set("fault.net_partition_at_ops",
              std::to_string(config.fault_net_partition_at_ops));
    props.Set("fault.net_heal_after_ops",
              std::to_string(config.fault_net_heal_after_ops));
  }
  if (config.fault_net_delay_node >= 0) {
    props.Set("fault.net_delay_node",
              std::to_string(config.fault_net_delay_node));
    props.Set("fault.net_delay_ms",
              std::to_string(config.fault_net_delay_ms));
  }
  if (config.fault_net_drop_pct > 0) {
    props.Set("fault.net_drop_pct",
              std::to_string(config.fault_net_drop_pct));
  }
  if (config.fault_net_dup_pct > 0) {
    props.Set("fault.net_dup_pct", std::to_string(config.fault_net_dup_pct));
  }
  if (config.fault_net_reorder_pct > 0) {
    props.Set("fault.net_reorder_pct",
              std::to_string(config.fault_net_reorder_pct));
  }
  return props;
}

}  // namespace iot
}  // namespace iotdb
