#include "iot/report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <sstream>

#include "iot/run_timeline.h"
#include "obs/attribution.h"
#include "obs/slowops.h"

namespace iotdb {
namespace iot {

namespace {

void AppendLine(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendLine(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
  out->push_back('\n');
}

void AppendCheck(std::string* out, const CheckResult& check) {
  AppendLine(out, "  [%s] %s: %s", check.passed ? "PASS" : "FAIL",
             check.name.c_str(), check.detail.c_str());
}

void AppendRunTimeline(std::string* out, const WorkloadExecution& warmup,
                       const WorkloadExecution& measured) {
  RunTimelineAnalysis analysis =
      AnalyzeRunTimeline(warmup.timeline, measured.timeline);
  out->push_back('\n');
  AppendLine(out, "--- Run timeline (performance run, measured window) ---");
  if (analysis.intervals_analyzed == 0) {
    AppendLine(out,
               "  No complete sampling intervals (run shorter than the "
               "%.1f s cadence); steady-state analysis skipped.",
               static_cast<double>(measured.timeline.cadence_micros) / 1e6);
    return;
  }
  AppendLine(out, "  Intervals: %zu complete at %.1f s cadence%s",
             analysis.intervals_analyzed,
             static_cast<double>(measured.timeline.cadence_micros) / 1e6,
             measured.timeline.dropped_intervals > 0
                 ? " (ring overflow merged oldest intervals)"
                 : "");
  AppendLine(out, "  Mean ingest rate: %.1f kvps/s",
             analysis.mean_ingest_rate);
  AppendLine(out,
             "  [%s] steady-state CoV: %.3f (threshold %.2f)",
             analysis.cov_ok ? "PASS" : "WARN", analysis.ingest_rate_cov,
             Rules::kMaxSteadyStateCov);
  if (analysis.warmup_compared) {
    AppendLine(out,
               "  [%s] warmup-vs-measured drift: %.1f%% (threshold %.0f%%)",
               analysis.drift_ok ? "PASS" : "WARN",
               100.0 * analysis.warmup_drift,
               100.0 * Rules::kMaxWarmupDrift);
  } else {
    AppendLine(out,
               "  Warmup-vs-measured drift: not compared (no warmup "
               "timeline)");
  }
  for (const TimelineDip& dip : analysis.dips) {
    AppendLine(out,
               "  Dip: interval %zu at %.0f%% of median (%.1f kvps/s); "
               "coincident: stall %.1f ms, compaction %llu B, flush %llu B, "
               "scrub %llu B, hint depth %lld",
               dip.interval_index, 100.0 * dip.fraction_of_median,
               dip.ingest_rate, dip.stall_micros / 1000.0,
               static_cast<unsigned long long>(dip.compaction_bytes),
               static_cast<unsigned long long>(dip.flush_bytes),
               static_cast<unsigned long long>(dip.scrub_bytes),
               static_cast<long long>(dip.hint_queue_depth));
  }

  // Write-shard balance over the measured window (Figure 15's skew view at
  // the shard level): per-shard put totals from the storage.shard<i>.puts
  // series, plus the hottest shard as a percentage of the per-shard mean.
  std::map<std::string, uint64_t> shard_puts;
  for (const obs::TimelineInterval& interval : measured.timeline.intervals) {
    for (const auto& [name, value] : interval.delta.counters) {
      constexpr const char kPrefix[] = "storage.shard";
      constexpr const char kSuffix[] = ".puts";
      const size_t prefix_len = sizeof(kPrefix) - 1;
      const size_t suffix_len = sizeof(kSuffix) - 1;
      if (name.size() <= prefix_len + suffix_len) continue;
      if (name.compare(0, prefix_len, kPrefix) != 0) continue;
      if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
        continue;
      }
      shard_puts[name.substr(prefix_len,
                             name.size() - prefix_len - suffix_len)] +=
          value;
    }
  }
  if (!shard_puts.empty()) {
    uint64_t total = 0;
    uint64_t max_puts = 0;
    for (const auto& [id, puts] : shard_puts) {
      total += puts;
      max_puts = std::max(max_puts, puts);
    }
    double imbalance = 100.0;
    if (total > 0) {
      imbalance = 100.0 * static_cast<double>(max_puts) /
                  (static_cast<double>(total) /
                   static_cast<double>(shard_puts.size()));
    }
    std::string detail;
    for (const auto& [id, puts] : shard_puts) {
      if (!detail.empty()) detail += ", ";
      detail += "shard" + id + "=" + std::to_string(puts);
    }
    AppendLine(out,
               "  Write-shard balance: %zu shards, hottest at %.0f%% of "
               "mean (%s)",
               shard_puts.size(), imbalance, detail.c_str());
  }
}

/// FDR "Latency attribution" section: per-stage p50/p99 from the
/// `attrib.<stage>_micros` histograms of the measured window, a dominant-
/// stage critical-path estimate reconciled against the measured op p99, and
/// the slow-op flight recorder's table.
void AppendLatencyAttribution(std::string* out,
                              const WorkloadExecution& measured) {
  const obs::MetricsSnapshot& delta = measured.obs_delta;
  const obs::HistogramSnapshot* stages[obs::kNumStages] = {};
  bool any = false;
  for (int i = 0; i < obs::kNumStages; ++i) {
    std::string key = "attrib.";
    key += obs::StageName(static_cast<obs::Stage>(i));
    key += "_micros";
    auto it = delta.histograms.find(key);
    if (it != delta.histograms.end() && it->second.count > 0) {
      stages[i] = &it->second;
      any = true;
    }
  }
  if (!any && measured.slow_ops.empty()) return;

  out->push_back('\n');
  AppendLine(out,
             "--- Latency attribution (performance run, measured window) "
             "---");
  AppendLine(out, "  %-18s %12s %12s %12s", "stage", "count", "p50 us",
             "p99 us");
  for (int i = 0; i < obs::kNumStages; ++i) {
    if (stages[i] == nullptr) continue;
    AppendLine(out, "  %-18s %12llu %12.1f %12.1f",
               obs::StageName(static_cast<obs::Stage>(i)),
               static_cast<unsigned long long>(stages[i]->count),
               stages[i]->Percentile(50), stages[i]->Percentile(99));
  }

  // Critical-path estimate: sum the per-stage p99s of ONE stage group. The
  // storage stages run on whichever thread executes PutMany — under
  // replication that is a replica mailbox thread, already inside the
  // driver's quorum wait — so summing both groups would double-count. When
  // quorum waits were recorded the op's critical path is the cluster group;
  // otherwise (single-node, no replication layer) it is the storage group.
  const bool replicated =
      stages[static_cast<int>(obs::Stage::kQuorumWait)] != nullptr;
  double estimate = 0.0;
  for (int i = 0; i < obs::kNumStages; ++i) {
    if (stages[i] == nullptr) continue;
    if (obs::IsClusterStage(static_cast<obs::Stage>(i)) != replicated) {
      continue;
    }
    estimate += stages[i]->Percentile(99);
  }
  auto op_it = delta.histograms.find("driver.insert_batch_micros");
  if (estimate > 0.0 && op_it != delta.histograms.end() &&
      op_it->second.count > 0) {
    const double op_p99 = op_it->second.Percentile(99);
    const double ratio = op_p99 > 0.0 ? estimate / op_p99 : 0.0;
    AppendLine(out,
               "  [%s] critical path (%s stages): p99 sum %.1f us vs "
               "measured insert p99 %.1f us (%.0f%%)",
               ratio >= 0.85 && ratio <= 1.15 ? "PASS" : "WARN",
               replicated ? "cluster" : "storage", estimate, op_p99,
               100.0 * ratio);
  }

  if (!measured.slow_ops.empty()) {
    AppendLine(out, "  Slowest ops (flight recorder, %zu kept):",
               measured.slow_ops.size());
    for (const obs::SlowOpRecorder::Record& rec : measured.slow_ops) {
      const obs::OpBreadcrumb& bc = rec.breadcrumb;
      int dominant = 0;
      for (int i = 1; i < obs::kNumStages; ++i) {
        if (bc.stage_micros[i] > bc.stage_micros[dominant]) dominant = i;
      }
      const uint64_t stage_sum = bc.StageSum();
      AppendLine(out,
                 "    %-20s %9.1f ms  stages %9.1f ms (%3.0f%%)  "
                 "dominant %s  trace 0x%llx",
                 bc.op, bc.total_micros / 1000.0, stage_sum / 1000.0,
                 bc.total_micros > 0
                     ? 100.0 * static_cast<double>(stage_sum) /
                           static_cast<double>(bc.total_micros)
                     : 0.0,
                 obs::StageName(static_cast<obs::Stage>(dominant)),
                 static_cast<unsigned long long>(bc.trace_id));
    }
  }
}

}  // namespace

std::string ExecutiveSummary(const BenchmarkResult& result,
                             const PricedConfiguration& pricing,
                             const SutDescription& sut) {
  std::string out;
  AppendLine(&out, "==================================================");
  AppendLine(&out, " TPCx-IoT Executive Summary");
  AppendLine(&out, "==================================================");
  AppendLine(&out, "Sponsor:            %s", sut.sponsor.c_str());
  AppendLine(&out, "System:             %s (%d nodes)",
             sut.system_name.c_str(), sut.nodes);
  double iotps = result.IoTps();
  double cost = pricing.TotalCost();
  AppendLine(&out, "Performance:        %.2f IoTps", iotps);
  AppendLine(&out, "Price-Performance:  %.4f $/IoTps",
             iotps > 0 ? cost / iotps : 0.0);
  AppendLine(&out, "Total system cost:  $%.2f", cost);
  AppendLine(&out, "Availability date:  %s",
             pricing.SystemAvailabilityDate().c_str());
  AppendLine(&out, "Result validity:    %s",
             result.valid ? "VALID" : ("INVALID: " +
                                       result.invalid_reason).c_str());
  return out;
}

std::string FullDisclosureReport(const BenchmarkResult& result,
                                 const PricedConfiguration& pricing,
                                 const SutDescription& sut) {
  std::string out = ExecutiveSummary(result, pricing, sut);

  out.push_back('\n');
  AppendLine(&out, "--- Measured configuration ---");
  AppendLine(&out, "  Nodes:    %d", sut.nodes);
  AppendLine(&out, "  CPU:      %s", sut.cpu_description.c_str());
  AppendLine(&out, "  Memory:   %s", sut.memory_description.c_str());
  AppendLine(&out, "  Storage:  %s", sut.storage_description.c_str());
  AppendLine(&out, "  Network:  %s", sut.network_description.c_str());
  AppendLine(&out, "  Software: %s", sut.software_description.c_str());
  if (!sut.tunables.empty()) {
    AppendLine(&out, "  Tunables changed from defaults:");
    AppendLine(&out, "    %s", sut.tunables.c_str());
  }

  out.push_back('\n');
  AppendLine(&out, "--- Prerequisite checks ---");
  AppendCheck(&out, result.file_check);
  AppendCheck(&out, result.replication_check);

  for (int i = 0; i < 2; ++i) {
    const IterationResult& iter = result.iterations[i];
    out.push_back('\n');
    AppendLine(&out, "--- Iteration %d ---", i + 1);
    AppendLine(&out, "  Warmup:   %llu kvps in %.1f s",
               static_cast<unsigned long long>(
                   iter.warmup.metrics.kvps_ingested),
               iter.warmup.metrics.ElapsedSeconds());
    AppendLine(&out, "  Measured: %llu kvps in %.1f s -> %.2f IoTps",
               static_cast<unsigned long long>(
                   iter.measured.metrics.kvps_ingested),
               iter.measured.metrics.ElapsedSeconds(),
               iter.measured.metrics.IoTps());
    Histogram queries = iter.measured.MergedQueryLatency();
    if (queries.count() > 0) {
      AppendLine(&out,
                 "  Queries:  %llu executed, avg %.1f ms, p95 %.1f ms, "
                 "max %.1f ms, avg rows %.1f",
                 static_cast<unsigned long long>(queries.count()),
                 queries.Mean() / 1000.0, queries.Percentile(95) / 1000.0,
                 static_cast<double>(queries.max()) / 1000.0,
                 iter.measured.AvgRowsPerQuery());
    }
    const cluster::FaultRecoveryStats& faults = iter.measured.faults;
    if (faults.node_crashes + faults.node_restarts + faults.hinted_kvps +
            faults.recopied_kvps >
        0) {
      AppendLine(&out,
                 "  Faults:   %llu node crashes, %llu restarts, "
                 "%llu hinted kvps (%llu replayed, %llu overflows), "
                 "%llu re-copied kvps",
                 static_cast<unsigned long long>(faults.node_crashes),
                 static_cast<unsigned long long>(faults.node_restarts),
                 static_cast<unsigned long long>(faults.hinted_kvps),
                 static_cast<unsigned long long>(faults.hint_replayed_kvps),
                 static_cast<unsigned long long>(faults.hint_overflows),
                 static_cast<unsigned long long>(faults.recopied_kvps));
    }
    const IntegrityStats& integrity = iter.measured.integrity;
    if (integrity.Any()) {
      AppendLine(&out,
                 "  Data integrity: injected %llu corrupt files (%llu bits "
                 "flipped), detected & quarantined %llu, %llu reads "
                 "re-served from healthy replicas, %llu shard re-copies",
                 static_cast<unsigned long long>(integrity.files_corrupted),
                 static_cast<unsigned long long>(integrity.bits_flipped),
                 static_cast<unsigned long long>(
                     integrity.files_quarantined),
                 static_cast<unsigned long long>(integrity.read_repairs),
                 static_cast<unsigned long long>(integrity.shard_recopies));
      if (integrity.files_quarantined < integrity.files_corrupted) {
        AppendLine(&out,
                   "  WARNING: %llu injected corrupt files were not "
                   "detected by the scrub",
                   static_cast<unsigned long long>(
                       integrity.files_corrupted -
                       integrity.files_quarantined));
      }
      for (size_t n = 0; n < integrity.node_wal_dropped_bytes.size(); ++n) {
        if (integrity.node_wal_dropped_bytes[n] == 0) continue;
        AppendLine(&out,
                   "  WARNING: node %zu dropped %llu corrupt WAL bytes "
                   "during recovery",
                   n,
                   static_cast<unsigned long long>(
                       integrity.node_wal_dropped_bytes[n]));
      }
    }
    const cluster::AvailabilityStats& avail = iter.measured.availability;
    if (avail.writes_attempted > 0) {
      AppendLine(&out, "  --- Availability ---");
      AppendLine(&out,
                 "  Writes: %llu attempted, %llu quorum-met (%.2f%%), "
                 "%llu unavailable",
                 static_cast<unsigned long long>(avail.writes_attempted),
                 static_cast<unsigned long long>(avail.writes_quorum_met),
                 100.0 * static_cast<double>(avail.writes_quorum_met) /
                     static_cast<double>(avail.writes_attempted),
                 static_cast<unsigned long long>(avail.writes_unavailable));
      if (avail.straggler_hinted_kvps + avail.deadline_exceeded +
              avail.duplicate_acks_ignored >
          0) {
        AppendLine(&out,
                   "  Degradation: %llu straggler-hinted kvps, %llu write "
                   "deadlines exceeded, %llu duplicate acks ignored",
                   static_cast<unsigned long long>(
                       avail.straggler_hinted_kvps),
                   static_cast<unsigned long long>(avail.deadline_exceeded),
                   static_cast<unsigned long long>(
                       avail.duplicate_acks_ignored));
      }
      const cluster::NetFaultCounters& net = iter.measured.net_faults;
      if (net.dropped + net.duplicated + net.reordered + net.delayed +
              net.partition_blocked >
          0) {
        AppendLine(&out,
                   "  Net faults: %llu messages sent; %llu dropped, "
                   "%llu duplicated, %llu reordered, %llu delayed, "
                   "%llu partition-blocked",
                   static_cast<unsigned long long>(net.sent),
                   static_cast<unsigned long long>(net.dropped),
                   static_cast<unsigned long long>(net.duplicated),
                   static_cast<unsigned long long>(net.reordered),
                   static_cast<unsigned long long>(net.delayed),
                   static_cast<unsigned long long>(net.partition_blocked));
      }
      // Every attempted quorum write must resolve to exactly one outcome;
      // a mismatch means the coordinator lost track of a write.
      const bool accounted =
          avail.writes_attempted ==
          avail.writes_quorum_met + avail.writes_unavailable;
      AppendLine(&out,
                 "  [%s] write accounting: attempted == quorum-met + "
                 "unavailable",
                 accounted ? "PASS" : "FAIL");
    }
    Status window = iter.measured.metrics.Validate();
    AppendLine(&out, "  [%s] measurement window: %s",
               window.ok() ? "PASS" : "FAIL",
               window.ok() ? "ts_end after ts_start"
                           : window.message().c_str());
    AppendCheck(&out, iter.data_check);
  }

  out.push_back('\n');
  AppendLine(&out, "--- Performance run: iteration %d (repeatability "
             "delta %.2f%%) ---",
             result.performance_run + 1,
             100.0 * result.RepeatabilityDelta());

  const IterationResult& perf = result.iterations[result.performance_run];
  if (!perf.measured.timeline.empty()) {
    AppendRunTimeline(&out, perf.warmup, perf.measured);
  }

  const obs::MetricsSnapshot& obs_delta = perf.measured.obs_delta;
  if (!obs_delta.empty()) {
    out.push_back('\n');
    AppendLine(&out,
               "--- Observability (performance run, measured window) ---");
    out += obs_delta.ToTable();
    auto dropped = obs_delta.gauges.find("obs.trace.dropped_spans");
    if (dropped != obs_delta.gauges.end() && dropped->second > 0) {
      AppendLine(&out,
                 "  WARNING: trace ring dropped %lld spans (oldest "
                 "overwritten); flows in the exported trace may be "
                 "incomplete",
                 static_cast<long long>(dropped->second));
    }
  }

  AppendLatencyAttribution(&out, perf.measured);

  out.push_back('\n');
  AppendLine(&out, "--- Priced configuration ---");
  for (const LineItem& item : pricing.items()) {
    AppendLine(&out, "  %-48s %-18s qty %3d  $%12.2f  (%s, avail %s)",
               item.description.c_str(), item.part_number.c_str(),
               item.quantity, item.ExtendedPrice(),
               PriceCategoryName(item.category),
               item.availability_date.c_str());
  }
  AppendLine(&out, "  %-70s $%12.2f", "TOTAL", pricing.TotalCost());
  return out;
}

Status WriteReportFiles(storage::Env* env, const std::string& dir,
                        const BenchmarkResult& result,
                        const PricedConfiguration& pricing,
                        const SutDescription& sut) {
  IOTDB_RETURN_NOT_OK(env->CreateDir(dir));
  IOTDB_RETURN_NOT_OK(
      env->WriteStringToFile(dir + "/executive_summary.txt",
                             ExecutiveSummary(result, pricing, sut)));
  IOTDB_RETURN_NOT_OK(env->WriteStringToFile(
      dir + "/full_disclosure_report.txt",
      FullDisclosureReport(result, pricing, sut)));
  // Machine-readable layer breakdown of the performance run's measured
  // window; omitted when the obs registry was disabled for the run.
  const obs::MetricsSnapshot& obs_delta =
      result.iterations[result.performance_run].measured.obs_delta;
  if (!obs_delta.empty()) {
    IOTDB_RETURN_NOT_OK(env->WriteStringToFile(dir + "/metrics.json",
                                               obs_delta.ToJson()));
  }
  // Per-interval time series of the same window (the FDR "Run timeline"
  // section's raw data); omitted when the sampler never ran.
  const obs::Timeline& timeline =
      result.iterations[result.performance_run].measured.timeline;
  if (!timeline.empty()) {
    IOTDB_RETURN_NOT_OK(env->WriteStringToFile(dir + "/timeline.json",
                                               timeline.ToJson()));
  }
  // Slow-op flight recorder of the same window (the FDR "Latency
  // attribution" slow-op table's raw data); omitted when nothing was kept.
  const std::vector<obs::SlowOpRecorder::Record>& slow_ops =
      result.iterations[result.performance_run].measured.slow_ops;
  if (!slow_ops.empty()) {
    IOTDB_RETURN_NOT_OK(env->WriteStringToFile(
        dir + "/slowops.json", obs::SlowOpRecorder::ToJson(slow_ops)));
  }
  return Status::OK();
}

}  // namespace iot
}  // namespace iotdb
