#ifndef IOTDB_IOT_QUERY_H_
#define IOTDB_IOT_QUERY_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "iot/kvp.h"
#include "iot/rules.h"
#include "iot/sensor.h"
#include "ycsb/db.h"

namespace iotdb {
namespace iot {

/// The four dashboard query templates of TPCx-IoT (§III-D). Each compares an
/// aggregate over the last 5 seconds of one sensor's readings against the
/// same aggregate over a randomly-chosen 5-second interval from the previous
/// 1800 seconds.
enum class QueryType {
  kMaxReading = 0,
  kMinReading = 1,
  kAvgReading = 2,
  kReadingCount = 3,
};

const char* QueryTypeName(QueryType type);

/// A fully-instantiated query: sensor plus the two time windows.
struct Query {
  QueryType type = QueryType::kMaxReading;
  std::string substation_key;
  std::string sensor_key;
  // Recent window [recent_start, recent_end).
  uint64_t recent_start_micros = 0;
  uint64_t recent_end_micros = 0;
  // Random historic window [past_start, past_end).
  uint64_t past_start_micros = 0;
  uint64_t past_end_micros = 0;
};

/// Aggregates of one window.
struct WindowAggregate {
  uint64_t count = 0;
  double max = 0;
  double min = 0;
  double sum = 0;
  double Avg() const { return count == 0 ? 0.0 : sum / count; }
};

/// Result of executing a query: aggregates of both windows plus the
/// compared values (dashboard output).
struct QueryResult {
  Query query;
  WindowAggregate recent;
  WindowAggregate past;
  /// Total kvps read across both windows (the Figure 12 metric).
  uint64_t rows_read = 0;
  /// The aggregate values being compared.
  double recent_value = 0;
  double past_value = 0;
};

/// Instantiates random queries for one substation, cycling uniformly over
/// sensor and template. Deterministic given the seed and clock.
class QueryGenerator {
 public:
  QueryGenerator(std::string substation_key, uint64_t seed, Clock* clock,
                 const SensorCatalog* catalog = &SensorCatalog::Default());

  Query Next();

 private:
  std::string substation_key_;
  Random rng_;
  Clock* clock_;
  const SensorCatalog* catalog_;
};

/// Executes queries against a DB binding: two range scans (selection +
/// projection) followed by the aggregation.
class QueryExecutor {
 public:
  explicit QueryExecutor(ycsb::DB* db) : db_(db) {}

  Result<QueryResult> Execute(const Query& query);

 private:
  Status ScanWindow(const Query& query, uint64_t start_micros,
                    uint64_t end_micros, WindowAggregate* agg);

  ycsb::DB* db_;
};

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_QUERY_H_
