#include "iot/query.h"

#include <algorithm>
#include <vector>

namespace iotdb {
namespace iot {

const char* QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kMaxReading:
      return "MAX_READING";
    case QueryType::kMinReading:
      return "MIN_READING";
    case QueryType::kAvgReading:
      return "AVG_READING";
    case QueryType::kReadingCount:
      return "READING_COUNT";
  }
  return "?";
}

QueryGenerator::QueryGenerator(std::string substation_key, uint64_t seed,
                               Clock* clock, const SensorCatalog* catalog)
    : substation_key_(std::move(substation_key)),
      rng_(seed ^ 0x9dd1f9ab01234567ull),
      clock_(clock != nullptr ? clock : Clock::Real()),
      catalog_(catalog) {}

Query QueryGenerator::Next() {
  Query query;
  query.type = static_cast<QueryType>(rng_.Uniform(4));
  query.substation_key = substation_key_;
  query.sensor_key = catalog_->sensor(rng_.Uniform(catalog_->size())).key;

  const uint64_t window =
      static_cast<uint64_t>(Rules::kQueryWindowSeconds * 1e6);
  const uint64_t history =
      static_cast<uint64_t>(Rules::kQueryHistorySeconds * 1e6);

  uint64_t now = clock_->NowMicros();
  query.recent_end_micros = now;
  query.recent_start_micros = now > window ? now - window : 0;

  // The historic window starts uniformly in [now-1800s, now-5s); clipped
  // when the run is young (warmup behaviour the paper calls out: such
  // queries may return no rows, which is acceptable because warmup is not
  // timed).
  uint64_t horizon_start = now > history ? now - history : 0;
  uint64_t latest_start =
      query.recent_start_micros > window
          ? query.recent_start_micros - window
          : 0;
  uint64_t span = latest_start > horizon_start ? latest_start - horizon_start
                                               : 0;
  query.past_start_micros =
      span == 0 ? horizon_start : horizon_start + rng_.Uniform(span);
  query.past_end_micros = query.past_start_micros + window;
  return query;
}

Status QueryExecutor::ScanWindow(const Query& query, uint64_t start_micros,
                                 uint64_t end_micros, WindowAggregate* agg) {
  std::string start_key = KvpCodec::EncodeKey(query.substation_key,
                                              query.sensor_key, start_micros);
  std::string end_key = KvpCodec::EncodeKey(query.substation_key,
                                            query.sensor_key, end_micros);
  std::string shard_key(
      KvpCodec::ShardPrefixOf(Slice(start_key)).ToStringView());

  std::vector<std::pair<std::string, std::string>> rows;
  IOTDB_RETURN_NOT_OK(
      db_->Scan(Slice(shard_key), Slice(start_key), Slice(end_key), 0,
                &rows));

  agg->count = 0;
  agg->min = 0;
  agg->max = 0;
  agg->sum = 0;
  for (const auto& [key, value] : rows) {
    // Projection: sensor value and timestamp only.
    auto v = KvpCodec::DecodeSensorValue(Slice(value));
    if (!v.ok()) return v.status();
    double reading = v.ValueOrDie();
    if (agg->count == 0) {
      agg->min = agg->max = reading;
    } else {
      agg->min = std::min(agg->min, reading);
      agg->max = std::max(agg->max, reading);
    }
    agg->sum += reading;
    agg->count++;
  }
  return Status::OK();
}

Result<QueryResult> QueryExecutor::Execute(const Query& query) {
  QueryResult result;
  result.query = query;
  IOTDB_RETURN_NOT_OK(ScanWindow(query, query.recent_start_micros,
                                 query.recent_end_micros, &result.recent));
  IOTDB_RETURN_NOT_OK(ScanWindow(query, query.past_start_micros,
                                 query.past_end_micros, &result.past));
  result.rows_read = result.recent.count + result.past.count;
  switch (query.type) {
    case QueryType::kMaxReading:
      result.recent_value = result.recent.max;
      result.past_value = result.past.max;
      break;
    case QueryType::kMinReading:
      result.recent_value = result.recent.min;
      result.past_value = result.past.min;
      break;
    case QueryType::kAvgReading:
      result.recent_value = result.recent.Avg();
      result.past_value = result.past.Avg();
      break;
    case QueryType::kReadingCount:
      result.recent_value = static_cast<double>(result.recent.count);
      result.past_value = static_cast<double>(result.past.count);
      break;
  }
  return result;
}

}  // namespace iot
}  // namespace iotdb
