#include "iot/benchmark_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ycsb/bindings.h"

namespace iotdb {
namespace iot {

Slice TpcxIotShardKey(const Slice& row_key) {
  return KvpCodec::ShardPrefixOf(row_key);
}

uint64_t WorkloadExecution::TotalQueries() const {
  uint64_t n = 0;
  for (const auto& d : drivers) n += d.queries_executed;
  return n;
}

uint64_t WorkloadExecution::TotalQueryRows() const {
  uint64_t n = 0;
  for (const auto& d : drivers) n += d.query_rows_read;
  return n;
}

double WorkloadExecution::AvgRowsPerQuery() const {
  uint64_t queries = TotalQueries();
  return queries == 0 ? 0.0
                      : static_cast<double>(TotalQueryRows()) / queries;
}

Histogram WorkloadExecution::MergedQueryLatency() const {
  Histogram merged;
  for (const auto& d : drivers) merged.Merge(d.query_latency_micros);
  return merged;
}

double WorkloadExecution::MinDriverSeconds() const {
  double best = 0;
  bool first = true;
  for (const auto& d : drivers) {
    double s = d.ElapsedSeconds();
    if (first || s < best) best = s;
    first = false;
  }
  return best;
}

double WorkloadExecution::MaxDriverSeconds() const {
  double worst = 0;
  for (const auto& d : drivers) worst = std::max(worst, d.ElapsedSeconds());
  return worst;
}

uint64_t IntegrityStats::TotalWalDroppedBytes() const {
  uint64_t total = 0;
  for (uint64_t bytes : node_wal_dropped_bytes) total += bytes;
  return total;
}

bool IntegrityStats::Any() const {
  return files_corrupted + bits_flipped + files_quarantined + read_repairs +
             shard_recopies + TotalWalDroppedBytes() >
         0;
}

double WorkloadExecution::AvgDriverSeconds() const {
  if (drivers.empty()) return 0;
  double total = 0;
  for (const auto& d : drivers) total += d.ElapsedSeconds();
  return total / static_cast<double>(drivers.size());
}

BenchmarkDriver::BenchmarkDriver(const BenchmarkConfig& config,
                                 cluster::Cluster* cluster)
    : config_(config), cluster_(cluster) {}

WorkloadExecution BenchmarkDriver::ExecuteWorkload() {
  return ExecuteWorkloadInternal(/*with_faults=*/true);
}

void BenchmarkDriver::InjectScheduledCorruption() {
  const int victim = config_.fault_corrupt_node;
  const bool vlog_target = (config_.fault_corrupt_target == "vlog");
  cluster::Node* node = cluster_->node(victim);
  if (node->is_down() || !node->is_running()) {
    IOTDB_LOG(Warn) << "fault schedule: corruption skipped, node "
                    << victim << " is down";
    return;
  }
  // Flush so at least one live SSTable exists to damage. (Vlog files exist
  // as soon as separated values were written; the flush is harmless there.)
  Status flush = node->store()->FlushMemTable();
  if (!flush.ok()) {
    IOTDB_LOG(Warn) << "fault schedule: flush before corruption failed: "
                    << flush.ToString();
    return;
  }
  // Bit-rot can land in a file that is retired before the scrub runs (a
  // table an in-flight compaction replaces, a vlog file GC reclaims): the
  // rot dies with the obsolete file and never threatens live data. Such
  // vacuous injections are discounted and re-rolled so the schedule
  // reliably exercises detection.
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto victim_file = cluster_->fault_env()->CorruptRandomFile(
        node->data_dir(),
        vlog_target ? storage::FileClass::kVlog
                    : storage::FileClass::kSSTable,
        config_.fault_corrupt_bits);
    if (!victim_file.ok()) {
      IOTDB_LOG(Warn) << "fault schedule: bit-rot injection failed: "
                      << victim_file.status().ToString();
      return;
    }
    IOTDB_LOG(Info) << "fault schedule: flipped "
                    << config_.fault_corrupt_bits << " bits in "
                    << victim_file.ValueOrDie();
    // Detect and heal while the workload keeps running: the scrub
    // quarantines the damaged file, the repair re-copies the node's
    // shards from healthy replicas and lifts its read fence.
    storage::ScrubReport report;
    Status scrub = node->store()->VerifyIntegrity(&report);
    if (!scrub.ok()) {
      IOTDB_LOG(Warn) << "fault schedule: scrub failed: "
                      << scrub.ToString();
      break;
    }
    IOTDB_LOG(Info) << "fault schedule: scrub checked "
                    << report.files_checked << " files, quarantined "
                    << report.quarantined_files;
    if (report.quarantined_files > 0) break;
    const bool still_live =
        vlog_target ? node->store()->IsLiveVlogFile(victim_file.ValueOrDie())
                    : node->store()->IsLiveTableFile(victim_file.ValueOrDie());
    if (still_live) {
      // The damaged file is live yet verified clean: a genuine miss the
      // FDR must warn about, not a race to paper over.
      break;
    }
    IOTDB_LOG(Info) << "fault schedule: " << victim_file.ValueOrDie()
                    << " was compacted away before the scrub; re-rolling";
    vacuous_corrupt_files_.fetch_add(1, std::memory_order_relaxed);
    vacuous_corrupt_bits_.fetch_add(
        static_cast<uint64_t>(config_.fault_corrupt_bits),
        std::memory_order_relaxed);
  }
  Status repair = cluster_->RunPendingRepairs();
  if (!repair.ok()) {
    IOTDB_LOG(Warn) << "fault schedule: repair failed: " << repair.ToString();
  }
}

WorkloadExecution BenchmarkDriver::ExecuteWorkloadInternal(bool with_faults) {
  WorkloadExecution execution;
  const int p = config_.num_driver_instances;

  ycsb::ClusterDB db(cluster_);
  Clock* clock = Clock::Real();

  const cluster::FaultRecoveryStats faults_before =
      cluster_->GetFaultRecoveryStats();
  const bool fault_armed = with_faults && config_.fault_kill_node >= 0 &&
                           config_.fault_kill_node < cluster_->num_nodes();
  const bool corrupt_armed = with_faults && config_.fault_corrupt_node >= 0 &&
                             config_.fault_corrupt_node <
                                 cluster_->num_nodes() &&
                             cluster_->fault_env() != nullptr;
  cluster::FaultChannel* net = cluster_->net_fault_channel();
  const bool net_armed =
      with_faults && config_.HasNetFaultSchedule() && net != nullptr;
  const cluster::AvailabilityStats avail_before =
      cluster_->GetAvailabilityStats();
  cluster::NetFaultCounters net_before;
  if (net != nullptr) net_before = net->GetCounters();

  // Per-node corrupt-WAL-bytes-dropped-in-recovery, for the execution delta
  // (safe to read here and after the joins: no lifecycle transitions run).
  auto node_wal_dropped = [this]() {
    std::vector<uint64_t> dropped(
        static_cast<size_t>(cluster_->num_nodes()), 0);
    for (int i = 0; i < cluster_->num_nodes(); ++i) {
      cluster::Node* node = cluster_->node(i);
      if (node->is_running()) {
        dropped[static_cast<size_t>(i)] =
            node->store()->GetStats().wal_recovery_dropped_bytes;
      }
    }
    return dropped;
  };
  const std::vector<uint64_t> wal_dropped_before = node_wal_dropped();
  storage::FaultCounters fault_counters_before;
  if (cluster_->fault_env() != nullptr) {
    fault_counters_before = cluster_->fault_env()->counters();
  }
  vacuous_corrupt_files_.store(0, std::memory_order_relaxed);
  vacuous_corrupt_bits_.store(0, std::memory_order_relaxed);

  std::vector<DriverResult> results(p);
  std::vector<std::thread> threads;
  threads.reserve(p);

  std::atomic<bool> drivers_done{false};
  std::thread fault_monitor;
  std::thread corruption_monitor;
  std::thread net_monitor;

  if (net_armed) {
    // Whole-run traffic shaping starts with the execution; the scheduled
    // partition is handled by the monitor thread below.
    if (config_.fault_net_delay_node >= 0) {
      const uint64_t delay_micros = config_.fault_net_delay_ms * 1000;
      net->SetEndpointDelay(config_.fault_net_delay_node, delay_micros,
                            delay_micros);
    }
    if (config_.fault_net_drop_pct > 0) {
      net->SetDropProbability(config_.fault_net_drop_pct);
    }
    if (config_.fault_net_dup_pct > 0) {
      net->SetDuplicateProbability(config_.fault_net_dup_pct);
    }
    if (config_.fault_net_reorder_pct > 0) {
      net->SetReorderProbability(config_.fault_net_reorder_pct,
                                 /*window_micros=*/5000);
    }
  }

  const bool observe = obs::Enabled();
  obs::MetricsSnapshot obs_before;
  if (observe) obs_before = obs::MetricsRegistry::Global().TakeSnapshot();
  // Arm the slow-op flight recorder for exactly this execution's window, so
  // the warmup's slow tail does not crowd out the measured execution's.
  if (observe) obs::SlowOpRecorder::StartRun();

  // Per-execution run timeline: the warmup and each measured execution get
  // their own interval series, so steady-state analysis can compare them.
  // Start() is a no-op while observability is disabled.
  obs::SamplerOptions sampler_options;
  sampler_options.cadence_micros = config_.timeline_cadence_micros;
  sampler_options.clock = clock;
  obs::Sampler sampler(sampler_options);
  sampler.Start();

  execution.metrics.ts_start_micros = clock->NowMicros();
  for (int i = 0; i < p; ++i) {
    DriverOptions options;
    char key[32];
    snprintf(key, sizeof(key), "sub%04d", i + 1);
    options.substation_key = key;
    options.total_kvps = Rules::KvpsForDriver(i + 1, p, config_.total_kvps);
    options.batch_size = config_.batch_size;
    options.seed = config_.seed + static_cast<uint64_t>(i) * 7919;
    threads.emplace_back([&results, i, options, &db]() {
      DriverInstance driver(options, &db);
      results[i] = driver.Run();
    });
  }

  if (fault_armed) {
    // The acknowledged-ingest thresholds are measured in primary kvps since
    // the start of this execution; the monitor polls the counter rather
    // than hooking the hot write path.
    fault_monitor = std::thread([this, &drivers_done]() {
      const int victim = config_.fault_kill_node;
      const uint64_t base = cluster_->GetAggregateStats().primary_writes;
      bool killed = false;
      bool restarted = false;
      uint64_t killed_at_acked = 0;
      while (!drivers_done.load(std::memory_order_acquire)) {
        uint64_t acked = cluster_->GetAggregateStats().primary_writes - base;
        if (!killed && acked >= config_.fault_at_ops) {
          IOTDB_LOG(Info) << "fault schedule: crashing node " << victim
                          << " at " << acked << " acked kvps";
          Status s = cluster_->CrashNode(victim);
          if (!s.ok()) {
            IOTDB_LOG(Warn) << "fault schedule: crash failed: "
                            << s.ToString();
            return;
          }
          killed = true;
          killed_at_acked = acked;
        }
        if (killed && config_.fault_restart_after_ops > 0 &&
            acked >= killed_at_acked + config_.fault_restart_after_ops) {
          IOTDB_LOG(Info) << "fault schedule: restarting node " << victim
                          << " at " << acked << " acked kvps";
          Status s = cluster_->RestartNode(victim);
          if (!s.ok()) {
            IOTDB_LOG(Warn) << "fault schedule: restart failed: "
                            << s.ToString();
          }
          restarted = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Never leave the node down past the execution: the data check and
      // the next iteration expect a whole cluster.
      if (killed && !restarted) {
        IOTDB_LOG(Info) << "fault schedule: restarting node " << victim
                        << " at end of execution";
        Status s = cluster_->RestartNode(victim);
        if (!s.ok()) {
          IOTDB_LOG(Warn) << "fault schedule: restart failed: "
                          << s.ToString();
        }
      }
    });
  }

  if (corrupt_armed) {
    corruption_monitor = std::thread([this, &drivers_done]() {
      const uint64_t base = cluster_->GetAggregateStats().primary_writes;
      while (!drivers_done.load(std::memory_order_acquire)) {
        uint64_t acked = cluster_->GetAggregateStats().primary_writes - base;
        if (acked >= config_.fault_corrupt_at_ops) {
          InjectScheduledCorruption();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Ingest finished before the threshold: fire anyway so the schedule
      // always exercises detection and repair (disclosed in the FDR).
      InjectScheduledCorruption();
    });
  }

  if (net_armed && config_.fault_net_partition_node >= 0) {
    net_monitor = std::thread([this, net, &drivers_done]() {
      const int victim = config_.fault_net_partition_node;
      const uint64_t base = cluster_->GetAggregateStats().primary_writes;
      bool partitioned = false;
      uint64_t partitioned_at_acked = 0;
      while (!drivers_done.load(std::memory_order_acquire)) {
        uint64_t acked = cluster_->GetAggregateStats().primary_writes - base;
        if (!partitioned && acked >= config_.fault_net_partition_at_ops) {
          IOTDB_LOG(Info) << "fault schedule: partitioning node " << victim
                          << " at " << acked << " acked kvps";
          net->Isolate(victim);
          partitioned = true;
          partitioned_at_acked = acked;
        }
        if (partitioned && config_.fault_net_heal_after_ops > 0 &&
            acked >=
                partitioned_at_acked + config_.fault_net_heal_after_ops) {
          IOTDB_LOG(Info) << "fault schedule: healing partition of node "
                          << victim << " at " << acked << " acked kvps";
          net->Heal(victim);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Heal-at-end happens below for every net schedule; nothing to do.
    });
  }

  for (auto& thread : threads) thread.join();
  drivers_done.store(true, std::memory_order_release);
  if (fault_monitor.joinable()) fault_monitor.join();
  if (corruption_monitor.joinable()) corruption_monitor.join();
  if (net_monitor.joinable()) net_monitor.join();
  if (net_armed) {
    // Stop shaping and heal any surviving partition before the quiesce
    // below drains what the faults left behind.
    if (config_.fault_net_delay_node >= 0) {
      net->SetEndpointDelay(config_.fault_net_delay_node, 0, 0);
    }
    net->SetDropProbability(0);
    net->SetDuplicateProbability(0);
    net->SetReorderProbability(0, 0);
    net->HealAll();
  }
  // Quiesce the async replication plane inside the measured window: writes
  // return at quorum, so the tail of the run can still have laggard replica
  // applies and hinted rows in flight. Convergence cost is part of the run,
  // and the data check expects every acknowledged row to be replicated.
  Status drained = cluster_->WaitReplicationIdle();
  if (!drained.ok()) {
    IOTDB_LOG(Warn) << "end of execution: replication did not quiesce: "
                    << drained.ToString();
  }
  if (corrupt_armed) {
    // Quarantines surfaced after the monitor's repair pass (e.g. from a
    // late compaction read) must not leak past the execution: the data
    // check and the next iteration expect a fully healed cluster.
    Status repair = cluster_->RunPendingRepairs();
    if (!repair.ok()) {
      IOTDB_LOG(Warn) << "fault schedule: final repair failed: "
                      << repair.ToString();
    }
  }
  execution.metrics.ts_end_micros = clock->NowMicros();
  sampler.Stop();  // flushes the final partial interval
  execution.timeline = sampler.TakeTimeline();

  if (observe) {
    // DroppedSpans() mirrors the trace-buffer drop count into the
    // `obs.trace.dropped_spans` gauge, so the snapshot below (gauges pass
    // through DeltaSince as current values) carries it into the FDR.
    if (obs::TraceBuffer::Enabled()) obs::TraceBuffer::DroppedSpans();
    execution.obs_delta =
        obs::MetricsRegistry::Global().TakeSnapshot().DeltaSince(obs_before);
    execution.slow_ops = obs::SlowOpRecorder::TakeSnapshot();
    obs::SlowOpRecorder::StopRun();
  }

  const cluster::FaultRecoveryStats faults_after =
      cluster_->GetFaultRecoveryStats();
  execution.faults.node_crashes =
      faults_after.node_crashes - faults_before.node_crashes;
  execution.faults.node_restarts =
      faults_after.node_restarts - faults_before.node_restarts;
  execution.faults.hinted_kvps =
      faults_after.hinted_kvps - faults_before.hinted_kvps;
  execution.faults.hint_replayed_kvps =
      faults_after.hint_replayed_kvps - faults_before.hint_replayed_kvps;
  execution.faults.hint_overflows =
      faults_after.hint_overflows - faults_before.hint_overflows;
  execution.faults.recopied_kvps =
      faults_after.recopied_kvps - faults_before.recopied_kvps;
  execution.faults.corrupt_files_quarantined =
      faults_after.corrupt_files_quarantined -
      faults_before.corrupt_files_quarantined;
  execution.faults.corruption_repairs =
      faults_after.corruption_repairs - faults_before.corruption_repairs;
  execution.faults.read_repairs =
      faults_after.read_repairs - faults_before.read_repairs;

  execution.integrity.files_quarantined =
      execution.faults.corrupt_files_quarantined;
  execution.integrity.shard_recopies = execution.faults.corruption_repairs;
  execution.integrity.read_repairs = execution.faults.read_repairs;
  if (cluster_->fault_env() != nullptr) {
    // Discount vacuous injections (rot that died with an obsolete table
    // before any verification could see it): they were re-rolled and never
    // threatened live data, so they don't count against detection.
    storage::FaultCounters counters = cluster_->fault_env()->counters();
    execution.integrity.files_corrupted =
        counters.files_corrupted - fault_counters_before.files_corrupted -
        vacuous_corrupt_files_.load(std::memory_order_relaxed);
    execution.integrity.bits_flipped =
        counters.bits_flipped - fault_counters_before.bits_flipped -
        vacuous_corrupt_bits_.load(std::memory_order_relaxed);
  }
  const std::vector<uint64_t> wal_dropped_after = node_wal_dropped();
  execution.integrity.node_wal_dropped_bytes.assign(wal_dropped_after.size(),
                                                    0);
  for (size_t i = 0; i < wal_dropped_after.size(); ++i) {
    // A node restart reopens the store and resets its counters, so the
    // delta saturates to the new instance's count instead of underflowing.
    uint64_t before = i < wal_dropped_before.size() ? wal_dropped_before[i]
                                                    : 0;
    execution.integrity.node_wal_dropped_bytes[i] =
        wal_dropped_after[i] >= before ? wal_dropped_after[i] - before
                                       : wal_dropped_after[i];
  }

  const cluster::AvailabilityStats avail_after =
      cluster_->GetAvailabilityStats();
  execution.availability.writes_attempted =
      avail_after.writes_attempted - avail_before.writes_attempted;
  execution.availability.writes_quorum_met =
      avail_after.writes_quorum_met - avail_before.writes_quorum_met;
  execution.availability.writes_unavailable =
      avail_after.writes_unavailable - avail_before.writes_unavailable;
  execution.availability.straggler_hinted_kvps =
      avail_after.straggler_hinted_kvps - avail_before.straggler_hinted_kvps;
  execution.availability.deadline_exceeded =
      avail_after.deadline_exceeded - avail_before.deadline_exceeded;
  execution.availability.duplicate_acks_ignored =
      avail_after.duplicate_acks_ignored -
      avail_before.duplicate_acks_ignored;
  if (net != nullptr) {
    cluster::NetFaultCounters net_after = net->GetCounters();
    execution.net_faults.sent = net_after.sent - net_before.sent;
    execution.net_faults.dropped = net_after.dropped - net_before.dropped;
    execution.net_faults.duplicated =
        net_after.duplicated - net_before.duplicated;
    execution.net_faults.reordered =
        net_after.reordered - net_before.reordered;
    execution.net_faults.delayed = net_after.delayed - net_before.delayed;
    execution.net_faults.partition_blocked =
        net_after.partition_blocked - net_before.partition_blocked;
  }

  execution.drivers = std::move(results);
  for (const auto& driver : execution.drivers) {
    execution.metrics.kvps_ingested += driver.kvps_ingested;
    if (!driver.status.ok() && execution.status.ok()) {
      execution.status = driver.status;
    }
  }
  return execution;
}

BenchmarkResult BenchmarkDriver::Run() {
  BenchmarkResult result;

  // --- Prerequisite checks (abort on failure) ---
  if (!config_.kit_files.empty()) {
    storage::Env* env = config_.kit_env != nullptr ? config_.kit_env
                                                   : storage::Env::Posix();
    result.file_check = FileCheck(env, config_.kit_files);
  } else {
    result.file_check = {true, "file check", "no kit files registered"};
  }
  if (!result.file_check.passed) {
    result.status = Status::FailedCheck(result.file_check.detail);
    result.invalid_reason = "file check failed";
    return result;
  }

  result.replication_check = ReplicationCheck(cluster_);
  if (!result.replication_check.passed) {
    result.status = Status::FailedCheck(result.replication_check.detail);
    result.invalid_reason = "replication check failed";
    return result;
  }

  // A fault schedule naming a node the SUT does not have would silently
  // never fire; reject it up front instead.
  if (config_.fault_kill_node >= cluster_->num_nodes()) {
    result.status = Status::InvalidArgument(
        "fault.kill_node=" + std::to_string(config_.fault_kill_node) +
        " but the SUT has " + std::to_string(cluster_->num_nodes()) +
        " nodes");
    result.invalid_reason = "invalid fault schedule";
    return result;
  }
  if (config_.fault_corrupt_node >= cluster_->num_nodes()) {
    result.status = Status::InvalidArgument(
        "fault.corrupt_sstable=" +
        std::to_string(config_.fault_corrupt_node) + " but the SUT has " +
        std::to_string(cluster_->num_nodes()) + " nodes");
    result.invalid_reason = "invalid fault schedule";
    return result;
  }
  if (config_.fault_corrupt_node >= 0 && cluster_->fault_env() == nullptr) {
    result.status = Status::InvalidArgument(
        "fault.corrupt_sstable requires a cluster with fault injection "
        "enabled");
    result.invalid_reason = "invalid fault schedule";
    return result;
  }
  if (config_.HasNetFaultSchedule() &&
      cluster_->net_fault_channel() == nullptr) {
    result.status = Status::InvalidArgument(
        "fault.net_* schedules require a cluster with net fault injection "
        "enabled");
    result.invalid_reason = "invalid fault schedule";
    return result;
  }
  if (config_.fault_net_partition_node >= cluster_->num_nodes() ||
      config_.fault_net_delay_node >= cluster_->num_nodes()) {
    result.status = Status::InvalidArgument(
        "fault.net_partition_node/fault.net_delay_node out of range: the "
        "SUT has " +
        std::to_string(cluster_->num_nodes()) + " nodes");
    result.invalid_reason = "invalid fault schedule";
    return result;
  }
  // The probe rows must not count towards the benchmark data.
  Status purge = cluster_->PurgeAll();
  if (!purge.ok()) {
    result.status = purge;
    return result;
  }

  // --- Two benchmark iterations ---
  bool windows_valid = true;
  std::string window_reason;
  for (int iteration = 0; iteration < 2; ++iteration) {
    IterationResult& iter = result.iterations[iteration];

    if (!config_.skip_warmup) {
      IOTDB_LOG(Info) << "iteration " << (iteration + 1) << ": warmup run";
      iter.warmup = ExecuteWorkloadInternal(/*with_faults=*/false);
      if (!iter.warmup.status.ok()) {
        result.status = iter.warmup.status;
        result.invalid_reason = "warmup execution failed";
        return result;
      }
    }

    IOTDB_LOG(Info) << "iteration " << (iteration + 1) << ": measured run";
    iter.measured = ExecuteWorkloadInternal(/*with_faults=*/true);
    if (!iter.measured.status.ok()) {
      result.status = iter.measured.status;
      result.invalid_reason = "measured execution failed";
      return result;
    }

    // A reversed/empty measurement window means the timing itself is
    // broken; IoTps over it would be meaningless. Flag the run invalid
    // rather than reporting a fake rate (the FDR prints the check result).
    Status window = iter.measured.metrics.Validate();
    if (!window.ok() && windows_valid) {
      windows_valid = false;
      window_reason = window.message();
      IOTDB_LOG(Error) << "iteration " << (iteration + 1) << ": "
                       << window.ToString();
    }

    DataCheckInput check;
    check.expected_kvps = config_.total_kvps;
    check.ingested_kvps = iter.measured.metrics.kvps_ingested;
    check.elapsed_seconds = iter.measured.metrics.ElapsedSeconds();
    check.substations = config_.num_driver_instances;
    check.avg_rows_per_query = iter.measured.AvgRowsPerQuery();
    check.min_run_seconds = config_.min_run_seconds;
    check.min_per_sensor_rate = config_.min_per_sensor_rate;
    check.min_rows_per_query = config_.min_rows_per_query;
    check.enforce_query_rows = config_.enforce_query_rows;
    iter.data_check = DataCheck(check);

    // System cleanup between iterations (and after the second, the SUT is
    // left purged for reporting reproducibility).
    Status cleanup = cluster_->PurgeAll();
    if (!cleanup.ok()) {
      result.status = cleanup;
      result.invalid_reason = "system cleanup failed";
      return result;
    }
  }

  result.performance_run =
      PerformanceRunIndex(result.iterations[0].measured.metrics,
                          result.iterations[1].measured.metrics);
  result.valid = windows_valid && result.iterations[0].data_check.passed &&
                 result.iterations[1].data_check.passed;
  if (!windows_valid) {
    result.invalid_reason = window_reason;
  } else if (!result.valid) {
    result.invalid_reason =
        !result.iterations[0].data_check.passed
            ? result.iterations[0].data_check.detail
            : result.iterations[1].data_check.detail;
  } else if (config_.repeatability_tolerance > 0 &&
             result.RepeatabilityDelta() >
                 config_.repeatability_tolerance) {
    result.valid = false;
    char buf[128];
    snprintf(buf, sizeof(buf),
             "measured runs differ by %.1f%% (tolerance %.1f%%)",
             100.0 * result.RepeatabilityDelta(),
             100.0 * config_.repeatability_tolerance);
    result.invalid_reason = buf;
  }
  return result;
}

double BenchmarkResult::RepeatabilityDelta() const {
  double first = iterations[0].measured.metrics.IoTps();
  double second = iterations[1].measured.metrics.IoTps();
  double larger = std::max(first, second);
  if (larger <= 0) return 0;
  return (larger - std::min(first, second)) / larger;
}

}  // namespace iot
}  // namespace iotdb
