#include "iot/benchmark_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"
#include "ycsb/bindings.h"

namespace iotdb {
namespace iot {

Slice TpcxIotShardKey(const Slice& row_key) {
  return KvpCodec::ShardPrefixOf(row_key);
}

uint64_t WorkloadExecution::TotalQueries() const {
  uint64_t n = 0;
  for (const auto& d : drivers) n += d.queries_executed;
  return n;
}

uint64_t WorkloadExecution::TotalQueryRows() const {
  uint64_t n = 0;
  for (const auto& d : drivers) n += d.query_rows_read;
  return n;
}

double WorkloadExecution::AvgRowsPerQuery() const {
  uint64_t queries = TotalQueries();
  return queries == 0 ? 0.0
                      : static_cast<double>(TotalQueryRows()) / queries;
}

Histogram WorkloadExecution::MergedQueryLatency() const {
  Histogram merged;
  for (const auto& d : drivers) merged.Merge(d.query_latency_micros);
  return merged;
}

double WorkloadExecution::MinDriverSeconds() const {
  double best = 0;
  bool first = true;
  for (const auto& d : drivers) {
    double s = d.ElapsedSeconds();
    if (first || s < best) best = s;
    first = false;
  }
  return best;
}

double WorkloadExecution::MaxDriverSeconds() const {
  double worst = 0;
  for (const auto& d : drivers) worst = std::max(worst, d.ElapsedSeconds());
  return worst;
}

double WorkloadExecution::AvgDriverSeconds() const {
  if (drivers.empty()) return 0;
  double total = 0;
  for (const auto& d : drivers) total += d.ElapsedSeconds();
  return total / static_cast<double>(drivers.size());
}

BenchmarkDriver::BenchmarkDriver(const BenchmarkConfig& config,
                                 cluster::Cluster* cluster)
    : config_(config), cluster_(cluster) {}

WorkloadExecution BenchmarkDriver::ExecuteWorkload() {
  return ExecuteWorkloadInternal(/*with_faults=*/true);
}

WorkloadExecution BenchmarkDriver::ExecuteWorkloadInternal(bool with_faults) {
  WorkloadExecution execution;
  const int p = config_.num_driver_instances;

  ycsb::ClusterDB db(cluster_);
  Clock* clock = Clock::Real();

  const cluster::FaultRecoveryStats faults_before =
      cluster_->GetFaultRecoveryStats();
  const bool fault_armed = with_faults && config_.fault_kill_node >= 0 &&
                           config_.fault_kill_node < cluster_->num_nodes();

  std::vector<DriverResult> results(p);
  std::vector<std::thread> threads;
  threads.reserve(p);

  std::atomic<bool> drivers_done{false};
  std::thread fault_monitor;

  const bool observe = obs::Enabled();
  obs::MetricsSnapshot obs_before;
  if (observe) obs_before = obs::MetricsRegistry::Global().TakeSnapshot();

  execution.metrics.ts_start_micros = clock->NowMicros();
  for (int i = 0; i < p; ++i) {
    DriverOptions options;
    char key[32];
    snprintf(key, sizeof(key), "sub%04d", i + 1);
    options.substation_key = key;
    options.total_kvps = Rules::KvpsForDriver(i + 1, p, config_.total_kvps);
    options.batch_size = config_.batch_size;
    options.seed = config_.seed + static_cast<uint64_t>(i) * 7919;
    threads.emplace_back([&results, i, options, &db]() {
      DriverInstance driver(options, &db);
      results[i] = driver.Run();
    });
  }

  if (fault_armed) {
    // The acknowledged-ingest thresholds are measured in primary kvps since
    // the start of this execution; the monitor polls the counter rather
    // than hooking the hot write path.
    fault_monitor = std::thread([this, &drivers_done]() {
      const int victim = config_.fault_kill_node;
      const uint64_t base = cluster_->GetAggregateStats().primary_writes;
      bool killed = false;
      bool restarted = false;
      uint64_t killed_at_acked = 0;
      while (!drivers_done.load(std::memory_order_acquire)) {
        uint64_t acked = cluster_->GetAggregateStats().primary_writes - base;
        if (!killed && acked >= config_.fault_at_ops) {
          IOTDB_LOG(Info) << "fault schedule: crashing node " << victim
                          << " at " << acked << " acked kvps";
          Status s = cluster_->CrashNode(victim);
          if (!s.ok()) {
            IOTDB_LOG(Warn) << "fault schedule: crash failed: "
                            << s.ToString();
            return;
          }
          killed = true;
          killed_at_acked = acked;
        }
        if (killed && config_.fault_restart_after_ops > 0 &&
            acked >= killed_at_acked + config_.fault_restart_after_ops) {
          IOTDB_LOG(Info) << "fault schedule: restarting node " << victim
                          << " at " << acked << " acked kvps";
          Status s = cluster_->RestartNode(victim);
          if (!s.ok()) {
            IOTDB_LOG(Warn) << "fault schedule: restart failed: "
                            << s.ToString();
          }
          restarted = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Never leave the node down past the execution: the data check and
      // the next iteration expect a whole cluster.
      if (killed && !restarted) {
        IOTDB_LOG(Info) << "fault schedule: restarting node " << victim
                        << " at end of execution";
        Status s = cluster_->RestartNode(victim);
        if (!s.ok()) {
          IOTDB_LOG(Warn) << "fault schedule: restart failed: "
                          << s.ToString();
        }
      }
    });
  }

  for (auto& thread : threads) thread.join();
  drivers_done.store(true, std::memory_order_release);
  if (fault_monitor.joinable()) fault_monitor.join();
  execution.metrics.ts_end_micros = clock->NowMicros();

  if (observe) {
    execution.obs_delta =
        obs::MetricsRegistry::Global().TakeSnapshot().DeltaSince(obs_before);
  }

  const cluster::FaultRecoveryStats faults_after =
      cluster_->GetFaultRecoveryStats();
  execution.faults.node_crashes =
      faults_after.node_crashes - faults_before.node_crashes;
  execution.faults.node_restarts =
      faults_after.node_restarts - faults_before.node_restarts;
  execution.faults.hinted_kvps =
      faults_after.hinted_kvps - faults_before.hinted_kvps;
  execution.faults.hint_replayed_kvps =
      faults_after.hint_replayed_kvps - faults_before.hint_replayed_kvps;
  execution.faults.hint_overflows =
      faults_after.hint_overflows - faults_before.hint_overflows;
  execution.faults.recopied_kvps =
      faults_after.recopied_kvps - faults_before.recopied_kvps;

  execution.drivers = std::move(results);
  for (const auto& driver : execution.drivers) {
    execution.metrics.kvps_ingested += driver.kvps_ingested;
    if (!driver.status.ok() && execution.status.ok()) {
      execution.status = driver.status;
    }
  }
  return execution;
}

BenchmarkResult BenchmarkDriver::Run() {
  BenchmarkResult result;

  // --- Prerequisite checks (abort on failure) ---
  if (!config_.kit_files.empty()) {
    storage::Env* env = config_.kit_env != nullptr ? config_.kit_env
                                                   : storage::Env::Posix();
    result.file_check = FileCheck(env, config_.kit_files);
  } else {
    result.file_check = {true, "file check", "no kit files registered"};
  }
  if (!result.file_check.passed) {
    result.status = Status::FailedCheck(result.file_check.detail);
    result.invalid_reason = "file check failed";
    return result;
  }

  result.replication_check = ReplicationCheck(cluster_);
  if (!result.replication_check.passed) {
    result.status = Status::FailedCheck(result.replication_check.detail);
    result.invalid_reason = "replication check failed";
    return result;
  }

  // A fault schedule naming a node the SUT does not have would silently
  // never fire; reject it up front instead.
  if (config_.fault_kill_node >= cluster_->num_nodes()) {
    result.status = Status::InvalidArgument(
        "fault.kill_node=" + std::to_string(config_.fault_kill_node) +
        " but the SUT has " + std::to_string(cluster_->num_nodes()) +
        " nodes");
    result.invalid_reason = "invalid fault schedule";
    return result;
  }
  // The probe rows must not count towards the benchmark data.
  Status purge = cluster_->PurgeAll();
  if (!purge.ok()) {
    result.status = purge;
    return result;
  }

  // --- Two benchmark iterations ---
  bool windows_valid = true;
  std::string window_reason;
  for (int iteration = 0; iteration < 2; ++iteration) {
    IterationResult& iter = result.iterations[iteration];

    if (!config_.skip_warmup) {
      IOTDB_LOG(Info) << "iteration " << (iteration + 1) << ": warmup run";
      iter.warmup = ExecuteWorkloadInternal(/*with_faults=*/false);
      if (!iter.warmup.status.ok()) {
        result.status = iter.warmup.status;
        result.invalid_reason = "warmup execution failed";
        return result;
      }
    }

    IOTDB_LOG(Info) << "iteration " << (iteration + 1) << ": measured run";
    iter.measured = ExecuteWorkloadInternal(/*with_faults=*/true);
    if (!iter.measured.status.ok()) {
      result.status = iter.measured.status;
      result.invalid_reason = "measured execution failed";
      return result;
    }

    // A reversed/empty measurement window means the timing itself is
    // broken; IoTps over it would be meaningless. Flag the run invalid
    // rather than reporting a fake rate (the FDR prints the check result).
    Status window = iter.measured.metrics.Validate();
    if (!window.ok() && windows_valid) {
      windows_valid = false;
      window_reason = window.message();
      IOTDB_LOG(Error) << "iteration " << (iteration + 1) << ": "
                       << window.ToString();
    }

    DataCheckInput check;
    check.expected_kvps = config_.total_kvps;
    check.ingested_kvps = iter.measured.metrics.kvps_ingested;
    check.elapsed_seconds = iter.measured.metrics.ElapsedSeconds();
    check.substations = config_.num_driver_instances;
    check.avg_rows_per_query = iter.measured.AvgRowsPerQuery();
    check.min_run_seconds = config_.min_run_seconds;
    check.min_per_sensor_rate = config_.min_per_sensor_rate;
    check.min_rows_per_query = config_.min_rows_per_query;
    check.enforce_query_rows = config_.enforce_query_rows;
    iter.data_check = DataCheck(check);

    // System cleanup between iterations (and after the second, the SUT is
    // left purged for reporting reproducibility).
    Status cleanup = cluster_->PurgeAll();
    if (!cleanup.ok()) {
      result.status = cleanup;
      result.invalid_reason = "system cleanup failed";
      return result;
    }
  }

  result.performance_run =
      PerformanceRunIndex(result.iterations[0].measured.metrics,
                          result.iterations[1].measured.metrics);
  result.valid = windows_valid && result.iterations[0].data_check.passed &&
                 result.iterations[1].data_check.passed;
  if (!windows_valid) {
    result.invalid_reason = window_reason;
  } else if (!result.valid) {
    result.invalid_reason =
        !result.iterations[0].data_check.passed
            ? result.iterations[0].data_check.detail
            : result.iterations[1].data_check.detail;
  } else if (config_.repeatability_tolerance > 0 &&
             result.RepeatabilityDelta() >
                 config_.repeatability_tolerance) {
    result.valid = false;
    char buf[128];
    snprintf(buf, sizeof(buf),
             "measured runs differ by %.1f%% (tolerance %.1f%%)",
             100.0 * result.RepeatabilityDelta(),
             100.0 * config_.repeatability_tolerance);
    result.invalid_reason = buf;
  }
  return result;
}

double BenchmarkResult::RepeatabilityDelta() const {
  double first = iterations[0].measured.metrics.IoTps();
  double second = iterations[1].measured.metrics.IoTps();
  double larger = std::max(first, second);
  if (larger <= 0) return 0;
  return (larger - std::min(first, second)) / larger;
}

}  // namespace iot
}  // namespace iotdb
