#ifndef IOTDB_IOT_DRIVER_HOST_MODEL_H_
#define IOTDB_IOT_DRIVER_HOST_MODEL_H_

#include <cstdint>
#include <vector>

namespace iotdb {
namespace iot {

/// Model of the paper's driver machine for Figure 8: a Cisco UCS C220 M4
/// with 2x 14-core Xeon E5-2680 v4 (56 hardware threads) running 1..64
/// Java driver processes of 10 threads each, writing generated kvps to
/// /dev/null. Throughput rises to ~1.1 M kvps/s at 32 drivers, then drops
/// to ~0.9 M at 64 as scheduling and GC overhead saturate the CPUs.
struct DriverHostProfile {
  int hardware_threads = 56;
  /// Hardware-thread demand of one driver process (10 threads at a low
  /// duty cycle; calibrated from the 1-driver point: 120 kkvps at 4% CPU).
  double demand_per_driver = 2.2;
  /// Generation rate of one fully-busy hardware thread, kvps/s.
  double per_thread_rate = 55000.0;
  /// Contention growth: efficiency = 1 / (1 + c * rho^e) where rho is the
  /// thread oversubscription ratio.
  double contention_coefficient = 1.79;
  double contention_exponent = 1.5;
  /// Fraction of contention time that burns CPU (GC, spinning, scheduler).
  double contention_cpu_fraction = 0.437;
};

/// One point of the Figure 8 curve.
struct GenerationPoint {
  int drivers = 0;
  double kvps_per_sec = 0;
  double cpu_percent = 0;
  double sys_percent = 0;
};

/// Evaluates the model for the given driver count.
GenerationPoint ModelGenerationPoint(const DriverHostProfile& profile,
                                     int drivers);

/// The full sweep 1..64 (powers of two plus 48, matching the paper's axis).
std::vector<GenerationPoint> ModelGenerationSweep(
    const DriverHostProfile& profile);

/// Measures the real single-thread kvp generation + encoding rate of this
/// reproduction's DataGenerator, discarding output (the /dev/null setup).
/// Returns kvps per second measured over roughly `budget_ms` milliseconds.
double MeasureGenerationRate(uint64_t budget_ms);

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_DRIVER_HOST_MODEL_H_
