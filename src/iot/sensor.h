#ifndef IOTDB_IOT_SENSOR_H_
#define IOTDB_IOT_SENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace iotdb {
namespace iot {

/// One sensor type deployed in a power substation (paper §III-A): load tap
/// changer gassing sensors, MIS gas sensors, phasor measurement units,
/// leakage current sensors, and the like.
struct SensorType {
  /// Unique key within a substation, 1-64 chars (Figure 7).
  std::string key;
  /// Human-readable description.
  std::string name;
  /// Measurement unit string, 4-34 chars (Figure 7).
  std::string unit;
  /// Value range for synthetic readings.
  double min_value;
  double max_value;
};

/// The fixed catalog of sensors per power substation. TPCx-IoT models every
/// substation with exactly 200 sensors.
class SensorCatalog {
 public:
  /// Builds the default 200-sensor catalog.
  SensorCatalog();

  size_t size() const { return sensors_.size(); }
  const SensorType& sensor(size_t i) const { return sensors_[i]; }
  const std::vector<SensorType>& sensors() const { return sensors_; }

  /// Index of a sensor key, or -1 when unknown.
  int IndexOf(const std::string& key) const;

  /// Process-wide default catalog (immutable).
  static const SensorCatalog& Default();

  /// The benchmark constant: sensors per power substation.
  static constexpr int kSensorsPerSubstation = 200;

 private:
  std::vector<SensorType> sensors_;
};

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_SENSOR_H_
