#include "iot/sensor.h"

#include <cstdio>

namespace iotdb {
namespace iot {

namespace {

struct SensorFamily {
  const char* prefix;
  const char* name;
  const char* unit;
  double min_value;
  double max_value;
  int count;  // instances of this family per substation
};

// 200 sensors per substation, drawn from the families the paper names in
// §III-A (Figure 3) plus standard substation instrumentation. Counts sum to
// 200.
const SensorFamily kFamilies[] = {
    {"ltc_gas", "Load tap changer gassing sensor", "ppm", 0.0, 2000.0, 24},
    {"mis_h2", "MIS sensor, H2 concentration", "ppm", 0.0, 5000.0, 16},
    {"mis_c2h2", "MIS sensor, C2H2 concentration", "ppm", 0.0, 1000.0, 16},
    {"pmu_phasor", "Phasor measurement unit, synchrophasor angle",
     "degrees", -180.0, 180.0, 24},
    {"pmu_freq", "Phasor measurement unit, line frequency", "hertz", 59.90,
     60.10, 12},
    {"leakage", "Leakage current sensor", "milliamperes", 0.0, 500.0, 20},
    {"xfmr_temp", "Transformer winding temperature", "degrees_celsius",
     -40.0, 180.0, 16},
    {"oil_level", "Transformer oil level", "percent", 0.0, 100.0, 8},
    {"oil_moisture", "Transformer oil moisture", "ppm", 0.0, 100.0, 8},
    {"bushing_pf", "Bushing power factor monitor", "percent", 0.0, 5.0, 8},
    {"breaker_sf6", "Circuit breaker SF6 density", "kilopascal", 300.0,
     800.0, 12},
    {"busbar_v", "Busbar voltage", "kilovolt", 0.0, 500.0, 12},
    {"feeder_i", "Feeder current", "ampere", 0.0, 3000.0, 12},
    {"ambient_temp", "Ambient temperature", "degrees_celsius", -40.0, 55.0,
     4},
    {"humidity", "Ambient relative humidity", "percent_rh", 0.0, 100.0, 4},
    {"vibration", "Transformer tank vibration", "millimeters_per_second",
     0.0, 50.0, 4},
};

}  // namespace

SensorCatalog::SensorCatalog() {
  sensors_.reserve(kSensorsPerSubstation);
  for (const SensorFamily& family : kFamilies) {
    for (int i = 0; i < family.count; ++i) {
      SensorType sensor;
      char key[80];
      snprintf(key, sizeof(key), "%s_%03d", family.prefix, i);
      sensor.key = key;
      sensor.name = family.name;
      sensor.unit = family.unit;
      sensor.min_value = family.min_value;
      sensor.max_value = family.max_value;
      sensors_.push_back(std::move(sensor));
    }
  }
}

int SensorCatalog::IndexOf(const std::string& key) const {
  for (size_t i = 0; i < sensors_.size(); ++i) {
    if (sensors_[i].key == key) return static_cast<int>(i);
  }
  return -1;
}

const SensorCatalog& SensorCatalog::Default() {
  static const SensorCatalog* catalog = new SensorCatalog();
  return *catalog;
}

}  // namespace iot
}  // namespace iotdb
