#include "iot/driver_instance.h"

#include <utility>
#include <vector>

#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace iotdb {
namespace iot {

namespace {

/// Global `driver.*` registry instruments, aggregated over all driver
/// instances (per-driver DriverResult histograms stay exact).
struct DriverInstruments {
  obs::LatencyHistogram* insert_batch_micros;
  obs::LatencyHistogram* query_micros;
  obs::Counter* ingest_kvps;
  obs::Counter* unavailable_retries;
  obs::Counter* query_count;
  obs::Counter* query_rows;
};

DriverInstruments& Instruments() {
  static DriverInstruments instruments = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return DriverInstruments{
        registry.GetHistogram("driver.insert_batch_micros"),
        registry.GetHistogram("driver.query_micros"),
        registry.GetCounter("driver.ingest.kvps"),
        registry.GetCounter("driver.ingest.unavailable_retries"),
        registry.GetCounter("driver.query.count"),
        registry.GetCounter("driver.query.rows")};
  }();
  return instruments;
}

}  // namespace

DriverInstance::DriverInstance(const DriverOptions& options, ycsb::DB* db)
    : options_(options), db_(db) {
  if (options_.clock == nullptr) options_.clock = Clock::Real();
  if (options_.batch_size == 0) options_.batch_size = 1;
}

DriverResult DriverInstance::Run(std::atomic<bool>* abort,
                                 ycsb::Measurements* measurements) {
  DriverResult result;
  result.substation_key = options_.substation_key;

  Clock* clock = options_.clock;
  DataGenerator generator(options_.substation_key, options_.total_kvps,
                          options_.seed, clock);
  QueryGenerator query_generator(options_.substation_key, options_.seed,
                                 clock);
  QueryExecutor executor(db_);

  result.start_micros = clock->NowMicros();
  uint64_t next_query_marker = Rules::kReadingsPerQueryBatch;

  std::vector<std::pair<std::string, std::string>> batch;
  batch.reserve(options_.batch_size);

  while (generator.HasNext()) {
    if (abort != nullptr && abort->load(std::memory_order_relaxed)) {
      result.status = Status::Aborted("driver aborted");
      break;
    }

    batch.clear();
    while (generator.HasNext() && batch.size() < options_.batch_size) {
      Kvp kvp = generator.Next();
      batch.emplace_back(std::move(kvp.key), std::move(kvp.value));
    }

    // The op's causal identity: minted here (the op's entry point), carried
    // by the thread-local context through the storage and replication
    // layers, and recorded with every hop's span so the trace export links
    // the whole replicated write as one flow. The breadcrumb collects the
    // op's per-stage latencies; at completion they feed the attribution
    // histograms and the slow-op flight recorder.
    const bool tracing = obs::TraceBuffer::Enabled();
    obs::TraceContext op_ctx;
    if (tracing) op_ctx = obs::TraceContext::Mint();
    obs::ScopedOpBreadcrumb breadcrumb("driver.insert_batch",
                                       op_ctx.trace_id, batch.size());
    obs::ScopedTraceContext ctx_scope(op_ctx);

    uint64_t t0 = clock->NowMicros();
    Status s = db_->InsertBatch(batch);
    // A quorum-lost or deadline-expired write is a transient availability
    // failure (e.g. a network partition mid-run), not data loss: the batch
    // was never acknowledged, so resubmitting it is safe. Retry a bounded
    // number of times with backoff before giving up on the whole run.
    for (int retry = 0;
         !s.ok() && (s.IsUnavailable() || s.IsTimedOut()) && retry < 5;
         ++retry) {
      if (abort != nullptr && abort->load(std::memory_order_relaxed)) break;
      if (obs::Enabled()) Instruments().unavailable_retries->Increment();
      obs::AddStageMicros(obs::Stage::kRetryBackoff, 1000u << retry);
      clock->SleepMicros(1000u << retry);
      s = db_->InsertBatch(batch);
    }
    uint64_t insert_elapsed = clock->NowMicros() - t0;
    if (!s.ok()) {
      result.status = s;
      break;
    }
    result.insert_batch_latency_micros.Add(insert_elapsed);
    if (measurements != nullptr) {
      measurements->Record("INSERT_BATCH", insert_elapsed);
    }
    if (obs::Enabled()) {
      Instruments().insert_batch_micros->Record(insert_elapsed);
      Instruments().ingest_kvps->Add(batch.size());
    }
    breadcrumb.Complete(t0, insert_elapsed);
    // Reuses the timestamps already taken for the latency histogram — the
    // trace costs no extra clock reads on the ingest hot path.
    if (tracing) {
      obs::TraceBuffer::Record("driver.insert_batch", t0, insert_elapsed,
                               op_ctx, "kvps", batch.size());
    }
    result.kvps_ingested += batch.size();

    // Five queries for every 10,000 ingested readings, issued concurrently
    // with continued ingestion by the other drivers.
    while (result.kvps_ingested >= next_query_marker) {
      for (uint64_t q = 0; q < Rules::kQueriesPerReadings; ++q) {
        Query query = query_generator.Next();
        uint64_t q0 = clock->NowMicros();
        auto query_result = executor.Execute(query);
        uint64_t query_elapsed = clock->NowMicros() - q0;
        if (!query_result.ok()) {
          result.status = query_result.status();
          break;
        }
        result.queries_executed++;
        result.query_rows_read += query_result.ValueOrDie().rows_read;
        result.query_latency_micros.Add(query_elapsed);
        if (obs::Enabled()) {
          Instruments().query_micros->Record(query_elapsed);
          Instruments().query_count->Increment();
          Instruments().query_rows->Add(
              query_result.ValueOrDie().rows_read);
        }
        obs::TraceBuffer::Record("driver.query", q0, query_elapsed, "rows",
                                 query_result.ValueOrDie().rows_read);
        if (measurements != nullptr) {
          measurements->Record("QUERY", query_elapsed);
        }
      }
      if (!result.status.ok()) break;
      next_query_marker += Rules::kReadingsPerQueryBatch;
    }
    if (!result.status.ok()) break;
  }

  result.end_micros = clock->NowMicros();
  return result;
}

}  // namespace iot
}  // namespace iotdb
