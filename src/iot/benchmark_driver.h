#ifndef IOTDB_IOT_BENCHMARK_DRIVER_H_
#define IOTDB_IOT_BENCHMARK_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/result.h"
#include "iot/checks.h"
#include "iot/driver_instance.h"
#include "iot/metrics.h"
#include "iot/pricing.h"
#include "iot/rules.h"
#include "obs/sampler.h"
#include "obs/slowops.h"
#include "obs/snapshot.h"

namespace iotdb {
namespace iot {

/// Benchmark invocation parameters: the two arguments of the kit (§III-E)
/// plus reproduction-scale knobs.
struct BenchmarkConfig {
  /// Number of TPCx-IoT driver instances == simulated power substations.
  int num_driver_instances = 1;
  /// Total kvps to ingest per workload execution (default 1 billion in the
  /// kit; scale down for in-process runs).
  uint64_t total_kvps = Rules::kDefaultTotalKvps;

  /// Client write buffer per driver, in kvps.
  size_t batch_size = 200;
  uint64_t seed = 42;

  /// Storage write shards per node (`store.write_shards` in kit
  /// properties): disclosed SUT tunable forwarded to
  /// storage::Options::write_shards by whoever builds the cluster.
  /// 0 = auto (hardware concurrency).
  int write_shards = 0;

  /// Runtime requirement floors. Paper-faithful values are 1800 s and
  /// 20 kvps/s/sensor; in-process reproduction runs scale these down and
  /// must say so in the report.
  double min_run_seconds = Rules::kMinRunSeconds;
  double min_per_sensor_rate = Rules::kMinPerSensorRate;
  double min_rows_per_query = Rules::kMinKvpsPerQuery;
  bool enforce_query_rows = false;  // short runs rarely hit 10k readings

  /// Skips the (untimed) warmup execution; reproduction convenience only,
  /// a publishable run always warms up.
  bool skip_warmup = false;

  /// Cadence of the run-timeline sampler (`timeline.cadence_ms` in kit
  /// properties). Each execution runs its own obs::Sampler at this rate;
  /// the per-interval series feeds the FDR "Run timeline" section and
  /// timeline.json. Ignored while observability is disabled.
  uint64_t timeline_cadence_micros = 1'000'000;

  /// Repeatability tolerance between the two measured runs' IoTps, as a
  /// fraction. The TPC requires the repetition run to demonstrate a
  /// reproducible result; runs differing by more are flagged invalid.
  /// <= 0 disables the check (tiny reproduction runs are noisy).
  double repeatability_tolerance = 0;

  /// Kit files verified by the prerequisite file check.
  std::vector<KitFile> kit_files;
  storage::Env* kit_env = nullptr;  // env holding kit files

  /// Fault schedule, applied to measured executions only (warmups run
  /// clean). When fault_kill_node >= 0 the driver crashes that node once
  /// the cluster has acknowledged fault_at_ops primary kvps, and restarts
  /// it fault_restart_after_ops acknowledged kvps later (0 = at the end of
  /// the execution). A node that is still down when the drivers finish is
  /// always restarted so the data check sees a whole cluster.
  int fault_kill_node = -1;
  uint64_t fault_at_ops = 0;
  uint64_t fault_restart_after_ops = 0;

  /// Bit-rot schedule (`fault.corrupt_sstable` in kit properties), applied
  /// to measured executions only. When fault_corrupt_node >= 0 the driver
  /// flips fault_corrupt_bits seeded-random bits in a random live SSTable
  /// of that node once fault_corrupt_at_ops primary kvps are acknowledged
  /// (a memtable flush guarantees a victim file exists), then scrubs the
  /// victim store — quarantining the damaged file — and heals it with a
  /// shard re-copy from healthy replicas, all while ingest keeps running.
  /// If the threshold is never reached the injection fires at the end of
  /// the execution so the schedule always exercises detection and repair.
  /// Requires the cluster to run with fault injection enabled.
  /// fault_corrupt_target picks the victim file class: "sstable" (default)
  /// or "vlog" (`fault.corrupt_target` in kit properties; vlog requires the
  /// SUT stores to run with Options::value_separation).
  int fault_corrupt_node = -1;
  uint64_t fault_corrupt_at_ops = 0;
  int fault_corrupt_bits = 8;
  std::string fault_corrupt_target = "sstable";

  /// Network-fault schedule (`fault.net_*` in kit properties), applied to
  /// measured executions only. Requires the cluster to run with
  /// ClusterOptions::enable_net_fault_injection so replication flows
  /// through a FaultChannel. When fault_net_partition_node >= 0 the driver
  /// isolates that node (both directions) once fault_net_partition_at_ops
  /// primary kvps are acknowledged and heals it fault_net_heal_after_ops
  /// acknowledged kvps later (0 = at the end of the execution); the
  /// partition is always healed — and hinted writes drained — before the
  /// execution ends so the data check sees a converged cluster. The
  /// remaining knobs shape the whole run: a fixed per-message delivery
  /// delay into fault_net_delay_node, and drop / duplicate / reorder
  /// probabilities (fractions in [0, 1]) applied to every message.
  int fault_net_partition_node = -1;
  uint64_t fault_net_partition_at_ops = 0;
  uint64_t fault_net_heal_after_ops = 0;
  int fault_net_delay_node = -1;
  uint64_t fault_net_delay_ms = 0;
  double fault_net_drop_pct = 0;
  double fault_net_dup_pct = 0;
  double fault_net_reorder_pct = 0;

  /// True when any part of the network-fault schedule is configured.
  bool HasNetFaultSchedule() const {
    return fault_net_partition_node >= 0 || fault_net_delay_node >= 0 ||
           fault_net_drop_pct > 0 || fault_net_dup_pct > 0 ||
           fault_net_reorder_pct > 0;
  }
};

/// Corruption injected / detected / repaired during one workload execution
/// (the FDR "Data integrity" numbers). All zero for a clean run.
struct IntegrityStats {
  uint64_t files_corrupted = 0;    // files damaged by bit-rot injection
  uint64_t bits_flipped = 0;
  uint64_t files_quarantined = 0;  // corrupt files detected & moved aside
  uint64_t read_repairs = 0;       // reads re-served from healthy replicas
  uint64_t shard_recopies = 0;     // quarantines healed by shard re-copy
  /// Corrupt WAL bytes dropped during recovery, per node id.
  std::vector<uint64_t> node_wal_dropped_bytes;

  uint64_t TotalWalDroppedBytes() const;
  bool Any() const;
};

/// One workload execution (warmup or measured): per-driver outcomes plus
/// aggregates.
struct WorkloadExecution {
  Status status;
  RunMetrics metrics;
  std::vector<DriverResult> drivers;
  /// Fault-recovery activity during this execution (crashes, restarts,
  /// hinted/replayed/re-copied kvps). All zero for a clean run.
  cluster::FaultRecoveryStats faults;
  /// Corruption injected/detected/repaired during this execution.
  IntegrityStats integrity;
  /// Quorum-write availability over exactly this execution's window
  /// (attempted / quorum-met / unavailable, straggler hints, deadline
  /// expiries). Feeds the FDR "Availability" section.
  cluster::AvailabilityStats availability;
  /// Messages injected-faulted by the network FaultChannel during this
  /// execution. All zero when net fault injection is off.
  cluster::NetFaultCounters net_faults;
  /// Registry delta over exactly this execution's window — the warm-up
  /// execution gets its own delta, so measured numbers are not polluted by
  /// warm-up traffic. Empty when the obs registry is disabled.
  obs::MetricsSnapshot obs_delta;
  /// Per-interval registry deltas over this execution's window, sampled at
  /// BenchmarkConfig::timeline_cadence_micros. Empty when observability is
  /// disabled (the sampler is never started then).
  obs::Timeline timeline;
  /// The K slowest ops of this execution with their full per-stage latency
  /// breadcrumbs (slowest first), captured by the slow-op flight recorder.
  /// Feeds the FDR "Latency attribution" slow-op table and --slowops-out.
  /// Empty when the obs registry is disabled.
  std::vector<obs::SlowOpRecorder::Record> slow_ops;

  uint64_t TotalQueries() const;
  uint64_t TotalQueryRows() const;
  double AvgRowsPerQuery() const;
  Histogram MergedQueryLatency() const;
  /// Fastest/slowest per-substation ingest completion (Figure 15).
  double MinDriverSeconds() const;
  double MaxDriverSeconds() const;
  double AvgDriverSeconds() const;
};

/// One benchmark iteration: warmup + measured execution + data check.
struct IterationResult {
  WorkloadExecution warmup;
  WorkloadExecution measured;
  CheckResult data_check;
};

/// Complete result of a benchmark run (two iterations).
struct BenchmarkResult {
  Status status;
  CheckResult file_check;
  CheckResult replication_check;
  IterationResult iterations[2];
  /// Index (0/1) of the performance run.
  int performance_run = 0;
  bool valid = false;
  std::string invalid_reason;

  /// Relative difference between the two measured runs' IoTps.
  double RepeatabilityDelta() const;

  const RunMetrics& PerformanceMetrics() const {
    return iterations[performance_run].measured.metrics;
  }
  double IoTps() const { return PerformanceMetrics().IoTps(); }
};

/// The TPCx-IoT benchmark driver (paper Figure 6 and §III-E): prerequisite
/// checks, two iterations of warmup + measured workload with a system
/// cleanup in between, data checks, and metric computation. Runs the real
/// workload (DriverInstance threads) against the in-process gateway
/// cluster.
class BenchmarkDriver {
 public:
  BenchmarkDriver(const BenchmarkConfig& config, cluster::Cluster* cluster);

  /// Runs the full benchmark. Blocking; spawns one thread per driver
  /// instance for each workload execution.
  BenchmarkResult Run();

  /// Runs a single workload execution (exposed for tests and examples).
  /// Applies the configured fault schedule, like a measured run.
  WorkloadExecution ExecuteWorkload();

 private:
  WorkloadExecution ExecuteWorkloadInternal(bool with_faults);

  /// Fires the bit-rot schedule once: flush the victim's memtable, flip
  /// bits in one of its SSTables, scrub (detect + quarantine), repair.
  void InjectScheduledCorruption();

  BenchmarkConfig config_;
  cluster::Cluster* cluster_;
  /// Injections whose damaged file was compacted away before the scrub
  /// could see it (the rot died with the obsolete table); re-rolled by
  /// InjectScheduledCorruption and discounted from IntegrityStats.
  std::atomic<uint64_t> vacuous_corrupt_files_{0};
  std::atomic<uint64_t> vacuous_corrupt_bits_{0};
};

/// Shard key function for gateway clusters running TPCx-IoT: routes by
/// (substation, sensor) prefix. Pass as ClusterOptions::shard_key_fn.
Slice TpcxIotShardKey(const Slice& row_key);

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_BENCHMARK_DRIVER_H_
