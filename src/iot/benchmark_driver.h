#ifndef IOTDB_IOT_BENCHMARK_DRIVER_H_
#define IOTDB_IOT_BENCHMARK_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/result.h"
#include "iot/checks.h"
#include "iot/driver_instance.h"
#include "iot/metrics.h"
#include "iot/pricing.h"
#include "iot/rules.h"
#include "obs/snapshot.h"

namespace iotdb {
namespace iot {

/// Benchmark invocation parameters: the two arguments of the kit (§III-E)
/// plus reproduction-scale knobs.
struct BenchmarkConfig {
  /// Number of TPCx-IoT driver instances == simulated power substations.
  int num_driver_instances = 1;
  /// Total kvps to ingest per workload execution (default 1 billion in the
  /// kit; scale down for in-process runs).
  uint64_t total_kvps = Rules::kDefaultTotalKvps;

  /// Client write buffer per driver, in kvps.
  size_t batch_size = 200;
  uint64_t seed = 42;

  /// Runtime requirement floors. Paper-faithful values are 1800 s and
  /// 20 kvps/s/sensor; in-process reproduction runs scale these down and
  /// must say so in the report.
  double min_run_seconds = Rules::kMinRunSeconds;
  double min_per_sensor_rate = Rules::kMinPerSensorRate;
  double min_rows_per_query = Rules::kMinKvpsPerQuery;
  bool enforce_query_rows = false;  // short runs rarely hit 10k readings

  /// Skips the (untimed) warmup execution; reproduction convenience only,
  /// a publishable run always warms up.
  bool skip_warmup = false;

  /// Repeatability tolerance between the two measured runs' IoTps, as a
  /// fraction. The TPC requires the repetition run to demonstrate a
  /// reproducible result; runs differing by more are flagged invalid.
  /// <= 0 disables the check (tiny reproduction runs are noisy).
  double repeatability_tolerance = 0;

  /// Kit files verified by the prerequisite file check.
  std::vector<KitFile> kit_files;
  storage::Env* kit_env = nullptr;  // env holding kit files

  /// Fault schedule, applied to measured executions only (warmups run
  /// clean). When fault_kill_node >= 0 the driver crashes that node once
  /// the cluster has acknowledged fault_at_ops primary kvps, and restarts
  /// it fault_restart_after_ops acknowledged kvps later (0 = at the end of
  /// the execution). A node that is still down when the drivers finish is
  /// always restarted so the data check sees a whole cluster.
  int fault_kill_node = -1;
  uint64_t fault_at_ops = 0;
  uint64_t fault_restart_after_ops = 0;
};

/// One workload execution (warmup or measured): per-driver outcomes plus
/// aggregates.
struct WorkloadExecution {
  Status status;
  RunMetrics metrics;
  std::vector<DriverResult> drivers;
  /// Fault-recovery activity during this execution (crashes, restarts,
  /// hinted/replayed/re-copied kvps). All zero for a clean run.
  cluster::FaultRecoveryStats faults;
  /// Registry delta over exactly this execution's window — the warm-up
  /// execution gets its own delta, so measured numbers are not polluted by
  /// warm-up traffic. Empty when the obs registry is disabled.
  obs::MetricsSnapshot obs_delta;

  uint64_t TotalQueries() const;
  uint64_t TotalQueryRows() const;
  double AvgRowsPerQuery() const;
  Histogram MergedQueryLatency() const;
  /// Fastest/slowest per-substation ingest completion (Figure 15).
  double MinDriverSeconds() const;
  double MaxDriverSeconds() const;
  double AvgDriverSeconds() const;
};

/// One benchmark iteration: warmup + measured execution + data check.
struct IterationResult {
  WorkloadExecution warmup;
  WorkloadExecution measured;
  CheckResult data_check;
};

/// Complete result of a benchmark run (two iterations).
struct BenchmarkResult {
  Status status;
  CheckResult file_check;
  CheckResult replication_check;
  IterationResult iterations[2];
  /// Index (0/1) of the performance run.
  int performance_run = 0;
  bool valid = false;
  std::string invalid_reason;

  /// Relative difference between the two measured runs' IoTps.
  double RepeatabilityDelta() const;

  const RunMetrics& PerformanceMetrics() const {
    return iterations[performance_run].measured.metrics;
  }
  double IoTps() const { return PerformanceMetrics().IoTps(); }
};

/// The TPCx-IoT benchmark driver (paper Figure 6 and §III-E): prerequisite
/// checks, two iterations of warmup + measured workload with a system
/// cleanup in between, data checks, and metric computation. Runs the real
/// workload (DriverInstance threads) against the in-process gateway
/// cluster.
class BenchmarkDriver {
 public:
  BenchmarkDriver(const BenchmarkConfig& config, cluster::Cluster* cluster);

  /// Runs the full benchmark. Blocking; spawns one thread per driver
  /// instance for each workload execution.
  BenchmarkResult Run();

  /// Runs a single workload execution (exposed for tests and examples).
  /// Applies the configured fault schedule, like a measured run.
  WorkloadExecution ExecuteWorkload();

 private:
  WorkloadExecution ExecuteWorkloadInternal(bool with_faults);

  BenchmarkConfig config_;
  cluster::Cluster* cluster_;
};

/// Shard key function for gateway clusters running TPCx-IoT: routes by
/// (substation, sensor) prefix. Pass as ClusterOptions::shard_key_fn.
Slice TpcxIotShardKey(const Slice& row_key);

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_BENCHMARK_DRIVER_H_
