#include "iot/data_generator.h"

#include <cassert>

namespace iotdb {
namespace iot {

DataGenerator::DataGenerator(std::string substation_key,
                             uint64_t total_readings, uint64_t seed,
                             Clock* clock, const SensorCatalog* catalog)
    : substation_key_(std::move(substation_key)),
      total_readings_(total_readings),
      rng_(seed ^ 0x51ed2701abcdef12ull),
      clock_(clock != nullptr ? clock : Clock::Real()),
      catalog_(catalog) {
  assert(substation_key_.find(KvpCodec::kKeySeparator) == std::string::npos);
}

Reading DataGenerator::NextReading() {
  assert(HasNext());
  const SensorType& sensor = catalog_->sensor(sensor_index_);

  uint64_t now = clock_->NowMicros();
  if (now <= last_timestamp_) now = last_timestamp_ + 1;
  last_timestamp_ = now;

  Reading reading;
  reading.substation_key = substation_key_;
  reading.sensor_key = sensor.key;
  reading.timestamp_micros = now;
  reading.unit = sensor.unit;
  reading.value = sensor.min_value +
                  rng_.NextDouble() * (sensor.max_value - sensor.min_value);

  ++generated_;
  ++sensor_index_;
  if (sensor_index_ == catalog_->size()) sensor_index_ = 0;
  return reading;
}

Kvp DataGenerator::Next() {
  Reading reading = NextReading();
  return KvpCodec::Encode(reading, rng_.Next());
}

}  // namespace iot
}  // namespace iotdb
