#include "iot/retention.h"

#include "iot/kvp.h"

namespace iotdb {
namespace iot {

SensorDataRetentionFilter::SensorDataRetentionFilter(
    uint64_t retention_micros, Clock* clock)
    : retention_micros_(retention_micros),
      clock_(clock != nullptr ? clock : Clock::Real()) {}

bool SensorDataRetentionFilter::ShouldDrop(const Slice& user_key,
                                           const Slice& /*value*/) const {
  auto timestamp = KvpCodec::DecodeTimestamp(user_key);
  if (!timestamp.ok()) return false;  // not a sensor row: keep
  uint64_t now = clock_->NowMicros();
  if (now <= retention_micros_) return false;
  return timestamp.ValueOrDie() < now - retention_micros_;
}

}  // namespace iot
}  // namespace iotdb
