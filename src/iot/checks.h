#ifndef IOTDB_IOT_CHECKS_H_
#define IOTDB_IOT_CHECKS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "storage/env.h"

namespace iotdb {
namespace iot {

/// Outcome of a benchmark check. A failed prerequisite check aborts the
/// run (paper Figure 6).
struct CheckResult {
  bool passed = false;
  std::string name;
  std::string detail;
};

/// A kit file with its reference checksum.
struct KitFile {
  std::string path;
  std::string expected_md5_hex;
};

/// Prerequisite "file check": recomputes md5sums of all non-changeable kit
/// files and compares with the reference checksums shipped in the kit.
CheckResult FileCheck(storage::Env* env, const std::vector<KitFile>& files);

/// Computes the md5 hex digest of a file (helper for building manifests).
Result<std::string> Md5OfFile(storage::Env* env, const std::string& path);

/// Prerequisite "data replication check": verifies the SUT is configured
/// for three-way replication and probes that writes actually land on the
/// expected number of distinct nodes.
CheckResult ReplicationCheck(cluster::Cluster* cluster, int probes = 16);

/// Post-run "data check" inputs: what the run was asked to do and what it
/// measured.
struct DataCheckInput {
  uint64_t expected_kvps = 0;
  uint64_t ingested_kvps = 0;
  double elapsed_seconds = 0;
  int substations = 0;
  double avg_rows_per_query = 0;
  /// Scaled-down runs may relax the 1800 s floor; paper-faithful runs use
  /// Rules::kMinRunSeconds.
  double min_run_seconds = 1800.0;
  double min_per_sensor_rate = 20.0;
  double min_rows_per_query = 200.0;
  bool enforce_query_rows = true;
};

/// Post-run data check: completeness plus the §III-B runtime requirements
/// (elapsed time floor, per-sensor ingest-rate floor, per-query row floor).
CheckResult DataCheck(const DataCheckInput& input);

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_CHECKS_H_
