#ifndef IOTDB_IOT_RUN_TIMELINE_H_
#define IOTDB_IOT_RUN_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/sampler.h"

namespace iotdb {
namespace iot {

/// One timeline interval whose ingest rate dipped below the run's median,
/// with the storage/cluster activity that coincided — the FDR's stall
/// attribution ("interval 12 dipped to 40% of median while 6 MB of
/// compaction ran and writers stalled 180 ms").
struct TimelineDip {
  size_t interval_index = 0;
  uint64_t start_micros = 0;
  double ingest_rate = 0;       // kvps/s in the dipped interval
  double fraction_of_median = 0;
  /// Coincident activity deltas within the dipped interval.
  uint64_t stall_micros = 0;
  uint64_t compaction_bytes = 0;
  uint64_t flush_bytes = 0;
  uint64_t scrub_bytes = 0;
  int64_t hint_queue_depth = 0;
};

/// Steady-state verdict over one execution's timeline plus the
/// warmup-vs-measured comparison (paper §III-B: the measured window is
/// only meaningful if the system has reached steady state by the end of
/// warmup).
struct RunTimelineAnalysis {
  /// Complete intervals analysed (partial tail intervals are excluded).
  size_t intervals_analyzed = 0;
  /// Mean and coefficient of variation of per-interval ingest rate over
  /// the measured execution.
  double mean_ingest_rate = 0;
  double ingest_rate_cov = 0;
  /// |measured mean − warmup mean| / measured mean; 0 when either side
  /// has no usable intervals (e.g. warmup skipped).
  double warmup_drift = 0;
  bool warmup_compared = false;

  /// Pass/warn against the Rules thresholds. Warn-only: steady-state
  /// violations are disclosed, not invalidating.
  bool cov_ok = true;
  bool drift_ok = true;

  std::vector<TimelineDip> dips;
};

/// Computes steady-state statistics from the measured execution's timeline
/// and, when the warmup timeline is non-empty, the warmup-vs-measured
/// drift. Only complete intervals (duration >= half the cadence) enter the
/// statistics so the flushed partial tail does not skew the CoV.
RunTimelineAnalysis AnalyzeRunTimeline(const obs::Timeline& warmup,
                                       const obs::Timeline& measured);

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_RUN_TIMELINE_H_
