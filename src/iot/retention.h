#ifndef IOTDB_IOT_RETENTION_H_
#define IOTDB_IOT_RETENTION_H_

#include <cstdint>

#include "common/clock.h"
#include "storage/compaction_filter.h"

namespace iotdb {
namespace iot {

/// Ages sensor readings out of the gateway store: a kvp whose row-key
/// timestamp is older than `retention` is dropped at compaction time.
/// This implements the gateway's "short-term persistent storage" role
/// (paper §I): once the back-end has pulled the data (e.g., daily), the
/// gateway does not need it, and a benchmark-length retention keeps the
/// 1800-second query history (§III-D) intact with slack.
///
/// Non-sensor rows (keys without a parsable timestamp) are always kept.
class SensorDataRetentionFilter final : public storage::CompactionFilter {
 public:
  /// clock supplies "now"; pass ManualClock in tests.
  SensorDataRetentionFilter(uint64_t retention_micros, Clock* clock);

  bool ShouldDrop(const Slice& user_key, const Slice& value) const override;
  const char* Name() const override { return "iot.SensorDataRetention"; }

  uint64_t retention_micros() const { return retention_micros_; }

 private:
  uint64_t retention_micros_;
  Clock* clock_;
};

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_RETENTION_H_
