#ifndef IOTDB_IOT_CONFIG_H_
#define IOTDB_IOT_CONFIG_H_

#include "common/properties.h"
#include "common/result.h"
#include "iot/benchmark_driver.h"

namespace iotdb {
namespace iot {

/// Builds a BenchmarkConfig from kit-style properties. Recognised keys
/// (defaults in parentheses):
///
///   driver_instances      (1)      number of simulated power substations
///   total_kvps            (1e9)    kvps per workload execution
///   batch_size            (200)    client write buffer in kvps
///   store.write_shards    (0)      storage write shards per node
///                                  (0 = auto, hardware concurrency)
///   seed                  (42)
///   min_run_seconds       (1800)
///   min_per_sensor_rate   (20)
///   min_rows_per_query    (200)
///   enforce_query_rows    (false)
///   skip_warmup           (false)
///   fault.kill_node       (-1)     node crashed during measured runs
///   fault.at_ops          (0)      acked kvps before the crash
///   fault.restart_after_ops (0)    acked kvps from crash to restart
///                                  (0 = restart at end of execution)
///   fault.corrupt_sstable (-1)     node whose SSTable gets bit-rot during
///                                  measured runs (-1 = no corruption)
///   fault.corrupt_at_ops  (0)      acked kvps before the bit flips
///   fault.corrupt_bits    (8)      number of random bits flipped
///   fault.corrupt_target  (sstable) victim file class: sstable or vlog
///                                  (vlog needs value-separated stores)
///   fault.net_partition_node (-1)  node partitioned off mid-run
///   fault.net_partition_at_ops (0) acked kvps before the partition
///   fault.net_heal_after_ops (0)   acked kvps from partition to heal
///                                  (0 = heal at end of execution)
///   fault.net_delay_node  (-1)     node whose messages are delayed
///   fault.net_delay_ms    (0)      one-way delay for that node
///   fault.net_drop_pct    (0)      message drop probability [0,1]
///   fault.net_dup_pct     (0)      message duplicate probability [0,1]
///   fault.net_reorder_pct (0)      message reorder probability [0,1]
///
/// Unknown keys are rejected so typos in sponsor configs surface instead
/// of silently using defaults (the FDR must disclose every tunable).
Result<BenchmarkConfig> LoadBenchmarkConfig(const Properties& props);

/// Serialises a config back to kit properties (for the FDR and the file
/// check manifest).
Properties BenchmarkConfigToProperties(const BenchmarkConfig& config);

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_CONFIG_H_
