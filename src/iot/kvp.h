#ifndef IOTDB_IOT_KVP_H_
#define IOTDB_IOT_KVP_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "iot/sensor.h"

namespace iotdb {
namespace iot {

/// One sensor reading as a key-value pair (paper Figure 7):
///
///   key   = <substation key> '.' <sensor key> '.' <timestamp>
///   value = <sensor value> '|' <sensor unit> '|' <padding>
///
/// The timestamp is microsecond POSIX time rendered as a fixed-width,
/// zero-padded decimal so that lexicographic key order equals
/// (substation, sensor, time) order — the property the gateway's range
/// scans rely on. key+value always total exactly kKvpBytes (1 KiB).
struct Kvp {
  std::string key;
  std::string value;
};

/// Decoded form of a kvp.
struct Reading {
  std::string substation_key;
  std::string sensor_key;
  uint64_t timestamp_micros = 0;
  double value = 0;
  std::string unit;
};

class KvpCodec {
 public:
  /// Total encoded size (key plus value) of every kvp.
  static constexpr size_t kKvpBytes = 1024;
  /// Fixed digits of the timestamp field (covers dates beyond year 5000).
  static constexpr int kTimestampDigits = 17;
  static constexpr char kKeySeparator = '.';
  static constexpr char kValueSeparator = '|';

  /// Encodes a reading. `padding_seed` varies the random padding text.
  static Kvp Encode(const Reading& reading, uint64_t padding_seed);

  /// Builds only the row key (used for scan bounds).
  static std::string EncodeKey(const Slice& substation_key,
                               const Slice& sensor_key,
                               uint64_t timestamp_micros);

  /// The shard key prefix of a row key: substation + sensor. All readings
  /// of one sensor share it, so time-range scans stay within one shard.
  static Slice ShardPrefixOf(const Slice& row_key);

  /// Parses a full kvp (key and value).
  static Result<Reading> Decode(const Slice& key, const Slice& value);

  /// Parses just the sensor value from an encoded value field.
  static Result<double> DecodeSensorValue(const Slice& value);

  /// Parses just the timestamp from a row key.
  static Result<uint64_t> DecodeTimestamp(const Slice& row_key);
};

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_KVP_H_
