#include "iot/experiments.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/random.h"
#include "iot/rules.h"
#include "obs/metrics.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace iotdb {
namespace iot {

HardwareProfile HardwareProfile::UcsBlade() { return HardwareProfile(); }

double ExperimentResult::PerSensorIoTps() const {
  double sensors = static_cast<double>(config.substations) *
                   Rules::kSensorsPerSubstation;
  return sensors <= 0 ? 0 : SystemIoTps() / sensors;
}

bool ExperimentResult::MeetsRateRequirement() const {
  return PerSensorIoTps() >= Rules::kMinPerSensorRate;
}

bool ExperimentResult::MeetsTimeRequirement() const {
  double floor_seconds = Rules::kMinRunSeconds /
                         static_cast<double>(config.scale_divisor);
  return warmup.elapsed_seconds >= floor_seconds &&
         measured.elapsed_seconds >= floor_seconds;
}

double ExperimentResult::MinDriverSeconds() const {
  double best = 0;
  bool first = true;
  for (double s : measured.driver_seconds) {
    if (first || s < best) best = s;
    first = false;
  }
  return best;
}

double ExperimentResult::MaxDriverSeconds() const {
  double worst = 0;
  for (double s : measured.driver_seconds) worst = std::max(worst, s);
  return worst;
}

double ExperimentResult::AvgDriverSeconds() const {
  if (measured.driver_seconds.empty()) return 0;
  double total = 0;
  for (double s : measured.driver_seconds) total += s;
  return total / static_cast<double>(measured.driver_seconds.size());
}

namespace {

/// Registry instruments for the modeled cluster. The simulation reports
/// under the same `storage.* / cluster.* / driver.*` namespaces as the real
/// stack (times are simulated microseconds), so per-figure --metrics-out
/// snapshots carry the same layer breakdown either way.
struct SimInstruments {
  obs::LatencyHistogram* wal_batch_kvps;
  obs::LatencyHistogram* io_service_micros;
  obs::Counter* write_stalls;
  obs::Counter* write_stall_micros;
  obs::Counter* cluster_writes;
  obs::Counter* cluster_bytes_written;
  obs::Counter* ingest_kvps;
  obs::LatencyHistogram* query_micros;
  obs::Counter* query_count;
  obs::Counter* query_rows;
};

SimInstruments& Instruments() {
  static SimInstruments instruments = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return SimInstruments{
        registry.GetHistogram("storage.wal.group_commit_kvps"),
        registry.GetHistogram("storage.io.service_micros"),
        registry.GetCounter("storage.write.stalls"),
        registry.GetCounter("storage.write.stall_micros"),
        registry.GetCounter("cluster.ops.writes"),
        registry.GetCounter("cluster.ops.bytes_written"),
        registry.GetCounter("driver.ingest.kvps"),
        registry.GetHistogram("driver.query_micros"),
        registry.GetCounter("driver.query.count"),
        registry.GetCounter("driver.query.rows")};
  }();
  return instruments;
}

/// One simulated workload execution on the modeled cluster.
class GatewayModel {
 public:
  GatewayModel(const ExperimentConfig& config, uint64_t seed)
      : config_(config), profile_(config.profile), seed_(seed) {
    const int n = config_.nodes;
    effective_rf_ = std::min(profile_.replication, n);
    double wal_fixed = profile_.wal_sync_fixed_us;
    if (profile_.amortize_wal_sync && config_.substations > 1) {
      wal_fixed /= config_.substations;
    }
    for (int i = 0; i < n; ++i) {
      wal_.push_back(std::make_unique<sim::BatchServer>(
          &sim_, static_cast<sim::Time>(profile_.wal_gather_window_us),
          static_cast<sim::Time>(wal_fixed), profile_.wal_per_kvp_us));
      io_.push_back(std::make_unique<sim::Resource>(&sim_, 1, "io"));
      read_.push_back(std::make_unique<sim::Resource>(&sim_, 1, "read"));
      node_bytes_since_stall_.push_back(0);
    }

    // Substation clients with Equation-3 share splitting and a multinomial
    // sensor->node placement (the Figure 15 skew source).
    const int p = config_.substations;
    clients_.resize(p);
    for (int i = 0; i < p; ++i) {
      ClientState& client = clients_[i];
      client.id = i;
      client.remaining = Rules::KvpsForDriver(i + 1, p, total_kvps_target());
      // A substation's rows live in 2N regions (HBase splits scale with the
      // cluster); each region lands on a hash-chosen node. Region-group
      // placement is what makes some substations slower than others
      // (Figure 15): their regions concentrate on hot nodes.
      Random placement(seed_ * 7919 + i * 104729 + 13);
      const int regions = 2 * n;
      client.region_node.assign(regions, 0);
      client.node_sensor_count.assign(n, 0);
      switch (profile_.placement) {
        case HardwareProfile::Placement::kMultinomial:
          for (int r = 0; r < regions; ++r) {
            client.region_node[r] = static_cast<int>(placement.Uniform(n));
          }
          break;
        case HardwareProfile::Placement::kRoundRobin:
          for (int r = 0; r < regions; ++r) {
            client.region_node[r] = r % n;
          }
          break;
        case HardwareProfile::Placement::kSingleNode:
          for (int r = 0; r < regions; ++r) {
            client.region_node[r] = i % n;
          }
          break;
      }
      for (int s = 0; s < Rules::kSensorsPerSubstation; ++s) {
        client.node_sensor_count[client.region_node[s % regions]]++;
      }
      client.rng_state = seed_ ^ (0x9e3779b97f4a7c15ull * (i + 1));
    }
  }

  uint64_t total_kvps_target() const {
    return config_.total_kvps / std::max<uint64_t>(config_.scale_divisor, 1);
  }

  ExecutionStats Run() {
    for (auto& client : clients_) {
      StartRound(&client);
    }
    sim_.Run();

    ExecutionStats stats;
    stats.kvps_ingested = 0;
    double last_end = 0;
    for (const auto& client : clients_) {
      stats.kvps_ingested += client.ingested;
      double end_s = static_cast<double>(client.end_micros) / 1e6;
      stats.driver_seconds.push_back(end_s);
      last_end = std::max(last_end, end_s);
    }
    stats.elapsed_seconds = last_end;
    stats.queries = queries_done_;
    stats.avg_rows_per_query =
        queries_done_ == 0
            ? 0
            : static_cast<double>(query_rows_) / queries_done_;
    stats.query_latency.count = query_latency_.count();
    stats.query_latency.min_us = query_latency_.min();
    stats.query_latency.max_us = query_latency_.max();
    stats.query_latency.mean_us = query_latency_.Mean();
    stats.query_latency.stddev_us = query_latency_.StdDev();
    stats.query_latency.p95_us = query_latency_.Percentile(95);
    return stats;
  }

 private:
  struct ClientState {
    int id = 0;
    uint64_t remaining = 0;
    uint64_t ingested = 0;
    uint64_t next_query_marker = Rules::kReadingsPerQueryBatch;
    uint64_t start_micros = 0;
    uint64_t end_micros = 0;
    uint64_t rounds = 0;
    std::vector<int> region_node;      // region index -> node
    std::vector<int> node_sensor_count;
    uint64_t rng_state = 1;

    double RatePerSensor(sim::Time now) const {
      if (now == 0 || ingested == 0) return 0;
      double seconds = static_cast<double>(now) / 1e6;
      return static_cast<double>(ingested) / seconds /
             Rules::kSensorsPerSubstation;
    }
  };

  uint64_t NextRand(ClientState* c) {
    // xorshift64* inline so client randomness is self-contained.
    uint64_t x = c->rng_state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    c->rng_state = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  void StartRound(ClientState* c) {
    if (c->remaining == 0) {
      c->end_micros = sim_.Now();
      return;
    }
    uint64_t batch = std::min<uint64_t>(profile_.client_batch_kvps,
                                        c->remaining);

    // Split the buffer across nodes proportionally to this substation's
    // sensor placement.
    auto frags = std::make_shared<std::vector<std::pair<int, uint64_t>>>();
    uint64_t assigned = 0;
    for (int node = 0; node < config_.nodes; ++node) {
      uint64_t items = batch * c->node_sensor_count[node] /
                       Rules::kSensorsPerSubstation;
      if (items > 0) {
        frags->emplace_back(node, items);
        assigned += items;
      }
    }
    if (assigned < batch && !frags->empty()) {
      (*frags)[0].second += batch - assigned;  // remainder to first fragment
    } else if (frags->empty()) {
      frags->emplace_back(0, batch);
    }
    // Rotate the visit order per round so concurrent substations do not
    // sweep the nodes in lock-step.
    if (frags->size() > 1) {
      size_t rot = c->rounds % frags->size();
      std::rotate(frags->begin(), frags->begin() + rot, frags->end());
    }
    c->rounds++;

    sim::Time prep = static_cast<sim::Time>(
        profile_.client_round_fixed_us *
            (static_cast<double>(batch) / profile_.client_batch_kvps) +
        profile_.client_per_node_us * frags->size());
    sim_.Schedule(prep, [this, c, frags, batch]() {
      if (profile_.parallel_fanout) {
        auto pending = std::make_shared<size_t>(frags->size());
        for (const auto& [node, items] : *frags) {
          SubmitFragment(node, items, [this, c, pending, batch]() {
            if (--*pending == 0) FinishRound(c, batch);
          });
        }
      } else {
        SendFragment(c, frags, 0, batch);
      }
    });
  }

  void FinishRound(ClientState* c, uint64_t batch) {
    c->remaining -= batch;
    c->ingested += batch;
    if (obs::Enabled()) Instruments().ingest_kvps->Add(batch);
    while (c->ingested >= c->next_query_marker) {
      for (uint64_t q = 0; q < Rules::kQueriesPerReadings; ++q) {
        IssueQuery(c);
      }
      c->next_query_marker += Rules::kReadingsPerQueryBatch;
    }
    StartRound(c);
  }

  /// One fragment's server-side path: WAL group commit, then the serial
  /// storage/io stage. Service times carry multiplicative jitter (real
  /// flush/compaction interference is bursty, and without it the perfectly
  /// regular client rounds under-produce queueing delay).
  void SubmitFragment(int node, uint64_t items, std::function<void()> done) {
    const uint64_t physical_items = items * effective_rf_;
    wal_[node]->Submit(physical_items, [this, node, physical_items,
                                        done = std::move(done)]() {
      double mean = profile_.io_fixed_us +
                    physical_items * profile_.io_per_kvp_us;
      sim::Time io_time = static_cast<sim::Time>(
          mean * (0.1 + jitter_rng_.Exponential(0.9)));
      if (obs::Enabled()) {
        Instruments().wal_batch_kvps->Record(physical_items);
        Instruments().io_service_micros->Record(
            static_cast<uint64_t>(io_time));
        Instruments().cluster_writes->Add(physical_items);
        Instruments().cluster_bytes_written->Add(physical_items * 1024);
      }
      io_[node]->Process(io_time, [this, node, physical_items,
                                   done = std::move(done)](sim::Time) {
        AccountBytes(node, physical_items * 1024);
        done();
      });
    });
  }

  /// The driver flushes its per-region sub-batches sequentially (observed
  /// behaviour this model is calibrated on: per-round cost grows linearly
  /// with node count).
  void SendFragment(ClientState* c,
                    std::shared_ptr<std::vector<std::pair<int, uint64_t>>>
                        frags,
                    size_t index, uint64_t batch) {
    if (index == frags->size()) {
      FinishRound(c, batch);
      return;
    }
    const auto [node, items] = (*frags)[index];
    SubmitFragment(node, items, [this, c, frags, index, batch]() {
      SendFragment(c, frags, index + 1, batch);
    });
  }

  void AccountBytes(int node, uint64_t bytes) {
    // The stall interval is time-based (threshold / byte rate), so it is
    // scale-invariant; scaled-down runs just see proportionally fewer
    // stalls. The 1-2 substation latency tails need --full to show.
    uint64_t threshold = profile_.flush_stall_every_bytes;
    node_bytes_since_stall_[node] += bytes;
    while (node_bytes_since_stall_[node] >= threshold) {
      node_bytes_since_stall_[node] -= threshold;
      if (obs::Enabled()) {
        Instruments().write_stalls->Increment();
        Instruments().write_stall_micros->Add(
            static_cast<uint64_t>(profile_.flush_stall_us));
      }
      // Compaction/flush burst: occupies the node's read path (scans stall
      // behind compaction IO) while writes keep landing in the memstore.
      read_[node]->Process(static_cast<sim::Time>(profile_.flush_stall_us),
                           [](sim::Time) {});
    }
  }

  void IssueQuery(ClientState* c) {
    // Query one random sensor; it lives on the node hosting its region.
    uint64_t r = NextRand(c);
    int sensor = static_cast<int>(r % Rules::kSensorsPerSubstation);
    int node = c->region_node[sensor % c->region_node.size()];

    // Rows = both 5 s windows at the substation's current per-sensor rate
    // (the paper's Figure 12 metric). The historic window reads 0 rows when
    // the run is younger than the window offset.
    double per_sensor_rate = c->RatePerSensor(sim_.Now());
    double window_rows = per_sensor_rate * Rules::kQueryWindowSeconds;
    double age_seconds = static_cast<double>(sim_.Now()) / 1e6;
    double rows = window_rows +
                  (age_seconds > 2 * Rules::kQueryWindowSeconds
                       ? window_rows
                       : 0);

    sim::Time service = static_cast<sim::Time>(
        profile_.query_fixed_us + rows * profile_.query_per_row_us);
    sim::Time issued = sim_.Now();
    uint64_t row_count = static_cast<uint64_t>(rows);
    read_[node]->Process(service, [this, issued, row_count](sim::Time) {
      sim::Time latency = sim_.Now() - issued +
                          static_cast<sim::Time>(profile_.query_rpc_us);
      query_latency_.Add(latency);
      queries_done_++;
      query_rows_ += row_count;
      if (obs::Enabled()) {
        Instruments().query_micros->Record(static_cast<uint64_t>(latency));
        Instruments().query_count->Increment();
        Instruments().query_rows->Add(row_count);
      }
    });
  }

  ExperimentConfig config_;
  HardwareProfile profile_;
  uint64_t seed_;
  int effective_rf_ = 3;
  Random jitter_rng_{12345};

  sim::Simulator sim_;
  std::vector<std::unique_ptr<sim::BatchServer>> wal_;
  std::vector<std::unique_ptr<sim::Resource>> io_;
  std::vector<std::unique_ptr<sim::Resource>> read_;
  std::vector<uint64_t> node_bytes_since_stall_;
  std::vector<ClientState> clients_;

  Histogram query_latency_;
  uint64_t queries_done_ = 0;
  uint64_t query_rows_ = 0;
};

}  // namespace

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  ExperimentResult result;
  result.config = config;
  {
    GatewayModel warmup_model(config, config.seed);
    result.warmup = warmup_model.Run();
  }
  {
    GatewayModel measured_model(config, config.seed + 1);
    result.measured = measured_model.Run();
  }
  return result;
}

uint64_t PaperRowsFor(int substations) {
  switch (substations) {
    case 1:
      return 50000000ull;
    case 2:
      return 60000000ull;
    case 4:
      return 100000000ull;
    case 8:
      return 240000000ull;
    case 16:
      return 400000000ull;
    case 32:
      return 400000000ull;
    case 48:
      return 400000000ull;
    default:
      return static_cast<uint64_t>(substations) * 10000000ull;
  }
}

std::vector<ExperimentResult> RunSubstationSweep(int nodes,
                                                 uint64_t scale_divisor) {
  std::vector<ExperimentResult> results;
  for (int p : {1, 2, 4, 8, 16, 32, 48}) {
    ExperimentConfig config;
    config.nodes = nodes;
    config.substations = p;
    config.total_kvps = PaperRowsFor(p);
    config.scale_divisor = scale_divisor;
    results.push_back(RunExperiment(config));
  }
  return results;
}

// ---------------------------------------------------------------------------
// Results cache
// ---------------------------------------------------------------------------

namespace {
constexpr const char* kCacheMagic = "tpcx-iot-expcache-v2";
}

Status SaveResultsCache(const std::string& path,
                        const std::vector<ExperimentResult>& results) {
  std::ostringstream out;
  out << kCacheMagic << "\n";
  out << results.size() << "\n";
  for (const ExperimentResult& r : results) {
    out << r.config.nodes << " " << r.config.substations << " "
        << r.config.total_kvps << " " << r.config.scale_divisor << " "
        << r.config.seed << "\n";
    for (const ExecutionStats* stats : {&r.warmup, &r.measured}) {
      out << stats->elapsed_seconds << " " << stats->kvps_ingested << " "
          << stats->queries << " " << stats->avg_rows_per_query << " "
          << stats->query_latency.count << " " << stats->query_latency.min_us
          << " " << stats->query_latency.max_us << " "
          << stats->query_latency.mean_us << " "
          << stats->query_latency.stddev_us << " "
          << stats->query_latency.p95_us << "\n";
      out << stats->driver_seconds.size();
      for (double s : stats->driver_seconds) out << " " << s;
      out << "\n";
    }
  }
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IOError("cannot write cache: " + path);
  file << out.str();
  return Status::OK();
}

Result<std::vector<ExperimentResult>> LoadResultsCache(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("no cache at " + path);
  std::string magic;
  std::getline(file, magic);
  if (magic != kCacheMagic) return Status::NotFound("cache version mismatch");

  size_t count = 0;
  file >> count;
  std::vector<ExperimentResult> results;
  results.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ExperimentResult r;
    file >> r.config.nodes >> r.config.substations >> r.config.total_kvps >>
        r.config.scale_divisor >> r.config.seed;
    for (ExecutionStats* stats : {&r.warmup, &r.measured}) {
      file >> stats->elapsed_seconds >> stats->kvps_ingested >>
          stats->queries >> stats->avg_rows_per_query >>
          stats->query_latency.count >> stats->query_latency.min_us >>
          stats->query_latency.max_us >> stats->query_latency.mean_us >>
          stats->query_latency.stddev_us >> stats->query_latency.p95_us;
      size_t drivers = 0;
      file >> drivers;
      stats->driver_seconds.resize(drivers);
      for (size_t d = 0; d < drivers; ++d) file >> stats->driver_seconds[d];
    }
    if (!file) return Status::Corruption("truncated cache: " + path);
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<ExperimentResult> SweepCached(int nodes, uint64_t scale_divisor,
                                          const std::string& cache_path) {
  auto cached = LoadResultsCache(cache_path);
  if (cached.ok()) {
    const auto& results = cached.ValueOrDie();
    bool matches = !results.empty();
    for (const auto& r : results) {
      if (r.config.nodes != nodes ||
          r.config.scale_divisor != scale_divisor) {
        matches = false;
        break;
      }
    }
    if (matches) return results;
  }
  auto results = RunSubstationSweep(nodes, scale_divisor);
  SaveResultsCache(cache_path, results).ok();
  return results;
}

}  // namespace iot
}  // namespace iotdb
