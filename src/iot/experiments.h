#ifndef IOTDB_IOT_EXPERIMENTS_H_
#define IOTDB_IOT_EXPERIMENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"

namespace iotdb {
namespace iot {

/// Calibrated constants of the simulated testbed (the paper's 2/4/8-node
/// Cisco UCS B200 M4 cluster running HBase 1.2.0 — hardware we do not
/// have). Times in microseconds. See EXPERIMENTS.md for the calibration
/// procedure: the four 1-substation measurements fix the per-round costs;
/// everything else is prediction.
struct HardwareProfile {
  /// Client write buffer flushed per round, in kvps.
  uint64_t client_batch_kvps = 1000;

  /// Client-side cost per round (driver JVM marshalling etc.).
  double client_round_fixed_us = 3900;
  /// Client-side cost per contacted node per round (RPC dispatch); the
  /// driver flushes region batches sequentially.
  double client_per_node_us = 375;

  /// WAL group commit: fixed sync cost per commit and cost per physical
  /// kvp. The fixed cost amortises across concurrent substations (the
  /// super-linear-scaling mechanism, Figure 10): the model divides it by
  /// the substation count analytically because the measured system batches
  /// far more aggressively at low client counts than event-level overlap
  /// alone reproduces (JIT, region splits, HDFS pipelining fold in here).
  double wal_sync_fixed_us = 7000;
  bool amortize_wal_sync = true;
  double wal_per_kvp_us = 0.3;
  double wal_gather_window_us = 300;

  /// Storage path (memstore apply + flush + compaction steady state): a
  /// serial resource per node. Fixed cost per fragment plus cost per
  /// physical kvp (i.e., after replication).
  double io_fixed_us = 3300;
  double io_per_kvp_us = 5.1;

  /// Volume-triggered flush/compaction stall: after this many physical
  /// bytes a node's io path blocks for the given duration. Source of the
  /// >1 s query maxima and CoV > 1 (Figure 14), and ~1.6 us/kvp of
  /// amortised io load at saturation.
  uint64_t flush_stall_every_bytes = 1536ull << 20;
  double flush_stall_us = 1000000;

  /// Query path: fixed cost plus per-row cost, served by the node's read
  /// path, plus a client-visible RPC overhead.
  double query_fixed_us = 7000;
  double query_per_row_us = 6.0;
  double query_rpc_us = 1500;

  /// Nominal replication factor (effective = min(nodes, this)).
  int replication = 3;

  /// How a substation's 200 sensors map to nodes. kMultinomial is the
  /// HBase-like hash placement; kRoundRobin is the perfectly-balanced
  /// ablation (DESIGN.md ablation #4); kSingleNode pins a substation to one
  /// node (ablation #2).
  enum class Placement { kMultinomial, kRoundRobin, kSingleNode };
  Placement placement = Placement::kMultinomial;

  /// When true the client flushes all per-node fragments concurrently
  /// instead of sequentially (ablation #2 companion switch).
  bool parallel_fanout = false;

  /// The profile calibrated against the paper's testbed.
  static HardwareProfile UcsBlade();
};

/// One experiment configuration: a full TPCx-IoT benchmark iteration
/// (warmup + measured) on the simulated cluster.
struct ExperimentConfig {
  int nodes = 8;
  int substations = 1;
  uint64_t total_kvps = 50000000;
  uint64_t seed = 2018;
  HardwareProfile profile = HardwareProfile::UcsBlade();
  /// Divides total_kvps (and proportionally the run-time floors) for quick
  /// runs; 1 = paper scale.
  uint64_t scale_divisor = 1;
};

/// Query latency summary (microseconds) — the Figure 13/14 metrics.
struct QueryLatencySummary {
  uint64_t count = 0;
  uint64_t min_us = 0;
  uint64_t max_us = 0;
  double mean_us = 0;
  double stddev_us = 0;
  double p95_us = 0;

  double CoV() const { return mean_us <= 0 ? 0 : stddev_us / mean_us; }
};

/// Aggregates of one simulated workload execution.
struct ExecutionStats {
  double elapsed_seconds = 0;
  uint64_t kvps_ingested = 0;
  uint64_t queries = 0;
  double avg_rows_per_query = 0;
  QueryLatencySummary query_latency;
  /// Per-substation ingest completion times, seconds (Figure 15).
  std::vector<double> driver_seconds;

  double IoTps() const {
    return elapsed_seconds <= 0 ? 0 : kvps_ingested / elapsed_seconds;
  }
};

/// Result of one experiment (Table I row).
struct ExperimentResult {
  ExperimentConfig config;
  ExecutionStats warmup;
  ExecutionStats measured;

  double SystemIoTps() const { return measured.IoTps(); }
  double PerSensorIoTps() const;
  bool MeetsRateRequirement() const;
  bool MeetsTimeRequirement() const;
  double MinDriverSeconds() const;
  double MaxDriverSeconds() const;
  double AvgDriverSeconds() const;
};

/// Runs one experiment in virtual time.
ExperimentResult RunExperiment(const ExperimentConfig& config);

/// The paper's Table I sweep: substations {1,2,4,8,16,32,48} with the
/// paper's row counts, on `nodes` nodes.
std::vector<ExperimentResult> RunSubstationSweep(int nodes,
                                                 uint64_t scale_divisor);

/// Paper row counts per substation count (Table I column 2), in kvps.
uint64_t PaperRowsFor(int substations);

/// Simple text (de)serialisation so bench binaries sharing the same runs
/// don't recompute them. Cache format is versioned; a mismatch returns
/// NotFound and the caller recomputes.
Status SaveResultsCache(const std::string& path,
                        const std::vector<ExperimentResult>& results);
Result<std::vector<ExperimentResult>> LoadResultsCache(
    const std::string& path);

/// Loads the sweep for `nodes` from `cache_path` or runs it and saves.
std::vector<ExperimentResult> SweepCached(int nodes, uint64_t scale_divisor,
                                          const std::string& cache_path);

}  // namespace iot
}  // namespace iotdb

#endif  // IOTDB_IOT_EXPERIMENTS_H_
