#include "iot/kvp.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace iotdb {
namespace iot {

namespace {

/// Cheap deterministic padding: repeats a printable alphabet with a
/// seed-dependent rotation, so padding differs between kvps without
/// spending RNG time per byte (generation speed is measured by Figure 8).
void AppendPadding(std::string* out, size_t len, uint64_t seed) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
  const size_t alphabet_len = sizeof(kAlphabet) - 1;
  size_t pos = static_cast<size_t>(seed % alphabet_len);
  for (size_t i = 0; i < len; ++i) {
    out->push_back(kAlphabet[pos]);
    pos++;
    if (pos == alphabet_len) pos = 0;
  }
}

}  // namespace

std::string KvpCodec::EncodeKey(const Slice& substation_key,
                                const Slice& sensor_key,
                                uint64_t timestamp_micros) {
  std::string key;
  key.reserve(substation_key.size() + sensor_key.size() +
              kTimestampDigits + 2);
  key.append(substation_key.data(), substation_key.size());
  key.push_back(kKeySeparator);
  key.append(sensor_key.data(), sensor_key.size());
  key.push_back(kKeySeparator);
  char ts[kTimestampDigits + 1];
  snprintf(ts, sizeof(ts), "%017" PRIu64, timestamp_micros);
  key.append(ts, kTimestampDigits);
  return key;
}

Slice KvpCodec::ShardPrefixOf(const Slice& row_key) {
  // Strip the trailing ".<timestamp>".
  if (row_key.size() <= kTimestampDigits + 1) return row_key;
  return Slice(row_key.data(),
               row_key.size() - (kTimestampDigits + 1));
}

Kvp KvpCodec::Encode(const Reading& reading, uint64_t padding_seed) {
  Kvp kvp;
  kvp.key = EncodeKey(reading.substation_key, reading.sensor_key,
                      reading.timestamp_micros);

  char value_buf[32];
  int value_len = snprintf(value_buf, sizeof(value_buf), "%.4f",
                           reading.value);
  kvp.value.reserve(kKvpBytes - kvp.key.size());
  kvp.value.append(value_buf, value_len);
  kvp.value.push_back(kValueSeparator);
  kvp.value.append(reading.unit);
  kvp.value.push_back(kValueSeparator);

  size_t used = kvp.key.size() + kvp.value.size();
  assert(used < kKvpBytes && "substation/sensor keys too long for 1KiB kvp");
  AppendPadding(&kvp.value, kKvpBytes - used, padding_seed);
  return kvp;
}

Result<Reading> KvpCodec::Decode(const Slice& key, const Slice& value) {
  Reading reading;
  // Key: substation '.' sensor '.' timestamp(17 digits). Substation keys may
  // themselves not contain the separator (enforced by the driver).
  const char* data = key.data();
  const char* end = data + key.size();
  const char* first = static_cast<const char*>(
      memchr(data, kKeySeparator, key.size()));
  if (first == nullptr) return Status::Corruption("kvp key has no separator");
  const char* second = static_cast<const char*>(
      memchr(first + 1, kKeySeparator, end - first - 1));
  if (second == nullptr) {
    return Status::Corruption("kvp key has no second separator");
  }
  if (end - second - 1 != kTimestampDigits) {
    return Status::Corruption("kvp key timestamp malformed");
  }
  reading.substation_key.assign(data, first - data);
  reading.sensor_key.assign(first + 1, second - first - 1);
  reading.timestamp_micros = strtoull(second + 1, nullptr, 10);

  IOTDB_ASSIGN_OR_RETURN(reading.value, DecodeSensorValue(value));
  const char* vdata = value.data();
  const char* vsep = static_cast<const char*>(
      memchr(vdata, kValueSeparator, value.size()));
  const char* vend = vdata + value.size();
  const char* usep = static_cast<const char*>(
      memchr(vsep + 1, kValueSeparator, vend - vsep - 1));
  if (usep == nullptr) return Status::Corruption("kvp value has no unit");
  reading.unit.assign(vsep + 1, usep - vsep - 1);
  return reading;
}

Result<double> KvpCodec::DecodeSensorValue(const Slice& value) {
  const char* sep = static_cast<const char*>(
      memchr(value.data(), kValueSeparator, value.size()));
  if (sep == nullptr || sep == value.data()) {
    return Status::Corruption("kvp value has no sensor value");
  }
  // The numeric prefix is short; strtod with a bounded copy keeps us safe
  // on non-terminated slices.
  char buf[32];
  size_t len = std::min<size_t>(sep - value.data(), sizeof(buf) - 1);
  memcpy(buf, value.data(), len);
  buf[len] = '\0';
  char* parse_end = nullptr;
  double v = strtod(buf, &parse_end);
  if (parse_end == buf) return Status::Corruption("bad sensor value");
  return v;
}

Result<uint64_t> KvpCodec::DecodeTimestamp(const Slice& row_key) {
  if (row_key.size() < static_cast<size_t>(kTimestampDigits) + 1) {
    return Status::Corruption("row key too short for timestamp");
  }
  const char* ts = row_key.data() + row_key.size() - kTimestampDigits;
  if (ts[-1] != kKeySeparator) {
    return Status::Corruption("row key timestamp not delimited");
  }
  char buf[kTimestampDigits + 1];
  memcpy(buf, ts, kTimestampDigits);
  buf[kTimestampDigits] = '\0';
  return static_cast<uint64_t>(strtoull(buf, nullptr, 10));
}

}  // namespace iot
}  // namespace iotdb
