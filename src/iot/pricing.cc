#include "iot/pricing.h"

#include <algorithm>

namespace iotdb {
namespace iot {

const char* PriceCategoryName(PriceCategory category) {
  switch (category) {
    case PriceCategory::kHardware:
      return "Hardware";
    case PriceCategory::kSoftware:
      return "Software";
    case PriceCategory::kMaintenance:
      return "Maintenance (3yr)";
    case PriceCategory::kOther:
      return "Other";
  }
  return "?";
}

double PricedConfiguration::TotalCost() const {
  double total = 0;
  for (const LineItem& item : items_) total += item.ExtendedPrice();
  return total;
}

double PricedConfiguration::CostInCategory(PriceCategory category) const {
  double total = 0;
  for (const LineItem& item : items_) {
    if (item.category == category) total += item.ExtendedPrice();
  }
  return total;
}

std::string PricedConfiguration::SystemAvailabilityDate() const {
  std::string latest;
  for (const LineItem& item : items_) {
    latest = std::max(latest, item.availability_date);
  }
  return latest;
}

bool PricedConfiguration::Validate(std::string* problem) const {
  if (items_.empty()) {
    *problem = "priced configuration is empty";
    return false;
  }
  bool has_maintenance = false;
  for (const LineItem& item : items_) {
    if (item.quantity <= 0) {
      *problem = item.description + ": non-positive quantity";
      return false;
    }
    if (item.unit_price_usd < 0) {
      *problem = item.description + ": negative price";
      return false;
    }
    if (item.discount_fraction < 0 || item.discount_fraction >= 1) {
      *problem = item.description + ": discount out of range";
      return false;
    }
    if (item.availability_date.empty()) {
      *problem = item.description + ": missing availability date";
      return false;
    }
    if (item.category == PriceCategory::kMaintenance) has_maintenance = true;
  }
  if (!has_maintenance) {
    *problem = "three-year maintenance is required but absent";
    return false;
  }
  return true;
}

PricedConfiguration PricedConfiguration::ReferenceGatewayConfig(int nodes) {
  PricedConfiguration config;
  config.Add({"Blade server, 2x 14-core Xeon, 256GB RAM",
              "UCSB-B200-M4-REF", PriceCategory::kHardware, 28500.0, nodes,
              0.25, "2017-05-01"});
  config.Add({"Enterprise SATA SSD 3.8TB", "SSD-38T-REF",
              PriceCategory::kHardware, 3200.0, 2 * nodes, 0.25,
              "2017-05-01"});
  config.Add({"Fabric interconnect, 10GbE", "FI-6324-REF",
              PriceCategory::kHardware, 12400.0, 2, 0.25, "2017-05-01"});
  config.Add({"Blade chassis", "CHASSIS-REF", PriceCategory::kHardware,
              8900.0, (nodes + 7) / 8, 0.25, "2017-05-01"});
  config.Add({"Linux OS subscription (per node, 3yr)", "OS-SUB-REF",
              PriceCategory::kSoftware, 1500.0, nodes, 0.0, "2017-05-01"});
  config.Add({"NoSQL data management software (open source)", "KV-OSS-REF",
              PriceCategory::kSoftware, 0.0, nodes, 0.0, "2017-05-01"});
  config.Add({"24x7 hardware support, 3 years (per node)", "SUP-HW-REF",
              PriceCategory::kMaintenance, 2900.0, nodes, 0.0,
              "2017-05-01"});
  config.Add({"Software support, 3 years (per node)", "SUP-SW-REF",
              PriceCategory::kMaintenance, 1100.0, nodes, 0.0,
              "2017-05-01"});
  return config;
}

}  // namespace iot
}  // namespace iotdb
