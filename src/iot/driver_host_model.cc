#include "iot/driver_host_model.h"

#include <algorithm>
#include <cmath>

#include "common/clock.h"
#include "iot/data_generator.h"

namespace iotdb {
namespace iot {

GenerationPoint ModelGenerationPoint(const DriverHostProfile& profile,
                                     int drivers) {
  GenerationPoint point;
  point.drivers = drivers;

  double demand = profile.demand_per_driver * drivers;
  double rho = demand / profile.hardware_threads;
  double contention =
      profile.contention_coefficient *
      std::pow(rho, profile.contention_exponent);
  double effective_threads = demand / (1.0 + contention);
  // Generation cannot exceed the machine.
  effective_threads =
      std::min(effective_threads,
               static_cast<double>(profile.hardware_threads));
  point.kvps_per_sec = effective_threads * profile.per_thread_rate;

  double busy_threads =
      effective_threads * (1.0 + profile.contention_cpu_fraction *
                                     contention);
  double overhead_threads = busy_threads - effective_threads;
  busy_threads =
      std::min(busy_threads, static_cast<double>(profile.hardware_threads));
  point.cpu_percent = 100.0 * busy_threads / profile.hardware_threads;
  point.sys_percent =
      100.0 * std::min(overhead_threads,
                       static_cast<double>(profile.hardware_threads)) /
      profile.hardware_threads *
      0.15;  // kernel share of overhead (paper: sys 5% at 32 -> 15% at 64)
  return point;
}

std::vector<GenerationPoint> ModelGenerationSweep(
    const DriverHostProfile& profile) {
  std::vector<GenerationPoint> points;
  for (int drivers : {1, 2, 4, 8, 16, 32, 48, 64}) {
    points.push_back(ModelGenerationPoint(profile, drivers));
  }
  return points;
}

double MeasureGenerationRate(uint64_t budget_ms) {
  Clock* clock = Clock::Real();
  DataGenerator generator("benchsub", ~0ull >> 1, 12345, clock);
  uint64_t start = clock->NowMicros();
  uint64_t deadline = start + budget_ms * 1000;
  uint64_t generated = 0;
  size_t sink = 0;
  while (clock->NowMicros() < deadline) {
    for (int i = 0; i < 1000; ++i) {
      Kvp kvp = generator.Next();
      sink += kvp.key.size() + kvp.value.size();  // consume, discard
      ++generated;
    }
  }
  uint64_t elapsed = clock->NowMicros() - start;
  // Keep `sink` observable so the loop is not optimised away.
  if (sink == 0) return 0;
  return elapsed == 0 ? 0
                      : static_cast<double>(generated) * 1e6 / elapsed;
}

}  // namespace iot
}  // namespace iotdb
