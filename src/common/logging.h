#ifndef IOTDB_COMMON_LOGGING_H_
#define IOTDB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace iotdb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. The benchmark driver raises the
/// level to kWarn during measured runs so logging does not perturb timing.
class Logger {
 public:
  static LogLevel Level();
  static void SetLevel(LogLevel level);
  static void Write(LogLevel level, const std::string& message);
};

namespace logging_internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Write(level_, stream_.str()); }
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace logging_internal

#define IOTDB_LOG(level_suffix)                                     \
  if (::iotdb::LogLevel::k##level_suffix < ::iotdb::Logger::Level()) \
    ;                                                               \
  else                                                              \
    ::iotdb::logging_internal::LogMessage(                          \
        ::iotdb::LogLevel::k##level_suffix)                         \
        .stream()

}  // namespace iotdb

#endif  // IOTDB_COMMON_LOGGING_H_
