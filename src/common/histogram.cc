#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace iotdb {

namespace {

std::vector<uint64_t> MakeBucketLimits() {
  std::vector<uint64_t> limits;
  uint64_t v = 1;
  while (v < std::numeric_limits<uint64_t>::max() / 2) {
    limits.push_back(v);
    uint64_t next = static_cast<uint64_t>(v * 1.045) + 1;
    v = next;
  }
  limits.push_back(std::numeric_limits<uint64_t>::max());
  return limits;
}

}  // namespace

const std::vector<uint64_t>& Histogram::BucketLimits() {
  static const std::vector<uint64_t>* limits =
      new std::vector<uint64_t>(MakeBucketLimits());
  return *limits;
}

Histogram::Histogram() { Clear(); }

void Histogram::Clear() {
  count_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  buckets_.assign(BucketLimits().size(), 0);
}

size_t Histogram::BucketIndexFor(uint64_t value) const {
  const auto& limits = BucketLimits();
  // First bucket whose (exclusive) upper limit is > value.
  auto it = std::upper_bound(limits.begin(), limits.end(), value);
  if (it == limits.end()) return limits.size() - 1;
  return static_cast<size_t>(it - limits.begin());
}

void Histogram::Add(uint64_t value) {
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
  sum_squares_ += static_cast<double>(value) * static_cast<double>(value);
  buckets_[BucketIndexFor(value)]++;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

double Histogram::Mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double Histogram::StdDev() const {
  if (count_ == 0) return 0.0;
  double n = static_cast<double>(count_);
  double variance = (sum_squares_ - sum_ * sum_ / n) / n;
  return variance > 0 ? std::sqrt(variance) : 0.0;
}

double Histogram::CoefficientOfVariation() const {
  double mean = Mean();
  if (mean == 0.0) return 0.0;
  return StdDev() / mean;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const auto& limits = BucketLimits();
  double threshold = static_cast<double>(count_) * (p / 100.0);
  double cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += static_cast<double>(buckets_[i]);
    if (cumulative >= threshold) {
      // Interpolate within the bucket [lower, upper).
      double left_sum = cumulative - static_cast<double>(buckets_[i]);
      double pos = buckets_[i] == 0
                       ? 0.0
                       : (threshold - left_sum) /
                             static_cast<double>(buckets_[i]);
      double lower = (i == 0) ? 0.0 : static_cast<double>(limits[i - 1]);
      double upper = static_cast<double>(limits[i]);
      double r = lower + (upper - lower) * pos;
      // Clamp to observed range.
      r = std::max(r, static_cast<double>(min()));
      r = std::min(r, static_cast<double>(max_));
      return r;
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "count=%llu min=%llu max=%llu mean=%.2f stddev=%.2f cov=%.2f "
           "p50=%.1f p95=%.1f p99=%.1f",
           static_cast<unsigned long long>(count_),
           static_cast<unsigned long long>(min()),
           static_cast<unsigned long long>(max_), Mean(), StdDev(),
           CoefficientOfVariation(), Percentile(50), Percentile(95),
           Percentile(99));
  return std::string(buf);
}

}  // namespace iotdb
