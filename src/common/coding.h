#ifndef IOTDB_COMMON_CODING_H_
#define IOTDB_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace iotdb {

/// Little-endian fixed-width and LEB128 varint encoding primitives used by
/// the WAL record format, SSTable blocks, and key codecs.

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

/// Appends a LEB128 varint encoding of value to *dst.
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Appends varint(value.size()) followed by the bytes of value.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parses a varint from the front of *input, advancing it. Returns false on
/// malformed or truncated input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Parses a length-prefixed slice from the front of *input, advancing it.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

/// Number of bytes the varint encoding of v occupies.
int VarintLength(uint64_t v);

/// Lower-level pointer-based variants. Encoders return one past the last
/// written byte; decoders return nullptr on failure.
char* EncodeVarint32(char* dst, uint32_t value);
char* EncodeVarint64(char* dst, uint64_t value);
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Encodes a uint64 so that the lexicographic order of the encodings matches
/// the numeric order (big-endian). Used for timestamp components of row keys.
void PutBigEndian64(std::string* dst, uint64_t value);
uint64_t DecodeBigEndian64(const char* ptr);

}  // namespace iotdb

#endif  // IOTDB_COMMON_CODING_H_
