#include "common/clock.h"

#include <chrono>
#include <thread>

namespace iotdb {

namespace {

class RealClock : public Clock {
 public:
  uint64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepMicros(uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }

  uint64_t PosixSeconds() const override {
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock* clock = new RealClock();
  return clock;
}

uint64_t Clock::MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace iotdb
