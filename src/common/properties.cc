#include "common/properties.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace iotdb {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

Status Properties::ParseText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '!') continue;
    size_t sep = trimmed.find_first_of("=:");
    if (sep == std::string::npos) {
      return Status::InvalidArgument("properties line " +
                                     std::to_string(lineno) +
                                     " has no separator: " + trimmed);
    }
    std::string key = Trim(trimmed.substr(0, sep));
    std::string value = Trim(trimmed.substr(sep + 1));
    if (key.empty()) {
      return Status::InvalidArgument("properties line " +
                                     std::to_string(lineno) + " has no key");
    }
    map_[key] = value;
  }
  return Status::OK();
}

Status Properties::LoadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open properties file: " + path);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseText(buffer.str());
}

std::string Properties::Get(const std::string& key,
                            const std::string& def) const {
  auto it = map_.find(key);
  return it == map_.end() ? def : it->second;
}

Result<int64_t> Properties::GetInt(const std::string& key, int64_t def) const {
  auto it = map_.find(key);
  if (it == map_.end()) return def;
  errno = 0;
  char* end = nullptr;
  long long v = strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("property " + key +
                                   " is not an integer: " + it->second);
  }
  return static_cast<int64_t>(v);
}

Result<double> Properties::GetDouble(const std::string& key,
                                     double def) const {
  auto it = map_.find(key);
  if (it == map_.end()) return def;
  errno = 0;
  char* end = nullptr;
  double v = strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("property " + key +
                                   " is not a number: " + it->second);
  }
  return v;
}

Result<bool> Properties::GetBool(const std::string& key, bool def) const {
  auto it = map_.find(key);
  if (it == map_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return Status::InvalidArgument("property " + key +
                                 " is not a boolean: " + v);
}

std::string Properties::ToText() const {
  std::string out;
  for (const auto& [key, value] : map_) {
    out += key;
    out += "=";
    out += value;
    out += "\n";
  }
  return out;
}

}  // namespace iotdb
