#ifndef IOTDB_COMMON_RATE_LIMITER_H_
#define IOTDB_COMMON_RATE_LIMITER_H_

#include <cstdint>
#include <mutex>

#include "common/clock.h"

namespace iotdb {

/// Token-bucket rate limiter. Used to throttle client target throughput
/// (YCSB -target) and to model bandwidth ceilings in the cluster.
/// Thread-safe.
class RateLimiter {
 public:
  /// rate_per_sec: steady-state permits per second. burst: bucket capacity.
  RateLimiter(double rate_per_sec, double burst, Clock* clock);

  /// Non-blocking: consume `permits` if available now.
  bool TryAcquire(double permits = 1.0);

  /// Blocking: waits (via clock->SleepMicros) until permits are available.
  void Acquire(double permits = 1.0);

  /// Micros the caller would need to wait for `permits` to be available,
  /// without consuming anything. 0 means available now.
  uint64_t WaitTimeMicros(double permits = 1.0);

  double rate_per_sec() const { return rate_per_sec_; }
  void SetRate(double rate_per_sec);

 private:
  void Refill(uint64_t now_micros);

  std::mutex mu_;
  double rate_per_sec_;
  double burst_;
  double available_;
  uint64_t last_refill_micros_;
  Clock* clock_;
};

}  // namespace iotdb

#endif  // IOTDB_COMMON_RATE_LIMITER_H_
