#include "common/random.h"

#include <cmath>

namespace iotdb {

double Random::Exponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Random::Gaussian(double mean, double stddev) {
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  u2 = NextDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

std::string Random::RandomPrintableString(size_t len) {
  static const char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

}  // namespace iotdb
