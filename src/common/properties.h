#ifndef IOTDB_COMMON_PROPERTIES_H_
#define IOTDB_COMMON_PROPERTIES_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace iotdb {

/// Java-properties-style key=value configuration, as used by the YCSB-derived
/// TPCx-IoT workload driver. Lines starting with '#' or '!' are comments;
/// whitespace around '=' or ':' separators is trimmed.
class Properties {
 public:
  Properties() = default;

  /// Parses properties from text, overwriting duplicates last-wins.
  Status ParseText(const std::string& text);

  /// Loads properties from a file on the local filesystem.
  Status LoadFile(const std::string& path);

  void Set(const std::string& key, const std::string& value) {
    map_[key] = value;
  }

  bool Contains(const std::string& key) const {
    return map_.find(key) != map_.end();
  }

  /// String value or `def` when missing.
  std::string Get(const std::string& key, const std::string& def = "") const;

  /// Typed accessors: return the default when the key is absent; return an
  /// InvalidArgument error when present but unparsable.
  Result<int64_t> GetInt(const std::string& key, int64_t def) const;
  Result<double> GetDouble(const std::string& key, double def) const;
  Result<bool> GetBool(const std::string& key, bool def) const;

  const std::map<std::string, std::string>& map() const { return map_; }

  /// Serialises back to "key=value\n" lines in sorted key order.
  std::string ToText() const;

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace iotdb

#endif  // IOTDB_COMMON_PROPERTIES_H_
