#ifndef IOTDB_COMMON_ARENA_H_
#define IOTDB_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace iotdb {

/// Bump allocator backing the memtable skiplist. Allocations are freed all at
/// once when the Arena is destroyed (i.e., when a memtable is dropped after
/// flush). Not thread-safe for allocation; the memtable serialises writers.
class Arena {
 public:
  Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to `bytes` bytes of uninitialised memory.
  char* Allocate(size_t bytes);

  /// Like Allocate but with malloc-style (pointer-size) alignment, required
  /// for skiplist nodes containing atomics.
  char* AllocateAligned(size_t bytes);

  /// Total memory footprint (allocated blocks plus bookkeeping).
  size_t MemoryUsage() const { return memory_usage_; }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  static constexpr size_t kBlockSize = 4096;

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t memory_usage_;
};

}  // namespace iotdb

#endif  // IOTDB_COMMON_ARENA_H_
