#ifndef IOTDB_COMMON_CLOCK_H_
#define IOTDB_COMMON_CLOCK_H_

#include <cstdint>
#include <memory>

namespace iotdb {

/// Time source abstraction. All library code that needs time takes a Clock so
/// tests and the discrete-event simulator can substitute virtual time.
/// Units are microseconds throughout.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary epoch (monotonic).
  virtual uint64_t NowMicros() const = 0;

  /// Sleeps (or advances virtual time by) the given number of microseconds.
  virtual void SleepMicros(uint64_t micros) = 0;

  /// Wall-clock POSIX seconds; the kvp key timestamp field uses this.
  virtual uint64_t PosixSeconds() const { return NowMicros() / 1000000; }

  /// The process-wide real clock.
  static Clock* Real();

  /// Monotonic (std::chrono::steady_clock) microseconds. Deadline and
  /// timeout arithmetic must use this — never a wall clock, which can jump
  /// under NTP adjustment and turn a 10 ms budget into minutes (or a
  /// negative one). Clock::Real()->NowMicros() returns the same timebase;
  /// this static exists for code that must be monotonic even when handed a
  /// virtual clock (cv waits cannot run on virtual time).
  static uint64_t MonotonicMicros();
};

/// A manually-advanced clock for unit tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(uint64_t start_micros = 0) : now_(start_micros) {}

  uint64_t NowMicros() const override { return now_; }
  void SleepMicros(uint64_t micros) override { now_ += micros; }
  void Advance(uint64_t micros) { now_ += micros; }
  void Set(uint64_t micros) { now_ = micros; }

 private:
  uint64_t now_;
};

}  // namespace iotdb

#endif  // IOTDB_COMMON_CLOCK_H_
