#ifndef IOTDB_COMMON_THREAD_POOL_H_
#define IOTDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iotdb {

/// Fixed-size worker pool used for background flushes/compactions in the
/// storage engine and for the multi-threaded YCSB client.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  /// Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  size_t QueueDepth();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace iotdb

#endif  // IOTDB_COMMON_THREAD_POOL_H_
