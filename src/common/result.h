#ifndef IOTDB_COMMON_RESULT_H_
#define IOTDB_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace iotdb {

/// A value-or-error holder: either a T or a non-OK Status. Mirrors
/// arrow::Result. Use ValueOrDie() only where failure is a programming error;
/// production code should check ok() first or use MoveValueUnsafe after a
/// check.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& MoveValueUnsafe() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Returns the contained value or `fallback` when holding an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates the error of a Result-returning expression, otherwise binds the
/// value. Usage: IOTDB_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(p));
#define IOTDB_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  decl = std::move(tmp).MoveValueUnsafe();

#define IOTDB_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define IOTDB_ASSIGN_OR_RETURN_CONCAT(x, y) \
  IOTDB_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define IOTDB_ASSIGN_OR_RETURN(decl, expr)                                  \
  IOTDB_ASSIGN_OR_RETURN_IMPL(                                              \
      IOTDB_ASSIGN_OR_RETURN_CONCAT(_result_tmp_, __LINE__), decl, expr)

}  // namespace iotdb

#endif  // IOTDB_COMMON_RESULT_H_
