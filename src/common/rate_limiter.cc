#include "common/rate_limiter.h"

#include <algorithm>
#include <cmath>

namespace iotdb {

RateLimiter::RateLimiter(double rate_per_sec, double burst, Clock* clock)
    : rate_per_sec_(rate_per_sec > 0 ? rate_per_sec : 1.0),
      burst_(burst > 0 ? burst : 1.0),
      available_(burst_),
      last_refill_micros_(clock->NowMicros()),
      clock_(clock) {}

void RateLimiter::Refill(uint64_t now_micros) {
  if (now_micros <= last_refill_micros_) return;
  double elapsed_sec =
      static_cast<double>(now_micros - last_refill_micros_) / 1e6;
  available_ = std::min(burst_, available_ + elapsed_sec * rate_per_sec_);
  last_refill_micros_ = now_micros;
}

bool RateLimiter::TryAcquire(double permits) {
  std::lock_guard<std::mutex> lock(mu_);
  Refill(clock_->NowMicros());
  if (available_ >= permits) {
    available_ -= permits;
    return true;
  }
  return false;
}

uint64_t RateLimiter::WaitTimeMicros(double permits) {
  std::lock_guard<std::mutex> lock(mu_);
  Refill(clock_->NowMicros());
  if (available_ >= permits) return 0;
  double deficit = permits - available_;
  return static_cast<uint64_t>(std::ceil(deficit / rate_per_sec_ * 1e6));
}

void RateLimiter::Acquire(double permits) {
  for (;;) {
    uint64_t wait;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Refill(clock_->NowMicros());
      if (available_ >= permits) {
        available_ -= permits;
        return;
      }
      double deficit = permits - available_;
      wait = static_cast<uint64_t>(std::ceil(deficit / rate_per_sec_ * 1e6));
    }
    clock_->SleepMicros(std::max<uint64_t>(wait, 1));
  }
}

void RateLimiter::SetRate(double rate_per_sec) {
  std::lock_guard<std::mutex> lock(mu_);
  Refill(clock_->NowMicros());
  rate_per_sec_ = rate_per_sec > 0 ? rate_per_sec : 1.0;
}

}  // namespace iotdb
