#ifndef IOTDB_COMMON_MD5_H_
#define IOTDB_COMMON_MD5_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/slice.h"

namespace iotdb {

/// Streaming MD5 (RFC 1321). TPCx-IoT's prerequisite "file check" compares
/// md5sums of the non-changeable kit files against reference checksums; this
/// implementation backs iot::FileCheck.
class Md5 {
 public:
  Md5();

  /// Absorbs more input bytes.
  void Update(const void* data, size_t len);
  void Update(const Slice& s) { Update(s.data(), s.size()); }

  /// Finalises and returns the 16-byte digest. The object must not be used
  /// again afterwards.
  std::array<uint8_t, 16> Finish();

  /// Convenience: lowercase hex digest of a byte string, as printed by
  /// `md5sum`.
  static std::string HexDigest(const Slice& data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[4];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace iotdb

#endif  // IOTDB_COMMON_MD5_H_
