#ifndef IOTDB_COMMON_HISTOGRAM_H_
#define IOTDB_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace iotdb {

/// A latency histogram with geometric bucket boundaries (~5% resolution),
/// exact min/max/count/sum/sum-of-squares. Tracks everything needed by the
/// paper's Figures 13/14: average, percentiles, and the coefficient of
/// variation (stddev / mean). Values are unit-agnostic; the benchmark stores
/// microseconds.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  void Clear();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double sum() const { return sum_; }
  double Mean() const;
  double StdDev() const;

  /// Coefficient of variation, stddev/mean (Fig. 14 annotation).
  double CoefficientOfVariation() const;

  /// Approximate value at percentile p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// Multi-line human-readable summary.
  std::string ToString() const;

  /// Bucket limits are shared by all histograms (geometric, factor ~1.045).
  static const std::vector<uint64_t>& BucketLimits();

 private:
  size_t BucketIndexFor(uint64_t value) const;

  uint64_t count_;
  uint64_t min_;
  uint64_t max_;
  double sum_;
  double sum_squares_;
  std::vector<uint64_t> buckets_;
};

}  // namespace iotdb

#endif  // IOTDB_COMMON_HISTOGRAM_H_
