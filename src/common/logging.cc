#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace iotdb {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_write_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel Logger::Level() { return g_level.load(std::memory_order_relaxed); }

void Logger::SetLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Logger::Write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_write_mu);
  fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace iotdb
