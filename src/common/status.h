#ifndef IOTDB_COMMON_STATUS_H_
#define IOTDB_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace iotdb {

/// Outcome of a fallible operation, in the Arrow/RocksDB idiom. The library
/// never throws across public API boundaries; every operation that can fail
/// returns a Status (or a Result<T>, see result.h). An OK status carries no
/// allocation.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
    kAborted = 7,
    kTimedOut = 8,
    kFailedCheck = 9,  // a TPCx-IoT prerequisite/data check failed
    kUnavailable = 10,  // quorum lost: too few replicas reachable/alive
  };

  Status() : state_(nullptr) {}
  ~Status() = default;

  Status(const Status& rhs)
      : state_(rhs.state_ ? std::make_unique<State>(*rhs.state_) : nullptr) {}
  Status& operator=(const Status& rhs) {
    if (this != &rhs) {
      state_ = rhs.state_ ? std::make_unique<State>(*rhs.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status FailedCheck(std::string msg) {
    return Status(Code::kFailedCheck, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsCorruption() const { return code() == Code::kCorruption; }
  bool IsNotSupported() const { return code() == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsIOError() const { return code() == Code::kIOError; }
  bool IsBusy() const { return code() == Code::kBusy; }
  bool IsAborted() const { return code() == Code::kAborted; }
  bool IsTimedOut() const { return code() == Code::kTimedOut; }
  bool IsFailedCheck() const { return code() == Code::kFailedCheck; }
  bool IsUnavailable() const { return code() == Code::kUnavailable; }

  Code code() const { return state_ ? state_->code : Code::kOk; }

  /// Human-readable form, e.g. "IO error: wal.log: short read".
  std::string ToString() const;

  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

 private:
  struct State {
    Code code;
    std::string msg;
  };

  Status(Code code, std::string msg)
      : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

  std::unique_ptr<State> state_;  // null means OK
};

/// Evaluates an expression returning Status and propagates a failure to the
/// caller. Usage: IOTDB_RETURN_NOT_OK(file->Append(data));
#define IOTDB_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::iotdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace iotdb

#endif  // IOTDB_COMMON_STATUS_H_
