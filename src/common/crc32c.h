#ifndef IOTDB_COMMON_CRC32C_H_
#define IOTDB_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace iotdb {
namespace crc32c {

/// Returns the CRC32C (Castagnoli polynomial) of data[0,n-1], continuing from
/// `init_crc` which must be the CRC32C of some prior byte string.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// CRC32C of data[0,n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// The WAL stores CRCs "masked" so that a CRC of a string that itself contains
/// embedded CRCs does not collide trivially (same trick as LevelDB).
static constexpr uint32_t kMaskDelta = 0xa282ead8ul;

inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace iotdb

#endif  // IOTDB_COMMON_CRC32C_H_
