#include "common/crc32c.h"

#include <array>

namespace iotdb {
namespace crc32c {

namespace {

// Table-driven CRC32C (Castagnoli, reflected polynomial 0x82f63b78),
// generated at first use.
struct Table {
  std::array<uint32_t, 256> entries;
  Table() {
    constexpr uint32_t kPoly = 0x82f63b78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Table& GetTable() {
  static const Table* table = new Table();
  return *table;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Table& table = GetTable();
  uint32_t crc = init_crc ^ 0xffffffffu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace iotdb
