#include "common/status.h"

namespace iotdb {

std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* type = "";
  switch (state_->code) {
    case Code::kOk:
      type = "OK";
      break;
    case Code::kNotFound:
      type = "Not found";
      break;
    case Code::kCorruption:
      type = "Corruption";
      break;
    case Code::kNotSupported:
      type = "Not supported";
      break;
    case Code::kInvalidArgument:
      type = "Invalid argument";
      break;
    case Code::kIOError:
      type = "IO error";
      break;
    case Code::kBusy:
      type = "Busy";
      break;
    case Code::kAborted:
      type = "Aborted";
      break;
    case Code::kTimedOut:
      type = "Timed out";
      break;
    case Code::kFailedCheck:
      type = "Failed check";
      break;
    case Code::kUnavailable:
      type = "Unavailable";
      break;
  }
  std::string result(type);
  if (!state_->msg.empty()) {
    result += ": ";
    result += state_->msg;
  }
  return result;
}

}  // namespace iotdb
