#ifndef IOTDB_COMMON_RANDOM_H_
#define IOTDB_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace iotdb {

/// A small, fast, reproducible PRNG (xorshift64*). Deterministic across
/// platforms, which the workload generators and the discrete-event simulator
/// rely on for repeatable experiments.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ull
                                                    : seed) {}

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Exponentially distributed value with the given mean (for simulated
  /// inter-arrival and service jitter).
  double Exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double Gaussian(double mean, double stddev);

  /// Uniformly random printable ASCII string of exactly `len` bytes.
  std::string RandomPrintableString(size_t len);

  /// Skewed value in [0, n) where smaller values are more likely
  /// ("max_log"-style skew used by random test sizing).
  uint64_t Skewed(int max_log) { return Uniform(1ull << Uniform(max_log + 1)); }

 private:
  uint64_t state_;
};

}  // namespace iotdb

#endif  // IOTDB_COMMON_RANDOM_H_
