#ifndef IOTDB_OBS_TRACE_H_
#define IOTDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace iotdb {
namespace obs {

/// Causal identity of one request-scoped span. A context is minted at the
/// op's entry point (the driver), derived (`Child`) at every hop the op
/// takes — shard group-commit leader, channel message, replica apply — and
/// recorded alongside the span so the exporter can reconstruct the
/// parent→child tree and draw cross-thread flow arrows. `trace_id == 0`
/// means "not part of a traced op"; ids are process-unique, never reused.
struct TraceContext {
  uint64_t trace_id = 0;   // one per driver-level op
  uint64_t span_id = 0;    // this span
  uint64_t parent_id = 0;  // enclosing span (0 = root)

  bool valid() const { return trace_id != 0; }

  /// A fresh root context (new trace, new span, no parent).
  static TraceContext Mint();

  /// A child context under this span, in the same trace.
  TraceContext Child() const;

  /// Process-unique non-zero id (one relaxed fetch_add).
  static uint64_t NextId();
};

/// Thread-local "current op" context, so the storage write path can pick
/// up causal identity without threading a parameter through every layer.
/// Returns an invalid (trace_id == 0) context when none is installed.
const TraceContext& CurrentTraceContext();

/// Installs `ctx` as the calling thread's current context for the scope's
/// lifetime and restores the previous one on exit. Construction is two TLS
/// stores; safe to use unconditionally on hot paths.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

/// One completed span, as exported from the trace ring. Names are static
/// string literals (the recording API never copies them), so a snapshot is
/// cheap and allocation-free on the hot path.
struct TraceEvent {
  const char* name = nullptr;      // span name (layer.component convention)
  const char* arg_name = nullptr;  // optional single argument, may be null
  uint64_t arg_value = 0;
  uint64_t start_micros = 0;       // Clock::NowMicros at span start
  uint64_t duration_micros = 0;
  uint32_t tid = 0;                // small sequential trace thread id
  uint64_t trace_id = 0;           // 0 = span not part of a traced op
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
};

/// Process-wide span sink: per-thread lock-free ring buffers of completed
/// spans, exported as Chrome `trace_event` JSON (loadable in Perfetto or
/// chrome://tracing).
///
/// Recording (`Record`) is wait-free and touches only the calling thread's
/// ring: one relaxed enabled-check, a handful of relaxed atomic stores, one
/// release publish of the head index. When tracing is off the whole call is
/// a single predicted branch — the cost budget `bench_micro_obs` gates.
///
/// The exporter may run while writers keep recording: every slot field is
/// an individual atomic, so a concurrent overwrite can at worst produce a
/// span whose fields mix two records (bounded to the ring's oldest slot) —
/// never a torn pointer, a data race, or malformed JSON. Quiesced exports
/// are exact. Rings wrap by overwriting the oldest span; the number of
/// overwritten spans is reported per snapshot so truncation is never
/// silent.
class TraceBuffer {
 public:
  static constexpr size_t kDefaultCapacityPerThread = 16384;

  /// True while spans are being collected. One relaxed load.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Clears previously collected spans and starts collecting, with
  /// `capacity_per_thread` slots per recording thread. Idempotent while
  /// already tracing (keeps the existing spans).
  static void StartTracing(
      size_t capacity_per_thread = kDefaultCapacityPerThread);

  /// Stops collecting. Already-recorded spans stay readable until the next
  /// StartTracing.
  static void StopTracing();

  /// Records one completed span into the calling thread's ring. No-op when
  /// tracing is off. `name` and `arg_name` must be string literals (or
  /// otherwise outlive the buffer).
  static void Record(const char* name, uint64_t start_micros,
                     uint64_t duration_micros,
                     const char* arg_name = nullptr, uint64_t arg_value = 0);

  /// Context-carrying form: additionally stamps the span's causal identity
  /// so the export links it into its trace's flow. Same cost envelope as
  /// the plain form plus three relaxed stores (`bench_micro_obs` gates it
  /// at 25 ns).
  static void Record(const char* name, uint64_t start_micros,
                     uint64_t duration_micros, const TraceContext& ctx,
                     const char* arg_name = nullptr, uint64_t arg_value = 0);

  /// Copies every thread's retained spans, oldest first per thread. Safe
  /// while writers keep recording (see class comment).
  static std::vector<TraceEvent> Snapshot();

  /// Spans overwritten by ring wraparound since StartTracing. Also mirrors
  /// the value into the `obs.trace.dropped_spans` registry gauge so runs
  /// that only keep metrics still see trace truncation.
  static uint64_t DroppedSpans();

  /// Chrome trace_event export: {"traceEvents":[{"name","ph":"X","ts",
  /// "dur","pid","tid","args"}...]}. `ts`/`dur` are microseconds, as the
  /// trace_event spec requires. Context-stamped spans additionally carry
  /// Perfetto flow bindings — `"bind_id"` (the trace id, hex) plus
  /// `"flow_out"` on spans with a recorded child and `"flow_in"` on spans
  /// with a recorded parent — so one traced op renders as a chain of flow
  /// arrows across threads.
  static std::string ToChromeTraceJson();

 private:
  struct Slot;
  struct ThreadRing;
  struct Registry;

  static Registry& GlobalRegistry();
  static ThreadRing* RingForThisThread();

  static std::atomic<bool> enabled_;
};

/// RAII span: times the enclosing scope into (a) the registry latency
/// histogram named `name` when metrics are enabled, and (b) the trace ring
/// when tracing is enabled. With both switches off, construction and
/// destruction are one predicted branch each — no clock reads, no registry
/// lookup.
///
/// `name` must be a string literal (it is retained by the trace ring). For
/// hot paths prefer passing the pre-resolved histogram pointer; without it
/// the constructor resolves `name` in the global registry (one mutex).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Clock* clock = Clock::Real())
      : TraceSpan(name,
                  Enabled() ? MetricsRegistry::Global().GetHistogram(name)
                            : nullptr,
                  clock) {}

  /// Hot-path form: histogram resolved by the caller once.
  TraceSpan(const char* name, LatencyHistogram* hist,
            Clock* clock = Clock::Real())
      : name_(name),
        hist_(Enabled() ? hist : nullptr),
        tracing_(TraceBuffer::Enabled()),
        clock_(clock) {
    if (hist_ != nullptr || tracing_) start_ = clock_->NowMicros();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { Stop(); }

  /// Attaches a single argument exported with the trace event (e.g. kvps
  /// of a group commit). `arg_name` must be a string literal.
  void SetArg(const char* arg_name, uint64_t value) {
    arg_name_ = arg_name;
    arg_value_ = value;
  }

  /// Links the span into a traced op's flow; the recorded event carries
  /// `ctx` verbatim (the caller decides root vs `Child()`).
  void SetContext(const TraceContext& ctx) { ctx_ = ctx; }
  const TraceContext& context() const { return ctx_; }

  /// Records now instead of at scope exit; idempotent.
  void Stop() {
    if (hist_ == nullptr && !tracing_) return;
    uint64_t now = clock_->NowMicros();
    uint64_t elapsed = now >= start_ ? now - start_ : 0;
    if (hist_ != nullptr) hist_->Record(elapsed);
    if (tracing_) {
      if (ctx_.valid()) {
        TraceBuffer::Record(name_, start_, elapsed, ctx_, arg_name_,
                            arg_value_);
      } else {
        TraceBuffer::Record(name_, start_, elapsed, arg_name_, arg_value_);
      }
    }
    hist_ = nullptr;
    tracing_ = false;
  }

  /// Drops the measurement (the guarded operation failed and its latency
  /// would pollute the distribution / clutter the trace).
  void Cancel() {
    hist_ = nullptr;
    tracing_ = false;
  }

 private:
  const char* name_;
  const char* arg_name_ = nullptr;
  uint64_t arg_value_ = 0;
  TraceContext ctx_;
  LatencyHistogram* hist_;
  bool tracing_;
  Clock* clock_;
  uint64_t start_ = 0;
};

}  // namespace obs
}  // namespace iotdb

#endif  // IOTDB_OBS_TRACE_H_
