#include "obs/metrics.h"

#include <cstdlib>

namespace iotdb {
namespace obs {

namespace {

bool InitialEnabled() {
  const char* env = getenv("IOTDB_OBS_DISABLED");
  return !(env != nullptr && env[0] == '1');
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{InitialEnabled()};
  return enabled;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

uint64_t LatencyHistogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t octave = index / kSubBuckets;  // >= 1
  const uint64_t sub = index % kSubBuckets;
  return (kSubBuckets + sub) << (octave - 1);
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  if (index + 1 >= kNumBuckets) return std::numeric_limits<uint64_t>::max();
  return BucketLowerBound(index + 1) - 1;
}

double LatencyHistogram::Mean() const {
  uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
}

double LatencyHistogram::Percentile(double p) const {
  return TakeSnapshot().Percentile(p);
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<uint64_t>::max(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::TakeSnapshot() const {
  HistogramSnapshot snap;
  snap.count = Count();
  snap.sum = Sum();
  snap.min = Min();
  snap.max = Max();
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) snap.buckets.emplace_back(static_cast<uint32_t>(i), n);
  }
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->TakeSnapshot();
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace obs
}  // namespace iotdb
