#include "obs/snapshot.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace iotdb {
namespace obs {

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

double HistogramSnapshot::Mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based; interpolate within its bucket by
  // rank position, then clamp to the observed extremes.
  const double target = p / 100.0 * static_cast<double>(count);
  double seen = 0;
  for (const auto& [index, n] : buckets) {
    if (seen + static_cast<double>(n) >= target) {
      const double lo =
          static_cast<double>(LatencyHistogram::BucketLowerBound(index));
      const double hi =
          static_cast<double>(LatencyHistogram::BucketUpperBound(index));
      const double within =
          n == 0 ? 0.0 : (target - seen) / static_cast<double>(n);
      double value = lo + (hi - lo) * within;
      value = std::max(value, static_cast<double>(min));
      value = std::min(value, static_cast<double>(max));
      return value;
    }
    seen += static_cast<double>(n);
  }
  return static_cast<double>(max);
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  delta.count = count >= earlier.count ? count - earlier.count : 0;
  delta.sum = sum >= earlier.sum ? sum - earlier.sum : 0;
  delta.min = min;
  delta.max = max;
  std::map<uint32_t, uint64_t> earlier_buckets(earlier.buckets.begin(),
                                               earlier.buckets.end());
  for (const auto& [index, n] : buckets) {
    auto it = earlier_buckets.find(index);
    uint64_t before = it == earlier_buckets.end() ? 0 : it->second;
    if (n > before) delta.buckets.emplace_back(index, n - before);
  }
  return delta;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    uint64_t before = it == earlier.counters.end() ? 0 : it->second;
    delta.counters[name] = value >= before ? value - before : 0;
  }
  delta.gauges = gauges;
  for (const auto& [name, hist] : histograms) {
    auto it = earlier.histograms.find(name);
    delta.histograms[name] =
        it == earlier.histograms.end() ? hist : hist.DeltaSince(it->second);
  }
  return delta;
}

// ---------------------------------------------------------------------------
// JSON export / import
// ---------------------------------------------------------------------------

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Minimal recursive-descent parser for the subset of JSON ToJson() emits:
/// objects, arrays, strings and (possibly negative) integers.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Status ParseSnapshot(MetricsSnapshot* out) {
    IOTDB_RETURN_NOT_OK(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) IOTDB_RETURN_NOT_OK(Expect(','));
      first = false;
      std::string section;
      IOTDB_RETURN_NOT_OK(ParseString(&section));
      IOTDB_RETURN_NOT_OK(Expect(':'));
      if (section == "counters") {
        IOTDB_RETURN_NOT_OK(ParseUintMap(&out->counters));
      } else if (section == "gauges") {
        IOTDB_RETURN_NOT_OK(ParseIntMap(&out->gauges));
      } else if (section == "histograms") {
        IOTDB_RETURN_NOT_OK(ParseHistogramMap(&out->histograms));
      } else {
        return Status::Corruption("unknown snapshot section: " + section);
      }
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::Corruption("trailing bytes after snapshot JSON");
    }
    return Status::OK();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool TryConsume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (TryConsume(c)) return Status::OK();
    return Status::Corruption(std::string("expected '") + c + "' at offset " +
                              std::to_string(pos_));
  }

  Status ParseString(std::string* out) {
    IOTDB_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::Corruption("truncated \\u escape");
            }
            unsigned code = 0;
            sscanf(text_.substr(pos_, 4).c_str(), "%4x", &code);
            pos_ += 4;
            out->push_back(static_cast<char>(code));
            break;
          }
          default:
            out->push_back(esc);
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) return Status::Corruption("unterminated string");
    ++pos_;  // closing quote
    return Status::OK();
  }

  Status ParseInt(int64_t* out) {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Status::Corruption("expected integer");
    *out = strtoll(text_.substr(start, pos_ - start).c_str(), nullptr, 10);
    return Status::OK();
  }

  Status ParseUint(uint64_t* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Status::Corruption("expected unsigned integer");
    *out = strtoull(text_.substr(start, pos_ - start).c_str(), nullptr, 10);
    return Status::OK();
  }

  Status ParseUintMap(std::map<std::string, uint64_t>* out) {
    IOTDB_RETURN_NOT_OK(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) IOTDB_RETURN_NOT_OK(Expect(','));
      first = false;
      std::string key;
      uint64_t value;
      IOTDB_RETURN_NOT_OK(ParseString(&key));
      IOTDB_RETURN_NOT_OK(Expect(':'));
      IOTDB_RETURN_NOT_OK(ParseUint(&value));
      (*out)[key] = value;
    }
    return Status::OK();
  }

  Status ParseIntMap(std::map<std::string, int64_t>* out) {
    IOTDB_RETURN_NOT_OK(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) IOTDB_RETURN_NOT_OK(Expect(','));
      first = false;
      std::string key;
      int64_t value;
      IOTDB_RETURN_NOT_OK(ParseString(&key));
      IOTDB_RETURN_NOT_OK(Expect(':'));
      IOTDB_RETURN_NOT_OK(ParseInt(&value));
      (*out)[key] = value;
    }
    return Status::OK();
  }

  Status ParseHistogram(HistogramSnapshot* out) {
    IOTDB_RETURN_NOT_OK(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) IOTDB_RETURN_NOT_OK(Expect(','));
      first = false;
      std::string field;
      IOTDB_RETURN_NOT_OK(ParseString(&field));
      IOTDB_RETURN_NOT_OK(Expect(':'));
      if (field == "count") {
        IOTDB_RETURN_NOT_OK(ParseUint(&out->count));
      } else if (field == "sum") {
        IOTDB_RETURN_NOT_OK(ParseUint(&out->sum));
      } else if (field == "min") {
        IOTDB_RETURN_NOT_OK(ParseUint(&out->min));
      } else if (field == "max") {
        IOTDB_RETURN_NOT_OK(ParseUint(&out->max));
      } else if (field == "buckets") {
        IOTDB_RETURN_NOT_OK(Expect('['));
        bool first_bucket = true;
        while (!TryConsume(']')) {
          if (!first_bucket) IOTDB_RETURN_NOT_OK(Expect(','));
          first_bucket = false;
          uint64_t index, n;
          IOTDB_RETURN_NOT_OK(Expect('['));
          IOTDB_RETURN_NOT_OK(ParseUint(&index));
          IOTDB_RETURN_NOT_OK(Expect(','));
          IOTDB_RETURN_NOT_OK(ParseUint(&n));
          IOTDB_RETURN_NOT_OK(Expect(']'));
          out->buckets.emplace_back(static_cast<uint32_t>(index), n);
        }
      } else {
        return Status::Corruption("unknown histogram field: " + field);
      }
    }
    return Status::OK();
  }

  Status ParseHistogramMap(std::map<std::string, HistogramSnapshot>* out) {
    IOTDB_RETURN_NOT_OK(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) IOTDB_RETURN_NOT_OK(Expect(','));
      first = false;
      std::string key;
      IOTDB_RETURN_NOT_OK(ParseString(&key));
      IOTDB_RETURN_NOT_OK(Expect(':'));
      IOTDB_RETURN_NOT_OK(ParseHistogram(&(*out)[key]));
    }
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"count\":" + std::to_string(hist.count);
    out += ",\"sum\":" + std::to_string(hist.sum);
    out += ",\"min\":" + std::to_string(hist.min);
    out += ",\"max\":" + std::to_string(hist.max);
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (const auto& [index, n] : hist.buckets) {
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      out += "[" + std::to_string(index) + "," + std::to_string(n) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Result<MetricsSnapshot> MetricsSnapshot::FromJson(const std::string& json) {
  MetricsSnapshot snap;
  JsonParser parser(json);
  IOTDB_RETURN_NOT_OK(parser.ParseSnapshot(&snap));
  return snap;
}

std::string MetricsSnapshot::ToTable() const {
  std::string out;
  char line[256];
  for (const auto& [name, value] : counters) {
    snprintf(line, sizeof(line), "  %-52s %14llu\n", name.c_str(),
             static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : gauges) {
    snprintf(line, sizeof(line), "  %-52s %14lld  (gauge)\n", name.c_str(),
             static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, hist] : histograms) {
    snprintf(line, sizeof(line),
             "  %-52s n=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
             "p99.9=%.1f max=%llu\n",
             name.c_str(), static_cast<unsigned long long>(hist.count),
             hist.Mean(), hist.Percentile(50), hist.Percentile(95),
             hist.Percentile(99), hist.Percentile(99.9),
             static_cast<unsigned long long>(hist.max));
    out += line;
  }
  return out;
}

}  // namespace obs
}  // namespace iotdb
