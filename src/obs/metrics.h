#ifndef IOTDB_OBS_METRICS_H_
#define IOTDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/snapshot.h"

namespace iotdb {
namespace obs {

/// Process-wide observability switch. Defaults to on; set the environment
/// variable IOTDB_OBS_DISABLED=1 (read once at first use) or call
/// SetEnabled(false) to turn instrumentation off. Instruments themselves
/// always count — the flag is consulted by the *call sites* (ScopedTimer,
/// the wired subsystems) so a disabled build skips the clock reads and
/// atomic traffic entirely.
bool Enabled();
void SetEnabled(bool enabled);

/// A monotonically increasing counter, sharded across cache lines so
/// concurrent writers from different threads do not bounce one line.
/// Add() is wait-free (one relaxed fetch_add); Value() sums the shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr size_t kShards = 8;

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Threads are spread round-robin over the shards; the assignment is
  /// cached per thread so the hot path is one TLS read.
  static size_t ShardIndex() {
    static std::atomic<size_t> next{0};
    thread_local size_t index =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return index;
  }

  std::array<Shard, kShards> shards_;
};

/// A level that can go up and down (queue depths, in-flight work).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A lock-free latency histogram with logarithmic buckets: values below 16
/// are exact; above, each power of two is split into 16 sub-buckets, so the
/// relative bucket width (and the worst-case quantile error before
/// interpolation) is 1/16 = 6.25%. Covers the full uint64 range in 976
/// buckets (~8 KiB). Record() is wait-free except for the min/max CAS
/// loops, which converge immediately once the extremes stabilise.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;  // 16
  static constexpr size_t kNumBuckets =
      (64 - kSubBucketBits + 1) * kSubBuckets;  // 976

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t value) {
    buckets_[BucketIndexFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Min() const {
    uint64_t v = min_.load(std::memory_order_relaxed);
    return v == std::numeric_limits<uint64_t>::max() ? 0 : v;
  }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  double Percentile(double p) const;

  void Reset();

  /// Copies the current state (sparse buckets) for export.
  HistogramSnapshot TakeSnapshot() const;

  /// Bucket geometry, shared with HistogramSnapshot::Percentile.
  static size_t BucketIndexFor(uint64_t value) {
    if (value < kSubBuckets) return static_cast<size_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - kSubBucketBits;
    const size_t octave = static_cast<size_t>(msb - kSubBucketBits + 1);
    return octave * kSubBuckets +
           ((value >> shift) & (kSubBuckets - 1));
  }
  static uint64_t BucketLowerBound(size_t index);
  /// Inclusive upper bound of the bucket.
  static uint64_t BucketUpperBound(size_t index);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{std::numeric_limits<uint64_t>::max()};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Process-wide instrument registry. Instruments are created on first use,
/// never removed, and returned as stable pointers — resolve once (at
/// construction / function-local static) and keep the pointer for the hot
/// path; GetXxx itself takes a mutex.
///
/// Naming convention: `layer.component.metric` with layers `storage`,
/// `cluster`, `driver`, `ycsb` (see DESIGN.md "Observability" for the
/// instrument catalog). The same name always maps to the same instrument;
/// counters, gauges and histograms live in separate namespaces.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every wired subsystem reports into.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Copies every instrument's current value.
  MetricsSnapshot TakeSnapshot() const;

  /// Zeroes every instrument (names and pointers stay valid). Intended for
  /// test isolation; production code takes snapshot deltas instead.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace obs
}  // namespace iotdb

#endif  // IOTDB_OBS_METRICS_H_
