#include "obs/sampler.h"

#include <chrono>
#include <cmath>
#include <cstdio>

namespace iotdb {
namespace obs {

uint64_t TimelineInterval::CounterDelta(const std::string& name) const {
  auto it = delta.counters.find(name);
  return it == delta.counters.end() ? 0 : it->second;
}

int64_t TimelineInterval::GaugeValue(const std::string& name) const {
  auto it = delta.gauges.find(name);
  return it == delta.gauges.end() ? 0 : it->second;
}

double TimelineInterval::Rate(const std::string& counter_name) const {
  double seconds = DurationSeconds();
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(CounterDelta(counter_name)) / seconds;
}

uint64_t Timeline::CounterTotal(const std::string& name) const {
  uint64_t total = 0;
  for (const TimelineInterval& interval : intervals) {
    total += interval.CounterDelta(name);
  }
  return total;
}

namespace {

void AppendDouble(double v, std::string* out) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  *out += buf;
}

/// Extracts "<id>" from "cluster.node<id>.primary_kvps"; empty when the
/// name does not match.
std::string NodeIdFromCounterName(const std::string& name) {
  constexpr const char kPrefix[] = "cluster.node";
  constexpr const char kSuffix[] = ".primary_kvps";
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return "";
  if (name.compare(0, prefix_len, kPrefix) != 0) return "";
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return "";
  }
  std::string id =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  for (char c : id) {
    if (c < '0' || c > '9') return "";
  }
  return id;
}

/// Extracts "<i>" from "storage.shard<i>.puts"; empty when the name does
/// not match.
std::string ShardIdFromCounterName(const std::string& name) {
  constexpr const char kPrefix[] = "storage.shard";
  constexpr const char kSuffix[] = ".puts";
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return "";
  if (name.compare(0, prefix_len, kPrefix) != 0) return "";
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return "";
  }
  std::string id =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  for (char c : id) {
    if (c < '0' || c > '9') return "";
  }
  return id;
}

}  // namespace

std::string Timeline::ToJson() const {
  std::string out;
  out.reserve(intervals.size() * 256 + 128);
  out += "{\"cadence_micros\":";
  out += std::to_string(cadence_micros);
  out += ",\"dropped_intervals\":";
  out += std::to_string(dropped_intervals);
  out += ",\"intervals\":[";
  bool first = true;
  for (const TimelineInterval& interval : intervals) {
    if (!first) out += ',';
    first = false;

    uint64_t ingest = interval.CounterDelta("driver.ingest.kvps");
    uint64_t cache_hits = interval.CounterDelta("storage.block_cache.hits");
    uint64_t cache_misses =
        interval.CounterDelta("storage.block_cache.misses");
    uint64_t cache_lookups = cache_hits + cache_misses;
    double query_p50 = 0.0;
    double query_p99 = 0.0;
    uint64_t query_count = 0;
    auto query_it = interval.delta.histograms.find("driver.query_micros");
    if (query_it != interval.delta.histograms.end() &&
        query_it->second.count > 0) {
      query_count = query_it->second.count;
      query_p50 = query_it->second.Percentile(50.0);
      query_p99 = query_it->second.Percentile(99.0);
    }

    out += "{\"start_micros\":";
    out += std::to_string(interval.start_micros);
    out += ",\"end_micros\":";
    out += std::to_string(interval.end_micros);
    out += ",\"ingest_kvps\":";
    out += std::to_string(ingest);
    out += ",\"ingest_rate\":";
    AppendDouble(interval.Rate("driver.ingest.kvps"), &out);
    out += ",\"query_count\":";
    out += std::to_string(query_count);
    out += ",\"query_p50_micros\":";
    AppendDouble(query_p50, &out);
    out += ",\"query_p99_micros\":";
    AppendDouble(query_p99, &out);
    out += ",\"flush_bytes\":";
    out += std::to_string(
        interval.CounterDelta("storage.memtable.bytes_flushed"));
    out += ",\"compaction_bytes\":";
    out += std::to_string(
        interval.CounterDelta("storage.compaction.bytes_read") +
        interval.CounterDelta("storage.compaction.bytes_written"));
    out += ",\"vlog_bytes\":";
    out += std::to_string(
        interval.CounterDelta("storage.vlog.appended_bytes"));
    out += ",\"vlog_gc_reclaimed_bytes\":";
    out += std::to_string(
        interval.CounterDelta("storage.vlog.gc_reclaimed_bytes"));
    out += ",\"cache_hit_rate\":";
    AppendDouble(cache_lookups == 0
                     ? 0.0
                     : static_cast<double>(cache_hits) /
                           static_cast<double>(cache_lookups),
                 &out);
    out += ",\"hint_queue_depth\":";
    out += std::to_string(interval.GaugeValue("cluster.hints.queue_depth"));
    out += ",\"stall_micros\":";
    out += std::to_string(
        interval.CounterDelta("storage.write.stall_micros"));
    out += ",\"node_kvps\":{";
    bool first_node = true;
    for (const auto& [name, value] : interval.delta.counters) {
      std::string id = NodeIdFromCounterName(name);
      if (id.empty()) continue;
      if (!first_node) out += ',';
      first_node = false;
      out += '"';
      out += id;
      out += "\":";
      out += std::to_string(value);
    }
    out += "},\"shard_puts\":{";
    bool first_shard = true;
    for (const auto& [name, value] : interval.delta.counters) {
      std::string id = ShardIdFromCounterName(name);
      if (id.empty()) continue;
      if (!first_shard) out += ',';
      first_shard = false;
      out += '"';
      out += id;
      out += "\":";
      out += std::to_string(value);
    }
    out += "},\"shard_imbalance_pct\":";
    out += std::to_string(interval.GaugeValue("storage.shard.imbalance"));
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {

// Folds `next` into `into` (its immediate predecessor in time): counter
// and histogram deltas add, gauges take the later level, and the merged
// interval covers both windows. Because consecutive deltas telescope, the
// merge is lossless for totals — only the interior boundary is lost.
void MergeIntervalInto(const TimelineInterval& next, TimelineInterval* into) {
  into->end_micros = next.end_micros;
  for (const auto& [name, value] : next.delta.counters) {
    into->delta.counters[name] += value;
  }
  for (const auto& [name, value] : next.delta.gauges) {
    into->delta.gauges[name] = value;
  }
  for (const auto& [name, hist] : next.delta.histograms) {
    auto it = into->delta.histograms.find(name);
    if (it == into->delta.histograms.end()) {
      into->delta.histograms[name] = hist;
      continue;
    }
    HistogramSnapshot& acc = it->second;
    if (acc.count == 0) {
      acc.min = hist.min;
    } else if (hist.count > 0 && hist.min < acc.min) {
      acc.min = hist.min;
    }
    if (hist.max > acc.max) acc.max = hist.max;
    acc.count += hist.count;
    acc.sum += hist.sum;
    std::map<uint32_t, uint64_t> merged(acc.buckets.begin(),
                                        acc.buckets.end());
    for (const auto& [index, n] : hist.buckets) merged[index] += n;
    acc.buckets.assign(merged.begin(), merged.end());
  }
}

}  // namespace

Sampler::Sampler(SamplerOptions options) : options_(options) {
  if (options_.clock == nullptr) options_.clock = Clock::Real();
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.cadence_micros == 0) options_.cadence_micros = 1'000'000;
}

Sampler::~Sampler() { Stop(); }

bool Sampler::Start() {
  if (!Enabled()) return false;
  std::unique_lock<std::mutex> lock(mu_);
  if (running_) return false;
  stop_requested_ = false;
  SampleLocked(lock);  // prime the base snapshot at the window's start
  running_ = true;
  thread_ = std::thread(&Sampler::ThreadLoop, this);
  return true;
}

void Sampler::Stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::unique_lock<std::mutex> lock(mu_);
  running_ = false;
  // Flush whatever part-interval accumulated since the last tick so the
  // timeline's counter totals telescope to the full run window.
  if (primed_ && options_.clock->NowMicros() > base_micros_) {
    SampleLocked(lock);
  }
}

bool Sampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void Sampler::SampleNow() {
  std::unique_lock<std::mutex> lock(mu_);
  SampleLocked(lock);
}

void Sampler::SampleLocked(std::unique_lock<std::mutex>& lock) {
  (void)lock;  // snapshotting is done under mu_; the registry locks itself
  MetricsSnapshot current = MetricsRegistry::Global().TakeSnapshot();
  uint64_t now = options_.clock->NowMicros();
  if (primed_) {
    TimelineInterval interval;
    interval.start_micros = base_micros_;
    interval.end_micros = now;
    interval.delta = current.DeltaSince(base_);
    if (ring_.size() == options_.capacity) {
      // Fold the second-oldest interval into the oldest instead of
      // discarding data: the ring stays bounded, interval granularity
      // coarsens at the old end, and counter totals still telescope to
      // the exact run total (the invariant the bench cross-check and the
      // FDR ingest accounting rely on).
      MergeIntervalInto(ring_[1], &ring_[0]);
      ring_.erase(ring_.begin() + 1);
      ++dropped_;
    }
    ring_.push_back(std::move(interval));
  }
  base_ = std::move(current);
  base_micros_ = now;
  primed_ = true;
}

void Sampler::ThreadLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::microseconds(options_.cadence_micros),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    SampleLocked(lock);
  }
}

Timeline Sampler::TakeTimeline() const {
  std::lock_guard<std::mutex> lock(mu_);
  Timeline timeline;
  timeline.cadence_micros = options_.cadence_micros;
  timeline.dropped_intervals = dropped_;
  timeline.intervals.assign(ring_.begin(), ring_.end());
  return timeline;
}

}  // namespace obs
}  // namespace iotdb
