#include "obs/slowops.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>

namespace iotdb {
namespace obs {

namespace {

struct RecorderState {
  std::mutex mu;
  bool enabled = false;
  size_t capacity = SlowOpRecorder::kDefaultCapacity;
  // Kept sorted slowest-first; small K makes insertion-by-shift cheaper
  // than heap bookkeeping.
  std::vector<SlowOpRecorder::Record> records;
  // Admission threshold: the slowest retained op once full, else 0. Read
  // without the lock on the hot path; a stale-low value only costs one
  // extra lock acquisition, a stale-high value is impossible (the
  // threshold only rises while full and falls to 0 on StartRun, which
  // rewrites it under the lock).
  std::atomic<uint64_t> admit_threshold{0};
  std::atomic<bool> armed{false};
};

RecorderState& State() {
  static RecorderState* state = new RecorderState();  // intentionally leaked
  return *state;
}

}  // namespace

void SlowOpRecorder::StartRun(size_t capacity) {
  RecorderState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.records.clear();
  state.capacity = std::max<size_t>(1, capacity);
  state.admit_threshold.store(0, std::memory_order_relaxed);
  state.armed.store(true, std::memory_order_release);
}

void SlowOpRecorder::StopRun() {
  State().armed.store(false, std::memory_order_release);
}

bool SlowOpRecorder::Enabled() {
  return State().armed.load(std::memory_order_relaxed);
}

void SlowOpRecorder::Offer(const OpBreadcrumb& breadcrumb) {
  RecorderState& state = State();
  if (!state.armed.load(std::memory_order_relaxed)) return;
  if (breadcrumb.total_micros <=
      state.admit_threshold.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.armed.load(std::memory_order_relaxed)) return;
  auto pos = std::upper_bound(
      state.records.begin(), state.records.end(), breadcrumb.total_micros,
      [](uint64_t total, const Record& r) {
        return total > r.breadcrumb.total_micros;
      });
  state.records.insert(pos, Record{breadcrumb});
  if (state.records.size() > state.capacity) state.records.pop_back();
  if (state.records.size() == state.capacity) {
    state.admit_threshold.store(state.records.back().breadcrumb.total_micros,
                                std::memory_order_relaxed);
  }
}

std::vector<SlowOpRecorder::Record> SlowOpRecorder::TakeSnapshot() {
  RecorderState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.records;
}

std::string SlowOpRecorder::ToJson() { return ToJson(TakeSnapshot()); }

std::string SlowOpRecorder::ToJson(const std::vector<Record>& records) {
  std::string out = "{\"slow_ops\":[";
  bool first = true;
  for (const Record& record : records) {
    const OpBreadcrumb& bc = record.breadcrumb;
    if (!first) out += ',';
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"op\":\"%s\",\"trace\":\"0x%llx\",\"start_micros\":%llu,"
                  "\"total_micros\":%llu,\"kvps\":%llu,"
                  "\"stage_sum_micros\":%llu,\"stages\":{",
                  bc.op != nullptr ? bc.op : "",
                  static_cast<unsigned long long>(bc.trace_id),
                  static_cast<unsigned long long>(bc.start_micros),
                  static_cast<unsigned long long>(bc.total_micros),
                  static_cast<unsigned long long>(bc.kvps),
                  static_cast<unsigned long long>(bc.StageSum()));
    out += buf;
    for (int i = 0; i < kNumStages; ++i) {
      if (i != 0) out += ',';
      out += '"';
      out += StageName(static_cast<Stage>(i));
      out += "\":";
      out += std::to_string(bc.stage_micros[i]);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace iotdb
