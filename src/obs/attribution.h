#ifndef IOTDB_OBS_ATTRIBUTION_H_
#define IOTDB_OBS_ATTRIBUTION_H_

#include <array>
#include <cstdint>

namespace iotdb {
namespace obs {

/// The fixed stage vocabulary of per-op latency attribution. Each traced op
/// carries a breadcrumb with one accumulator per stage; at op completion
/// the nonzero stages are recorded into per-stage log-scale histograms
/// (`attrib.<stage>_micros`) in the global registry.
///
/// Two disjoint groups compose an op's wall time, depending on which thread
/// executes the storage work:
///  - storage stages (shard queue wait, vlog, WAL sync, commit wait) are
///    accumulated by the thread that runs KVStore::PutMany/Write — the
///    driver thread in single-store mode, a replica mailbox thread under
///    replication;
///  - cluster stages (fan-out send, quorum wait, retry/backoff) are
///    accumulated on the driver thread around the quorum write.
/// Summing across groups therefore double-counts under replication (the
/// replica's storage work happens *inside* the driver's quorum wait); the
/// critical-path reconciliation in the FDR sums only the group the op
/// actually executed on its own thread.
enum class Stage : int {
  kShardQueueWait = 0,  // time queued behind the shard's group-commit leader
  kVlog,                // value-log separation + sync (leader, per group)
  kWalSync,             // WAL append + sync (leader, per group)
  kCommitWait,          // memtable insert + sequence publication + handoff
  kFanoutSend,          // building + sending replica write requests
  kQuorumWait,          // waiting for W acks (includes straggler tolerance)
  kRetryBackoff,        // driver retry sleeps on Unavailable/TimedOut
};

inline constexpr int kNumStages = 7;

/// Stable lowercase stage slug ("shard_queue_wait", ...), used for registry
/// instrument names, slowops.json keys, and FDR rows.
const char* StageName(Stage stage);

/// Whether `stage` is accumulated on the op's own thread in cluster mode
/// (the driver-path group) — see the class comment on double counting.
bool IsClusterStage(Stage stage);

/// Per-op stage accumulator plus identity, filled in place by the layers
/// the op passes through. Fixed size, no allocation; lives on the op's
/// stack frame and is reachable via a thread-local pointer so layers below
/// need no signature changes.
struct OpBreadcrumb {
  const char* op = nullptr;  // op name literal ("driver.insert_batch", ...)
  uint64_t trace_id = 0;
  uint64_t start_micros = 0;  // wall clock at op entry
  uint64_t total_micros = 0;  // end-to-end latency, set at completion
  uint64_t kvps = 0;
  std::array<uint64_t, kNumStages> stage_micros{};

  uint64_t StageSum() const {
    uint64_t sum = 0;
    for (uint64_t v : stage_micros) sum += v;
    return sum;
  }
};

/// The calling thread's active breadcrumb, or nullptr when the current op
/// is not being attributed. One TLS load.
OpBreadcrumb* CurrentBreadcrumb();

/// Adds `micros` to `stage` of the calling thread's breadcrumb; no-op (one
/// TLS load + predicted branch) when none is installed. Callers gate their
/// clock reads on CurrentBreadcrumb() themselves, so a disabled run pays
/// nothing (`bench_micro_obs` holds this to the disabled-span budget).
inline void AddStageMicros(Stage stage, uint64_t micros);

/// Installs a breadcrumb as the thread's current one for the scope's
/// lifetime; does nothing when obs is disabled (IOTDB_OBS_DISABLED), so
/// the attribution plane vanishes along with the rest of the metrics.
/// On Complete() (or destruction with a prior Complete) the nonzero stages
/// and the op total are recorded into the `attrib.*` histograms and the
/// breadcrumb is offered to the slow-op flight recorder.
class ScopedOpBreadcrumb {
 public:
  /// `op` must be a string literal. `trace_id` links the breadcrumb to the
  /// op's trace (0 = untraced).
  ScopedOpBreadcrumb(const char* op, uint64_t trace_id, uint64_t kvps);
  ~ScopedOpBreadcrumb();

  ScopedOpBreadcrumb(const ScopedOpBreadcrumb&) = delete;
  ScopedOpBreadcrumb& operator=(const ScopedOpBreadcrumb&) = delete;

  bool active() const { return active_; }

  /// Finalizes the op: records per-stage histograms + attrib.op_micros and
  /// offers the breadcrumb to the SlowOpRecorder. Idempotent; a breadcrumb
  /// never completed (op failed) records nothing.
  void Complete(uint64_t start_micros, uint64_t total_micros);

 private:
  OpBreadcrumb breadcrumb_;
  OpBreadcrumb* prev_ = nullptr;
  bool active_ = false;
  bool completed_ = false;
};

namespace internal {
extern thread_local OpBreadcrumb* tls_breadcrumb;
}  // namespace internal

inline OpBreadcrumb* CurrentBreadcrumb() { return internal::tls_breadcrumb; }

inline void AddStageMicros(Stage stage, uint64_t micros) {
  OpBreadcrumb* bc = internal::tls_breadcrumb;
  if (bc != nullptr) bc->stage_micros[static_cast<int>(stage)] += micros;
}

}  // namespace obs
}  // namespace iotdb

#endif  // IOTDB_OBS_ATTRIBUTION_H_
