#ifndef IOTDB_OBS_SNAPSHOT_H_
#define IOTDB_OBS_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace iotdb {
namespace obs {

/// Point-in-time copy of one LatencyHistogram: exact count/sum/min/max plus
/// the sparse non-empty log-buckets, so percentiles can be recomputed from
/// the snapshot (and from deltas between two snapshots) without the live
/// instrument.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  /// Sparse (bucket index, count) pairs, ascending by index. Bucket
  /// geometry is LatencyHistogram's (see metrics.h).
  std::vector<std::pair<uint32_t, uint64_t>> buckets;

  double Mean() const;
  /// Approximate value at percentile p in [0, 100], interpolated within
  /// the covering bucket and clamped to [min, max].
  double Percentile(double p) const;

  /// Counts accumulated since `earlier` (same instrument, taken later).
  /// min/max cannot be recovered for the window and keep this snapshot's
  /// cumulative values.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// A full registry snapshot: every instrument by name. Names follow the
/// `layer.component.metric` convention (see DESIGN.md "Observability").
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Per-instrument delta vs an earlier snapshot of the same registry:
  /// counters and histogram counts subtract (clamped at 0); gauges keep
  /// their current value (they are levels, not totals). Instruments absent
  /// from `earlier` appear with their full value.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  /// Machine-readable export:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
  ///                          "buckets":[[idx,count],...]},...}}
  std::string ToJson() const;

  /// Parses ToJson() output back (round-trip exact).
  static Result<MetricsSnapshot> FromJson(const std::string& json);

  /// Human-readable aligned table with derived histogram statistics
  /// (mean/p50/p95/p99/p99.9).
  std::string ToTable() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

}  // namespace obs
}  // namespace iotdb

#endif  // IOTDB_OBS_SNAPSHOT_H_
