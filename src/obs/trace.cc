#include "obs/trace.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <unordered_set>

namespace iotdb {
namespace obs {

std::atomic<bool> TraceBuffer::enabled_{false};

namespace {

/// The thread's current op context. A plain TLS struct (not a pointer)
/// keeps reads branch-free; an invalid context is all zeroes.
thread_local TraceContext tls_trace_context;

}  // namespace

uint64_t TraceContext::NextId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceContext TraceContext::Mint() {
  TraceContext ctx;
  ctx.trace_id = NextId();
  ctx.span_id = NextId();
  ctx.parent_id = 0;
  return ctx;
}

TraceContext TraceContext::Child() const {
  TraceContext child;
  child.trace_id = trace_id;
  child.span_id = NextId();
  child.parent_id = span_id;
  return child;
}

const TraceContext& CurrentTraceContext() { return tls_trace_context; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : prev_(tls_trace_context) {
  tls_trace_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { tls_trace_context = prev_; }

/// Every field is an individual atomic so a reader racing a wraparound
/// overwrite sees, at worst, a mix of two complete records — never a torn
/// pointer. All slot accesses are relaxed; ordering comes from the ring
/// head's release/acquire pair.
struct TraceBuffer::Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> arg_name{nullptr};
  std::atomic<uint64_t> arg_value{0};
  std::atomic<uint64_t> start_micros{0};
  std::atomic<uint64_t> duration_micros{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> span_id{0};
  std::atomic<uint64_t> parent_id{0};
};

/// Single-writer (the owning thread) / multi-reader ring. Readers only
/// consume slots below the published head, writers only publish after the
/// slot's fields are stored.
struct TraceBuffer::ThreadRing {
  explicit ThreadRing(uint32_t tid_in, size_t capacity_in)
      : tid(tid_in), capacity(capacity_in), slots(new Slot[capacity_in]) {}

  const uint32_t tid;
  const size_t capacity;
  std::unique_ptr<Slot[]> slots;
  /// Total spans ever written; slot index is head % capacity. Published
  /// with release so an acquire reader sees the slot contents.
  std::atomic<uint64_t> head{0};

  void Push(const char* name, uint64_t start_micros, uint64_t duration_micros,
            const char* arg_name, uint64_t arg_value,
            const TraceContext& ctx) {
    uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h % capacity];
    slot.name.store(name, std::memory_order_relaxed);
    slot.arg_name.store(arg_name, std::memory_order_relaxed);
    slot.arg_value.store(arg_value, std::memory_order_relaxed);
    slot.start_micros.store(start_micros, std::memory_order_relaxed);
    slot.duration_micros.store(duration_micros, std::memory_order_relaxed);
    slot.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
    slot.span_id.store(ctx.span_id, std::memory_order_relaxed);
    slot.parent_id.store(ctx.parent_id, std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }
};

/// Owns every ring ever handed to a thread; rings live until the next
/// StartTracing so Snapshot can read spans from threads that have exited.
struct TraceBuffer::Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  size_t capacity_per_thread = TraceBuffer::kDefaultCapacityPerThread;
  /// Bumped on StartTracing; threads re-fetch their ring when their cached
  /// epoch is stale, so old rings are never written after a reset.
  std::atomic<uint64_t> epoch{1};

  ThreadRing* NewRing() {
    std::lock_guard<std::mutex> lock(mu);
    rings.push_back(std::make_unique<ThreadRing>(
        static_cast<uint32_t>(rings.size()), capacity_per_thread));
    return rings.back().get();
  }
};

TraceBuffer::Registry& TraceBuffer::GlobalRegistry() {
  static Registry* registry = new Registry();  // intentionally leaked
  return *registry;
}

TraceBuffer::ThreadRing* TraceBuffer::RingForThisThread() {
  struct Cached {
    ThreadRing* ring = nullptr;
    uint64_t epoch = 0;
  };
  thread_local Cached cached;
  Registry& registry = GlobalRegistry();
  uint64_t epoch = registry.epoch.load(std::memory_order_acquire);
  if (cached.ring == nullptr || cached.epoch != epoch) {
    cached.ring = registry.NewRing();
    cached.epoch = epoch;
  }
  return cached.ring;
}

void TraceBuffer::StartTracing(size_t capacity_per_thread) {
  if (enabled_.load(std::memory_order_relaxed)) return;
  Registry& registry = GlobalRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.rings.clear();
    registry.capacity_per_thread =
        std::max<size_t>(1, capacity_per_thread);
  }
  // Invalidate every thread's cached ring before writers can observe
  // enabled: a stale ring from the previous run is never written again.
  registry.epoch.fetch_add(1, std::memory_order_acq_rel);
  enabled_.store(true, std::memory_order_release);
}

void TraceBuffer::StopTracing() {
  enabled_.store(false, std::memory_order_release);
}

void TraceBuffer::Record(const char* name, uint64_t start_micros,
                         uint64_t duration_micros, const char* arg_name,
                         uint64_t arg_value) {
  if (!Enabled()) return;
  RingForThisThread()->Push(name, start_micros, duration_micros, arg_name,
                            arg_value, TraceContext());
}

void TraceBuffer::Record(const char* name, uint64_t start_micros,
                         uint64_t duration_micros, const TraceContext& ctx,
                         const char* arg_name, uint64_t arg_value) {
  if (!Enabled()) return;
  RingForThisThread()->Push(name, start_micros, duration_micros, arg_name,
                            arg_value, ctx);
}

std::vector<TraceEvent> TraceBuffer::Snapshot() {
  Registry& registry = GlobalRegistry();
  std::vector<ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    rings.reserve(registry.rings.size());
    for (auto& ring : registry.rings) rings.push_back(ring.get());
  }
  std::vector<TraceEvent> events;
  for (ThreadRing* ring : rings) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t count = std::min<uint64_t>(head, ring->capacity);
    events.reserve(events.size() + count);
    for (uint64_t i = head - count; i < head; ++i) {
      const Slot& slot = ring->slots[i % ring->capacity];
      TraceEvent event;
      event.name = slot.name.load(std::memory_order_relaxed);
      event.arg_name = slot.arg_name.load(std::memory_order_relaxed);
      event.arg_value = slot.arg_value.load(std::memory_order_relaxed);
      event.start_micros = slot.start_micros.load(std::memory_order_relaxed);
      event.duration_micros =
          slot.duration_micros.load(std::memory_order_relaxed);
      event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      event.span_id = slot.span_id.load(std::memory_order_relaxed);
      event.parent_id = slot.parent_id.load(std::memory_order_relaxed);
      event.tid = ring->tid;
      if (event.name != nullptr) events.push_back(event);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_micros < b.start_micros;
            });
  return events;
}

uint64_t TraceBuffer::DroppedSpans() {
  Registry& registry = GlobalRegistry();
  uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    for (auto& ring : registry.rings) {
      uint64_t head = ring->head.load(std::memory_order_acquire);
      if (head > ring->capacity) dropped += head - ring->capacity;
    }
  }
  // Mirror into the registry so metrics-only consumers (the FDR
  // Observability section, metrics.json) see trace truncation too.
  static Gauge* dropped_gauge =
      MetricsRegistry::Global().GetGauge("obs.trace.dropped_spans");
  dropped_gauge->Set(static_cast<int64_t>(dropped));
  return dropped;
}

namespace {

void AppendJsonEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

namespace {

void AppendHexId(uint64_t id, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(id));
  *out += buf;
}

}  // namespace

std::string TraceBuffer::ToChromeTraceJson() {
  std::vector<TraceEvent> events = Snapshot();

  // Flow bindings are only emitted for edges both ends of which survived
  // in the rings: a span gets flow_out only if a recorded child names it
  // as parent, and flow_in only if its recorded parent is present. This
  // keeps every bind_id's flow well formed (>= one producer and one
  // consumer) even after wraparound dropped part of a trace.
  std::unordered_set<uint64_t> span_ids;
  std::unordered_set<uint64_t> referenced_parents;
  for (const TraceEvent& event : events) {
    if (event.trace_id == 0) continue;
    span_ids.insert(event.span_id);
    if (event.parent_id != 0) referenced_parents.insert(event.parent_id);
  }

  std::string out;
  out.reserve(events.size() * 128 + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(event.name, &out);
    out += "\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(event.start_micros);
    out += ",\"dur\":";
    out += std::to_string(event.duration_micros);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    if (event.trace_id != 0) {
      // One flow per trace: every span of the op shares bind_id ==
      // trace_id, so Perfetto chains arrows driver → group commit →
      // channel → replica in timestamp order.
      const bool flow_out = referenced_parents.count(event.span_id) != 0;
      const bool flow_in =
          event.parent_id != 0 && span_ids.count(event.parent_id) != 0;
      if (flow_out || flow_in) {
        out += ",\"bind_id\":\"";
        AppendHexId(event.trace_id, &out);
        out += '"';
        if (flow_in) out += ",\"flow_in\":true";
        if (flow_out) out += ",\"flow_out\":true";
      }
    }
    if (event.arg_name != nullptr || event.trace_id != 0) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (event.arg_name != nullptr) {
        out += '"';
        AppendJsonEscaped(event.arg_name, &out);
        out += "\":";
        out += std::to_string(event.arg_value);
        first_arg = false;
      }
      if (event.trace_id != 0) {
        if (!first_arg) out += ',';
        out += "\"trace\":\"";
        AppendHexId(event.trace_id, &out);
        out += "\",\"span\":\"";
        AppendHexId(event.span_id, &out);
        out += '"';
        if (event.parent_id != 0) {
          out += ",\"parent\":\"";
          AppendHexId(event.parent_id, &out);
          out += '"';
        }
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":";
  out += std::to_string(DroppedSpans());
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace iotdb
