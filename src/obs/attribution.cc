#include "obs/attribution.h"

#include "obs/metrics.h"
#include "obs/slowops.h"

namespace iotdb {
namespace obs {

namespace internal {
thread_local OpBreadcrumb* tls_breadcrumb = nullptr;
}  // namespace internal

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kShardQueueWait: return "shard_queue_wait";
    case Stage::kVlog: return "vlog";
    case Stage::kWalSync: return "wal_sync";
    case Stage::kCommitWait: return "commit_wait";
    case Stage::kFanoutSend: return "fanout_send";
    case Stage::kQuorumWait: return "quorum_wait";
    case Stage::kRetryBackoff: return "retry_backoff";
  }
  return "unknown";
}

bool IsClusterStage(Stage stage) {
  switch (stage) {
    case Stage::kFanoutSend:
    case Stage::kQuorumWait:
    case Stage::kRetryBackoff:
      return true;
    default:
      return false;
  }
}

namespace {

struct AttributionInstruments {
  std::array<LatencyHistogram*, kNumStages> stages;

  AttributionInstruments() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    for (int i = 0; i < kNumStages; ++i) {
      stages[i] = registry.GetHistogram(
          std::string("attrib.") + StageName(static_cast<Stage>(i)) +
          "_micros");
    }
  }
};

AttributionInstruments& Instruments() {
  static AttributionInstruments* instruments = new AttributionInstruments();
  return *instruments;
}

}  // namespace

ScopedOpBreadcrumb::ScopedOpBreadcrumb(const char* op, uint64_t trace_id,
                                       uint64_t kvps) {
  if (!Enabled()) return;
  breadcrumb_.op = op;
  breadcrumb_.trace_id = trace_id;
  breadcrumb_.kvps = kvps;
  prev_ = internal::tls_breadcrumb;
  internal::tls_breadcrumb = &breadcrumb_;
  active_ = true;
}

ScopedOpBreadcrumb::~ScopedOpBreadcrumb() {
  if (active_) internal::tls_breadcrumb = prev_;
}

void ScopedOpBreadcrumb::Complete(uint64_t start_micros,
                                  uint64_t total_micros) {
  if (!active_ || completed_) return;
  completed_ = true;
  breadcrumb_.start_micros = start_micros;
  breadcrumb_.total_micros = total_micros;
  // Only stages the op actually passed through enter the distributions: a
  // zero slot means "stage not on this op's path" (e.g. no vlog when value
  // separation is off), not an observed zero-latency pass.
  AttributionInstruments& instruments = Instruments();
  for (int i = 0; i < kNumStages; ++i) {
    if (breadcrumb_.stage_micros[i] != 0) {
      instruments.stages[i]->Record(breadcrumb_.stage_micros[i]);
    }
  }
  SlowOpRecorder::Offer(breadcrumb_);
}

}  // namespace obs
}  // namespace iotdb
