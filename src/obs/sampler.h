#ifndef IOTDB_OBS_SAMPLER_H_
#define IOTDB_OBS_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace iotdb {
namespace obs {

/// One sampling interval: the registry delta between two consecutive
/// snapshots, with the wall-clock window it covers.
struct TimelineInterval {
  uint64_t start_micros = 0;
  uint64_t end_micros = 0;
  /// DeltaSince of the interval's end snapshot vs its start snapshot:
  /// counters and histogram counts are per-interval increments, gauges are
  /// the level observed at interval end.
  MetricsSnapshot delta;

  double DurationSeconds() const {
    return end_micros > start_micros
               ? static_cast<double>(end_micros - start_micros) / 1e6
               : 0.0;
  }

  /// Counter increment within this interval (0 when absent).
  uint64_t CounterDelta(const std::string& name) const;
  /// Gauge level at interval end (0 when absent).
  int64_t GaugeValue(const std::string& name) const;
  /// Events per second for a counter over this interval.
  double Rate(const std::string& counter_name) const;
};

/// The ordered sequence of intervals a Sampler collected over a run.
/// Because consecutive deltas telescope, the per-interval sums of any
/// counter add up exactly to (final cumulative − first cumulative) — the
/// property the bench acceptance check relies on. When the sampler's ring
/// overflows, the two *oldest* intervals are merged (deltas add, the
/// interior boundary is lost and counted in `dropped_intervals`), so the
/// ring stays bounded while the exact-total property holds over the whole
/// run; only interval granularity coarsens at the old end.
struct Timeline {
  uint64_t cadence_micros = 0;
  uint64_t dropped_intervals = 0;
  std::vector<TimelineInterval> intervals;

  bool empty() const { return intervals.empty(); }

  /// Sum of a counter's per-interval deltas across the whole timeline.
  uint64_t CounterTotal(const std::string& name) const;

  /// Machine-readable export with derived per-interval series:
  ///   {"cadence_micros":..,"dropped_intervals":..,"intervals":[
  ///     {"start_micros":..,"end_micros":..,
  ///      "ingest_kvps":..,"ingest_rate":..,
  ///      "query_count":..,"query_p50_micros":..,"query_p99_micros":..,
  ///      "flush_bytes":..,"compaction_bytes":..,"cache_hit_rate":..,
  ///      "hint_queue_depth":..,"stall_micros":..,
  ///      "node_kvps":{"<id>":..}},...]}
  /// `node_kvps` collects every `cluster.node<id>.primary_kvps` counter.
  std::string ToJson() const;
};

struct SamplerOptions {
  /// Interval between background snapshots. Default 1 s, matching the
  /// per-second granularity of the paper's timeline figures.
  uint64_t cadence_micros = 1'000'000;
  /// Maximum retained intervals; beyond this the oldest pair is merged
  /// (boundaries counted in Timeline::dropped_intervals, totals exact).
  /// 4096 ≈ 68 minutes at the default cadence — comfortably past the
  /// 35-minute warmup+measurement minimum.
  size_t capacity = 4096;
  Clock* clock = nullptr;  // defaults to Clock::Real()
};

/// Background registry sampler: snapshots MetricsRegistry::Global() every
/// `cadence_micros` and keeps the consecutive `DeltaSince` deltas in a
/// bounded ring. The product is a Timeline — the per-interval time series
/// (ingest rate, query percentiles, compaction/flush activity, cache hit
/// rate, hint-queue depth, per-node ops) that timeline.json and the FDR
/// "Run timeline" section are built from.
///
/// Start() refuses to run while observability is disabled (`!Enabled()`):
/// with no instruments updating, every delta would be zero and the
/// background thread pure overhead. SampleNow() allows clock-driven tests
/// to step the sampler deterministically without the thread.
class Sampler {
 public:
  explicit Sampler(SamplerOptions options = {});
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Primes the base snapshot and starts the background thread. Returns
  /// false (and starts nothing) when observability is disabled or the
  /// sampler is already running.
  bool Start();

  /// Stops the thread and flushes the final partial interval (if any time
  /// elapsed since the last sample). Idempotent.
  void Stop();

  bool running() const;

  /// Takes one sample immediately: the first call primes the base
  /// snapshot; later calls append an interval. Usable with or without the
  /// background thread (the thread serialises with it internally).
  void SampleNow();

  /// Copies the collected timeline (valid while running or after Stop).
  Timeline TakeTimeline() const;

 private:
  void ThreadLoop();
  void SampleLocked(std::unique_lock<std::mutex>& lock);

  SamplerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;

  bool primed_ = false;
  MetricsSnapshot base_;
  uint64_t base_micros_ = 0;
  std::deque<TimelineInterval> ring_;
  uint64_t dropped_ = 0;
};

}  // namespace obs
}  // namespace iotdb

#endif  // IOTDB_OBS_SAMPLER_H_
