#ifndef IOTDB_OBS_SLOWOPS_H_
#define IOTDB_OBS_SLOWOPS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/attribution.h"

namespace iotdb {
namespace obs {

/// A bounded flight recorder of the K slowest attributed ops of the
/// current run, each with its full stage breadcrumb. Offer() is called at
/// every op completion but stays cheap under load: one relaxed load of the
/// current admission threshold rejects the common (fast) op before any
/// lock; only ops slow enough to enter the top-K take the mutex.
///
/// StartRun() clears and (re)arms the recorder; the benchmark driver arms
/// it per workload execution so the FDR table and `--slowops-out` describe
/// one run, not the process's whole history.
class SlowOpRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 32;

  struct Record {
    OpBreadcrumb breadcrumb;
  };

  static void StartRun(size_t capacity = kDefaultCapacity);
  static void StopRun();
  static bool Enabled();

  /// Considers one completed op for the top-K. No-op unless armed.
  static void Offer(const OpBreadcrumb& breadcrumb);

  /// The retained ops, slowest first. Safe to call while armed.
  static std::vector<Record> TakeSnapshot();

  /// slowops.json: {"slow_ops":[{"op","trace","total_micros","kvps",
  /// "stage_sum_micros","stages":{...}}...]} slowest first.
  static std::string ToJson();
  /// Same format over an already-captured snapshot (e.g. a
  /// WorkloadExecution's records, serialized after later runs re-armed the
  /// live recorder).
  static std::string ToJson(const std::vector<Record>& records);
};

}  // namespace obs
}  // namespace iotdb

#endif  // IOTDB_OBS_SLOWOPS_H_
