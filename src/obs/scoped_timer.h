#ifndef IOTDB_OBS_SCOPED_TIMER_H_
#define IOTDB_OBS_SCOPED_TIMER_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "obs/metrics.h"

namespace iotdb {
namespace obs {

/// RAII timer recording elapsed microseconds into a LatencyHistogram on
/// destruction. When the observability switch is off (or the histogram is
/// null) construction skips the clock read and destruction is a single
/// branch — the near-zero "disabled" cost the overhead budget relies on.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist,
                       Clock* clock = Clock::Real())
      : hist_(Enabled() ? hist : nullptr), clock_(clock) {
    if (hist_ != nullptr) start_ = clock_->NowMicros();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  /// Records now instead of at scope exit; idempotent.
  void Stop() {
    if (hist_ != nullptr) {
      uint64_t now = clock_->NowMicros();
      hist_->Record(now >= start_ ? now - start_ : 0);
      hist_ = nullptr;
    }
  }

  /// Drops the measurement (e.g. the guarded operation failed and its
  /// latency would pollute the distribution).
  void Cancel() { hist_ = nullptr; }

 private:
  LatencyHistogram* hist_;
  Clock* clock_;
  uint64_t start_ = 0;
};

// TraceSpan moved to obs/trace.h: it now also feeds real span records into
// the TraceBuffer ring for Chrome trace_event export.

}  // namespace obs
}  // namespace iotdb

#endif  // IOTDB_OBS_SCOPED_TIMER_H_
