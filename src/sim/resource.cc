#include "sim/resource.h"

#include <cassert>
#include <utility>

namespace iotdb {
namespace sim {

Resource::Resource(Simulator* sim, int capacity, std::string name)
    : sim_(sim), capacity_(capacity > 0 ? capacity : 1),
      name_(std::move(name)) {}

void Resource::Process(Time service_time,
                       std::function<void(Time)> done) {
  queue_.push_back(Job{service_time, sim_->Now(), std::move(done)});
  StartIfPossible();
}

void Resource::StartIfPossible() {
  while (in_service_ < capacity_ - stolen_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(job));
  }
}

void Resource::StartJob(Job job) {
  in_service_++;
  Time queue_delay = sim_->Now() - job.enqueued_at;
  Time service = job.service_time;
  busy_micros_ += service;
  auto done = std::move(job.done);
  sim_->Schedule(service, [this, queue_delay, done = std::move(done)]() {
    in_service_--;
    jobs_completed_++;
    if (done) done(queue_delay);
    StartIfPossible();
  });
}

double Resource::Utilization() const {
  Time now = sim_->Now();
  if (now == 0) return 0.0;
  return static_cast<double>(busy_micros_) /
         (static_cast<double>(now) * capacity_);
}

void Resource::StealServers(int n, Time duration) {
  if (n <= 0) return;
  if (n > capacity_ - stolen_) n = capacity_ - stolen_;
  if (n <= 0) return;
  stolen_ += n;
  sim_->Schedule(duration, [this, n]() {
    stolen_ -= n;
    StartIfPossible();
  });
}

BatchServer::BatchServer(Simulator* sim, Time gather_window, Time fixed_cost,
                         double per_item_cost_micros)
    : sim_(sim),
      gather_window_(gather_window),
      fixed_cost_(fixed_cost),
      per_item_cost_(per_item_cost_micros) {}

void BatchServer::Submit(uint64_t items, std::function<void()> done) {
  pending_.push_back(Pending{items, std::move(done)});
  StartGatherOrCommit();
}

void BatchServer::StartGatherOrCommit() {
  if (committing_ || gathering_ || pending_.empty()) return;
  gathering_ = true;
  sim_->Schedule(gather_window_, [this]() {
    gathering_ = false;
    Commit();
  });
}

void BatchServer::Commit() {
  if (committing_ || pending_.empty()) return;
  committing_ = true;

  // Take everything queued so far as one batch.
  std::deque<Pending> batch;
  batch.swap(pending_);
  uint64_t items = 0;
  for (const Pending& p : batch) items += p.items;

  Time cost = fixed_cost_ +
              static_cast<Time>(per_item_cost_ * static_cast<double>(items));
  sim_->Schedule(cost, [this, batch = std::move(batch), items]() mutable {
    commits_++;
    items_committed_ += items;
    committing_ = false;
    for (Pending& p : batch) {
      if (p.done) p.done();
    }
    // Requests that arrived during the commit form the next batch
    // immediately (no extra gather delay: the sync path is hot).
    if (!pending_.empty()) Commit();
  });
}

}  // namespace sim
}  // namespace iotdb
