#ifndef IOTDB_SIM_SIMULATOR_H_
#define IOTDB_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace iotdb {
namespace sim {

/// Simulated time in microseconds.
using Time = uint64_t;

/// A sequential discrete-event simulator: a priority queue of timestamped
/// callbacks and a virtual clock. The experiment harness uses it to run the
/// TPCx-IoT workload against a model of the paper's 2/4/8-node gateway
/// clusters in virtual time, so curve shapes do not depend on host hardware.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time Now() const { return now_; }

  /// Schedules fn to run `delay` microseconds from now. Events at equal
  /// times run in scheduling order (stable).
  void Schedule(Time delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  void ScheduleAt(Time when, std::function<void()> fn);

  /// Runs until the event queue is empty or Stop() is called.
  void Run();

  /// Runs events with time <= until; the clock ends at `until` or at the
  /// last event, whichever is later reached. Returns false when the queue
  /// drained before `until`.
  bool RunUntil(Time until);

  /// Stops Run() after the current event completes.
  void Stop() { stopped_ = true; }

  uint64_t events_processed() const { return events_processed_; }
  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    Time when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  bool stopped_ = false;
};

}  // namespace sim
}  // namespace iotdb

#endif  // IOTDB_SIM_SIMULATOR_H_
