#ifndef IOTDB_SIM_RESOURCE_H_
#define IOTDB_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/simulator.h"

namespace iotdb {
namespace sim {

/// A multi-server FIFO queueing station: up to `capacity` jobs in service
/// concurrently; excess jobs wait in arrival order. Models node handler
/// pools. Tracks busy time for utilisation reporting.
class Resource {
 public:
  Resource(Simulator* sim, int capacity, std::string name = "");

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Submits a job needing `service_time` of one server. done(queue_delay)
  /// fires when service completes; queue_delay is the time spent waiting
  /// before service began.
  void Process(Time service_time, std::function<void(Time queue_delay)> done);

  int capacity() const { return capacity_; }
  int in_service() const { return in_service_; }
  size_t queue_length() const { return queue_.size(); }
  uint64_t jobs_completed() const { return jobs_completed_; }

  /// Busy server-microseconds accumulated so far.
  uint64_t busy_micros() const { return busy_micros_; }

  /// Mean utilisation in [0,1] over [0, sim->Now()].
  double Utilization() const;

  /// Temporarily removes `n` servers from service (models a flush stall
  /// consuming handler threads); they return after `duration`.
  void StealServers(int n, Time duration);

 private:
  struct Job {
    Time service_time;
    Time enqueued_at;
    std::function<void(Time)> done;
  };

  void StartIfPossible();
  void StartJob(Job job);

  Simulator* sim_;
  int capacity_;
  int stolen_ = 0;
  int in_service_ = 0;
  std::deque<Job> queue_;
  uint64_t busy_micros_ = 0;
  uint64_t jobs_completed_ = 0;
  std::string name_;
};

/// A group-commit batch server (models the WAL sync path of a gateway
/// node). Requests arriving while a commit is in flight merge into the next
/// batch; an idle server waits `gather_window` before committing, letting
/// concurrent clients share the fixed commit cost. This is the mechanism
/// behind the paper's super-linear throughput scaling at low substation
/// counts (Figure 10).
class BatchServer {
 public:
  /// commit cost = fixed_cost + items * per_item_cost.
  BatchServer(Simulator* sim, Time gather_window, Time fixed_cost,
              double per_item_cost_micros);

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Submits `items` units; done() fires when the batch containing them
  /// commits.
  void Submit(uint64_t items, std::function<void()> done);

  uint64_t commits() const { return commits_; }
  uint64_t items_committed() const { return items_committed_; }
  /// Mean items per commit so far (amortisation factor).
  double MeanBatchItems() const {
    return commits_ == 0 ? 0.0
                         : static_cast<double>(items_committed_) /
                               static_cast<double>(commits_);
  }

 private:
  struct Pending {
    uint64_t items;
    std::function<void()> done;
  };

  void StartGatherOrCommit();
  void Commit();

  Simulator* sim_;
  Time gather_window_;
  Time fixed_cost_;
  double per_item_cost_;
  std::deque<Pending> pending_;
  bool committing_ = false;
  bool gathering_ = false;
  uint64_t commits_ = 0;
  uint64_t items_committed_ = 0;
};

}  // namespace sim
}  // namespace iotdb

#endif  // IOTDB_SIM_RESOURCE_H_
