#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace iotdb {
namespace sim {

void Simulator::ScheduleAt(Time when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Simulator::Run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // Moving out of a priority_queue requires const_cast; the element is
    // popped immediately after.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    events_processed_++;
    event.fn();
  }
}

bool Simulator::RunUntil(Time until) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (queue_.top().when > until) {
      now_ = until;
      return true;
    }
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    events_processed_++;
    event.fn();
  }
  if (now_ < until) now_ = until;
  return false;
}

}  // namespace sim
}  // namespace iotdb
