#ifndef IOTDB_SIM_SIM_CLOCK_H_
#define IOTDB_SIM_SIM_CLOCK_H_

#include "common/clock.h"
#include "sim/simulator.h"

namespace iotdb {
namespace sim {

/// Adapts a Simulator to the library-wide Clock interface so components
/// written against Clock (generators, rate limiters, retention filters)
/// run unmodified inside a discrete-event simulation.
///
/// SleepMicros cannot block inside an event-driven simulation; it advances
/// the clock by running the simulator forward, which is only safe from the
/// driving thread between events. Prefer Simulator::Schedule for in-model
/// waiting.
class SimClock final : public Clock {
 public:
  explicit SimClock(Simulator* sim) : sim_(sim) {}

  uint64_t NowMicros() const override { return sim_->Now(); }

  void SleepMicros(uint64_t micros) override {
    sim_->RunUntil(sim_->Now() + micros);
  }

 private:
  Simulator* sim_;
};

}  // namespace sim
}  // namespace iotdb

#endif  // IOTDB_SIM_SIM_CLOCK_H_
