#ifndef IOTDB_STORAGE_MEMTABLE_H_
#define IOTDB_STORAGE_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/arena.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/dbformat.h"
#include "storage/iterator.h"
#include "storage/skiplist.h"

namespace iotdb {
namespace storage {

/// In-memory write buffer (HBase memstore analogue): an arena-backed
/// skiplist of internal keys. Reference-counted because readers may hold an
/// immutable memtable while it is being flushed.
class MemTable {
 public:
  explicit MemTable(const InternalKeyComparator& comparator);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  /// Approximate memory consumed by entries + skiplist.
  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  uint64_t NumEntries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

  /// Adds an entry. Writers must be externally serialised (the KVStore's
  /// write path does this); concurrent readers are safe.
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  /// Point lookup at snapshot `seq`: if the memtable holds a value for key,
  /// stores it in *value and returns true with *s OK; if it holds a
  /// deletion, returns true with *s NotFound; otherwise returns false.
  bool Get(const Slice& user_key, SequenceNumber seq, std::string* value,
           Status* s);

  /// Iterator over internal keys (yields internal-key encoded entries).
  std::unique_ptr<Iterator> NewIterator();

  /// Entry ordering functor over arena-encoded entries. Public because the
  /// iterator implementation in memtable.cc names the skiplist type.
  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    int operator()(const char* a, const char* b) const;
  };

  using Table = SkipList<const char*, KeyComparator>;

 private:
  ~MemTable() = default;  // only via Unref

  KeyComparator comparator_;
  std::atomic<int> refs_;
  std::atomic<uint64_t> num_entries_;
  Arena arena_;
  Table table_;
};

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_MEMTABLE_H_
