#ifndef IOTDB_STORAGE_VLOG_WRITER_H_
#define IOTDB_STORAGE_VLOG_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/vlog_format.h"

namespace iotdb {
namespace storage {
namespace vlog {

/// Appends records to one value-log file. Not thread-safe: the store
/// serialises access (the group-commit leader owns it outside the store
/// mutex; GC and recovery use it under the mutex with the leader quiesced).
///
/// Offsets handed out by Add() are stable immediately, but the bytes are
/// only readable by others after Flush() (the store flushes once per write
/// batch, before the WAL record that references the offsets is written).
class VlogWriter {
 public:
  VlogWriter(std::unique_ptr<WritableFile> file, uint64_t file_no,
             uint64_t initial_offset);

  VlogWriter(const VlogWriter&) = delete;
  VlogWriter& operator=(const VlogWriter&) = delete;

  /// Buffers one record and returns the pointer naming it. The record is
  /// not durable (or even visible to readers) until Flush()/Sync().
  Status Add(const Slice& key, const Slice& value, ValuePointer* ptr);

  /// Pushes buffered records to the file (readable via the env after this).
  Status Flush();

  /// Flush + fsync. Called before a synchronous WAL write so a synced WAL
  /// record never references an unsynced vlog record.
  Status Sync();

  uint64_t file_no() const { return file_no_; }

  /// Bytes in the file once buffered data is flushed.
  uint64_t offset() const { return offset_; }

 private:
  std::unique_ptr<WritableFile> file_;
  const uint64_t file_no_;
  uint64_t offset_;
  std::string buffer_;
};

}  // namespace vlog
}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_VLOG_WRITER_H_
