#ifndef IOTDB_STORAGE_KVSTORE_H_
#define IOTDB_STORAGE_KVSTORE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "storage/cache.h"
#include "storage/db_iter.h"
#include "storage/dbformat.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/log_writer.h"
#include "storage/memtable.h"
#include "storage/options.h"
#include "storage/version.h"
#include "storage/vlog_gc.h"
#include "storage/vlog_reader.h"
#include "storage/vlog_writer.h"
#include "storage/write_batch.h"

namespace iotdb {
namespace storage {

/// Point-in-time view of a store's counters, assembled by KVStore::GetStats
/// from atomic instruments (the counters themselves live in
/// KVStore::StoreCounters; this struct is a plain copy for callers).
struct KVStoreStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t scans = 0;
  uint64_t memtable_flushes = 0;
  uint64_t compactions = 0;
  uint64_t write_stall_micros = 0;
  uint64_t bytes_flushed = 0;
  uint64_t bytes_compacted = 0;
  int num_files[kNumLevels] = {};
  uint64_t level_bytes[kNumLevels] = {};
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t wal_recovery_dropped_bytes = 0;
  uint64_t scrubbed_files = 0;
  uint64_t quarantined_files = 0;
  // Key-value separation (zero when Options::value_separation is off).
  uint64_t vlog_files = 0;  // live vlog files (sealed + active)
  uint64_t vlog_appended_bytes = 0;
  uint64_t vlog_dereferences = 0;
  uint64_t vlog_gc_reclaimed_bytes = 0;
  uint64_t vlog_recovery_dropped_pointers = 0;
};

/// Outcome of one KVStore::VerifyIntegrity pass.
struct ScrubReport {
  uint64_t files_checked = 0;
  uint64_t bytes_checked = 0;
  uint64_t corrupt_files = 0;      // failed checksum verification
  uint64_t quarantined_files = 0;  // removed from the live set & moved aside
  uint64_t wal_dropped_bytes = 0;  // corrupt bytes found in the live WAL tail
  std::vector<std::string> corrupt_paths;
};

/// A single-node LSM key-value store (the HBase region-server storage
/// analogue): WAL + memtable + leveled SSTables. Thread-safe: any number of
/// concurrent readers and writers.
///
/// Typical use:
///   auto store = KVStore::Open(options, "/data/gw").MoveValueUnsafe();
///   store->Put(WriteOptions(), key, value);
///   auto val = store->Get(ReadOptions(), key);
///   store->Scan(ReadOptions(), start, end, 0, &rows);
class KVStore {
 public:
  /// Opens (creating if needed) the store in directory `name`, replaying any
  /// WAL left by a previous incarnation.
  static Result<std::unique_ptr<KVStore>> Open(const Options& options,
                                               const std::string& name);

  /// Deletes all files of the store at `name` (TPCx-IoT system cleanup).
  static Status Destroy(const Options& options, const std::string& name);

  ~KVStore();

  KVStore(const KVStore&) = delete;
  KVStore& operator=(const KVStore&) = delete;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value);
  Status Delete(const WriteOptions& options, const Slice& key);

  /// Applies a batch atomically. Concurrent callers are group-committed:
  /// one leader writes a combined WAL record for all queued batches.
  Status Write(const WriteOptions& options, WriteBatch* batch);

  /// Point lookup. NotFound status when absent.
  Result<std::string> Get(const ReadOptions& options, const Slice& key);

  /// Ordered iterator over live user keys at the current snapshot. The
  /// returned iterator pins the memtables/tables it reads.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& options);

  /// Range scan convenience: fills `out` with key/value pairs where
  /// start <= key < end_exclusive (empty end = unbounded), at most `limit`
  /// pairs when limit > 0.
  Status Scan(const ReadOptions& options, const Slice& start,
              const Slice& end_exclusive, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out);

  /// Snapshots: reads at a released sequence see a frozen view.
  SequenceNumber GetSnapshot();
  void ReleaseSnapshot(SequenceNumber snapshot);

  /// Forces a memtable flush and waits for it to complete.
  Status FlushMemTable();

  /// Compacts everything down to the last populated level and waits.
  Status CompactAll();

  /// Scrub: checksum-walks every live SSTable (footer, index, filter, and
  /// every data block, bypassing the block cache) plus the live WAL tail.
  /// Files that fail verification are atomically quarantined — renamed to
  /// `<name>.quarantined`, dropped from the version set, and reported via
  /// Options::corruption_reporter — so they never serve another read.
  /// Returns non-OK only when the walk itself could not run; corruption
  /// found (and healed by quarantine) is described by `report`.
  Status VerifyIntegrity(ScrubReport* report = nullptr);

  /// True iff `path` names a table file currently in the version set.
  /// Obsolete files (compacted away, possibly still on disk) and
  /// quarantined files are not live: their bytes can no longer reach a
  /// fresh read.
  bool IsLiveTableFile(const std::string& path);

  /// True iff `path` names a vlog file still in the live set (sealed or
  /// active). GC-reclaimed and quarantined vlog files are not live.
  bool IsLiveVlogFile(const std::string& path);

  /// Value-log garbage collection: walks sealed vlog files from the tail
  /// (oldest first), re-puts records whose pointer is still the newest
  /// version of its key, and drops the file. Stops once at least
  /// `chunk_size` bytes of vlog files were processed (0 = the whole tail).
  /// Physical deletion is deferred while iterators or snapshots are open.
  /// No-op unless Options::value_separation is on. Also paced
  /// automatically in idle background cycles when
  /// Options::background_vlog_gc is set and the tail file's dead ratio
  /// crosses Options::vlog_gc_dead_ratio.
  Status GarbageCollect(uint64_t chunk_size = 0,
                        uint64_t* reclaimed_bytes = nullptr);

  /// Blocks until no background work is queued or running.
  void WaitForBackgroundWork();

  KVStoreStats GetStats();

  /// Total live user entries are not tracked exactly (tombstones); this is
  /// the count of non-deleted keys seen by a full scan. Expensive.
  uint64_t CountKeysSlow();

  const std::string& name() const { return dbname_; }

 private:
  friend class VlogDerefIterator;

  KVStore(const Options& options, const std::string& name);

  struct WriterState;

  std::string LogFileName(uint64_t number) const;
  std::string TableFileName(uint64_t number) const;
  std::string VlogName(uint64_t number) const;
  std::string ManifestFileName() const;

  Status Recover();
  Status ReplayLogFile(uint64_t number);
  Status OpenTable(uint64_t number, std::shared_ptr<FileMeta>* meta);

  // Key-value separation (all Locked variants require mu_).
  Status RecoverVlogFiles();
  Status OpenVlogWriterLocked();
  Status SealActiveVlogLocked();
  Status MaybeRollVlogLocked();
  Status SeparateBatch(WriteBatch* updates, WriteBatch* out);  // leader only
  Status MaterializeValue(const Slice& user_key, std::string* value);
  Status RawGetLocked(const Slice& user_key, SequenceNumber snapshot,
                      bool* found, std::string* raw_value);
  bool IsVlogLiveLocked(uint64_t number) const;
  bool NeedsVlogGcLocked() const;
  Status GarbageCollectLocked(std::unique_lock<std::mutex>* lock,
                              uint64_t chunk_size, uint64_t* reclaimed_bytes);
  void QuarantineVlogFile(uint64_t number, const Status& cause);
  void QuarantineVlogFileLocked(std::unique_lock<std::mutex>* lock,
                                uint64_t number, const Status& cause);
  void VerifyVlogFiles(std::unique_lock<std::mutex>* lock,
                       ScrubReport* report);
  Status ScrubOneVlogQueued(std::unique_lock<std::mutex>* lock);
  void RecordVlogScrub(uint64_t bytes, bool corrupt);
  void MaybeDeleteVlogFilesLocked();
  void OnIteratorClosed();

  // Write path helpers (mu_ held).
  Status MakeRoomForWrite(std::unique_lock<std::mutex>* lock);
  WriteBatch* BuildBatchGroup(WriterState** last_writer);
  Status SwitchMemTable();

  // Background work.
  void MaybeScheduleBackgroundWork();
  void BackgroundCall();
  Status CompactMemTable(std::unique_lock<std::mutex>* lock);
  bool NeedsCompaction() const;
  Status RunCompaction(std::unique_lock<std::mutex>* lock);
  Status RunCompactionAtLevel(int level, std::unique_lock<std::mutex>* lock);
  bool IsBaseLevelForKey(int output_level, const Slice& user_key) const;

  Status WriteManifest();  // mu_ held
  Status LoadManifest(bool* found);
  void RemoveObsoleteFiles();  // mu_ held

  // Scrub & quarantine (see VerifyIntegrity).
  void QuarantinePath(const std::string& path, const Status& cause);
  bool QuarantineFileLocked(const std::shared_ptr<FileMeta>& meta,
                            const Status& cause);  // mu_ held
  void QuarantineCorruptTables(std::unique_lock<std::mutex>* lock,
                               ScrubReport* report);
  Status VerifyWalTailLocked(uint64_t* dropped_bytes);  // mu_ held
  Status ScrubOneQueued(std::unique_lock<std::mutex>* lock);
  void RecordTableScrub(uint64_t bytes, bool corrupt);

  SequenceNumber SmallestSnapshot() const;  // mu_ held

  std::vector<std::shared_ptr<FileMeta>> FilesOverlappingRange(
      int level, const Slice& begin_user_key,
      const Slice& end_user_key) const;  // mu_ held

  // Builds an internal-key iterator over the whole store; out_pinned gets
  // shared_ptrs that must outlive the iterator.
  std::unique_ptr<Iterator> NewInternalIterator(
      const ReadOptions& options,
      std::vector<std::shared_ptr<Table>>* pinned_tables,
      std::vector<MemTable*>* pinned_mems);

  Options options_;
  Env* env_;
  std::string dbname_;
  InternalKeyComparator icmp_;
  std::unique_ptr<LruCache> block_cache_;

  std::mutex mu_;
  std::condition_variable background_work_finished_cv_;

  MemTable* mem_ = nullptr;  // guarded by mu_ for pointer swap
  MemTable* imm_ = nullptr;  // immutable memtable being flushed

  std::unique_ptr<WritableFile> log_file_;
  std::unique_ptr<log::Writer> log_;
  uint64_t log_number_ = 0;

  LevelState levels_;

  // Key-value separation state. The writer is touched only by the
  // group-commit leader (outside mu_, leader_active_ set) or under mu_ with
  // the leader quiesced (GC, seal/roll, scrub of the active file); those two
  // regimes are mutually exclusive. vlog_files_ holds sealed files, oldest
  // (GC tail) first, and is persisted in the manifest.
  std::unique_ptr<vlog::VlogReader> vlog_reader_;
  std::unique_ptr<vlog::VlogWriter> vlog_writer_;
  std::vector<vlog::VlogFileInfo> vlog_files_;
  // Sealed vlog files awaiting a paced background checksum walk.
  std::deque<uint64_t> pending_vlog_scrub_;
  // GC-reclaimed files whose deletion waits until no reader can still hold
  // a pointer into them: open iterators, in-flight point Gets, snapshots.
  std::vector<uint64_t> vlog_pending_delete_;
  int open_readers_ = 0;
  bool vlog_gc_running_ = false;
  WriteBatch vlog_sep_batch_;  // leader-only scratch for separated batches

  uint64_t next_file_number_ = 1;
  SequenceNumber last_sequence_ = 0;

  std::deque<WriterState*> writers_;
  WriteBatch tmp_batch_;

  std::multiset<SequenceNumber> snapshots_;

  std::unique_ptr<ThreadPool> background_pool_;
  bool background_scheduled_ = false;
  bool shutting_down_ = false;
  // File numbers of freshly installed tables awaiting a background scrub
  // (Options::background_scrub); one is verified per idle background cycle.
  std::deque<uint64_t> pending_scrub_;
  // True while a group-commit leader performs WAL/memtable work outside the
  // lock; memtable switches by other threads must wait on it.
  bool leader_active_ = false;
  Status background_error_;
  // Consecutive background corruption failures where every live table still
  // verified clean (the corrupt input was already quarantined, or the rot
  // hit a not-yet-installed output). Such failures are retried; the cap
  // stops a store whose media rots every write.
  int background_corruption_retries_ = 0;

  /// Per-store atomic counters backing GetStats(). Always incremented (the
  /// obs enable switch only gates the *global* registry mirrors and timer
  /// clock reads) so per-store stats stay exact regardless of the flag.
  struct StoreCounters {
    obs::Counter puts;
    obs::Counter gets;
    obs::Counter scans;
    obs::Counter memtable_flushes;
    obs::Counter compactions;
    obs::Counter write_stall_micros;
    obs::Counter bytes_flushed;
    obs::Counter bytes_compacted;
    obs::Counter wal_recovery_dropped_bytes;
    obs::Counter scrubbed_files;
    obs::Counter quarantined_files;
    obs::Counter vlog_appended_bytes;
    obs::Counter vlog_dereferences;
    obs::Counter vlog_gc_reclaimed_bytes;
    obs::Counter vlog_recovery_dropped_pointers;
  };
  StoreCounters counters_;

  /// Global `storage.*` registry instruments, resolved once at construction
  /// so the hot path never takes the registry mutex. Aggregated across all
  /// stores in the process (every node of an in-process cluster).
  struct ObsInstruments {
    obs::Counter* puts;
    obs::Counter* gets;
    obs::Counter* scans;
    obs::Counter* memtable_flushes;
    obs::Counter* bytes_flushed;
    obs::Counter* compactions;
    obs::Counter* compaction_bytes_read;
    obs::Counter* compaction_bytes_written;
    obs::Counter* write_stalls;
    obs::Counter* write_stall_micros;
    obs::LatencyHistogram* wal_append_micros;
    obs::LatencyHistogram* wal_sync_micros;
    obs::LatencyHistogram* group_commit_kvps;
    obs::Counter* wal_recovery_dropped_bytes;
    obs::Counter* scrub_files_checked;
    obs::Counter* scrub_bytes_checked;
    obs::Counter* scrub_corruption_detected;
    obs::Counter* quarantine_files;
    obs::Counter* quarantine_bytes;
    obs::Counter* vlog_appended_records;
    obs::Counter* vlog_appended_bytes;
    obs::Counter* vlog_dereferences;
    obs::Counter* vlog_deref_cache_hits;
    obs::Counter* vlog_deref_cache_misses;
    obs::Counter* vlog_gc_passes;
    obs::Counter* vlog_gc_scanned_bytes;
    obs::Counter* vlog_gc_reclaimed_bytes;
    obs::Counter* vlog_gc_rewritten_records;
    obs::Counter* vlog_recovery_dropped_pointers;
  };
  ObsInstruments obs_;
};

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_KVSTORE_H_
