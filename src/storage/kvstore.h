#ifndef IOTDB_STORAGE_KVSTORE_H_
#define IOTDB_STORAGE_KVSTORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "storage/cache.h"
#include "storage/db_iter.h"
#include "storage/dbformat.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/log_writer.h"
#include "storage/memtable.h"
#include "storage/options.h"
#include "storage/version.h"
#include "storage/vlog_gc.h"
#include "storage/vlog_reader.h"
#include "storage/vlog_writer.h"
#include "storage/write_batch.h"

namespace iotdb {
namespace storage {

/// Point-in-time view of a store's counters, assembled by KVStore::GetStats
/// from atomic instruments (the counters themselves live in
/// KVStore::StoreCounters; this struct is a plain copy for callers).
struct KVStoreStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t scans = 0;
  uint64_t memtable_flushes = 0;
  uint64_t compactions = 0;
  uint64_t write_stall_micros = 0;
  uint64_t bytes_flushed = 0;
  uint64_t bytes_compacted = 0;
  int num_files[kNumLevels] = {};
  uint64_t level_bytes[kNumLevels] = {};
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t wal_recovery_dropped_bytes = 0;
  uint64_t scrubbed_files = 0;
  uint64_t quarantined_files = 0;
  // Key-value separation (zero when Options::value_separation is off).
  uint64_t vlog_files = 0;  // live vlog files (sealed + active)
  uint64_t vlog_appended_bytes = 0;
  uint64_t vlog_dereferences = 0;
  uint64_t vlog_gc_reclaimed_bytes = 0;
  uint64_t vlog_recovery_dropped_pointers = 0;
  // Sharded write path: per-shard ingest breakdown plus the skew gauge
  // (max shard puts / mean shard puts, as a percentage; 100 = balanced).
  std::vector<uint64_t> shard_puts;
  std::vector<uint64_t> shard_stall_micros;
  std::vector<uint64_t> shard_wal_bytes;
  double shard_imbalance_pct = 100.0;
};

/// Outcome of one KVStore::VerifyIntegrity pass.
struct ScrubReport {
  uint64_t files_checked = 0;
  uint64_t bytes_checked = 0;
  uint64_t corrupt_files = 0;      // failed checksum verification
  uint64_t quarantined_files = 0;  // removed from the live set & moved aside
  uint64_t wal_dropped_bytes = 0;  // corrupt bytes found in live WAL tails
  std::vector<std::string> corrupt_paths;
};

/// One key/value pair of a vectorized ingest (KVStore::PutMany). Slices are
/// not owned; they must stay valid for the duration of the call.
struct KvEntry {
  Slice key;
  Slice value;
};

/// A single-node LSM key-value store (the HBase region-server storage
/// analogue): WAL + memtable + leveled SSTables. Thread-safe: any number of
/// concurrent readers and writers.
///
/// The write path is sharded (Options::write_shards): keys hash-route to a
/// per-shard memtable with its own WAL partition and group-commit leader,
/// so commits on different shards proceed in parallel. Sequence numbers are
/// block-allocated from one global atomic and published in sequence order:
/// every snapshot is an exact prefix of the global sequence history, so
/// snapshot/iterator semantics are unchanged from the single-shard store. A
/// write to shard A that commits while an earlier-sequenced write to shard
/// B is still in flight becomes visible only once B's block publishes
/// (visibility is monotone in sequence order, never reordered).
///
/// Typical use:
///   auto store = KVStore::Open(options, "/data/gw").MoveValueUnsafe();
///   store->Put(WriteOptions(), key, value);
///   auto val = store->Get(ReadOptions(), key);
///   store->Scan(ReadOptions(), start, end, 0, &rows);
class KVStore {
 public:
  /// Opens (creating if needed) the store in directory `name`, replaying any
  /// WAL left by a previous incarnation.
  static Result<std::unique_ptr<KVStore>> Open(const Options& options,
                                               const std::string& name);

  /// Deletes all files of the store at `name` (TPCx-IoT system cleanup).
  static Status Destroy(const Options& options, const std::string& name);

  ~KVStore();

  KVStore(const KVStore&) = delete;
  KVStore& operator=(const KVStore&) = delete;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value);
  Status Delete(const WriteOptions& options, const Slice& key);

  /// Applies a batch. Concurrent callers routed to the same shard are
  /// group-committed: one leader writes a combined WAL record for all
  /// queued batches. A batch spanning multiple shards is split and
  /// committed per shard; each per-shard sub-batch is atomic and durable
  /// on its own WAL partition, but cross-shard visibility is not atomic —
  /// sub-batches become visible in sequence order as they publish.
  Status Write(const WriteOptions& options, WriteBatch* batch);

  /// Vectorized ingest: routes `entries` to their write shards in one pass
  /// and group-commits one sub-batch per shard. The fast path for drivers
  /// handing the store arrays of 1 KB kvps. Same cross-shard visibility
  /// contract as Write().
  Status PutMany(const WriteOptions& options,
                 std::span<const KvEntry> entries);

  /// Point lookup. NotFound status when absent.
  Result<std::string> Get(const ReadOptions& options, const Slice& key);

  /// Ordered iterator over live user keys at the current snapshot. The
  /// returned iterator pins the memtables/tables it reads.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& options);

  /// Range scan convenience: fills `out` with key/value pairs where
  /// start <= key < end_exclusive (empty end = unbounded), at most `limit`
  /// pairs when limit > 0.
  Status Scan(const ReadOptions& options, const Slice& start,
              const Slice& end_exclusive, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out);

  /// Snapshots: reads at a released sequence see a frozen view.
  SequenceNumber GetSnapshot();
  void ReleaseSnapshot(SequenceNumber snapshot);

  /// Forces a flush of every shard's memtable and waits for completion.
  Status FlushMemTable();

  /// Compacts everything down to the last populated level and waits.
  Status CompactAll();

  /// Scrub: checksum-walks every live SSTable (footer, index, filter, and
  /// every data block, bypassing the block cache) plus every shard's live
  /// WAL tail. Files that fail verification are atomically quarantined —
  /// renamed to `<name>.quarantined`, dropped from the version set, and
  /// reported via Options::corruption_reporter — so they never serve
  /// another read. Returns non-OK only when the walk itself could not run;
  /// corruption found (and healed by quarantine) is described by `report`.
  Status VerifyIntegrity(ScrubReport* report = nullptr);

  /// True iff `path` names a table file currently in the version set.
  /// Obsolete files (compacted away, possibly still on disk) and
  /// quarantined files are not live: their bytes can no longer reach a
  /// fresh read.
  bool IsLiveTableFile(const std::string& path);

  /// True iff `path` names a vlog file still in the live set (sealed or
  /// active). GC-reclaimed and quarantined vlog files are not live.
  bool IsLiveVlogFile(const std::string& path);

  /// Value-log garbage collection: walks sealed vlog files from the tail
  /// (oldest first), re-puts records whose pointer is still the newest
  /// version of its key, and drops the file. Stops once at least
  /// `chunk_size` bytes of vlog files were processed (0 = the whole tail).
  /// Physical deletion is deferred while iterators or snapshots are open.
  /// No-op unless Options::value_separation is on. Also paced
  /// automatically in idle background cycles when
  /// Options::background_vlog_gc is set and the tail file's dead ratio
  /// crosses Options::vlog_gc_dead_ratio.
  Status GarbageCollect(uint64_t chunk_size = 0,
                        uint64_t* reclaimed_bytes = nullptr);

  /// Blocks until no background work is queued or running.
  void WaitForBackgroundWork();

  KVStoreStats GetStats();

  /// Total live user entries are not tracked exactly (tombstones); this is
  /// the count of non-deleted keys seen by a full scan. Expensive.
  uint64_t CountKeysSlow();

  const std::string& name() const { return dbname_; }

  /// Resolved shard count (Options::write_shards after auto-detection).
  int num_write_shards() const { return static_cast<int>(shards_.size()); }

  /// The shard a key hash-routes to; stable across restarts for a fixed
  /// shard count (recovery re-routes by the current hash, so the count may
  /// change between runs).
  int ShardForKey(const Slice& key) const;

 private:
  friend class VlogDerefIterator;

  KVStore(const Options& options, const std::string& name);

  struct WriterState;

  /// One independent write shard: its own memtable pair, WAL partition and
  /// group-commit queue, all guarded by the shard mutex `mu`. Lock order:
  /// the store mutex `mu_` before any shard `mu`, shard mutexes in
  /// ascending index order, `vlog_mu_` / `error_mu_` / `seq_publish_mu_`
  /// as leaves (never holding a shard mutex while acquiring `mu_`).
  struct WriteShard {
    int id = 0;

    std::mutex mu;
    /// Signals leader handoff, imm drain and stall release for this shard.
    std::condition_variable cv;

    MemTable* mem = nullptr;  // guarded by mu for pointer swap
    MemTable* imm = nullptr;  // immutable memtable being flushed
    /// Mirror of (imm != nullptr) readable without the shard mutex (the
    /// background dispatcher and manifest writer hold mu_ only).
    std::atomic<bool> has_imm{false};

    std::unique_ptr<WritableFile> log_file;
    std::unique_ptr<log::Writer> log;
    uint64_t log_number = 0;  // guarded by mu
    /// Oldest WAL partition number still needed for recovery: the active
    /// WAL's number once the previous memtable flushed, the retired WAL's
    /// number while an imm is pending. Advanced only at flush completion
    /// (under mu_ *and* mu), read by the manifest writer under mu_ alone.
    std::atomic<uint64_t> wal_keep{0};

    std::deque<WriterState*> writers;  // guarded by mu
    WriteBatch tmp_batch;              // leader-only group scratch
    WriteBatch sep_batch;              // leader-only separation scratch
    /// True while this shard's leader performs WAL/memtable work outside
    /// the shard mutex; memtable switches and freezes must wait on it.
    bool leader_active = false;  // guarded by mu

    /// Per-shard exact counters (always incremented) + registry mirrors
    /// (storage.shard<i>.*, gated on the obs enable switch).
    obs::Counter puts;
    obs::Counter stall_micros;
    obs::Counter wal_bytes;
    obs::Counter* obs_puts = nullptr;
    obs::Counter* obs_stall_micros = nullptr;
    obs::Counter* obs_wal_bytes = nullptr;
  };

  std::string LogFileName(uint64_t number) const;  // legacy single-WAL name
  std::string WalFileName(int shard, uint64_t number) const;
  std::string TableFileName(uint64_t number) const;
  std::string VlogName(uint64_t number) const;
  std::string ManifestFileName() const;

  Status Recover();
  Status ReadLogRecords(const std::string& path,
                        std::vector<std::pair<SequenceNumber, std::string>>*
                            records,
                        uint64_t* dropped_bytes);
  Status ReplayBatch(const Slice& contents, uint64_t* dropped_pointers,
                     SequenceNumber* max_sequence);
  Status OpenTable(uint64_t number, std::shared_ptr<FileMeta>* meta);

  // Key-value separation. Locked variants require mu_; the vlog writer
  // pointer and its appends are guarded by vlog_mu_ (taken by shard
  // leaders with no other lock held, or nested under mu_).
  Status RecoverVlogFiles();
  Status OpenVlogWriterLocked();    // mu_ held; takes vlog_mu_ inside
  Status OpenVlogWriterVlogHeld();  // vlog_mu_ held
  Status SealActiveVlogLocked();
  Status MaybeRollVlogLocked();
  Status SeparateBatch(WriteBatch* updates, WriteBatch* out);  // vlog_mu_
  Status MaterializeValue(const Slice& user_key, std::string* value);
  Status RawGetFrozen(const Slice& user_key, SequenceNumber snapshot,
                      bool* found, std::string* raw_value);
  bool IsVlogLiveLocked(uint64_t number) const;
  bool NeedsVlogGcLocked() const;
  Status GarbageCollectLocked(std::unique_lock<std::mutex>* lock,
                              uint64_t chunk_size, uint64_t* reclaimed_bytes);
  void QuarantineVlogFile(uint64_t number, const Status& cause);
  void QuarantineVlogFileLocked(uint64_t number, const Status& cause);
  void VerifyVlogFiles(std::unique_lock<std::mutex>* lock,
                       ScrubReport* report);
  Status ScrubOneVlogQueued(std::unique_lock<std::mutex>* lock);
  void RecordVlogScrub(uint64_t bytes, bool corrupt);
  void MaybeDeleteVlogFilesLocked();
  void OnIteratorClosed();

  // Write path helpers.
  Status CommitToShard(WriteShard* shard, const WriteOptions& options,
                       WriteBatch* batch);
  Status MakeRoomForWrite(WriteShard* shard,
                          std::unique_lock<std::mutex>* lock,
                          bool* switched);  // shard->mu held
  WriteBatch* BuildBatchGroup(WriteShard* shard,
                              WriterState** last_writer);  // shard->mu held
  Status SwitchMemTable(WriteShard* shard);                // shard->mu held

  /// Publishes [first, last] as visible. Blocks arrive out of order across
  /// shards; visibility advances only over a contiguous sequence prefix.
  void PublishSequence(SequenceNumber first, SequenceNumber last);
  SequenceNumber VisibleSequence() const {
    return visible_seq_.load(std::memory_order_acquire);
  }
  Status BackgroundErrorSnapshot();
  void SetBackgroundError(const Status& s);

  /// Wakes stall/imm waiters on every shard (state they wait on — L0
  /// counts, background errors — changes under mu_, not the shard mutex).
  void NotifyAllShards();
  /// Locks every shard mutex (ascending) with all leaders quiesced; used
  /// by vlog GC to freeze the write plane. Unlocks on destruction of the
  /// returned guards.
  std::vector<std::unique_lock<std::mutex>> FreezeAllShards();

  // Background work.
  void MaybeScheduleBackgroundWork();  // mu_ held
  void BackgroundCall();
  Status FlushShard(WriteShard* shard, std::unique_lock<std::mutex>* lock);
  bool NeedsCompaction() const;
  Status RunCompaction(std::unique_lock<std::mutex>* lock);
  Status RunCompactionAtLevel(int level, std::unique_lock<std::mutex>* lock);
  bool IsBaseLevelForKey(int output_level, const Slice& user_key) const;

  Status WriteManifest();  // mu_ held
  Status LoadManifest(bool* found);
  void RemoveObsoleteFiles();  // mu_ held
  void SyncL0CountLocked();    // mu_ held; refreshes the l0_files_ mirror

  // Scrub & quarantine (see VerifyIntegrity).
  void QuarantinePath(const std::string& path, const Status& cause);
  bool QuarantineFileLocked(const std::shared_ptr<FileMeta>& meta,
                            const Status& cause);  // mu_ held
  void QuarantineCorruptTables(std::unique_lock<std::mutex>* lock,
                               ScrubReport* report);
  Status VerifyWalTail(int shard, uint64_t number, uint64_t* dropped_bytes);
  Status ScrubOneQueued(std::unique_lock<std::mutex>* lock);
  void RecordTableScrub(uint64_t bytes, bool corrupt);
  double UpdateShardImbalanceGauge();

  SequenceNumber SmallestSnapshot() const;  // mu_ held

  std::vector<std::shared_ptr<FileMeta>> FilesOverlappingRange(
      int level, const Slice& begin_user_key,
      const Slice& end_user_key) const;  // mu_ held

  // Builds an internal-key iterator over the whole store; out_pinned gets
  // shared_ptrs that must outlive the iterator. mu_ held; takes each
  // shard mutex briefly.
  std::unique_ptr<Iterator> NewInternalIterator(
      const ReadOptions& options,
      std::vector<std::shared_ptr<Table>>* pinned_tables,
      std::vector<MemTable*>* pinned_mems);

  Options options_;
  Env* env_;
  std::string dbname_;
  InternalKeyComparator icmp_;
  std::unique_ptr<LruCache> block_cache_;

  std::mutex mu_;
  std::condition_variable background_work_finished_cv_;

  /// The write shards. Sized at construction; never resized afterwards, so
  /// the vector itself is safe to read without a lock.
  std::vector<std::unique_ptr<WriteShard>> shards_;

  LevelState levels_;
  /// Mirror of levels_.NumFiles(0), readable by shard leaders that must
  /// not take mu_ while holding their shard mutex (L0 write stalls).
  std::atomic<uint64_t> l0_files_{0};

  // Key-value separation state. The active writer (pointer + appends) is
  // guarded by vlog_mu_: shard leaders take it with no other lock held;
  // maintenance paths (seal/roll, GC, scrub, quarantine) take it nested
  // under mu_. vlog_files_ holds sealed files, oldest (GC tail) first, and
  // is persisted in the manifest (guarded by mu_).
  mutable std::mutex vlog_mu_;
  std::unique_ptr<vlog::VlogReader> vlog_reader_;
  std::unique_ptr<vlog::VlogWriter> vlog_writer_;
  std::vector<vlog::VlogFileInfo> vlog_files_;
  // Sealed vlog files awaiting a paced background checksum walk.
  std::deque<uint64_t> pending_vlog_scrub_;
  // GC-reclaimed files whose deletion waits until no reader can still hold
  // a pointer into them: open iterators, in-flight point Gets, snapshots.
  std::vector<uint64_t> vlog_pending_delete_;
  int open_readers_ = 0;
  bool vlog_gc_running_ = false;

  std::atomic<uint64_t> next_file_number_{1};

  /// Sequence discipline: one fetch_add per batch allocates a contiguous
  /// block from seq_alloc_; visible_seq_ publishes the longest contiguous
  /// prefix of committed blocks (pending_publish_ buffers out-of-order
  /// completions). Readers snapshot visible_seq_ without any lock.
  std::atomic<SequenceNumber> seq_alloc_{0};
  std::atomic<SequenceNumber> visible_seq_{0};
  std::mutex seq_publish_mu_;
  std::map<SequenceNumber, SequenceNumber> pending_publish_;

  /// Legacy replay threshold for pre-shard `<number>.log` WALs (manifest
  /// `log_number`); new WAL partitions carry their shard in the file name.
  uint64_t log_number_ = 0;
  /// Per-shard WAL keep thresholds recovered from the manifest (indexed by
  /// the shard id in the file name, which may exceed the current count).
  std::map<int, uint64_t> recovered_wal_keeps_;

  std::multiset<SequenceNumber> snapshots_;

  std::unique_ptr<ThreadPool> background_pool_;
  bool background_scheduled_ = false;
  bool shutting_down_ = false;
  // File numbers of freshly installed tables awaiting a background scrub
  // (Options::background_scrub); one is verified per idle background cycle.
  std::deque<uint64_t> pending_scrub_;
  std::mutex error_mu_;  // leaf: leaders read the error under shard->mu
  Status background_error_;
  // Consecutive background corruption failures where every live table still
  // verified clean (the corrupt input was already quarantined, or the rot
  // hit a not-yet-installed output). Such failures are retried; the cap
  // stops a store whose media rots every write.
  int background_corruption_retries_ = 0;

  /// Per-store atomic counters backing GetStats(). Always incremented (the
  /// obs enable switch only gates the *global* registry mirrors and timer
  /// clock reads) so per-store stats stay exact regardless of the flag.
  struct StoreCounters {
    obs::Counter puts;
    obs::Counter gets;
    obs::Counter scans;
    obs::Counter memtable_flushes;
    obs::Counter compactions;
    obs::Counter write_stall_micros;
    obs::Counter bytes_flushed;
    obs::Counter bytes_compacted;
    obs::Counter wal_recovery_dropped_bytes;
    obs::Counter scrubbed_files;
    obs::Counter quarantined_files;
    obs::Counter vlog_appended_bytes;
    obs::Counter vlog_dereferences;
    obs::Counter vlog_gc_reclaimed_bytes;
    obs::Counter vlog_recovery_dropped_pointers;
  };
  StoreCounters counters_;

  /// Global `storage.*` registry instruments, resolved once at construction
  /// so the hot path never takes the registry mutex. Aggregated across all
  /// stores in the process (every node of an in-process cluster).
  struct ObsInstruments {
    obs::Counter* puts;
    obs::Counter* gets;
    obs::Counter* scans;
    obs::Counter* memtable_flushes;
    obs::Counter* bytes_flushed;
    obs::Counter* compactions;
    obs::Counter* compaction_bytes_read;
    obs::Counter* compaction_bytes_written;
    obs::Counter* write_stalls;
    obs::Counter* write_stall_micros;
    obs::LatencyHistogram* wal_append_micros;
    obs::LatencyHistogram* wal_sync_micros;
    obs::LatencyHistogram* group_commit_kvps;
    obs::Counter* wal_recovery_dropped_bytes;
    obs::Counter* scrub_files_checked;
    obs::Counter* scrub_bytes_checked;
    obs::Counter* scrub_corruption_detected;
    obs::Counter* quarantine_files;
    obs::Counter* quarantine_bytes;
    obs::Counter* vlog_appended_records;
    obs::Counter* vlog_appended_bytes;
    obs::Counter* vlog_dereferences;
    obs::Counter* vlog_deref_cache_hits;
    obs::Counter* vlog_deref_cache_misses;
    obs::Counter* vlog_gc_passes;
    obs::Counter* vlog_gc_scanned_bytes;
    obs::Counter* vlog_gc_reclaimed_bytes;
    obs::Counter* vlog_gc_rewritten_records;
    obs::Counter* vlog_recovery_dropped_pointers;
    obs::Gauge* shard_imbalance;
  };
  ObsInstruments obs_;
};

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_KVSTORE_H_
