#include "storage/log_reader.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace iotdb {
namespace storage {
namespace log {

Reader::Reader(SequentialFile* file, Reporter* reporter, bool checksum,
               std::string name)
    : file_(file),
      reporter_(reporter),
      checksum_(checksum),
      name_(std::move(name)),
      backing_store_(new char[kBlockSize]),
      buffer_(),
      eof_(false),
      end_of_buffer_offset_(0) {}

bool Reader::ReadRecord(Slice* record, std::string* scratch) {
  scratch->clear();
  record->clear();
  bool in_fragmented_record = false;

  Slice fragment;
  for (;;) {
    const unsigned int record_type = ReadPhysicalRecord(&fragment);
    switch (record_type) {
      case kFullType:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "partial record without end");
        }
        scratch->clear();
        *record = fragment;
        return true;

      case kFirstType:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "partial record without end");
        }
        scratch->assign(fragment.data(), fragment.size());
        in_fragmented_record = true;
        break;

      case kMiddleType:
        if (!in_fragmented_record) {
          ReportCorruption(fragment.size(),
                           "missing start of fragmented record");
        } else {
          scratch->append(fragment.data(), fragment.size());
        }
        break;

      case kLastType:
        if (!in_fragmented_record) {
          ReportCorruption(fragment.size(),
                           "missing start of fragmented record");
        } else {
          scratch->append(fragment.data(), fragment.size());
          *record = Slice(*scratch);
          return true;
        }
        break;

      case kEof:
        if (in_fragmented_record) {
          // Writer died mid-record; drop the partial tail silently.
          scratch->clear();
        }
        return false;

      case kBadRecord:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "error in middle of record");
          in_fragmented_record = false;
          scratch->clear();
        }
        break;

      default:
        ReportCorruption(
            (fragment.size() + (in_fragmented_record ? scratch->size() : 0)),
            "unknown record type");
        in_fragmented_record = false;
        scratch->clear();
        break;
    }
  }
}

unsigned int Reader::ReadPhysicalRecord(Slice* result) {
  for (;;) {
    if (buffer_.size() < static_cast<size_t>(kHeaderSize)) {
      if (!eof_) {
        buffer_.clear();
        Status status = file_->Read(kBlockSize, &buffer_,
                                    backing_store_.get());
        end_of_buffer_offset_ += buffer_.size();
        if (!status.ok()) {
          buffer_.clear();
          ReportDrop(kBlockSize, status);
          eof_ = true;
          return kEof;
        }
        if (buffer_.size() < static_cast<size_t>(kBlockSize)) {
          eof_ = true;
        }
        continue;
      }
      // Truncated header at EOF: assume writer crash mid-header.
      buffer_.clear();
      return kEof;
    }

    const char* header = buffer_.data();
    const uint32_t a = static_cast<uint32_t>(header[4]) & 0xff;
    const uint32_t b = static_cast<uint32_t>(header[5]) & 0xff;
    const unsigned int type = static_cast<unsigned int>(header[6]);
    const uint32_t length = a | (b << 8);
    if (kHeaderSize + length > buffer_.size()) {
      size_t drop_size = buffer_.size();
      buffer_.clear();
      if (!eof_) {
        ReportCorruption(drop_size, "bad record length");
        return kBadRecord;
      }
      return kEof;
    }

    if (type == kZeroType && length == 0) {
      // Zero-filled block trailer; skip.
      buffer_.clear();
      return kBadRecord;
    }

    if (checksum_) {
      uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(header));
      uint32_t actual_crc = crc32c::Value(header + 6, 1 + length);
      if (actual_crc != expected_crc) {
        size_t drop_size = buffer_.size();
        buffer_.clear();
        ReportCorruption(drop_size, "checksum mismatch");
        return kBadRecord;
      }
    }

    buffer_.remove_prefix(kHeaderSize + length);
    *result = Slice(header + kHeaderSize, length);
    return type;
  }
}

void Reader::ReportCorruption(uint64_t bytes, const char* reason) {
  // Identify the damaged region: file path plus the offset of the data
  // still buffered when the problem was noticed.
  std::string msg(reason);
  msg += " near offset " +
         std::to_string(end_of_buffer_offset_ - buffer_.size());
  if (!name_.empty()) msg += " of " + name_;
  ReportDrop(bytes, Status::Corruption(msg));
}

void Reader::ReportDrop(uint64_t bytes, const Status& reason) {
  if (reporter_ != nullptr) {
    reporter_->Corruption(static_cast<size_t>(bytes), reason);
  }
}

}  // namespace log
}  // namespace storage
}  // namespace iotdb
