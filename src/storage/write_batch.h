#ifndef IOTDB_STORAGE_WRITE_BATCH_H_
#define IOTDB_STORAGE_WRITE_BATCH_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/dbformat.h"

namespace iotdb {
namespace storage {

class MemTable;

/// An ordered group of Put/Delete operations applied atomically, and the
/// unit of WAL logging. Serialised representation:
///
///   sequence (fixed64) | count (fixed32) | records...
///   record := kValue   varstring(key) varstring(value)
///           | kDeletion varstring(key)
///
/// The TPCx-IoT driver buffers many sensor readings per batch, mirroring the
/// HBase client write buffer the paper tunes to 8 GB.
class WriteBatch {
 public:
  WriteBatch();

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  int Count() const;
  size_t ApproximateSize() const { return rep_.size(); }

  /// Applies the batch to a memtable, assigning sequence, sequence+1, ...
  Status InsertInto(MemTable* memtable) const;

  /// Iterates the batch calling handler methods; used by WAL recovery.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

  SequenceNumber sequence() const;
  void SetSequence(SequenceNumber seq);

  Slice Contents() const { return Slice(rep_); }
  static Status SetContents(WriteBatch* batch, const Slice& contents);

  /// Appends the operations of `src` to this batch.
  void Append(const WriteBatch& src);

 private:
  static constexpr size_t kHeader = 12;  // 8 (sequence) + 4 (count)

  std::string rep_;
};

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_WRITE_BATCH_H_
