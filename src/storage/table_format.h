#ifndef IOTDB_STORAGE_TABLE_FORMAT_H_
#define IOTDB_STORAGE_TABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"

namespace iotdb {
namespace storage {

/// Location of a block within an SSTable file.
struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const {
    PutVarint64(dst, offset);
    PutVarint64(dst, size);
  }

  Status DecodeFrom(Slice* input) {
    if (GetVarint64(input, &offset) && GetVarint64(input, &size)) {
      return Status::OK();
    }
    return Status::Corruption("bad block handle");
  }

  /// Max encoded length of a handle (two varint64s).
  static constexpr size_t kMaxEncodedLength = 10 + 10;
};

/// Fixed-size table footer:
///   filter_handle | index_handle | padding to 40 bytes | magic (8 bytes)
struct Footer {
  BlockHandle filter_handle;
  BlockHandle index_handle;

  static constexpr uint64_t kTableMagicNumber = 0x1077c1e4b3a5f00dull;
  static constexpr size_t kEncodedLength =
      2 * BlockHandle::kMaxEncodedLength + 8;

  void EncodeTo(std::string* dst) const {
    const size_t original_size = dst->size();
    filter_handle.EncodeTo(dst);
    index_handle.EncodeTo(dst);
    dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);
    PutFixed64(dst, kTableMagicNumber);
  }

  Status DecodeFrom(Slice* input) {
    if (input->size() < kEncodedLength) {
      return Status::Corruption("footer too short");
    }
    const char* magic_ptr = input->data() + kEncodedLength - 8;
    uint64_t magic = DecodeFixed64(magic_ptr);
    if (magic != kTableMagicNumber) {
      return Status::Corruption("not an sstable (bad magic number)");
    }
    Slice handles(input->data(), kEncodedLength - 8);
    IOTDB_RETURN_NOT_OK(filter_handle.DecodeFrom(&handles));
    return index_handle.DecodeFrom(&handles);
  }
};

/// Every block is followed by a 5-byte trailer: type (1; 0 = uncompressed)
/// and CRC32C of contents+type (4).
static constexpr size_t kBlockTrailerSize = 5;

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_TABLE_FORMAT_H_
