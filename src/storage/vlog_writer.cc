#include "storage/vlog_writer.h"

namespace iotdb {
namespace storage {
namespace vlog {

VlogWriter::VlogWriter(std::unique_ptr<WritableFile> file, uint64_t file_no,
                       uint64_t initial_offset)
    : file_(std::move(file)), file_no_(file_no), offset_(initial_offset) {}

Status VlogWriter::Add(const Slice& key, const Slice& value,
                       ValuePointer* ptr) {
  ptr->file_no = file_no_;
  ptr->offset = offset_;
  ptr->size = AppendRecord(&buffer_, key, value);
  offset_ += ptr->size;
  return Status::OK();
}

Status VlogWriter::Flush() {
  if (!buffer_.empty()) {
    IOTDB_RETURN_NOT_OK(file_->Append(buffer_));
    buffer_.clear();
  }
  return file_->Flush();
}

Status VlogWriter::Sync() {
  IOTDB_RETURN_NOT_OK(Flush());
  return file_->Sync();
}

}  // namespace vlog
}  // namespace storage
}  // namespace iotdb
