#ifndef IOTDB_STORAGE_LOG_WRITER_H_
#define IOTDB_STORAGE_LOG_WRITER_H_

#include <cstdint>

#include "common/slice.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/log_format.h"

namespace iotdb {
namespace storage {
namespace log {

/// Appends length-prefixed, checksummed records to a WritableFile. Not
/// thread-safe; the KVStore's group-commit leader is the only writer.
class Writer {
 public:
  /// dest must remain live while the Writer is in use. The file must be
  /// empty (or the caller must pass its current length as dest_length).
  explicit Writer(WritableFile* dest, uint64_t dest_length = 0);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& record);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_;  // current offset within the block

  // Pre-computed CRCs of the record-type bytes, extended with payload CRCs.
  uint32_t type_crc_[kMaxRecordType + 1];
};

}  // namespace log
}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_LOG_WRITER_H_
