#ifndef IOTDB_STORAGE_TABLE_BUILDER_H_
#define IOTDB_STORAGE_TABLE_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/block_builder.h"
#include "storage/bloom.h"
#include "storage/env.h"
#include "storage/options.h"
#include "storage/table_format.h"

namespace iotdb {
namespace storage {

class Comparator;

/// Streams sorted key/value pairs into an SSTable file:
///   [data blocks][bloom filter block][index block][footer]
/// Keys are internal keys; the bloom filter covers user keys so point
/// lookups can skip the table regardless of sequence numbers.
class TableBuilder {
 public:
  /// file must remain live until Finish()/Abandon() returns.
  TableBuilder(const Options& options, WritableFile* file);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  /// Adds a key (in strictly increasing internal-key order).
  void Add(const Slice& key, const Slice& value);

  /// Flushes buffered data to the file, writes filter/index/footer.
  Status Finish();

  /// Abandons the table contents (e.g., compaction error path).
  void Abandon();

  uint64_t NumEntries() const { return num_entries_; }
  /// Size of the file generated so far (complete after Finish()).
  uint64_t FileSize() const { return offset_; }
  Status status() const { return status_; }

 private:
  void WriteDataBlock();
  Status WriteRawBlock(const Slice& contents, BlockHandle* handle);

  Options options_;
  WritableFile* file_;
  uint64_t offset_;
  Status status_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::string last_key_;
  uint64_t num_entries_;
  bool closed_;
  std::unique_ptr<BloomFilterBuilder> filter_;

  // When a data block completes we defer its index entry until the next
  // key arrives, so the separator can be shortened.
  bool pending_index_entry_;
  BlockHandle pending_handle_;
};

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_TABLE_BUILDER_H_
