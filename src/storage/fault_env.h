#ifndef IOTDB_STORAGE_FAULT_ENV_H_
#define IOTDB_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/env.h"

namespace iotdb {
namespace storage {

/// File classes a fault can target, derived from the store's naming scheme
/// ("<number>.log", "<number>.sst", "<number>.vlog", "MANIFEST"/
/// "MANIFEST.tmp").
enum class FileClass {
  kWal = 0,
  kSSTable = 1,
  kManifest = 2,
  kVlog = 3,
  kOther = 4,
};
constexpr int kNumFileClasses = 5;

/// Classifies a path into a FileClass by its file-name suffix.
FileClass ClassifyFile(const std::string& path);

const char* FileClassName(FileClass file_class);

/// Per-file-class probabilities (in [0, 1]) of injecting a Status::IOError
/// into the corresponding operation.
struct FaultRates {
  double append_error = 0;
  double sync_error = 0;
  double read_error = 0;
};

/// Counters of every fault the env injected. Deterministic for a fixed seed
/// and operation sequence.
struct FaultCounters {
  uint64_t append_errors = 0;   // injected Append() failures
  uint64_t sync_errors = 0;     // injected Sync() failures
  uint64_t read_errors = 0;     // injected Read() failures
  uint64_t crashes = 0;         // simulated process crashes
  uint64_t files_truncated = 0; // files that lost an unsynced tail in a crash
  uint64_t files_dropped = 0;   // never-synced files removed by a crash
  uint64_t bytes_dropped = 0;   // unsynced bytes discarded by crashes
  uint64_t torn_tails = 0;      // crashes that left a partial (torn) record
  uint64_t files_corrupted = 0; // files hit by bit-rot injection
  uint64_t bits_flipped = 0;    // total bits flipped by bit-rot injection

  uint64_t TotalInjectedErrors() const {
    return append_errors + sync_errors + read_errors;
  }
};

/// Decorator over any Env that injects deterministic, seeded faults:
///
///  * per-file-class IOError injection on Append/Sync/Read,
///  * whole-process crash simulation — Crash(prefix) discards every byte
///    appended since the last Sync() under `prefix`, removing files that
///    were never synced, optionally leaving a torn (partially written) WAL
///    tail that recovery must detect via checksums,
///  * "dead process" windows — while a prefix is marked crashed, every
///    operation under it fails, so background flush/compaction threads of a
///    dying store cannot sneak data to disk after the crash point.
///
/// The wrapped env is not owned and must outlive this object. All methods
/// are thread-safe.
///
///   auto base = NewMemEnv();
///   FaultInjectionEnv fenv(base.get(), /*seed=*/42);
///   options.env = &fenv;
///   ... run a store, then simulate a crash:
///   fenv.MarkCrashed("/db");    // in-flight writes start failing
///   store.reset();              // "process death"
///   fenv.Crash("/db");          // unsynced state is gone
///   fenv.ClearCrashed("/db");
///   KVStore::Open(options, "/db");  // recovery path
class FaultInjectionEnv final : public Env {
 public:
  explicit FaultInjectionEnv(Env* target, uint64_t seed = 0);
  ~FaultInjectionEnv() override;

  FaultInjectionEnv(const FaultInjectionEnv&) = delete;
  FaultInjectionEnv& operator=(const FaultInjectionEnv&) = delete;

  /// Sets injection probabilities for one file class.
  void SetRates(FileClass file_class, const FaultRates& rates);

  /// Master switch for probabilistic error injection (crash simulation is
  /// always available). Off by default until any rate is set.
  void SetInjectionEnabled(bool enabled);

  /// Probability that Crash() leaves a WAL file with a random partial
  /// prefix of its unsynced tail (a "torn tail") instead of truncating the
  /// whole tail. Default 0.5.
  void SetTornTailProbability(double p);

  /// Simulates an abrupt process crash for every file under `prefix`
  /// (empty prefix = the whole filesystem): data appended since the last
  /// Sync() is discarded and files that were never synced are removed.
  Status Crash(const std::string& prefix);

  /// While a prefix is marked crashed every operation under it fails with
  /// IOError, emulating a dead process whose threads can no longer touch
  /// its files. Reads fail too.
  void MarkCrashed(const std::string& prefix);
  void ClearCrashed(const std::string& prefix);

  /// Flips `bits` seeded-random bits of `path` in place ("bit rot"). The
  /// file keeps its size and already-open read handles observe the damage,
  /// like a latent media error on a real disk. Deterministic for a fixed
  /// seed and call sequence.
  Status CorruptFile(const std::string& path, int bits);

  /// Picks a seeded-random live file of `file_class` under `dir` and flips
  /// `bits` of its bits. Returns the victim's path, or NotFound when the
  /// directory holds no file of that class.
  Result<std::string> CorruptRandomFile(const std::string& dir,
                                        FileClass file_class, int bits);

  FaultCounters counters() const;
  void ResetCounters();

  Env* target() const { return target_; }

  // Env interface -----------------------------------------------------------
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status OverwriteFileRange(const std::string& path, uint64_t offset,
                            const Slice& data) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;
  friend class FaultSequentialFile;

  /// Durability bookkeeping for one writable file.
  struct FileState {
    uint64_t synced_size = 0;  // bytes guaranteed to survive a crash
    bool ever_synced = false;  // false: the whole file dies in a crash
  };

  enum class Op { kAppend, kSync, kRead };

  // All helpers below lock mu_ themselves.
  Status MaybeInject(Op op, FileClass file_class, const std::string& path);
  bool IsCrashed(const std::string& path) const;
  Status CheckAlive(const std::string& path) const;
  void OnSync(const std::string& path, uint64_t size);
  void OnRemove(const std::string& path);

  Env* const target_;

  mutable std::mutex mu_;
  Random rng_;
  bool injection_enabled_ = false;
  double torn_tail_probability_ = 0.5;
  FaultRates rates_[kNumFileClasses];
  FaultCounters counters_;
  std::map<std::string, FileState> files_;
  std::vector<std::string> crashed_prefixes_;
};

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_FAULT_ENV_H_
