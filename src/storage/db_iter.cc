#include "storage/db_iter.h"

#include <string>

namespace iotdb {
namespace storage {

namespace {

class DBIter final : public Iterator {
 public:
  DBIter(const InternalKeyComparator* icmp,
         std::unique_ptr<Iterator> internal_iter, SequenceNumber sequence)
      : icmp_(icmp),
        user_comparator_(icmp->user_comparator()),
        iter_(std::move(internal_iter)),
        sequence_(sequence),
        direction_(kForward),
        valid_(false) {}

  bool Valid() const override { return valid_; }

  Slice key() const override {
    return (direction_ == kForward) ? ExtractUserKey(iter_->key())
                                    : Slice(saved_key_);
  }

  Slice value() const override {
    return (direction_ == kForward) ? iter_->value() : Slice(saved_value_);
  }

  Status status() const override {
    if (status_.ok()) return iter_->status();
    return status_;
  }

  void Next() override;
  void Prev() override;
  void Seek(const Slice& target) override;
  void SeekToFirst() override;
  void SeekToLast() override;

 private:
  enum Direction { kForward, kReverse };

  void FindNextUserEntry(bool skipping, std::string* skip);
  void FindPrevUserEntry();
  bool ParseKey(ParsedInternalKey* key);

  void SaveKey(const Slice& k, std::string* dst) {
    dst->assign(k.data(), k.size());
  }

  void ClearSavedValue() {
    saved_value_.clear();
    saved_value_.shrink_to_fit();
  }

  const InternalKeyComparator* icmp_;
  const Comparator* user_comparator_;
  std::unique_ptr<Iterator> iter_;
  SequenceNumber const sequence_;

  Status status_;
  std::string saved_key_;    // == current key when direction_ == kReverse
  std::string saved_value_;  // == current value when direction_ == kReverse
  Direction direction_;
  bool valid_;
};

bool DBIter::ParseKey(ParsedInternalKey* ikey) {
  if (!ParseInternalKey(iter_->key(), ikey)) {
    status_ = Status::Corruption("corrupted internal key in DBIter");
    return false;
  }
  return true;
}

void DBIter::Next() {
  assert(valid_);

  if (direction_ == kReverse) {
    direction_ = kForward;
    // iter_ is positioned just before the entries for saved_key_ (or is
    // invalid). Advance to the first entry >= saved_key_.
    if (!iter_->Valid()) {
      iter_->SeekToFirst();
    } else {
      iter_->Next();
    }
    if (!iter_->Valid()) {
      valid_ = false;
      saved_key_.clear();
      return;
    }
    // saved_key_ already holds the key we were on; fall through to skip it.
  } else {
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
    iter_->Next();
    if (!iter_->Valid()) {
      valid_ = false;
      saved_key_.clear();
      return;
    }
  }

  FindNextUserEntry(true, &saved_key_);
}

void DBIter::FindNextUserEntry(bool skipping, std::string* skip) {
  // iter_ is positioned at the current internal entry.
  assert(iter_->Valid());
  assert(direction_ == kForward);
  do {
    ParsedInternalKey ikey;
    if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
      switch (ikey.type) {
        case ValueType::kDeletion:
          // Hide all later (older) entries of this user key.
          SaveKey(ikey.user_key, skip);
          skipping = true;
          break;
        case ValueType::kValue:
          if (skipping &&
              user_comparator_->Compare(ikey.user_key, Slice(*skip)) <= 0) {
            // Hidden: older version of a key we already emitted/deleted.
          } else {
            valid_ = true;
            saved_key_.clear();
            return;
          }
          break;
      }
    }
    iter_->Next();
  } while (iter_->Valid());
  saved_key_.clear();
  valid_ = false;
}

void DBIter::Prev() {
  assert(valid_);

  if (direction_ == kForward) {
    // iter_ points at the current visible entry. Scan backwards until the
    // user key changes, leaving iter_ just before the current key's block.
    assert(iter_->Valid());
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
    for (;;) {
      iter_->Prev();
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        ClearSavedValue();
        return;
      }
      if (user_comparator_->Compare(ExtractUserKey(iter_->key()),
                                    Slice(saved_key_)) < 0) {
        break;
      }
    }
    direction_ = kReverse;
  }

  FindPrevUserEntry();
}

void DBIter::FindPrevUserEntry() {
  assert(direction_ == kReverse);

  ValueType value_type = ValueType::kDeletion;
  if (iter_->Valid()) {
    do {
      ParsedInternalKey ikey;
      if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
        if ((value_type != ValueType::kDeletion) &&
            user_comparator_->Compare(ikey.user_key, Slice(saved_key_)) < 0) {
          // We encountered a previous user key; the saved entry is the
          // newest visible version of the key we want.
          break;
        }
        value_type = ikey.type;
        if (value_type == ValueType::kDeletion) {
          saved_key_.clear();
          ClearSavedValue();
        } else {
          Slice raw_value = iter_->value();
          SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
          saved_value_.assign(raw_value.data(), raw_value.size());
        }
      }
      iter_->Prev();
    } while (iter_->Valid());
  }

  if (value_type == ValueType::kDeletion) {
    // End of iteration.
    valid_ = false;
    saved_key_.clear();
    ClearSavedValue();
    direction_ = kForward;
  } else {
    valid_ = true;
  }
}

void DBIter::Seek(const Slice& target) {
  direction_ = kForward;
  ClearSavedValue();
  saved_key_.clear();
  AppendInternalKey(&saved_key_, target, sequence_, kValueTypeForSeek);
  iter_->Seek(Slice(saved_key_));
  if (iter_->Valid()) {
    FindNextUserEntry(false, &saved_key_ /* temporary storage */);
  } else {
    valid_ = false;
  }
}

void DBIter::SeekToFirst() {
  direction_ = kForward;
  ClearSavedValue();
  iter_->SeekToFirst();
  if (iter_->Valid()) {
    FindNextUserEntry(false, &saved_key_ /* temporary storage */);
  } else {
    valid_ = false;
  }
}

void DBIter::SeekToLast() {
  direction_ = kReverse;
  ClearSavedValue();
  saved_key_.clear();
  iter_->SeekToLast();
  FindPrevUserEntry();
}

}  // namespace

std::unique_ptr<Iterator> NewDBIterator(
    const InternalKeyComparator* icmp,
    std::unique_ptr<Iterator> internal_iter, SequenceNumber sequence) {
  return std::make_unique<DBIter>(icmp, std::move(internal_iter), sequence);
}

}  // namespace storage
}  // namespace iotdb
