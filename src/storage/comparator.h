#ifndef IOTDB_STORAGE_COMPARATOR_H_
#define IOTDB_STORAGE_COMPARATOR_H_

#include <string>

#include "common/slice.h"

namespace iotdb {
namespace storage {

/// Key ordering abstraction. The engine ships with a bytewise comparator;
/// row keys produced by the TPCx-IoT codec are designed so bytewise order
/// equals (substation, sensor, timestamp) order.
class Comparator {
 public:
  virtual ~Comparator() = default;

  /// <0, 0, >0 as a is <, ==, > b.
  virtual int Compare(const Slice& a, const Slice& b) const = 0;

  virtual const char* Name() const = 0;

  /// If *start < limit, may shorten *start to a string in [*start, limit).
  /// Used to shrink index-block keys.
  virtual void FindShortestSeparator(std::string* start,
                                     const Slice& limit) const = 0;

  /// May shorten *key to a string >= *key. Used for the last index entry.
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

/// Singleton lexicographic byte-order comparator.
const Comparator* BytewiseComparator();

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_COMPARATOR_H_
