#include "storage/write_batch.h"

#include "common/coding.h"
#include "storage/memtable.h"

namespace iotdb {
namespace storage {

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader);
}

int WriteBatch::Count() const { return DecodeFixed32(rep_.data() + 8); }

namespace {
void SetCount(std::string* rep, int n) {
  EncodeFixed32(rep->data() + 8, n);
}
}  // namespace

void WriteBatch::Put(const Slice& key, const Slice& value) {
  SetCount(&rep_, Count() + 1);
  rep_.push_back(static_cast<char>(ValueType::kValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(const Slice& key) {
  SetCount(&rep_, Count() + 1);
  rep_.push_back(static_cast<char>(ValueType::kDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

SequenceNumber WriteBatch::sequence() const {
  return DecodeFixed64(rep_.data());
}

void WriteBatch::SetSequence(SequenceNumber seq) {
  EncodeFixed64(rep_.data(), seq);
}

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }
  input.remove_prefix(kHeader);
  int found = 0;
  while (!input.empty()) {
    found++;
    char tag = input[0];
    input.remove_prefix(1);
    Slice key, value;
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kValue:
        if (!GetLengthPrefixedSlice(&input, &key) ||
            !GetLengthPrefixedSlice(&input, &value)) {
          return Status::Corruption("bad WriteBatch Put");
        }
        handler->Put(key, value);
        break;
      case ValueType::kDeletion:
        if (!GetLengthPrefixedSlice(&input, &key)) {
          return Status::Corruption("bad WriteBatch Delete");
        }
        handler->Delete(key);
        break;
      default:
        return Status::Corruption("unknown WriteBatch tag");
    }
  }
  if (found != Count()) {
    return Status::Corruption("WriteBatch has wrong count");
  }
  return Status::OK();
}

namespace {

class MemTableInserter final : public WriteBatch::Handler {
 public:
  SequenceNumber sequence;
  MemTable* memtable;

  void Put(const Slice& key, const Slice& value) override {
    memtable->Add(sequence, ValueType::kValue, key, value);
    sequence++;
  }
  void Delete(const Slice& key) override {
    memtable->Add(sequence, ValueType::kDeletion, key, Slice());
    sequence++;
  }
};

}  // namespace

Status WriteBatch::InsertInto(MemTable* memtable) const {
  MemTableInserter inserter;
  inserter.sequence = sequence();
  inserter.memtable = memtable;
  return Iterate(&inserter);
}

Status WriteBatch::SetContents(WriteBatch* batch, const Slice& contents) {
  if (contents.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }
  batch->rep_.assign(contents.data(), contents.size());
  return Status::OK();
}

void WriteBatch::Append(const WriteBatch& src) {
  SetCount(&rep_, Count() + src.Count());
  rep_.append(src.rep_.data() + kHeader, src.rep_.size() - kHeader);
}

}  // namespace storage
}  // namespace iotdb
