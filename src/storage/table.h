#ifndef IOTDB_STORAGE_TABLE_H_
#define IOTDB_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/block.h"
#include "storage/cache.h"
#include "storage/env.h"
#include "storage/iterator.h"
#include "storage/options.h"
#include "storage/table_format.h"

namespace iotdb {
namespace storage {

/// Immutable, sorted SSTable reader. Thread-safe. Holds the index block and
/// bloom filter in memory; data blocks are fetched on demand through the
/// optional shared block cache.
class Table {
 public:
  /// Opens a table over `file` (whose lifetime the Table takes over).
  /// cache may be null; cache_id must be unique per table when caching.
  /// `name` is the file path, used only to contextualise corruption
  /// statuses; empty is allowed.
  static Result<std::unique_ptr<Table>> Open(
      const Options& options, std::unique_ptr<RandomAccessFile> file,
      LruCache* cache, uint64_t cache_id, const std::string& name = "");

  ~Table() = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Iterator over internal-key entries of the whole table.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& read_options)
      const;

  /// Point lookup plumbing: seeks the table for internal key `k` and, if an
  /// entry >= k exists in the containing block, invokes handle_result once.
  /// Consults the bloom filter first.
  Status InternalGet(const ReadOptions& read_options, const Slice& k,
                     void* arg,
                     void (*handle_result)(void* arg, const Slice& k,
                                           const Slice& v)) const;

  uint64_t ApproximateBloomSizeBytes() const { return filter_data_.size(); }

  /// Full-file checksum walk: re-reads the footer, index block, filter
  /// block, and every data block straight from the file with checksum
  /// verification on, bypassing the block cache. Returns the first
  /// corruption found; `bytes_checked` (optional) accumulates the bytes
  /// verified either way. Safe to call concurrently with reads.
  Status VerifyIntegrity(uint64_t* bytes_checked = nullptr) const;

  const std::string& name() const { return name_; }

  /// Reads, checksums, and parses a block. Uses the block cache when
  /// enabled. Public because the two-level iterator implementation uses it.
  Result<std::shared_ptr<Block>> ReadBlockCached(
      const ReadOptions& read_options, const BlockHandle& handle) const;

  const Block* index_block() const { return index_block_.get(); }
  const Comparator* comparator() const { return options_.comparator; }

 private:
  Table(const Options& options, std::unique_ptr<RandomAccessFile> file,
        LruCache* cache, uint64_t cache_id, std::string name);

  Options options_;
  std::unique_ptr<RandomAccessFile> file_;
  LruCache* cache_;
  uint64_t cache_id_;
  std::string name_;  // file path for error context; may be empty
  std::unique_ptr<Block> index_block_;
  std::string filter_data_;  // empty when the table has no bloom filter
};

/// Reads and verifies one raw block (without caching). Exposed for tests.
/// `name` contextualises corruption statuses; empty is allowed.
Result<std::string> ReadBlockContents(const RandomAccessFile* file,
                                      const BlockHandle& handle,
                                      bool verify_checksums,
                                      const std::string& name = "");

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_TABLE_H_
