#ifndef IOTDB_STORAGE_BLOCK_H_
#define IOTDB_STORAGE_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/slice.h"
#include "storage/iterator.h"

namespace iotdb {
namespace storage {

class Comparator;

/// Immutable, parsed SSTable block. Owns its contents.
class Block {
 public:
  /// Takes ownership of the uncompressed block contents (entries + restart
  /// array as produced by BlockBuilder::Finish).
  explicit Block(std::string contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return contents_.size(); }

  /// New iterator over the block entries. The Block must outlive it.
  std::unique_ptr<Iterator> NewIterator(const Comparator* comparator) const;

 private:
  uint32_t NumRestarts() const;

  std::string contents_;
  uint32_t restart_offset_;  // offset of the restart array
  bool malformed_;
};

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_BLOCK_H_
