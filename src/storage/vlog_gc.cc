#include "storage/vlog_gc.h"

#include "storage/vlog_reader.h"

namespace iotdb {
namespace storage {
namespace vlog {

Status ScanFileForGc(Env* env, const std::string& dir, uint64_t file_no,
                     uint64_t limit, std::vector<GcRecord>* records,
                     uint64_t* scanned_bytes) {
  std::string contents;
  IOTDB_RETURN_NOT_OK(
      env->ReadFileToString(VlogFileName(dir, file_no), &contents));
  if (contents.size() < limit) {
    return Status::Corruption("vlog file shorter than sealed size");
  }

  Slice input(contents.data(), static_cast<size_t>(limit));
  uint64_t offset = 0;
  while (!input.empty()) {
    Slice key, value;
    uint32_t record_size = 0;
    Status s = ParseRecord(&input, &key, &value, &record_size);
    if (!s.ok()) {
      if (scanned_bytes != nullptr) *scanned_bytes += offset;
      return s;
    }
    GcRecord rec;
    rec.key = key.ToString();
    rec.value = value.ToString();
    rec.ptr.file_no = file_no;
    rec.ptr.offset = offset;
    rec.ptr.size = record_size;
    records->push_back(std::move(rec));
    offset += record_size;
  }
  if (scanned_bytes != nullptr) *scanned_bytes += limit;
  return Status::OK();
}

}  // namespace vlog
}  // namespace storage
}  // namespace iotdb
