#ifndef IOTDB_STORAGE_VLOG_READER_H_
#define IOTDB_STORAGE_VLOG_READER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/slice.h"
#include "common/status.h"
#include "storage/cache.h"
#include "storage/env.h"
#include "storage/vlog_format.h"

namespace iotdb {
namespace storage {
namespace vlog {

/// Dereferences ValuePointers and checksum-walks whole vlog files. Caches
/// open RandomAccessFile handles per file number and (optionally) decoded
/// values in a shared LruCache keyed 'v' + file_no + offset, distinct from
/// the 16-byte table block-cache keys so the two never collide.
/// Thread-safe.
class VlogReader {
 public:
  /// `cache` may be null (no value caching). `cache_charge_overhead` is
  /// added to each cached value's charge to account for bookkeeping.
  VlogReader(Env* env, std::string dir, LruCache* cache);

  VlogReader(const VlogReader&) = delete;
  VlogReader& operator=(const VlogReader&) = delete;

  /// Reads the record named by `ptr`, verifies its checksum and that its
  /// embedded key equals `expected_key`, and sets *value to the record's
  /// value. Returns Corruption on any mismatch; the caller decides whether
  /// to quarantine. `stats` (optional) receives cache hit/miss accounting.
  struct DerefStats {
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
  };
  Status Get(const ValuePointer& ptr, const Slice& expected_key,
             std::string* value, DerefStats* stats = nullptr);

  /// Sequentially parses every record of file `file_no` from offset 0 to
  /// `limit` (its current durable size when the walk starts, so a
  /// concurrently-appended tail is not misread as torn). Adds the bytes
  /// walked to *bytes_checked even on failure. Returns Corruption at the
  /// first bad record.
  Status VerifyFile(uint64_t file_no, uint64_t limit,
                    uint64_t* bytes_checked);

  /// Drops the cached handle for a deleted/quarantined file so future
  /// dereferences re-probe the filesystem (and fail cleanly).
  void Evict(uint64_t file_no);

 private:
  Status GetFile(uint64_t file_no, std::shared_ptr<RandomAccessFile>* file);

  Env* const env_;
  const std::string dir_;
  LruCache* const cache_;

  std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<RandomAccessFile>> files_;
};

/// "<dir>/<file_no as %08u>.vlog" — same zero-padded naming as .sst/.log.
std::string VlogFileName(const std::string& dir, uint64_t file_no);

}  // namespace vlog
}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_VLOG_READER_H_
