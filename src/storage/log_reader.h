#ifndef IOTDB_STORAGE_LOG_READER_H_
#define IOTDB_STORAGE_LOG_READER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/log_format.h"

namespace iotdb {
namespace storage {
namespace log {

/// Reads records written by log::Writer, verifying checksums and skipping
/// damaged regions (reporting them to an optional Reporter). Used by WAL
/// recovery after a crash/cleanup-restart.
class Reader {
 public:
  class Reporter {
   public:
    virtual ~Reporter() = default;
    /// `bytes` of log data were dropped because of `status`.
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  /// file must remain live while the Reader is in use. `name` is the log's
  /// file path, used only to contextualise corruption reports; empty is
  /// allowed.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum,
         std::string name = "");

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Reads the next record into *record (backed by *scratch). Returns false
  /// at EOF.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  // Extend RecordType with internal outcomes.
  enum { kEof = kMaxRecordType + 1, kBadRecord = kMaxRecordType + 2 };

  unsigned int ReadPhysicalRecord(Slice* result);
  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  bool const checksum_;
  const std::string name_;  // file path for error context; may be empty
  std::unique_ptr<char[]> backing_store_;
  Slice buffer_;
  bool eof_;
  uint64_t end_of_buffer_offset_;  // file offset just past buffer_'s bytes
};

}  // namespace log
}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_LOG_READER_H_
