#ifndef IOTDB_STORAGE_BLOOM_H_
#define IOTDB_STORAGE_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace iotdb {
namespace storage {

/// Double-hashed bloom filter (LevelDB/HBase style). Each SSTable stores one
/// filter over its user keys so point lookups skip tables that cannot
/// contain the key — critical for the benchmark's concurrent read path.
class BloomFilterBuilder {
 public:
  /// bits_per_key controls the false-positive rate: 10 bits ≈ 1%.
  explicit BloomFilterBuilder(int bits_per_key);

  void AddKey(const Slice& key);

  /// Serialises the filter (bit array + 1-byte probe count).
  std::string Finish();

  size_t NumKeys() const { return hashes_.size(); }

 private:
  int bits_per_key_;
  int k_;  // number of probes
  std::vector<uint32_t> hashes_;
};

/// Tests membership against a filter produced by BloomFilterBuilder::Finish.
/// An empty/malformed filter conservatively matches everything.
bool BloomFilterMayMatch(const Slice& filter, const Slice& key);

/// The hash function shared by builder and matcher.
uint32_t BloomHash(const Slice& key);

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_BLOOM_H_
