#ifndef IOTDB_STORAGE_VERSION_H_
#define IOTDB_STORAGE_VERSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/dbformat.h"
#include "storage/table.h"

namespace iotdb {
namespace storage {

/// Number of LSM levels. Level 0 holds freshly-flushed (possibly
/// overlapping) tables; levels >= 1 hold disjoint key ranges.
static constexpr int kNumLevels = 7;

/// Metadata for one live SSTable.
struct FileMeta {
  uint64_t number = 0;
  uint64_t file_size = 0;
  std::string smallest;  // internal key
  std::string largest;   // internal key
  std::shared_ptr<Table> table;
};

/// The current shape of the LSM tree: per-level file lists. Level 0 is
/// ordered newest-first (descending file number); deeper levels are ordered
/// by smallest key and have disjoint ranges.
struct LevelState {
  std::vector<std::shared_ptr<FileMeta>> files[kNumLevels];

  uint64_t NumFiles(int level) const { return files[level].size(); }

  uint64_t LevelBytes(int level) const {
    uint64_t total = 0;
    for (const auto& f : files[level]) total += f->file_size;
    return total;
  }

  int64_t TotalFiles() const {
    int64_t n = 0;
    for (int level = 0; level < kNumLevels; ++level) n += files[level].size();
    return n;
  }
};

/// True when [smallest,largest] of `f` overlaps the user-key range
/// [begin,end] (either bound may be empty = unbounded).
bool FileOverlapsRange(const InternalKeyComparator& icmp, const FileMeta& f,
                       const Slice& begin_user_key,
                       const Slice& end_user_key);

/// Compaction growth limit for each level, in bytes.
uint64_t MaxBytesForLevel(int level);

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_VERSION_H_
