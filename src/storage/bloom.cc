#include "storage/bloom.h"

namespace iotdb {
namespace storage {

uint32_t BloomHash(const Slice& key) {
  // Murmur-inspired hash (LevelDB's Hash with fixed seed).
  const uint32_t seed = 0xbc9f1d34;
  const uint32_t m = 0xc6a4a793;
  const char* data = key.data();
  size_t n = key.size();
  const char* limit = data + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);

  while (data + 4 <= limit) {
    uint32_t w;
    memcpy(&w, data, 4);
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }

  switch (limit - data) {
    case 3:
      h += static_cast<uint8_t>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint8_t>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint8_t>(data[0]);
      h *= m;
      h ^= (h >> 24);
      break;
  }
  return h;
}

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key) {
  // k = bits_per_key * ln(2), clamped.
  k_ = static_cast<int>(bits_per_key * 0.69);
  if (k_ < 1) k_ = 1;
  if (k_ > 30) k_ = 30;
}

void BloomFilterBuilder::AddKey(const Slice& key) {
  hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() {
  size_t bits = hashes_.size() * static_cast<size_t>(bits_per_key_);
  if (bits < 64) bits = 64;
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string result(bytes, '\0');
  for (uint32_t h : hashes_) {
    const uint32_t delta = (h >> 17) | (h << 15);  // rotate right 17 bits
    for (int j = 0; j < k_; j++) {
      const uint32_t bitpos = h % static_cast<uint32_t>(bits);
      result[bitpos / 8] |= static_cast<char>(1 << (bitpos % 8));
      h += delta;
    }
  }
  result.push_back(static_cast<char>(k_));
  return result;
}

bool BloomFilterMayMatch(const Slice& filter, const Slice& key) {
  const size_t len = filter.size();
  if (len < 2) return true;

  const char* array = filter.data();
  const size_t bits = (len - 1) * 8;
  const int k = static_cast<uint8_t>(array[len - 1]);
  if (k > 30) {
    // Reserved for future encodings; treat as a match.
    return true;
  }

  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    const uint32_t bitpos = h % static_cast<uint32_t>(bits);
    if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace storage
}  // namespace iotdb
