#ifndef IOTDB_STORAGE_DBFORMAT_H_
#define IOTDB_STORAGE_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "storage/comparator.h"

namespace iotdb {
namespace storage {

/// Sequence number of a write; monotonically increasing per store.
using SequenceNumber = uint64_t;

/// Max sequence fits in 56 bits: the low byte of the internal-key trailer
/// holds the value type.
static constexpr SequenceNumber kMaxSequenceNumber = ((1ull << 56) - 1);

enum class ValueType : uint8_t {
  kDeletion = 0x0,
  kValue = 0x1,
};

/// Sentinel used when looking up: seeks to the newest entry <= the sequence.
static constexpr ValueType kValueTypeForSeek = ValueType::kValue;

/// Internal keys are user_key + 8-byte trailer ((seq << 8) | type). Ordering:
/// ascending user key, then descending sequence, then descending type, so the
/// newest version of a key is encountered first during iteration.
inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | static_cast<uint8_t>(t);
}

inline void AppendInternalKey(std::string* result, const Slice& user_key,
                              SequenceNumber seq, ValueType t) {
  result->append(user_key.data(), user_key.size());
  PutFixed64(result, PackSequenceAndType(seq, t));
}

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence;
  ValueType type;
};

/// Returns false when the internal key is malformed (shorter than the
/// trailer or with an unknown type tag).
inline bool ParseInternalKey(const Slice& internal_key,
                             ParsedInternalKey* result) {
  if (internal_key.size() < 8) return false;
  uint64_t num = DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  uint8_t tag = num & 0xff;
  if (tag > static_cast<uint8_t>(ValueType::kValue)) return false;
  result->sequence = num >> 8;
  result->type = static_cast<ValueType>(tag);
  result->user_key = Slice(internal_key.data(), internal_key.size() - 8);
  return true;
}

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

/// Orders internal keys as described above, delegating the user-key part to
/// a user Comparator.
class InternalKeyComparator final : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* user_comparator)
      : user_comparator_(user_comparator) {}

  int Compare(const Slice& a, const Slice& b) const override {
    int r = user_comparator_->Compare(ExtractUserKey(a), ExtractUserKey(b));
    if (r == 0) {
      const uint64_t anum = DecodeFixed64(a.data() + a.size() - 8);
      const uint64_t bnum = DecodeFixed64(b.data() + b.size() - 8);
      if (anum > bnum) {
        r = -1;
      } else if (anum < bnum) {
        r = +1;
      }
    }
    return r;
  }

  const char* Name() const override {
    return "iotdb.InternalKeyComparator";
  }

  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override {
    // Shorten the user-key portion, then re-append a maximal trailer.
    Slice user_start = ExtractUserKey(*start);
    Slice user_limit = ExtractUserKey(limit);
    std::string tmp(user_start.data(), user_start.size());
    user_comparator_->FindShortestSeparator(&tmp, user_limit);
    if (tmp.size() < user_start.size() &&
        user_comparator_->Compare(user_start, tmp) < 0) {
      PutFixed64(&tmp,
                 PackSequenceAndType(kMaxSequenceNumber, kValueTypeForSeek));
      start->swap(tmp);
    }
  }

  void FindShortSuccessor(std::string* key) const override {
    Slice user_key = ExtractUserKey(*key);
    std::string tmp(user_key.data(), user_key.size());
    user_comparator_->FindShortSuccessor(&tmp);
    if (tmp.size() < user_key.size() &&
        user_comparator_->Compare(user_key, tmp) < 0) {
      PutFixed64(&tmp,
                 PackSequenceAndType(kMaxSequenceNumber, kValueTypeForSeek));
      key->swap(tmp);
    }
  }

  const Comparator* user_comparator() const { return user_comparator_; }

 private:
  const Comparator* user_comparator_;
};

/// Internal key for a lookup at a given snapshot sequence.
inline std::string MakeLookupKey(const Slice& user_key, SequenceNumber seq) {
  std::string key;
  AppendInternalKey(&key, user_key, seq, kValueTypeForSeek);
  return key;
}

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_DBFORMAT_H_
