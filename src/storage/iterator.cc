#include "storage/iterator.h"

namespace iotdb {
namespace storage {

namespace {

class EmptyIterator final : public Iterator {
 public:
  explicit EmptyIterator(Status s) : status_(std::move(s)) {}

  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Seek(const Slice&) override {}
  void Next() override {}
  void Prev() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> NewEmptyIterator() {
  return std::make_unique<EmptyIterator>(Status::OK());
}

std::unique_ptr<Iterator> NewErrorIterator(Status status) {
  return std::make_unique<EmptyIterator>(std::move(status));
}

}  // namespace storage
}  // namespace iotdb
