#include "storage/table.h"

#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "obs/metrics.h"
#include "storage/bloom.h"
#include "storage/comparator.h"
#include "storage/dbformat.h"

namespace iotdb {
namespace storage {

namespace {

/// "<reason> in block at offset N of <name>" — the file path and block
/// offset let quarantine logs and FDR entries identify the bad file.
Status BlockCorruption(const char* reason, const BlockHandle& handle,
                       const std::string& name) {
  std::string msg(reason);
  msg += " in block at offset " + std::to_string(handle.offset);
  if (!name.empty()) msg += " of " + name;
  return Status::Corruption(msg);
}

}  // namespace

Result<std::string> ReadBlockContents(const RandomAccessFile* file,
                                      const BlockHandle& handle,
                                      bool verify_checksums,
                                      const std::string& name) {
  size_t n = static_cast<size_t>(handle.size);
  std::vector<char> scratch(n + kBlockTrailerSize);
  Slice contents;
  IOTDB_RETURN_NOT_OK(file->Read(handle.offset, n + kBlockTrailerSize,
                                 &contents, scratch.data()));
  if (contents.size() != n + kBlockTrailerSize) {
    return BlockCorruption("truncated block read", handle, name);
  }
  const char* data = contents.data();
  if (verify_checksums) {
    const uint32_t crc = crc32c::Unmask(DecodeFixed32(data + n + 1));
    const uint32_t actual = crc32c::Value(data, n + 1);
    if (actual != crc) {
      return BlockCorruption("block checksum mismatch", handle, name);
    }
  }
  if (data[n] != 0) {
    return BlockCorruption("unsupported block compression type", handle,
                           name);
  }
  return std::string(data, n);
}

Table::Table(const Options& options, std::unique_ptr<RandomAccessFile> file,
             LruCache* cache, uint64_t cache_id, std::string name)
    : options_(options),
      file_(std::move(file)),
      cache_(cache),
      cache_id_(cache_id),
      name_(std::move(name)) {}

Result<std::unique_ptr<Table>> Table::Open(
    const Options& options, std::unique_ptr<RandomAccessFile> file,
    LruCache* cache, uint64_t cache_id, const std::string& name) {
  uint64_t size = file->Size();
  if (size < Footer::kEncodedLength) {
    return Status::Corruption(
        (name.empty() ? std::string("file") : name) +
        " is too short to be an sstable");
  }
  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  IOTDB_RETURN_NOT_OK(file->Read(size - Footer::kEncodedLength,
                                 Footer::kEncodedLength, &footer_input,
                                 footer_space));
  Footer footer;
  IOTDB_RETURN_NOT_OK(footer.DecodeFrom(&footer_input));

  auto table = std::unique_ptr<Table>(
      new Table(options, std::move(file), cache, cache_id, name));

  IOTDB_ASSIGN_OR_RETURN(
      std::string index_contents,
      ReadBlockContents(table->file_.get(), footer.index_handle,
                        options.verify_checksums, name));
  table->index_block_ = std::make_unique<Block>(std::move(index_contents));

  if (footer.filter_handle.size > 0) {
    IOTDB_ASSIGN_OR_RETURN(
        table->filter_data_,
        ReadBlockContents(table->file_.get(), footer.filter_handle,
                          options.verify_checksums, name));
  }
  return table;
}

Result<std::shared_ptr<Block>> Table::ReadBlockCached(
    const ReadOptions& read_options, const BlockHandle& handle) const {
  std::string cache_key;
  const bool will_cache = cache_ != nullptr && read_options.fill_cache;
  if (cache_ != nullptr) {
    cache_key.reserve(16);
    PutFixed64(&cache_key, cache_id_);
    PutFixed64(&cache_key, handle.offset);
    if (auto cached = cache_->Lookup(cache_key)) {
      return std::static_pointer_cast<Block>(cached);
    }
  }
  // A block headed for the shared cache is always CRC-checked, even when
  // this reader skipped verification: a corrupt insert would be served to
  // every later reader, including ones that asked for verification.
  IOTDB_ASSIGN_OR_RETURN(
      std::string contents,
      ReadBlockContents(file_.get(), handle,
                        read_options.verify_checksums || will_cache, name_));
  auto block = std::make_shared<Block>(std::move(contents));
  if (will_cache) {
    cache_->Insert(cache_key, block, block->size());
  }
  return block;
}

Status Table::VerifyIntegrity(uint64_t* bytes_checked) const {
  uint64_t checked = 0;
  Status s;
  do {
    // Footer: re-read and re-decode (DecodeFrom validates the magic).
    uint64_t size = file_->Size();
    if (size < Footer::kEncodedLength) {
      s = Status::Corruption(
          (name_.empty() ? std::string("file") : name_) +
          " is too short to be an sstable");
      break;
    }
    char footer_space[Footer::kEncodedLength];
    Slice footer_input;
    s = file_->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                    &footer_input, footer_space);
    if (!s.ok()) break;
    Footer footer;
    s = footer.DecodeFrom(&footer_input);
    if (!s.ok()) break;
    checked += Footer::kEncodedLength;

    // Index and filter blocks, checksummed, straight from the file.
    auto index = ReadBlockContents(file_.get(), footer.index_handle,
                                   /*verify_checksums=*/true, name_);
    if (!index.ok()) {
      s = index.status();
      break;
    }
    checked += footer.index_handle.size + kBlockTrailerSize;
    if (footer.filter_handle.size > 0) {
      auto filter = ReadBlockContents(file_.get(), footer.filter_handle,
                                      /*verify_checksums=*/true, name_);
      if (!filter.ok()) {
        s = filter.status();
        break;
      }
      checked += footer.filter_handle.size + kBlockTrailerSize;
    }

    // Every data block the (just re-verified) index references.
    Block index_block(std::move(index).MoveValueUnsafe());
    auto iter = index_block.NewIterator(options_.comparator);
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      BlockHandle handle;
      Slice input = iter->value();
      s = handle.DecodeFrom(&input);
      if (!s.ok()) break;
      auto data = ReadBlockContents(file_.get(), handle,
                                    /*verify_checksums=*/true, name_);
      if (!data.ok()) {
        s = data.status();
        break;
      }
      checked += handle.size + kBlockTrailerSize;
    }
    if (s.ok()) s = iter->status();
  } while (false);
  if (bytes_checked != nullptr) *bytes_checked += checked;
  return s;
}

namespace {

/// Two-level iterator: walks the index block; for each index entry opens the
/// referenced data block and iterates it. Keeps a shared_ptr to the current
/// block so cache eviction cannot free it underneath us.
class TwoLevelIterator final : public Iterator {
 public:
  TwoLevelIterator(const Table* table, const ReadOptions& read_options)
      : table_(table),
        read_options_(read_options),
        index_iter_(
            table->index_block()->NewIterator(table->comparator())) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyDataBlocksForward();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyDataBlocksForward();
  }

  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToLast();
    SkipEmptyDataBlocksBackward();
  }

  void Next() override {
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }

  void Prev() override {
    data_iter_->Prev();
    SkipEmptyDataBlocksBackward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }

  Status status() const override {
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      SetDataBlock(nullptr);
      return;
    }
    Slice handle_value = index_iter_->value();
    BlockHandle handle;
    Slice input = handle_value;
    Status s = handle.DecodeFrom(&input);
    if (!s.ok()) {
      status_ = s;
      SetDataBlock(nullptr);
      return;
    }
    auto block_result = table_->ReadBlockCached(read_options_, handle);
    if (!block_result.ok()) {
      status_ = block_result.status();
      SetDataBlock(nullptr);
      return;
    }
    SetDataBlock(std::move(block_result).MoveValueUnsafe());
  }

  void SetDataBlock(std::shared_ptr<Block> block) {
    data_block_ = std::move(block);
    data_iter_ = data_block_ == nullptr
                     ? nullptr
                     : data_block_->NewIterator(table_->comparator());
  }

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        SetDataBlock(nullptr);
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  void SkipEmptyDataBlocksBackward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        SetDataBlock(nullptr);
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToLast();
    }
  }

  const Table* table_;
  ReadOptions read_options_;
  std::unique_ptr<Iterator> index_iter_;
  std::shared_ptr<Block> data_block_;
  std::unique_ptr<Iterator> data_iter_;
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> Table::NewIterator(
    const ReadOptions& read_options) const {
  return std::make_unique<TwoLevelIterator>(this, read_options);
}

Status Table::InternalGet(const ReadOptions& read_options, const Slice& k,
                          void* arg,
                          void (*handle_result)(void*, const Slice&,
                                                const Slice&)) const {
  if (!filter_data_.empty()) {
    const bool may_match =
        BloomFilterMayMatch(Slice(filter_data_), ExtractUserKey(k));
    if (obs::Enabled()) {
      static obs::Counter* checks =
          obs::MetricsRegistry::Global().GetCounter("storage.bloom.checks");
      static obs::Counter* negatives =
          obs::MetricsRegistry::Global().GetCounter(
              "storage.bloom.negatives");
      checks->Increment();
      if (!may_match) negatives->Increment();
    }
    if (!may_match) {
      return Status::OK();  // definitely not present
    }
  }
  auto index_iter = index_block_->NewIterator(options_.comparator);
  index_iter->Seek(k);
  if (!index_iter->Valid()) return index_iter->status();

  BlockHandle handle;
  Slice input = index_iter->value();
  IOTDB_RETURN_NOT_OK(handle.DecodeFrom(&input));
  IOTDB_ASSIGN_OR_RETURN(auto block, ReadBlockCached(read_options, handle));
  auto block_iter = block->NewIterator(options_.comparator);
  block_iter->Seek(k);
  if (block_iter->Valid()) {
    (*handle_result)(arg, block_iter->key(), block_iter->value());
  }
  return block_iter->status();
}

}  // namespace storage
}  // namespace iotdb
