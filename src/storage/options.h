#ifndef IOTDB_STORAGE_OPTIONS_H_
#define IOTDB_STORAGE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "common/clock.h"

namespace iotdb {
namespace storage {

class CompactionFilter;
class Comparator;
class CorruptionReporter;
class Env;

/// Tuning knobs of the LSM engine. Defaults mirror the spirit of the paper's
/// HBase tuning (large write buffer, many handlers, blocking store files).
struct Options {
  /// Key ordering; defaults to bytewise.
  const Comparator* comparator = nullptr;

  /// Filesystem; defaults to Env::Posix().
  Env* env = nullptr;

  /// Time source; defaults to Clock::Real().
  Clock* clock = nullptr;

  /// Memtable size that triggers a flush (HBase: hbase.hregion.memstore
  /// flush size). Kept small by default so tests exercise flushes.
  size_t write_buffer_size = 4 * 1024 * 1024;

  /// Uncompressed size target of an SSTable data block.
  size_t block_size = 4 * 1024;

  /// Number of keys between restart points in a data block.
  int block_restart_interval = 16;

  /// Bits per key of the per-table bloom filter; 0 disables the filter.
  int bloom_bits_per_key = 10;

  /// Number of L0 files that triggers a compaction (HBase:
  /// hbase.hstore.compactionThreshold).
  int l0_compaction_trigger = 4;

  /// Number of L0 files at which writes stall until compaction catches up
  /// (HBase: hbase.hstore.blockingStoreFiles).
  int l0_stall_trigger = 12;

  /// Group-commit gather window for the WAL, in microseconds. While one
  /// batch is syncing, concurrent writers enqueue and commit together.
  uint64_t wal_group_commit_window_micros = 200;

  /// Number of independent write shards. Keys hash-route to a per-shard
  /// memtable with its own WAL partition (`wal-<shard>-<num>.log`) and its
  /// own group-commit leader, so commits on different shards overlap
  /// instead of serialising on one mutex. Sequence numbers stay globally
  /// unique (block-allocated from one atomic) and visibility is published
  /// in sequence order, so snapshots and iterators keep their semantics.
  /// 0 = auto (hardware concurrency). Clamped to [1, 64].
  int write_shards = 0;

  /// If false, Put/Write return once the WAL record is buffered (HBase
  /// deferred log flush). If true, every commit syncs.
  bool wal_sync = false;

  /// Verify block checksums on every read.
  bool verify_checksums = true;

  /// Capacity of the shared block cache in bytes; 0 disables caching.
  size_t block_cache_capacity = 8 * 1024 * 1024;

  /// Background threads for flush + compaction work.
  int background_threads = 1;

  /// Optional hook dropping entries during compaction (data retention);
  /// see compaction_filter.h. Not owned; must outlive the store.
  const CompactionFilter* compaction_filter = nullptr;

  /// Optional callback fired when verification quarantines a corrupt file
  /// (see corruption_reporter.h). Not owned; must outlive the store. May be
  /// invoked with store locks held — implementations must only enqueue.
  CorruptionReporter* corruption_reporter = nullptr;

  /// Background scrub: newly flushed/compacted SSTables are queued and one
  /// is checksum-verified per idle background cycle, between compactions.
  /// KVStore::VerifyIntegrity() is always available regardless.
  bool background_scrub = false;

  /// WiscKey-style key-value separation: values of at least min_value_size
  /// bytes are appended to a `.vlog` file and the LSM stores a fixed-width
  /// value pointer instead, cutting compaction write amplification for the
  /// TPCx-IoT 1 KB-payload / ~30 B-key workload. The flag is a property of
  /// the on-disk store: it is persisted in the manifest, and an Open with a
  /// mismatching flag adopts the manifest's value. See vlog_format.h.
  bool value_separation = false;

  /// Values smaller than this stay inline in the LSM (pointer overhead
  /// would dominate them).
  size_t min_value_size = 256;

  /// Active vlog file is sealed and a new one started past this size.
  uint64_t vlog_file_size = 4 * 1024 * 1024;

  /// Background GC starts on the tail vlog file once its compaction-
  /// estimated dead-byte ratio reaches this threshold.
  double vlog_gc_dead_ratio = 0.5;

  /// Pace vlog garbage collection in idle background cycles (between
  /// compactions, like the background scrub). KVStore::GarbageCollect() is
  /// always available regardless.
  bool background_vlog_gc = true;
};

/// Per-read options.
struct ReadOptions {
  bool verify_checksums = true;
  bool fill_cache = true;
};

/// Per-write options.
struct WriteOptions {
  /// Overrides Options::wal_sync for this write when set.
  bool sync = false;
};

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_OPTIONS_H_
