#ifndef IOTDB_STORAGE_SKIPLIST_H_
#define IOTDB_STORAGE_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdint>

#include "common/arena.h"
#include "common/random.h"

namespace iotdb {
namespace storage {

/// Lock-free-read skiplist (LevelDB design). Writes must be externally
/// serialised; reads may proceed concurrently with one writer without locks
/// because nodes are immutable after insertion and links are published with
/// release stores.
///
/// Key is a trivially-copyable handle (the memtable uses const char*).
/// Comparator is a functor: int operator()(const Key&, const Key&) const.
template <typename Key, class Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena);

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts key. Requires that nothing equal to key is already present.
  void Insert(const Key& key);

  bool Contains(const Key& key) const;

  /// Cursor over the list contents.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) node_ = nullptr;
    }
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }
    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) node_ = nullptr;
    }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    explicit Node(const Key& k) : key(k) {}

    const Key key;

    Node* Next(int n) const {
      assert(n >= 0);
      return next_[n].load(std::memory_order_acquire);
    }
    void SetNext(int n, Node* x) {
      assert(n >= 0);
      next_[n].store(x, std::memory_order_release);
    }
    Node* NoBarrierNext(int n) const {
      return next_[n].load(std::memory_order_relaxed);
    }
    void NoBarrierSetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_relaxed);
    }

    // Variable-length trailing array; index 0 is the bottom level.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const Key& key, int height);
  int RandomHeight();
  bool Equal(const Key& a, const Key& b) const {
    return compare_(a, b) == 0;
  }
  bool KeyIsAfterNode(const Key& key, Node* n) const {
    return (n != nullptr) && (compare_(n->key, key) < 0);
  }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const;
  Node* FindLessThan(const Key& key) const;
  Node* FindLast() const;

  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Random rnd_;
};

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::NewNode(const Key& key, int height) {
  char* mem = arena_->AllocateAligned(
      sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
  return new (mem) Node(key);
}

template <typename Key, class Comparator>
int SkipList<Key, Comparator>::RandomHeight() {
  static constexpr unsigned int kBranching = 4;
  int height = 1;
  while (height < kMaxHeight && rnd_.OneIn(kBranching)) {
    height++;
  }
  return height;
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindGreaterOrEqual(const Key& key,
                                              Node** prev) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  for (;;) {
    Node* next = x->Next(level);
    if (KeyIsAfterNode(key, next)) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) {
        return next;
      }
      level--;
    }
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindLessThan(const Key& key) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  for (;;) {
    Node* next = x->Next(level);
    if (next == nullptr || compare_(next->key, key) >= 0) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindLast() const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  for (;;) {
    Node* next = x->Next(level);
    if (next == nullptr) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
SkipList<Key, Comparator>::SkipList(Comparator cmp, Arena* arena)
    : compare_(cmp),
      arena_(arena),
      head_(NewNode(Key(), kMaxHeight)),
      max_height_(1),
      rnd_(0xdeadbeef) {
  for (int i = 0; i < kMaxHeight; i++) {
    head_->SetNext(i, nullptr);
  }
}

template <typename Key, class Comparator>
void SkipList<Key, Comparator>::Insert(const Key& key) {
  Node* prev[kMaxHeight];
  Node* x = FindGreaterOrEqual(key, prev);

  assert(x == nullptr || !Equal(key, x->key));

  int height = RandomHeight();
  if (height > GetMaxHeight()) {
    for (int i = GetMaxHeight(); i < height; i++) {
      prev[i] = head_;
    }
    // Concurrent readers observing the new height will fall through the
    // head's null links harmlessly.
    max_height_.store(height, std::memory_order_relaxed);
  }

  x = NewNode(key, height);
  for (int i = 0; i < height; i++) {
    x->NoBarrierSetNext(i, prev[i]->NoBarrierNext(i));
    prev[i]->SetNext(i, x);
  }
}

template <typename Key, class Comparator>
bool SkipList<Key, Comparator>::Contains(const Key& key) const {
  Node* x = FindGreaterOrEqual(key, nullptr);
  return x != nullptr && Equal(key, x->key);
}

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_SKIPLIST_H_
