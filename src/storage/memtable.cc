#include "storage/memtable.h"

#include "common/coding.h"

namespace iotdb {
namespace storage {

namespace {

// Memtable entries are stored as a single arena allocation:
//   varint32(internal_key_len) | internal_key | varint32(value_len) | value
Slice GetLengthPrefixed(const char* data) {
  uint32_t len;
  const char* p = GetVarint32Ptr(data, data + 5, &len);
  return Slice(p, len);
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* a, const char* b) const {
  Slice ka = GetLengthPrefixed(a);
  Slice kb = GetLengthPrefixed(b);
  return comparator.Compare(ka, kb);
}

MemTable::MemTable(const InternalKeyComparator& comparator)
    : comparator_(comparator),
      refs_(0),
      num_entries_(0),
      table_(comparator_, &arena_) {}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& key,
                   const Slice& value) {
  size_t key_size = key.size();
  size_t val_size = value.size();
  size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size + VarintLength(val_size) +
                             val_size;
  char* buf = arena_.Allocate(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  memcpy(p, key.data(), key_size);
  p += key_size;
  EncodeFixed64(p, PackSequenceAndType(seq, type));
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(val_size));
  memcpy(p, value.data(), val_size);
  table_.Insert(buf);
  num_entries_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(const Slice& user_key, SequenceNumber seq,
                   std::string* value, Status* s) {
  std::string lookup = MakeLookupKey(user_key, seq);
  std::string entry_key;
  PutVarint32(&entry_key, static_cast<uint32_t>(lookup.size()));
  entry_key.append(lookup);

  Table::Iterator iter(&table_);
  iter.Seek(entry_key.data());
  if (!iter.Valid()) return false;

  const char* entry = iter.key();
  Slice internal_key = GetLengthPrefixed(entry);
  ParsedInternalKey parsed;
  if (!ParseInternalKey(internal_key, &parsed)) {
    *s = Status::Corruption("malformed memtable key");
    return true;
  }
  if (comparator_.comparator.user_comparator()->Compare(parsed.user_key,
                                                        user_key) != 0) {
    return false;
  }
  switch (parsed.type) {
    case ValueType::kValue: {
      const char* value_pos = internal_key.data() + internal_key.size();
      Slice v = GetLengthPrefixed(value_pos);
      value->assign(v.data(), v.size());
      *s = Status::OK();
      return true;
    }
    case ValueType::kDeletion:
      *s = Status::NotFound("deleted");
      return true;
  }
  return false;
}

namespace {

class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(MemTable* mem, SkipList<const char*,
                            MemTable::KeyComparator>* table);
  ~MemTableIterator() override { mem_->Unref(); }

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& k) override {
    tmp_.clear();
    PutVarint32(&tmp_, static_cast<uint32_t>(k.size()));
    tmp_.append(k.data(), k.size());
    iter_.Seek(tmp_.data());
  }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override { return GetLengthPrefixed(iter_.key()); }
  Slice value() const override {
    Slice k = GetLengthPrefixed(iter_.key());
    return GetLengthPrefixed(k.data() + k.size());
  }
  Status status() const override { return Status::OK(); }

 private:
  MemTable* mem_;
  SkipList<const char*, MemTable::KeyComparator>::Iterator iter_;
  std::string tmp_;
};

MemTableIterator::MemTableIterator(
    MemTable* mem, SkipList<const char*, MemTable::KeyComparator>* table)
    : mem_(mem), iter_(table) {
  mem_->Ref();
}

}  // namespace

std::unique_ptr<Iterator> MemTable::NewIterator() {
  return std::make_unique<MemTableIterator>(this, &table_);
}

}  // namespace storage
}  // namespace iotdb
