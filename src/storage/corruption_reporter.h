#ifndef IOTDB_STORAGE_CORRUPTION_REPORTER_H_
#define IOTDB_STORAGE_CORRUPTION_REPORTER_H_

#include <string>

#include "common/status.h"

namespace iotdb {
namespace storage {

/// Callback surface through which a store reports detected corruption to its
/// embedder (the cluster layer uses it to drive replica repair). Methods may
/// be invoked from background threads *with internal store locks held*:
/// implementations must only record or enqueue — never call back into the
/// store, and never block.
class CorruptionReporter {
 public:
  virtual ~CorruptionReporter() = default;

  /// A file failed checksum verification and was quarantined: renamed to
  /// `<path>.quarantined` and dropped from the live version set, so it will
  /// never serve another read. `cause` is the verification failure.
  virtual void OnQuarantine(const std::string& path, const Status& cause) = 0;

  /// A read or scrub detected corruption in `path` without (yet) removing
  /// the file. Default: ignore.
  virtual void OnCorruption(const std::string& path, const Status& cause) {
    (void)path;
    (void)cause;
  }
};

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_CORRUPTION_REPORTER_H_
