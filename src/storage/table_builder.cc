#include "storage/table_builder.h"

#include <cassert>

#include "common/crc32c.h"
#include "storage/comparator.h"
#include "storage/dbformat.h"

namespace iotdb {
namespace storage {

TableBuilder::TableBuilder(const Options& options, WritableFile* file)
    : options_(options),
      file_(file),
      offset_(0),
      data_block_(options.block_restart_interval, options.comparator),
      index_block_(1, options.comparator),
      num_entries_(0),
      closed_(false),
      pending_index_entry_(false) {
  assert(options_.comparator != nullptr);
  if (options_.bloom_bits_per_key > 0) {
    filter_ =
        std::make_unique<BloomFilterBuilder>(options_.bloom_bits_per_key);
  }
}

TableBuilder::~TableBuilder() { assert(closed_); }

void TableBuilder::Add(const Slice& key, const Slice& value) {
  assert(!closed_);
  if (!status_.ok()) return;
  if (num_entries_ > 0) {
    assert(options_.comparator->Compare(key, Slice(last_key_)) > 0);
  }

  if (pending_index_entry_) {
    assert(data_block_.empty());
    options_.comparator->FindShortestSeparator(&last_key_, key);
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(last_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }

  if (filter_ != nullptr) {
    filter_->AddKey(ExtractUserKey(key));
  }

  last_key_.assign(key.data(), key.size());
  num_entries_++;
  data_block_.Add(key, value);

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    WriteDataBlock();
  }
}

void TableBuilder::WriteDataBlock() {
  assert(!closed_);
  if (!status_.ok() || data_block_.empty()) return;
  assert(!pending_index_entry_);
  Slice raw = data_block_.Finish();
  status_ = WriteRawBlock(raw, &pending_handle_);
  if (status_.ok()) {
    pending_index_entry_ = true;
  }
  data_block_.Reset();
}

Status TableBuilder::WriteRawBlock(const Slice& contents,
                                   BlockHandle* handle) {
  handle->offset = offset_;
  handle->size = contents.size();
  IOTDB_RETURN_NOT_OK(file_->Append(contents));

  char trailer[kBlockTrailerSize];
  trailer[0] = 0;  // kNoCompression
  uint32_t crc = crc32c::Value(contents.data(), contents.size());
  crc = crc32c::Extend(crc, trailer, 1);
  EncodeFixed32(trailer + 1, crc32c::Mask(crc));
  IOTDB_RETURN_NOT_OK(file_->Append(Slice(trailer, kBlockTrailerSize)));

  offset_ += contents.size() + kBlockTrailerSize;
  return Status::OK();
}

Status TableBuilder::Finish() {
  assert(!closed_);
  WriteDataBlock();
  closed_ = true;
  if (!status_.ok()) return status_;

  Footer footer;

  // Bloom filter block.
  if (filter_ != nullptr) {
    std::string filter_contents = filter_->Finish();
    status_ = WriteRawBlock(Slice(filter_contents), &footer.filter_handle);
    if (!status_.ok()) return status_;
  } else {
    footer.filter_handle = BlockHandle{0, 0};
  }

  // Final index entry for the last data block.
  if (pending_index_entry_) {
    options_.comparator->FindShortSuccessor(&last_key_);
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(last_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }

  // Index block.
  status_ = WriteRawBlock(index_block_.Finish(), &footer.index_handle);
  if (!status_.ok()) return status_;

  // Footer.
  std::string footer_encoding;
  footer.EncodeTo(&footer_encoding);
  status_ = file_->Append(Slice(footer_encoding));
  if (status_.ok()) {
    offset_ += footer_encoding.size();
    status_ = file_->Flush();
  }
  return status_;
}

void TableBuilder::Abandon() {
  assert(!closed_);
  closed_ = true;
}

}  // namespace storage
}  // namespace iotdb
