#include "storage/version.h"

namespace iotdb {
namespace storage {

bool FileOverlapsRange(const InternalKeyComparator& icmp, const FileMeta& f,
                       const Slice& begin_user_key,
                       const Slice& end_user_key) {
  const Comparator* ucmp = icmp.user_comparator();
  if (!begin_user_key.empty() &&
      ucmp->Compare(ExtractUserKey(Slice(f.largest)), begin_user_key) < 0) {
    return false;
  }
  if (!end_user_key.empty() &&
      ucmp->Compare(ExtractUserKey(Slice(f.smallest)), end_user_key) > 0) {
    return false;
  }
  return true;
}

uint64_t MaxBytesForLevel(int level) {
  // Level 1: 10 MiB, growing 10x per level. Level 0 is count-triggered.
  double result = 10.0 * 1048576.0;
  while (level > 1) {
    result *= 10.0;
    level--;
  }
  return static_cast<uint64_t>(result);
}

}  // namespace storage
}  // namespace iotdb
