#include "storage/fault_env.h"

#include <algorithm>
#include <utility>

namespace iotdb {
namespace storage {

FileClass ClassifyFile(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  auto ends_with = [&name](const char* suffix) {
    size_t n = std::string(suffix).size();
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  if (ends_with(".log")) return FileClass::kWal;
  if (ends_with(".sst")) return FileClass::kSSTable;
  if (ends_with(".vlog")) return FileClass::kVlog;
  if (name.compare(0, 8, "MANIFEST") == 0) return FileClass::kManifest;
  return FileClass::kOther;
}

const char* FileClassName(FileClass file_class) {
  switch (file_class) {
    case FileClass::kWal:
      return "wal";
    case FileClass::kSSTable:
      return "sstable";
    case FileClass::kManifest:
      return "manifest";
    case FileClass::kVlog:
      return "vlog";
    case FileClass::kOther:
      return "other";
  }
  return "unknown";
}

namespace {

bool HasPrefix(const std::string& path, const std::string& prefix) {
  return prefix.empty() ||
         (path.size() >= prefix.size() &&
          path.compare(0, prefix.size(), prefix) == 0);
}

}  // namespace

// ---------------------------------------------------------------------------
// File wrappers
// ---------------------------------------------------------------------------

class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string path,
                    std::unique_ptr<WritableFile> target)
      : env_(env),
        path_(std::move(path)),
        file_class_(ClassifyFile(path_)),
        target_(std::move(target)) {}

  Status Append(const Slice& data) override {
    IOTDB_RETURN_NOT_OK(env_->CheckAlive(path_));
    IOTDB_RETURN_NOT_OK(
        env_->MaybeInject(FaultInjectionEnv::Op::kAppend, file_class_, path_));
    IOTDB_RETURN_NOT_OK(target_->Append(data));
    pos_ += data.size();
    return Status::OK();
  }

  Status Flush() override {
    IOTDB_RETURN_NOT_OK(env_->CheckAlive(path_));
    return target_->Flush();
  }

  Status Sync() override {
    IOTDB_RETURN_NOT_OK(env_->CheckAlive(path_));
    IOTDB_RETURN_NOT_OK(
        env_->MaybeInject(FaultInjectionEnv::Op::kSync, file_class_, path_));
    IOTDB_RETURN_NOT_OK(target_->Sync());
    env_->OnSync(path_, pos_);
    return Status::OK();
  }

  Status Close() override { return target_->Close(); }

 private:
  FaultInjectionEnv* const env_;
  const std::string path_;
  const FileClass file_class_;
  std::unique_ptr<WritableFile> target_;
  uint64_t pos_ = 0;  // bytes appended through this handle
};

class FaultRandomAccessFile final : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectionEnv* env, std::string path,
                        std::unique_ptr<RandomAccessFile> target)
      : env_(env),
        path_(std::move(path)),
        file_class_(ClassifyFile(path_)),
        target_(std::move(target)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    IOTDB_RETURN_NOT_OK(env_->CheckAlive(path_));
    IOTDB_RETURN_NOT_OK(
        env_->MaybeInject(FaultInjectionEnv::Op::kRead, file_class_, path_));
    return target_->Read(offset, n, result, scratch);
  }

  uint64_t Size() const override { return target_->Size(); }

 private:
  FaultInjectionEnv* const env_;
  const std::string path_;
  const FileClass file_class_;
  std::unique_ptr<RandomAccessFile> target_;
};

class FaultSequentialFile final : public SequentialFile {
 public:
  FaultSequentialFile(FaultInjectionEnv* env, std::string path,
                      std::unique_ptr<SequentialFile> target)
      : env_(env),
        path_(std::move(path)),
        file_class_(ClassifyFile(path_)),
        target_(std::move(target)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    IOTDB_RETURN_NOT_OK(env_->CheckAlive(path_));
    IOTDB_RETURN_NOT_OK(
        env_->MaybeInject(FaultInjectionEnv::Op::kRead, file_class_, path_));
    return target_->Read(n, result, scratch);
  }

  Status Skip(uint64_t n) override { return target_->Skip(n); }

 private:
  FaultInjectionEnv* const env_;
  const std::string path_;
  const FileClass file_class_;
  std::unique_ptr<SequentialFile> target_;
};

// ---------------------------------------------------------------------------
// FaultInjectionEnv
// ---------------------------------------------------------------------------

FaultInjectionEnv::FaultInjectionEnv(Env* target, uint64_t seed)
    : target_(target), rng_(seed == 0 ? 0xfa17ull : seed) {}

FaultInjectionEnv::~FaultInjectionEnv() = default;

void FaultInjectionEnv::SetRates(FileClass file_class,
                                 const FaultRates& rates) {
  std::lock_guard<std::mutex> lock(mu_);
  rates_[static_cast<int>(file_class)] = rates;
  injection_enabled_ = true;
}

void FaultInjectionEnv::SetInjectionEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  injection_enabled_ = enabled;
}

void FaultInjectionEnv::SetTornTailProbability(double p) {
  std::lock_guard<std::mutex> lock(mu_);
  torn_tail_probability_ = p;
}

Status FaultInjectionEnv::MaybeInject(Op op, FileClass file_class,
                                      const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!injection_enabled_) return Status::OK();
  const FaultRates& rates = rates_[static_cast<int>(file_class)];
  double rate = 0;
  switch (op) {
    case Op::kAppend:
      rate = rates.append_error;
      break;
    case Op::kSync:
      rate = rates.sync_error;
      break;
    case Op::kRead:
      rate = rates.read_error;
      break;
  }
  if (rate <= 0 || rng_.NextDouble() >= rate) return Status::OK();
  const char* what = "";
  switch (op) {
    case Op::kAppend:
      counters_.append_errors++;
      what = "append";
      break;
    case Op::kSync:
      counters_.sync_errors++;
      what = "sync";
      break;
    case Op::kRead:
      counters_.read_errors++;
      what = "read";
      break;
  }
  return Status::IOError(path + ": injected " + std::string(what) +
                         " fault (" + FileClassName(file_class) + ")");
}

bool FaultInjectionEnv::IsCrashed(const std::string& path) const {
  for (const std::string& prefix : crashed_prefixes_) {
    if (HasPrefix(path, prefix)) return true;
  }
  return false;
}

Status FaultInjectionEnv::CheckAlive(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (IsCrashed(path)) {
    return Status::IOError(path + ": simulated process crash");
  }
  return Status::OK();
}

void FaultInjectionEnv::OnSync(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& state = files_[path];
  state.synced_size = std::max(state.synced_size, size);
  state.ever_synced = true;
}

void FaultInjectionEnv::OnRemove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
}

void FaultInjectionEnv::MarkCrashed(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_prefixes_.push_back(prefix);
}

void FaultInjectionEnv::ClearCrashed(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_prefixes_.erase(
      std::remove(crashed_prefixes_.begin(), crashed_prefixes_.end(), prefix),
      crashed_prefixes_.end());
}

Status FaultInjectionEnv::Crash(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.crashes++;

  std::vector<std::string> dropped;
  for (auto& [path, state] : files_) {
    if (!HasPrefix(path, prefix)) continue;

    auto size_result = target_->FileSize(path);
    if (!size_result.ok()) {
      // Already gone underneath us (e.g. obsolete-file cleanup raced the
      // crash); nothing to lose.
      dropped.push_back(path);
      continue;
    }
    uint64_t full_size = size_result.ValueOrDie();

    if (!state.ever_synced) {
      IOTDB_RETURN_NOT_OK(target_->RemoveFile(path));
      counters_.files_dropped++;
      counters_.bytes_dropped += full_size;
      dropped.push_back(path);
      continue;
    }
    if (full_size <= state.synced_size) continue;  // nothing unsynced

    uint64_t keep = state.synced_size;
    FileClass cls = ClassifyFile(path);
    if ((cls == FileClass::kWal || cls == FileClass::kVlog) &&
        rng_.NextDouble() < torn_tail_probability_) {
      // Torn tail: a random prefix of the unsynced region made it to disk,
      // ending mid-record. Recovery must detect the damage via checksums —
      // for a WAL via the log reader, for a vlog by sealing only the valid
      // record prefix and dropping WAL pointers into the torn region.
      uint64_t extra = rng_.Uniform(full_size - state.synced_size);
      if (extra > 0) {
        keep += extra;
        counters_.torn_tails++;
      }
    }

    std::string contents;
    IOTDB_RETURN_NOT_OK(target_->ReadFileToString(path, &contents));
    contents.resize(static_cast<size_t>(keep));
    IOTDB_RETURN_NOT_OK(target_->WriteStringToFile(path, Slice(contents)));
    counters_.files_truncated++;
    counters_.bytes_dropped += full_size - keep;
    state.synced_size = keep;  // the survivor is fully durable now
    state.ever_synced = true;
  }
  for (const std::string& path : dropped) files_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::CorruptFile(const std::string& path, int bits) {
  std::lock_guard<std::mutex> lock(mu_);
  if (IsCrashed(path)) {
    return Status::IOError(path + ": simulated process crash");
  }
  IOTDB_ASSIGN_OR_RETURN(uint64_t size, target_->FileSize(path));
  if (size == 0) {
    return Status::InvalidArgument(path + ": cannot bit-rot an empty file");
  }
  for (int i = 0; i < bits; ++i) {
    uint64_t offset = rng_.Uniform(size);
    int bit = static_cast<int>(rng_.Uniform(8));
    char scratch[1];
    // Read the current byte through a positional handle so no other state
    // of the file is disturbed, then patch it back with one bit flipped.
    IOTDB_ASSIGN_OR_RETURN(auto file, target_->NewRandomAccessFile(path));
    Slice byte;
    IOTDB_RETURN_NOT_OK(file->Read(offset, 1, &byte, scratch));
    if (byte.size() != 1) {
      return Status::IOError(path + ": short read during bit-rot injection");
    }
    char rotted = static_cast<char>(byte.data()[0] ^ (1 << bit));
    IOTDB_RETURN_NOT_OK(
        target_->OverwriteFileRange(path, offset, Slice(&rotted, 1)));
    counters_.bits_flipped++;
  }
  if (bits > 0) counters_.files_corrupted++;
  return Status::OK();
}

Result<std::string> FaultInjectionEnv::CorruptRandomFile(
    const std::string& dir, FileClass file_class, int bits) {
  std::vector<std::string> candidates;
  {
    IOTDB_ASSIGN_OR_RETURN(auto names, target_->ListDir(dir));
    std::sort(names.begin(), names.end());  // determinism across Env impls
    for (const std::string& name : names) {
      if (ClassifyFile(name) == file_class) {
        candidates.push_back(dir + "/" + name);
      }
    }
  }
  if (candidates.empty()) {
    return Status::NotFound(dir + ": no live " +
                            std::string(FileClassName(file_class)) +
                            " file to corrupt");
  }
  std::string victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    victim = candidates[rng_.Uniform(candidates.size())];
  }
  IOTDB_RETURN_NOT_OK(CorruptFile(victim, bits));
  return victim;
}

FaultCounters FaultInjectionEnv::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void FaultInjectionEnv::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = FaultCounters();
}

// ---------------------------------------------------------------------------
// Env interface
// ---------------------------------------------------------------------------

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  IOTDB_RETURN_NOT_OK(CheckAlive(path));
  IOTDB_ASSIGN_OR_RETURN(auto file, target_->NewWritableFile(path));
  {
    std::lock_guard<std::mutex> lock(mu_);
    files_[path] = FileState();  // created empty, nothing durable yet
  }
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, path, std::move(file)));
}

Result<std::unique_ptr<RandomAccessFile>>
FaultInjectionEnv::NewRandomAccessFile(const std::string& path) {
  IOTDB_RETURN_NOT_OK(CheckAlive(path));
  IOTDB_ASSIGN_OR_RETURN(auto file, target_->NewRandomAccessFile(path));
  return std::unique_ptr<RandomAccessFile>(
      new FaultRandomAccessFile(this, path, std::move(file)));
}

Result<std::unique_ptr<SequentialFile>> FaultInjectionEnv::NewSequentialFile(
    const std::string& path) {
  IOTDB_RETURN_NOT_OK(CheckAlive(path));
  IOTDB_ASSIGN_OR_RETURN(auto file, target_->NewSequentialFile(path));
  return std::unique_ptr<SequentialFile>(
      new FaultSequentialFile(this, path, std::move(file)));
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return target_->FileExists(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  return target_->ListDir(dir);
}

Status FaultInjectionEnv::CreateDir(const std::string& dir) {
  IOTDB_RETURN_NOT_OK(CheckAlive(dir));
  return target_->CreateDir(dir);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  IOTDB_RETURN_NOT_OK(CheckAlive(path));
  IOTDB_RETURN_NOT_OK(target_->RemoveFile(path));
  OnRemove(path);
  return Status::OK();
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return target_->FileSize(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  IOTDB_RETURN_NOT_OK(CheckAlive(from));
  IOTDB_RETURN_NOT_OK(CheckAlive(to));
  IOTDB_RETURN_NOT_OK(target_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  return Status::OK();
}

Status FaultInjectionEnv::OverwriteFileRange(const std::string& path,
                                             uint64_t offset,
                                             const Slice& data) {
  IOTDB_RETURN_NOT_OK(CheckAlive(path));
  return target_->OverwriteFileRange(path, offset, data);
}

}  // namespace storage
}  // namespace iotdb
