#ifndef IOTDB_STORAGE_MERGER_H_
#define IOTDB_STORAGE_MERGER_H_

#include <memory>
#include <vector>

#include "storage/iterator.h"

namespace iotdb {
namespace storage {

class Comparator;

/// Merges n child iterators into a single sorted stream (k-way merge).
/// Children yielding equal keys are consumed in child order, which the
/// KVStore exploits by listing newer sources first.
std::unique_ptr<Iterator> NewMergingIterator(
    const Comparator* comparator,
    std::vector<std::unique_ptr<Iterator>> children);

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_MERGER_H_
