#ifndef IOTDB_STORAGE_DB_ITER_H_
#define IOTDB_STORAGE_DB_ITER_H_

#include <memory>

#include "storage/dbformat.h"
#include "storage/iterator.h"

namespace iotdb {
namespace storage {

/// Wraps an internal-key merging iterator into a user-key iterator at a
/// snapshot: hides sequence numbers, collapses multiple versions to the
/// newest visible one, and skips deletion tombstones.
std::unique_ptr<Iterator> NewDBIterator(
    const InternalKeyComparator* icmp,
    std::unique_ptr<Iterator> internal_iter, SequenceNumber sequence);

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_DB_ITER_H_
