#ifndef IOTDB_STORAGE_VLOG_FORMAT_H_
#define IOTDB_STORAGE_VLOG_FORMAT_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/slice.h"
#include "common/status.h"

namespace iotdb {
namespace storage {
namespace vlog {

/// On-disk record of the append-only value log (WiscKey-style key-value
/// separation). A `.vlog` file is a flat sequence of records:
///
///   masked crc32c (fixed32) | keylen (varint32) | key | vallen (varint32)
///   | value
///
/// The checksum covers everything after itself (keylen..value) and is masked
/// with the same rotation the WAL uses, so a vlog record embedded verbatim in
/// another checksummed stream cannot collide trivially. The key is stored
/// with the value so garbage collection and crash recovery can re-associate
/// a record with its LSM entry without a reverse index.
///
/// The LSM tree never stores the separated value itself; it stores a
/// fixed-width encoded ValuePointer in the value slot. When
/// Options::value_separation is on, *every* stored LSM value carries a
/// one-byte tag so inline (small) values and pointers coexist:
///
///   kInlineTag  | raw value bytes
///   kPointerTag | file_no (fixed64) | offset (fixed64) | size (fixed32)
///
/// `size` is the full record size (header included), so a dereference is one
/// positional read of exactly `size` bytes followed by a checksum check.

constexpr char kInlineTag = 0x00;
constexpr char kPointerTag = 0x01;

/// Tag byte + file_no + offset + record size.
constexpr size_t kValuePointerEncodedSize = 1 + 8 + 8 + 4;

/// Fixed-size crc32c header preceding each record's payload.
constexpr size_t kRecordHeaderSize = 4;

/// Location of one separated value inside the log.
struct ValuePointer {
  uint64_t file_no = 0;
  uint64_t offset = 0;   // of the record header (crc) within the file
  uint32_t size = 0;     // full record size, header included

  bool operator==(const ValuePointer& other) const {
    return file_no == other.file_no && offset == other.offset &&
           size == other.size;
  }
};

/// Appends kPointerTag + the fixed-width pointer encoding to *dst.
inline void EncodeValuePointer(std::string* dst, const ValuePointer& ptr) {
  dst->push_back(kPointerTag);
  PutFixed64(dst, ptr.file_no);
  PutFixed64(dst, ptr.offset);
  PutFixed32(dst, ptr.size);
}

/// True when a stored LSM value (under value_separation) is a pointer.
inline bool IsValuePointer(const Slice& stored_value) {
  return stored_value.size() == kValuePointerEncodedSize &&
         stored_value[0] == kPointerTag;
}

/// Decodes a stored pointer value; returns false when malformed.
inline bool DecodeValuePointer(const Slice& stored_value, ValuePointer* ptr) {
  if (!IsValuePointer(stored_value)) return false;
  const char* p = stored_value.data() + 1;
  ptr->file_no = DecodeFixed64(p);
  ptr->offset = DecodeFixed64(p + 8);
  ptr->size = DecodeFixed32(p + 16);
  return true;
}

/// Appends one record for (key, value) to *dst and returns its size.
inline uint32_t AppendRecord(std::string* dst, const Slice& key,
                             const Slice& value) {
  size_t start = dst->size();
  std::string payload;
  payload.reserve(key.size() + value.size() + 10);
  PutLengthPrefixedSlice(&payload, key);
  PutLengthPrefixedSlice(&payload, value);
  uint32_t crc = crc32c::Value(payload.data(), payload.size());
  PutFixed32(dst, crc32c::Mask(crc));
  dst->append(payload);
  return static_cast<uint32_t>(dst->size() - start);
}

/// Parses and checksum-verifies the record at the front of `input`.
/// On success advances `input` past the record, sets *key/*value (pointing
/// into the original input bytes) and *record_size. Returns Corruption on a
/// checksum mismatch or malformed framing.
inline Status ParseRecord(Slice* input, Slice* key, Slice* value,
                          uint32_t* record_size) {
  if (input->size() < kRecordHeaderSize) {
    return Status::Corruption("vlog record truncated (header)");
  }
  const char* base = input->data();
  uint32_t expected = crc32c::Unmask(DecodeFixed32(base));
  Slice payload(base + kRecordHeaderSize,
                input->size() - kRecordHeaderSize);
  Slice cursor = payload;
  if (!GetLengthPrefixedSlice(&cursor, key) ||
      !GetLengthPrefixedSlice(&cursor, value)) {
    return Status::Corruption("vlog record truncated (payload)");
  }
  size_t payload_size =
      static_cast<size_t>(cursor.data() - payload.data());
  uint32_t actual = crc32c::Value(payload.data(), payload_size);
  if (actual != expected) {
    return Status::Corruption("vlog record checksum mismatch");
  }
  *record_size = static_cast<uint32_t>(kRecordHeaderSize + payload_size);
  input->remove_prefix(*record_size);
  return Status::OK();
}

}  // namespace vlog
}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_VLOG_FORMAT_H_
