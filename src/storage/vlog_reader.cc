#include "storage/vlog_reader.h"

#include <cinttypes>
#include <cstdio>

#include "common/coding.h"

namespace iotdb {
namespace storage {
namespace vlog {

namespace {

/// Cache key for a decoded value: 'v' + file_no + offset. 17 bytes, so it
/// can never collide with the 16-byte (cache_id, block offset) table keys.
std::string DerefCacheKey(const ValuePointer& ptr) {
  std::string key;
  key.reserve(17);
  key.push_back('v');
  PutFixed64(&key, ptr.file_no);
  PutFixed64(&key, ptr.offset);
  return key;
}

}  // namespace

std::string VlogFileName(const std::string& dir, uint64_t file_no) {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%08" PRIu64 ".vlog", file_no);
  return dir + buf;
}

VlogReader::VlogReader(Env* env, std::string dir, LruCache* cache)
    : env_(env), dir_(std::move(dir)), cache_(cache) {}

Status VlogReader::GetFile(uint64_t file_no,
                           std::shared_ptr<RandomAccessFile>* file) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(file_no);
    if (it != files_.end()) {
      *file = it->second;
      return Status::OK();
    }
  }
  auto result = env_->NewRandomAccessFile(VlogFileName(dir_, file_no));
  if (!result.ok()) return result.status();
  std::shared_ptr<RandomAccessFile> opened =
      std::move(result).MoveValueUnsafe();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = files_.emplace(file_no, std::move(opened));
  *file = it->second;
  return Status::OK();
}

void VlogReader::Evict(uint64_t file_no) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(file_no);
}

Status VlogReader::Get(const ValuePointer& ptr, const Slice& expected_key,
                       std::string* value, DerefStats* stats) {
  std::string cache_key;
  if (cache_ != nullptr) {
    cache_key = DerefCacheKey(ptr);
    if (auto cached = cache_->Lookup(cache_key)) {
      if (stats != nullptr) stats->cache_hits++;
      *value = *std::static_pointer_cast<std::string>(cached);
      return Status::OK();
    }
    if (stats != nullptr) stats->cache_misses++;
  }

  std::shared_ptr<RandomAccessFile> file;
  IOTDB_RETURN_NOT_OK(GetFile(ptr.file_no, &file));

  std::string scratch(ptr.size, '\0');
  Slice raw;
  IOTDB_RETURN_NOT_OK(file->Read(ptr.offset, ptr.size, &raw, scratch.data()));
  if (raw.size() != ptr.size) {
    return Status::Corruption("vlog record short read");
  }

  Slice input = raw;
  Slice key, val;
  uint32_t record_size = 0;
  IOTDB_RETURN_NOT_OK(ParseRecord(&input, &key, &val, &record_size));
  if (record_size != ptr.size || key != expected_key) {
    return Status::Corruption("vlog record does not match pointer");
  }

  value->assign(val.data(), val.size());
  if (cache_ != nullptr) {
    cache_->Insert(cache_key, std::make_shared<std::string>(*value),
                   value->size() + 64);
  }
  return Status::OK();
}

Status VlogReader::VerifyFile(uint64_t file_no, uint64_t limit,
                              uint64_t* bytes_checked) {
  std::shared_ptr<RandomAccessFile> file;
  IOTDB_RETURN_NOT_OK(GetFile(file_no, &file));

  std::string scratch(limit, '\0');
  Slice contents;
  IOTDB_RETURN_NOT_OK(file->Read(0, limit, &contents, scratch.data()));
  if (contents.size() < limit) {
    return Status::Corruption("vlog file shorter than recorded size");
  }
  contents = Slice(contents.data(), limit);

  Slice input = contents;
  while (!input.empty()) {
    Slice key, value;
    uint32_t record_size = 0;
    Status s = ParseRecord(&input, &key, &value, &record_size);
    if (!s.ok()) {
      // Count the walked prefix so scrub pacing stays honest even when the
      // walk aborts at a bad record.
      if (bytes_checked != nullptr) {
        *bytes_checked += limit - input.size();
      }
      return s;
    }
  }
  if (bytes_checked != nullptr) *bytes_checked += limit;
  return Status::OK();
}

}  // namespace vlog
}  // namespace storage
}  // namespace iotdb
