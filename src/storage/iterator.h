#ifndef IOTDB_STORAGE_ITERATOR_H_
#define IOTDB_STORAGE_ITERATOR_H_

#include <memory>

#include "common/slice.h"
#include "common/status.h"

namespace iotdb {
namespace storage {

/// Ordered cursor over key/value pairs (LevelDB-style contract): position
/// with one of the Seek* methods, then consume with Valid()/key()/value()/
/// Next(). key() and value() slices remain valid only until the next
/// mutation of the iterator.
class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  /// Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  /// Non-OK when the iterator encountered corruption or an IO error.
  virtual Status status() const = 0;
};

/// An iterator over nothing, optionally carrying an error status.
std::unique_ptr<Iterator> NewEmptyIterator();
std::unique_ptr<Iterator> NewErrorIterator(Status status);

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_ITERATOR_H_
