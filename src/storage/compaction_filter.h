#ifndef IOTDB_STORAGE_COMPACTION_FILTER_H_
#define IOTDB_STORAGE_COMPACTION_FILTER_H_

#include "common/slice.h"

namespace iotdb {
namespace storage {

/// User hook invoked on the newest visible version of each key during
/// compaction (RocksDB idiom). Returning true drops the entry — the
/// mechanism behind gateway data retention: the paper's gateways keep only
/// short-term data before the back-end takes over (§I), so old sensor
/// readings age out of the store instead of accumulating forever.
///
/// The filter only sees entries no live snapshot can observe, and never
/// sees deletion markers. Implementations must be thread-safe (compactions
/// run on background threads) and deterministic for a given key/value.
class CompactionFilter {
 public:
  virtual ~CompactionFilter() = default;

  /// True when the entry should be removed from the store.
  virtual bool ShouldDrop(const Slice& user_key, const Slice& value) const
      = 0;

  /// Diagnostic name.
  virtual const char* Name() const = 0;
};

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_COMPACTION_FILTER_H_
