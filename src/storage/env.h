#ifndef IOTDB_STORAGE_ENV_H_
#define IOTDB_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace iotdb {
namespace storage {

/// Append-only file handle used for WAL and SSTable writing.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  /// Durable sync (fsync). The WAL group-commit path batches callers so
  /// Sync() is amortised over many writers.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Positional-read file handle used for SSTable reading. Thread-safe.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to n bytes at offset into scratch; *result points either into
  /// scratch or into an internal buffer that lives as long as the file.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual uint64_t Size() const = 0;
};

/// Forward-only reader used for WAL recovery.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

/// Filesystem abstraction in the LevelDB/RocksDB style. Two implementations:
/// Env::Posix() (real files) and NewMemEnv() (in-process filesystem used by
/// tests, examples, and the in-process cluster so nodes do not contend on
/// the host disk).
class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  virtual Status CreateDir(const std::string& dir) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Reads a whole file into *contents.
  Status ReadFileToString(const std::string& path, std::string* contents);
  /// Writes contents to path atomically enough for our purposes.
  Status WriteStringToFile(const std::string& path, const Slice& contents);

  /// Overwrites `data.size()` bytes at `offset` of an existing file *in
  /// place*: the file keeps its size and identity, and already-open read
  /// handles observe the new bytes. This is the primitive behind bit-rot
  /// simulation (FaultInjectionEnv::CorruptFile); a store never calls it.
  /// The range [offset, offset + data.size()) must lie within the file.
  virtual Status OverwriteFileRange(const std::string& path, uint64_t offset,
                                    const Slice& data);

  /// Process-wide POSIX filesystem Env.
  static Env* Posix();
};

/// Creates a fresh, empty in-memory filesystem. Paths are flat strings;
/// directories are implicit. Thread-safe.
std::unique_ptr<Env> NewMemEnv();

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_ENV_H_
