#ifndef IOTDB_STORAGE_VLOG_GC_H_
#define IOTDB_STORAGE_VLOG_GC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/env.h"
#include "storage/vlog_format.h"

namespace iotdb {
namespace storage {
namespace vlog {

/// Version-set bookkeeping for one sealed (no longer written) vlog file.
/// Persisted in the manifest as `vlog <number> <size> <dead_bytes>` so the
/// head/tail state and scrub limits survive a restart. `dead_bytes` is the
/// compaction-estimated garbage in the file: every time a compaction drops
/// a shadowed or aged-out value pointer, the pointed-to record's size is
/// credited here; background GC starts on the tail file once its dead ratio
/// crosses Options::vlog_gc_dead_ratio.
struct VlogFileInfo {
  uint64_t number = 0;
  uint64_t size = 0;        // sealed size: records occupy [0, size)
  uint64_t dead_bytes = 0;  // estimate; reset to 0 on crash (re-learned)
};

/// One record scanned out of a tail file during a GC pass. The value is an
/// owned copy: the re-put happens after the scan, under the store mutex.
struct GcRecord {
  std::string key;
  std::string value;
  ValuePointer ptr;
};

/// Sequentially parses the records of `<dir>/<file_no>.vlog` over
/// [0, limit) into *records (offsets/sizes filled in as ValuePointers).
/// *scanned_bytes counts the walked prefix even when the scan aborts at a
/// corrupt record, in which case the Status is Corruption and the caller
/// quarantines the file instead of deleting it (records past the damage may
/// still be live and must stay readable for replica repair).
Status ScanFileForGc(Env* env, const std::string& dir, uint64_t file_no,
                     uint64_t limit, std::vector<GcRecord>* records,
                     uint64_t* scanned_bytes);

}  // namespace vlog
}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_VLOG_GC_H_
