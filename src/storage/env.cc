#include "storage/env.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>

namespace iotdb {
namespace storage {

Status Env::ReadFileToString(const std::string& path, std::string* contents) {
  contents->clear();
  IOTDB_ASSIGN_OR_RETURN(auto file, NewSequentialFile(path));
  static constexpr size_t kBufSize = 64 * 1024;
  std::string scratch(kBufSize, '\0');
  for (;;) {
    Slice fragment;
    IOTDB_RETURN_NOT_OK(file->Read(kBufSize, &fragment, scratch.data()));
    if (fragment.empty()) break;
    contents->append(fragment.data(), fragment.size());
  }
  return Status::OK();
}

Status Env::WriteStringToFile(const std::string& path, const Slice& contents) {
  IOTDB_ASSIGN_OR_RETURN(auto file, NewWritableFile(path));
  IOTDB_RETURN_NOT_OK(file->Append(contents));
  IOTDB_RETURN_NOT_OK(file->Sync());
  return file->Close();
}

Status Env::OverwriteFileRange(const std::string& path, uint64_t offset,
                               const Slice& data) {
  // Generic fallback: read-patch-rewrite. Both built-in envs override this
  // with a true in-place patch so open handles keep observing the file.
  std::string contents;
  IOTDB_RETURN_NOT_OK(ReadFileToString(path, &contents));
  if (offset + data.size() > contents.size()) {
    return Status::InvalidArgument(path + ": overwrite range past EOF");
  }
  contents.replace(static_cast<size_t>(offset), data.size(), data.data(),
                   data.size());
  return WriteStringToFile(path, Slice(contents));
}

namespace {

// ---------------------------------------------------------------------------
// POSIX Env (stdio-based; adequate for a reproduction kit).
// ---------------------------------------------------------------------------

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, FILE* f)
      : path_(std::move(path)), file_(f) {}
  ~PosixWritableFile() override {
    if (file_ != nullptr) fclose(file_);
  }

  Status Append(const Slice& data) override {
    if (fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IOError(path_ + ": " + strerror(errno));
    }
    return Status::OK();
  }

  Status Flush() override {
    if (fflush(file_) != 0) {
      return Status::IOError(path_ + ": " + strerror(errno));
    }
    return Status::OK();
  }

  Status Sync() override {
    // fflush is sufficient for benchmark correctness in this environment;
    // a real deployment would fdatasync here.
    return Flush();
  }

  Status Close() override {
    if (file_ != nullptr) {
      int r = fclose(file_);
      file_ = nullptr;
      if (r != 0) return Status::IOError(path_ + ": close failed");
    }
    return Status::OK();
  }

 private:
  std::string path_;
  FILE* file_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, FILE* f, uint64_t size)
      : path_(std::move(path)), file_(f), size_(size) {}
  ~PosixRandomAccessFile() override {
    if (file_ != nullptr) fclose(file_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    std::lock_guard<std::mutex> lock(mu_);
    if (fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError(path_ + ": seek failed");
    }
    size_t read = fread(scratch, 1, n, file_);
    if (read < n && ferror(file_)) {
      return Status::IOError(path_ + ": read failed");
    }
    *result = Slice(scratch, read);
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string path_;
  FILE* file_;
  uint64_t size_;
  mutable std::mutex mu_;
};

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string path, FILE* f)
      : path_(std::move(path)), file_(f) {}
  ~PosixSequentialFile() override {
    if (file_ != nullptr) fclose(file_);
  }

  Status Read(size_t n, Slice* result, char* scratch) override {
    size_t read = fread(scratch, 1, n, file_);
    if (read < n && ferror(file_)) {
      return Status::IOError(path_ + ": read failed");
    }
    *result = Slice(scratch, read);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (fseek(file_, static_cast<long>(n), SEEK_CUR) != 0) {
      return Status::IOError(path_ + ": skip failed");
    }
    return Status::OK();
  }

 private:
  std::string path_;
  FILE* file_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    FILE* f = fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::IOError(path + ": " + strerror(errno));
    }
    return std::unique_ptr<WritableFile>(new PosixWritableFile(path, f));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    FILE* f = fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError(path + ": " + strerror(errno));
    }
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(path, ec);
    if (ec) {
      fclose(f);
      return Status::IOError(path + ": stat failed");
    }
    return std::unique_ptr<RandomAccessFile>(
        new PosixRandomAccessFile(path, f, size));
  }

  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    FILE* f = fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError(path + ": " + strerror(errno));
    }
    return std::unique_ptr<SequentialFile>(new PosixSequentialFile(path, f));
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) return Status::IOError(dir + ": " + ec.message());
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return Status::IOError(dir + ": " + ec.message());
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    std::error_code ec;
    if (!std::filesystem::remove(path, ec) || ec) {
      return Status::IOError(path + ": remove failed");
    }
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(path, ec);
    if (ec) return Status::IOError(path + ": stat failed");
    return size;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) return Status::IOError(from + " -> " + to + ": " + ec.message());
    return Status::OK();
  }

  Status OverwriteFileRange(const std::string& path, uint64_t offset,
                            const Slice& data) override {
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(path, ec);
    if (ec) return Status::IOError(path + ": stat failed");
    if (offset + data.size() > size) {
      return Status::InvalidArgument(path + ": overwrite range past EOF");
    }
    FILE* f = fopen(path.c_str(), "r+b");
    if (f == nullptr) {
      return Status::IOError(path + ": " + strerror(errno));
    }
    Status s;
    if (fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
        fwrite(data.data(), 1, data.size(), f) != data.size()) {
      s = Status::IOError(path + ": in-place overwrite failed");
    }
    if (fclose(f) != 0 && s.ok()) {
      s = Status::IOError(path + ": close failed");
    }
    return s;
  }
};

// ---------------------------------------------------------------------------
// In-memory Env.
// ---------------------------------------------------------------------------

struct MemFile {
  // Serialises appends against positional/sequential reads. With key-value
  // separation the active vlog file is read (dereference) while the leader
  // appends to it; an unguarded std::string::append can reallocate under a
  // concurrent reader.
  std::mutex mu;
  std::string contents;
};

class MemFileSystem {
 public:
  std::mutex mu;
  std::map<std::string, std::shared_ptr<MemFile>> files;
};

class MemWritableFile final : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<MemFile> file)
      : file_(std::move(file)) {}

  Status Append(const Slice& data) override {
    std::lock_guard<std::mutex> lock(file_->mu);
    file_->contents.append(data.data(), data.size());
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<MemFile> file_;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<MemFile> file)
      : file_(std::move(file)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    std::lock_guard<std::mutex> lock(file_->mu);
    const std::string& data = file_->contents;
    if (offset >= data.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t avail = data.size() - static_cast<size_t>(offset);
    size_t len = std::min(n, avail);
    // Copy into scratch: the backing string may be appended to (and
    // reallocated) by a concurrent writer after the lock drops.
    memcpy(scratch, data.data() + offset, len);
    *result = Slice(scratch, len);
    return Status::OK();
  }

  uint64_t Size() const override {
    std::lock_guard<std::mutex> lock(file_->mu);
    return file_->contents.size();
  }

 private:
  std::shared_ptr<MemFile> file_;
};

class MemSequentialFile final : public SequentialFile {
 public:
  explicit MemSequentialFile(std::shared_ptr<MemFile> file)
      : file_(std::move(file)), pos_(0) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    std::lock_guard<std::mutex> lock(file_->mu);
    const std::string& data = file_->contents;
    if (pos_ >= data.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t len = std::min(n, data.size() - pos_);
    memcpy(scratch, data.data() + pos_, len);
    *result = Slice(scratch, len);
    pos_ += len;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

 private:
  std::shared_ptr<MemFile> file_;
  size_t pos_;
};

class MemEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    auto file = std::make_shared<MemFile>();
    fs_.files[path] = file;
    return std::unique_ptr<WritableFile>(new MemWritableFile(file));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    auto it = fs_.files.find(path);
    if (it == fs_.files.end()) return Status::IOError(path + ": not found");
    return std::unique_ptr<RandomAccessFile>(
        new MemRandomAccessFile(it->second));
  }

  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    auto it = fs_.files.find(path);
    if (it == fs_.files.end()) return Status::IOError(path + ": not found");
    return std::unique_ptr<SequentialFile>(new MemSequentialFile(it->second));
  }

  bool FileExists(const std::string& path) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    return fs_.files.count(path) > 0;
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::string prefix = dir;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    std::vector<std::string> names;
    std::lock_guard<std::mutex> lock(fs_.mu);
    for (const auto& [path, file] : fs_.files) {
      if (path.size() > prefix.size() && path.compare(0, prefix.size(),
                                                      prefix) == 0) {
        std::string rest = path.substr(prefix.size());
        if (rest.find('/') == std::string::npos) names.push_back(rest);
      }
    }
    return names;
  }

  Status CreateDir(const std::string&) override { return Status::OK(); }

  Status RemoveFile(const std::string& path) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    if (fs_.files.erase(path) == 0) {
      return Status::IOError(path + ": not found");
    }
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    auto it = fs_.files.find(path);
    if (it == fs_.files.end()) return Status::IOError(path + ": not found");
    std::lock_guard<std::mutex> file_lock(it->second->mu);
    return static_cast<uint64_t>(it->second->contents.size());
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    auto it = fs_.files.find(from);
    if (it == fs_.files.end()) return Status::IOError(from + ": not found");
    fs_.files[to] = it->second;
    fs_.files.erase(it);
    return Status::OK();
  }

  Status OverwriteFileRange(const std::string& path, uint64_t offset,
                            const Slice& data) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    auto it = fs_.files.find(path);
    if (it == fs_.files.end()) return Status::IOError(path + ": not found");
    std::lock_guard<std::mutex> file_lock(it->second->mu);
    std::string& contents = it->second->contents;
    if (offset + data.size() > contents.size()) {
      return Status::InvalidArgument(path + ": overwrite range past EOF");
    }
    // Patch the shared MemFile in place (no reallocation: the size is
    // unchanged) so already-open readers see the rotted bytes, exactly as
    // they would on a real disk.
    contents.replace(static_cast<size_t>(offset), data.size(), data.data(),
                     data.size());
    return Status::OK();
  }

 private:
  MemFileSystem fs_;
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace storage
}  // namespace iotdb
