#include "storage/cache.h"

#include <functional>

#include "obs/metrics.h"

namespace iotdb {
namespace storage {

namespace {

/// Process-wide block-cache counters, aggregated over every LruCache
/// instance (per-instance hits()/misses() remain exact and unaffected).
obs::Counter* GlobalHits() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("storage.block_cache.hits");
  return counter;
}

obs::Counter* GlobalMisses() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("storage.block_cache.misses");
  return counter;
}

}  // namespace

LruCache::LruCache(size_t capacity_bytes, int shard_bits) {
  num_shards_ = 1u << shard_bits;
  shards_ = std::make_unique<Shard[]>(num_shards_);
  size_t per_shard = (capacity_bytes + num_shards_ - 1) / num_shards_;
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_[i].capacity = per_shard;
  }
}

LruCache::Shard& LruCache::ShardFor(const std::string& key) {
  size_t h = std::hash<std::string>{}(key);
  return shards_[h & (num_shards_ - 1)];
}

const LruCache::Shard& LruCache::ShardFor(const std::string& key) const {
  size_t h = std::hash<std::string>{}(key);
  return shards_[h & (num_shards_ - 1)];
}

void LruCache::Shard::EvictIfNeeded() {
  while (charge > capacity && !lru.empty()) {
    Entry& victim = lru.back();
    charge -= victim.charge;
    index.erase(victim.key);
    lru.pop_back();
  }
}

void LruCache::Insert(const std::string& key, std::shared_ptr<void> value,
                      size_t charge) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.charge -= it->second->charge;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(Entry{key, std::move(value), charge});
  shard.index[key] = shard.lru.begin();
  shard.charge += charge;
  shard.EvictIfNeeded();
}

std::shared_ptr<void> LruCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.hits++;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      std::shared_ptr<void> value = it->second->value;
      if (obs::Enabled()) GlobalHits()->Increment();
      return value;
    }
    shard.misses++;
  }
  if (obs::Enabled()) GlobalMisses()->Increment();
  return nullptr;
}

void LruCache::Erase(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  shard.charge -= it->second->charge;
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

size_t LruCache::TotalCharge() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].charge;
  }
  return total;
}

uint64_t LruCache::hits() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].hits;
  }
  return total;
}

uint64_t LruCache::misses() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].misses;
  }
  return total;
}

}  // namespace storage
}  // namespace iotdb
