#include "storage/kvstore.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <map>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "obs/attribution.h"
#include "obs/trace.h"
#include "storage/compaction_filter.h"
#include "storage/comparator.h"
#include "storage/corruption_reporter.h"
#include "storage/log_reader.h"
#include "storage/merger.h"
#include "storage/table_builder.h"

namespace iotdb {
namespace storage {

namespace {

constexpr size_t kMaxGroupCommitBytes = 1 << 20;  // 1 MiB
constexpr uint64_t kMaxOutputFileBytes = 2 << 20;  // 2 MiB per compaction out
constexpr int kMaxWriteShards = 64;

std::string ToHex(const Slice& s) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (size_t i = 0; i < s.size(); ++i) {
    uint8_t byte = static_cast<uint8_t>(s[i]);
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool FromHex(const std::string& hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

/// Parses "<number>.<suffix>" file names.
bool ParseFileName(const std::string& name, uint64_t* number,
                   std::string* suffix) {
  size_t dot = name.find('.');
  if (dot == std::string::npos || dot == 0) return false;
  for (size_t i = 0; i < dot; ++i) {
    if (!isdigit(static_cast<unsigned char>(name[i]))) return false;
  }
  *number = strtoull(name.substr(0, dot).c_str(), nullptr, 10);
  *suffix = name.substr(dot + 1);
  return true;
}

/// Parses "wal-<shard>-<number>.log" WAL partition names. The exact ".log"
/// suffix check keeps ".log.quarantined" files out of every live-file scan.
bool ParseWalFileName(const std::string& name, int* shard, uint64_t* number) {
  if (name.rfind("wal-", 0) != 0) return false;
  size_t dash = name.find('-', 4);
  if (dash == std::string::npos || dash == 4) return false;
  for (size_t i = 4; i < dash; ++i) {
    if (!isdigit(static_cast<unsigned char>(name[i]))) return false;
  }
  size_t dot = name.find('.', dash + 1);
  if (dot == std::string::npos || dot == dash + 1) return false;
  for (size_t i = dash + 1; i < dot; ++i) {
    if (!isdigit(static_cast<unsigned char>(name[i]))) return false;
  }
  if (name.substr(dot) != ".log") return false;
  *shard = atoi(name.substr(4, dash - 4).c_str());
  *number = strtoull(name.substr(dash + 1, dot - dash - 1).c_str(), nullptr,
                     10);
  return true;
}

class LogCorruptionReporter final : public log::Reader::Reporter {
 public:
  void Corruption(size_t bytes, const Status& status) override {
    IOTDB_LOG(Warn) << "WAL corruption: dropped " << bytes
                    << " bytes: " << status.ToString();
    dropped_bytes += bytes;
  }

  uint64_t dropped_bytes = 0;
};

/// Iterator wrapper that keeps memtables and tables alive while the
/// iterator exists.
class PinningIterator final : public Iterator {
 public:
  PinningIterator(std::unique_ptr<Iterator> inner,
                  std::vector<std::shared_ptr<Table>> tables,
                  std::vector<MemTable*> mems)
      : inner_(std::move(inner)),
        tables_(std::move(tables)),
        mems_(std::move(mems)) {}

  ~PinningIterator() override {
    inner_.reset();  // drop child iterators before unpinning
    for (MemTable* mem : mems_) mem->Unref();
  }

  bool Valid() const override { return inner_->Valid(); }
  void SeekToFirst() override { inner_->SeekToFirst(); }
  void SeekToLast() override { inner_->SeekToLast(); }
  void Seek(const Slice& target) override { inner_->Seek(target); }
  void Next() override { inner_->Next(); }
  void Prev() override { inner_->Prev(); }
  Slice key() const override { return inner_->key(); }
  Slice value() const override { return inner_->value(); }
  Status status() const override { return inner_->status(); }

 private:
  std::unique_ptr<Iterator> inner_;
  std::vector<std::shared_ptr<Table>> tables_;
  std::vector<MemTable*> mems_;
};

}  // namespace

struct KVStore::WriterState {
  explicit WriterState(WriteBatch* b, bool s)
      : batch(b), sync(s), done(false) {}
  WriteBatch* batch;
  bool sync;
  bool done;
  Status status;
  /// Causal identity of the op this writer belongs to, captured from the
  /// enqueueing thread while tracing. The group-commit leader commits on
  /// behalf of queued followers, so the handoff must carry the context
  /// across: the leader emits a flow-linked join event for every grouped
  /// follower whose op is traced.
  obs::TraceContext ctx;
  std::condition_variable cv;
};

KVStore::KVStore(const Options& options, const std::string& name)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Posix()),
      dbname_(name),
      icmp_(options.comparator != nullptr ? options.comparator
                                          : BytewiseComparator()) {
  options_.env = env_;
  if (options_.comparator == nullptr) {
    options_.comparator = BytewiseComparator();
  }
  if (options_.clock == nullptr) options_.clock = Clock::Real();
  if (options_.block_cache_capacity > 0) {
    block_cache_ = std::make_unique<LruCache>(options_.block_cache_capacity);
  }
  background_pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(std::max(options_.background_threads, 1)));

  auto& registry = obs::MetricsRegistry::Global();
  obs_.puts = registry.GetCounter("storage.ops.puts");
  obs_.gets = registry.GetCounter("storage.ops.gets");
  obs_.scans = registry.GetCounter("storage.ops.scans");
  obs_.memtable_flushes = registry.GetCounter("storage.memtable.flushes");
  obs_.bytes_flushed = registry.GetCounter("storage.memtable.bytes_flushed");
  obs_.compactions = registry.GetCounter("storage.compaction.count");
  obs_.compaction_bytes_read =
      registry.GetCounter("storage.compaction.bytes_read");
  obs_.compaction_bytes_written =
      registry.GetCounter("storage.compaction.bytes_written");
  obs_.write_stalls = registry.GetCounter("storage.write.stalls");
  obs_.write_stall_micros =
      registry.GetCounter("storage.write.stall_micros");
  obs_.wal_append_micros =
      registry.GetHistogram("storage.wal.append_micros");
  obs_.wal_sync_micros = registry.GetHistogram("storage.wal.sync_micros");
  obs_.group_commit_kvps =
      registry.GetHistogram("storage.wal.group_commit_kvps");
  obs_.wal_recovery_dropped_bytes =
      registry.GetCounter("storage.wal.recovery_dropped_bytes");
  obs_.scrub_files_checked =
      registry.GetCounter("storage.scrub.files_checked");
  obs_.scrub_bytes_checked =
      registry.GetCounter("storage.scrub.bytes_checked");
  obs_.scrub_corruption_detected =
      registry.GetCounter("storage.scrub.corruption_detected");
  obs_.quarantine_files = registry.GetCounter("storage.quarantine.files");
  obs_.quarantine_bytes = registry.GetCounter("storage.quarantine.bytes");
  obs_.vlog_appended_records =
      registry.GetCounter("storage.vlog.appended_records");
  obs_.vlog_appended_bytes =
      registry.GetCounter("storage.vlog.appended_bytes");
  obs_.vlog_dereferences = registry.GetCounter("storage.vlog.dereferences");
  obs_.vlog_deref_cache_hits =
      registry.GetCounter("storage.vlog.deref_cache_hits");
  obs_.vlog_deref_cache_misses =
      registry.GetCounter("storage.vlog.deref_cache_misses");
  obs_.vlog_gc_passes = registry.GetCounter("storage.vlog.gc_passes");
  obs_.vlog_gc_scanned_bytes =
      registry.GetCounter("storage.vlog.gc_scanned_bytes");
  obs_.vlog_gc_reclaimed_bytes =
      registry.GetCounter("storage.vlog.gc_reclaimed_bytes");
  obs_.vlog_gc_rewritten_records =
      registry.GetCounter("storage.vlog.gc_rewritten_records");
  obs_.vlog_recovery_dropped_pointers =
      registry.GetCounter("storage.vlog.recovery_dropped_pointers");
  obs_.shard_imbalance = registry.GetGauge("storage.shard.imbalance");

  int nshards = options_.write_shards;
  if (nshards <= 0) {
    nshards = static_cast<int>(std::thread::hardware_concurrency());
  }
  nshards = std::clamp(nshards, 1, kMaxWriteShards);
  options_.write_shards = nshards;
  shards_.reserve(static_cast<size_t>(nshards));
  for (int i = 0; i < nshards; ++i) {
    auto shard = std::make_unique<WriteShard>();
    shard->id = i;
    char prefix[32];
    snprintf(prefix, sizeof(prefix), "storage.shard%d.", i);
    shard->obs_puts = registry.GetCounter(std::string(prefix) + "puts");
    shard->obs_stall_micros =
        registry.GetCounter(std::string(prefix) + "stall_micros");
    shard->obs_wal_bytes =
        registry.GetCounter(std::string(prefix) + "wal_bytes");
    shards_.push_back(std::move(shard));
  }
}

KVStore::~KVStore() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
    while (background_scheduled_) {
      background_work_finished_cv_.wait(lock);
    }
  }
  background_pool_->Shutdown();
  for (auto& shard : shards_) {
    if (shard->log_file != nullptr) shard->log_file->Close();
    if (shard->mem != nullptr) shard->mem->Unref();
    if (shard->imm != nullptr) shard->imm->Unref();
  }
}

std::string KVStore::LogFileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%08" PRIu64 ".log", number);
  return dbname_ + buf;
}

std::string KVStore::WalFileName(int shard, uint64_t number) const {
  char buf[48];
  snprintf(buf, sizeof(buf), "/wal-%d-%08" PRIu64 ".log", shard, number);
  return dbname_ + buf;
}

std::string KVStore::TableFileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%08" PRIu64 ".sst", number);
  return dbname_ + buf;
}

std::string KVStore::ManifestFileName() const { return dbname_ + "/MANIFEST"; }

Result<std::unique_ptr<KVStore>> KVStore::Open(const Options& options,
                                               const std::string& name) {
  auto store = std::unique_ptr<KVStore>(new KVStore(options, name));
  IOTDB_RETURN_NOT_OK(store->Recover());
  return store;
}

Status KVStore::Destroy(const Options& options, const std::string& name) {
  Env* env = options.env != nullptr ? options.env : Env::Posix();
  auto listing = env->ListDir(name);
  if (!listing.ok()) return Status::OK();  // nothing to destroy
  for (const std::string& file : listing.ValueOrDie()) {
    // Best effort; ignore individual failures.
    env->RemoveFile(name + "/" + file).ok();
  }
  return Status::OK();
}

int KVStore::ShardForKey(const Slice& key) const {
  if (shards_.size() == 1) return 0;
  // FNV-1a: cheap, stable across runs (routing must be a pure function of
  // the key so recovery and reads find what writes stored).
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < key.size(); ++i) {
    h ^= static_cast<uint8_t>(key[i]);
    h *= 1099511628211ull;
  }
  return static_cast<int>(h % shards_.size());
}

Status KVStore::Recover() {
  IOTDB_RETURN_NOT_OK(env_->CreateDir(dbname_));

  bool manifest_found = false;
  IOTDB_RETURN_NOT_OK(LoadManifest(&manifest_found));

  if (options_.value_separation) {
    vlog_reader_ = std::make_unique<vlog::VlogReader>(env_, dbname_,
                                                      block_cache_.get());
    // Seal any vlog file a crash left active (its valid record prefix
    // becomes a sealed file) before WAL replay dereferences pointers.
    IOTDB_RETURN_NOT_OK(RecoverVlogFiles());
  }

  for (auto& shard : shards_) {
    shard->mem = new MemTable(icmp_);
    shard->mem->Ref();
  }

  // Collect WAL partitions (and legacy single-WAL files) not yet
  // represented by flushed tables. A shard id at or past the current count
  // comes from a previous incarnation with more shards: replay it — the
  // records re-route by the current hash — then delete it below.
  IOTDB_ASSIGN_OR_RETURN(auto files, env_->ListDir(dbname_));
  std::vector<std::string> wal_paths;
  uint64_t max_file_number = next_file_number_.load(std::memory_order_relaxed);
  for (const std::string& f : files) {
    uint64_t number;
    int shard_id;
    std::string suffix;
    if (ParseWalFileName(f, &shard_id, &number)) {
      uint64_t keep = 0;
      auto it = recovered_wal_keeps_.find(shard_id);
      if (it != recovered_wal_keeps_.end()) keep = it->second;
      if (number >= keep) wal_paths.push_back(dbname_ + "/" + f);
      max_file_number = std::max(max_file_number, number + 1);
    } else if (ParseFileName(f, &number, &suffix) && suffix == "log" &&
               number >= log_number_) {
      wal_paths.push_back(dbname_ + "/" + f);
      max_file_number = std::max(max_file_number, number + 1);
    }
  }
  next_file_number_.store(max_file_number, std::memory_order_relaxed);

  // Merge-replay all partitions in global sequence order: every batch
  // carries the sequence block it was allocated, blocks are disjoint, so a
  // sort by first sequence reconstructs commit order across shards.
  std::vector<std::pair<SequenceNumber, std::string>> records;
  uint64_t dropped_bytes = 0;
  for (const std::string& path : wal_paths) {
    IOTDB_RETURN_NOT_OK(ReadLogRecords(path, &records, &dropped_bytes));
  }
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  uint64_t dropped_pointers = 0;
  SequenceNumber max_sequence = visible_seq_.load(std::memory_order_relaxed);
  for (const auto& [seq, contents] : records) {
    IOTDB_RETURN_NOT_OK(
        ReplayBatch(Slice(contents), &dropped_pointers, &max_sequence));
  }
  seq_alloc_.store(max_sequence, std::memory_order_relaxed);
  visible_seq_.store(max_sequence, std::memory_order_release);
  if (dropped_pointers > 0) {
    IOTDB_LOG(Warn) << "WAL replay dropped " << dropped_pointers
                    << " value pointers whose vlog records were lost";
    counters_.vlog_recovery_dropped_pointers.Add(dropped_pointers);
    if (obs::Enabled()) {
      obs_.vlog_recovery_dropped_pointers->Add(dropped_pointers);
    }
  }
  if (dropped_bytes > 0) {
    // Recovery skipped damaged regions rather than dropping them silently;
    // the counter lets the FDR warn per node.
    counters_.wal_recovery_dropped_bytes.Add(dropped_bytes);
    if (obs::Enabled()) {
      obs_.wal_recovery_dropped_bytes->Add(dropped_bytes);
    }
  }

  // Fresh WAL partition per shard.
  for (auto& shard : shards_) {
    uint64_t number = next_file_number_.fetch_add(1, std::memory_order_relaxed);
    IOTDB_ASSIGN_OR_RETURN(
        shard->log_file,
        env_->NewWritableFile(WalFileName(shard->id, number)));
    shard->log = std::make_unique<log::Writer>(shard->log_file.get());
    shard->log_number = number;
    shard->wal_keep.store(number, std::memory_order_release);
  }
  // Every legacy WAL was replayed (and is flushed below), so anything below
  // next_file is deletable; the threshold only matters for pre-shard files.
  log_number_ = next_file_number_.load(std::memory_order_relaxed);

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (options_.value_separation) {
      IOTDB_RETURN_NOT_OK(OpenVlogWriterLocked());
    }
    // Flush replayed entries before the old WAL partitions become
    // deletable; the fresh partitions do not contain them.
    for (auto& shard : shards_) {
      if (shard->mem->NumEntries() == 0) continue;
      {
        std::lock_guard<std::mutex> shard_lock(shard->mu);
        shard->imm = shard->mem;
        shard->has_imm.store(true, std::memory_order_release);
        shard->mem = new MemTable(icmp_);
        shard->mem->Ref();
      }
      IOTDB_RETURN_NOT_OK(FlushShard(shard.get(), &lock));
    }
    SyncL0CountLocked();
    IOTDB_RETURN_NOT_OK(WriteManifest());
    RemoveObsoleteFiles();
  }
  return Status::OK();
}

Status KVStore::ReadLogRecords(
    const std::string& path,
    std::vector<std::pair<SequenceNumber, std::string>>* records,
    uint64_t* dropped_bytes) {
  IOTDB_ASSIGN_OR_RETURN(auto file, env_->NewSequentialFile(path));
  LogCorruptionReporter reporter;
  log::Reader reader(file.get(), &reporter, /*checksum=*/true, path);
  Slice record;
  std::string scratch;
  WriteBatch batch;
  while (reader.ReadRecord(&record, &scratch)) {
    if (record.size() < 12) continue;
    IOTDB_RETURN_NOT_OK(WriteBatch::SetContents(&batch, record));
    records->emplace_back(batch.sequence(), record.ToString());
  }
  *dropped_bytes += reporter.dropped_bytes;
  return Status::OK();
}

Status KVStore::ReplayBatch(const Slice& contents, uint64_t* dropped_pointers,
                            SequenceNumber* max_sequence) {
  // WAL replay: entries hash-route to the *current* shard layout (the WAL
  // partition they were read from is irrelevant — routing is a pure
  // function of the key, and the shard count may have changed between
  // runs). Under key-value separation a WAL record can outlive the vlog
  // record it points at (torn vlog tail, rot): a pointer that no longer
  // dereferences cleanly is dropped — the key falls back to its previous
  // version or NotFound, never to garbage bytes. The per-entry sequence
  // numbering still advances for dropped entries so surviving entries keep
  // the exact sequence the WAL assigned them.
  class Router final : public WriteBatch::Handler {
   public:
    Router(KVStore* store, vlog::VlogReader* reader, SequenceNumber seq)
        : store_(store), reader_(reader), seq_(seq) {}

    void Put(const Slice& key, const Slice& value) override {
      if (reader_ != nullptr) {
        vlog::ValuePointer ptr;
        if (vlog::DecodeValuePointer(value, &ptr)) {
          std::string unused;
          if (!reader_->Get(ptr, key, &unused).ok()) {
            dropped_pointers_++;
            seq_++;
            return;
          }
        }
      }
      Mem(key)->Add(seq_++, ValueType::kValue, key, value);
    }

    void Delete(const Slice& key) override {
      Mem(key)->Add(seq_++, ValueType::kDeletion, key, Slice());
    }

    uint64_t dropped_pointers() const { return dropped_pointers_; }

   private:
    MemTable* Mem(const Slice& key) {
      return store_->shards_[store_->ShardForKey(key)]->mem;
    }

    KVStore* const store_;
    vlog::VlogReader* const reader_;
    SequenceNumber seq_;
    uint64_t dropped_pointers_ = 0;
  };

  WriteBatch batch;
  IOTDB_RETURN_NOT_OK(WriteBatch::SetContents(&batch, contents));
  Router router(this,
                options_.value_separation ? vlog_reader_.get() : nullptr,
                batch.sequence());
  IOTDB_RETURN_NOT_OK(batch.Iterate(&router));
  *dropped_pointers += router.dropped_pointers();
  if (batch.Count() > 0) {
    SequenceNumber last = batch.sequence() + batch.Count() - 1;
    *max_sequence = std::max(*max_sequence, last);
  }
  return Status::OK();
}

Status KVStore::OpenTable(uint64_t number, std::shared_ptr<FileMeta>* meta) {
  IOTDB_ASSIGN_OR_RETURN(auto file,
                         env_->NewRandomAccessFile(TableFileName(number)));
  uint64_t size = file->Size();
  Options table_options = options_;
  table_options.comparator = &icmp_;
  IOTDB_ASSIGN_OR_RETURN(auto table,
                         Table::Open(table_options, std::move(file),
                                     block_cache_.get(), number,
                                     TableFileName(number)));
  auto fm = std::make_shared<FileMeta>();
  fm->number = number;
  fm->file_size = size;
  fm->table = std::shared_ptr<Table>(std::move(table));
  // Recompute bounds (also validates the table end-to-end).
  auto iter = fm->table->NewIterator(ReadOptions());
  iter->SeekToFirst();
  if (iter->Valid()) {
    fm->smallest = iter->key().ToString();
    iter->SeekToLast();
    fm->largest = iter->key().ToString();
  }
  IOTDB_RETURN_NOT_OK(iter->status());
  *meta = std::move(fm);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

Status KVStore::WriteManifest() {
  std::ostringstream out;
  out << "manifest_version 1\n";
  out << "next_file " << next_file_number_.load(std::memory_order_relaxed)
      << "\n";
  out << "last_sequence " << visible_seq_.load(std::memory_order_relaxed)
      << "\n";
  out << "log_number " << log_number_ << "\n";
  out << "wal_shards " << shards_.size() << "\n";
  for (const auto& shard : shards_) {
    out << "shard_log " << shard->id << " "
        << shard->wal_keep.load(std::memory_order_acquire) << "\n";
  }
  out << "vlog_sep " << (options_.value_separation ? 1 : 0) << "\n";
  for (const auto& vf : vlog_files_) {
    out << "vlog " << vf.number << " " << vf.size << " " << vf.dead_bytes
        << "\n";
  }
  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& f : levels_.files[level]) {
      out << "file " << level << " " << f->number << " " << f->file_size
          << " " << ToHex(Slice(f->smallest)) << " "
          << ToHex(Slice(f->largest)) << "\n";
    }
  }
  std::string tmp = ManifestFileName() + ".tmp";
  IOTDB_RETURN_NOT_OK(env_->WriteStringToFile(tmp, Slice(out.str())));
  return env_->RenameFile(tmp, ManifestFileName());
}

Status KVStore::LoadManifest(bool* found) {
  *found = false;
  if (!env_->FileExists(ManifestFileName())) return Status::OK();
  std::string contents;
  IOTDB_RETURN_NOT_OK(env_->ReadFileToString(ManifestFileName(), &contents));
  std::istringstream in(contents);
  std::string tag;
  while (in >> tag) {
    if (tag == "manifest_version") {
      int version;
      in >> version;
      if (version != 1) return Status::Corruption("bad manifest version");
    } else if (tag == "next_file") {
      uint64_t next_file;
      in >> next_file;
      next_file_number_.store(next_file, std::memory_order_relaxed);
    } else if (tag == "last_sequence") {
      SequenceNumber last_sequence;
      in >> last_sequence;
      visible_seq_.store(last_sequence, std::memory_order_relaxed);
      seq_alloc_.store(last_sequence, std::memory_order_relaxed);
    } else if (tag == "log_number") {
      in >> log_number_;
    } else if (tag == "wal_shards") {
      // Informational: the previous incarnation's shard count. Recovery
      // re-routes by the current hash, so a mismatch is fine.
      size_t previous_shards;
      in >> previous_shards;
    } else if (tag == "shard_log") {
      int shard_id;
      uint64_t keep;
      in >> shard_id >> keep;
      if (shard_id < 0) return Status::Corruption("bad manifest shard id");
      recovered_wal_keeps_[shard_id] = keep;
    } else if (tag == "vlog_sep") {
      int sep;
      in >> sep;
      // The data format is a property of the store, not of this Open call:
      // stored pointers are meaningless without separation enabled.
      if ((sep != 0) != options_.value_separation) {
        IOTDB_LOG(Warn) << dbname_ << ": manifest value_separation="
                        << sep << " overrides Options";
        options_.value_separation = (sep != 0);
      }
    } else if (tag == "vlog") {
      vlog::VlogFileInfo vf;
      in >> vf.number >> vf.size >> vf.dead_bytes;
      vlog_files_.push_back(vf);
    } else if (tag == "file") {
      int level;
      uint64_t number, size;
      std::string smallest_hex, largest_hex;
      in >> level >> number >> size >> smallest_hex >> largest_hex;
      if (level < 0 || level >= kNumLevels) {
        return Status::Corruption("bad manifest level");
      }
      std::shared_ptr<FileMeta> meta;
      Status open_status = OpenTable(number, &meta);
      if (open_status.IsCorruption()) {
        // Better to come up without the damaged table — the cluster layer
        // re-replicates its keys from healthy peers — than to refuse to
        // open the store at all.
        QuarantinePath(TableFileName(number), open_status);
        continue;
      }
      IOTDB_RETURN_NOT_OK(open_status);
      // Trust manifest bounds if the table was empty-scanned (shouldn't
      // happen), otherwise keep recomputed bounds.
      if (meta->smallest.empty()) {
        FromHex(smallest_hex, &meta->smallest);
        FromHex(largest_hex, &meta->largest);
      }
      meta->file_size = size;
      levels_.files[level].push_back(std::move(meta));
    } else {
      return Status::Corruption("unknown manifest tag: " + tag);
    }
  }
  // Normalise ordering invariants.
  std::sort(levels_.files[0].begin(), levels_.files[0].end(),
            [](const auto& a, const auto& b) { return a->number > b->number; });
  for (int level = 1; level < kNumLevels; ++level) {
    std::sort(levels_.files[level].begin(), levels_.files[level].end(),
              [this](const auto& a, const auto& b) {
                return icmp_.Compare(Slice(a->smallest), Slice(b->smallest)) <
                       0;
              });
  }
  // Oldest vlog file first: the front is the GC tail.
  std::sort(vlog_files_.begin(), vlog_files_.end(),
            [](const auto& a, const auto& b) { return a.number < b.number; });
  SyncL0CountLocked();
  *found = true;
  return Status::OK();
}

void KVStore::RemoveObsoleteFiles() {
  std::set<uint64_t> live;
  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& f : levels_.files[level]) live.insert(f->number);
  }
  auto listing = env_->ListDir(dbname_);
  if (!listing.ok()) return;
  for (const std::string& name : listing.ValueOrDie()) {
    uint64_t number;
    int shard_id;
    std::string suffix;
    if (ParseWalFileName(name, &shard_id, &number)) {
      // A partition is deletable once its shard's flushed threshold passed
      // it — or once its shard no longer exists (count shrank; recovery
      // replayed and flushed it already).
      bool keep =
          shard_id < static_cast<int>(shards_.size()) &&
          number >= shards_[shard_id]->wal_keep.load(std::memory_order_acquire);
      if (!keep) env_->RemoveFile(dbname_ + "/" + name).ok();
      continue;
    }
    if (!ParseFileName(name, &number, &suffix)) continue;
    bool keep = true;
    if (suffix == "log") {
      keep = (number >= log_number_);
    } else if (suffix == "sst") {
      keep = (live.count(number) > 0);
    } else if (suffix == "vlog") {
      // Live set plus files awaiting deferred deletion (GC-reclaimed while
      // an iterator or snapshot may still dereference into them).
      keep = IsVlogLiveLocked(number) ||
             std::find(vlog_pending_delete_.begin(),
                       vlog_pending_delete_.end(),
                       number) != vlog_pending_delete_.end();
    }
    if (!keep) {
      env_->RemoveFile(dbname_ + "/" + name).ok();
    }
  }
}

void KVStore::SyncL0CountLocked() {
  l0_files_.store(levels_.NumFiles(0), std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Scrub & quarantine
// ---------------------------------------------------------------------------

void KVStore::QuarantinePath(const std::string& path, const Status& cause) {
  IOTDB_LOG(Error) << "quarantining corrupt file " << path << ": "
                   << cause.ToString();
  uint64_t size = 0;
  auto size_result = env_->FileSize(path);
  if (size_result.ok()) size = size_result.ValueOrDie();
  // The ".quarantined" suffix keeps the file out of every live-file scan
  // (ParseFileName no longer sees an "sst"/"log" suffix) while preserving
  // the bytes for forensics.
  Status rename = env_->RenameFile(path, path + ".quarantined");
  if (!rename.ok()) {
    IOTDB_LOG(Error) << "quarantine rename failed for " << path << ": "
                     << rename.ToString();
  }
  counters_.quarantined_files.Increment();
  if (obs::Enabled()) {
    obs_.quarantine_files->Increment();
    obs_.quarantine_bytes->Add(size);
  }
  if (options_.corruption_reporter != nullptr) {
    options_.corruption_reporter->OnQuarantine(path, cause);
  }
}

bool KVStore::QuarantineFileLocked(const std::shared_ptr<FileMeta>& meta,
                                   const Status& cause) {
  bool removed = false;
  for (int level = 0; level < kNumLevels && !removed; ++level) {
    auto& files = levels_.files[level];
    auto it = std::find(files.begin(), files.end(), meta);
    if (it != files.end()) {
      files.erase(it);
      removed = true;
    }
  }
  if (!removed) return false;  // already quarantined or compacted away
  SyncL0CountLocked();
  QuarantinePath(TableFileName(meta->number), cause);
  WriteManifest().ok();  // quarantine must survive a restart; best effort
  return true;
}

void KVStore::RecordTableScrub(uint64_t bytes, bool corrupt) {
  counters_.scrubbed_files.Increment();
  if (obs::Enabled()) {
    obs_.scrub_files_checked->Increment();
    obs_.scrub_bytes_checked->Add(bytes);
    if (corrupt) obs_.scrub_corruption_detected->Increment();
  }
}

void KVStore::QuarantineCorruptTables(std::unique_lock<std::mutex>* lock,
                                      ScrubReport* report) {
  std::vector<std::shared_ptr<FileMeta>> files;
  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& f : levels_.files[level]) files.push_back(f);
  }

  lock->unlock();
  // Tables are immutable: verify without the lock so reads and writes
  // proceed while the scrub walks checksums.
  std::vector<std::pair<std::shared_ptr<FileMeta>, Status>> corrupt;
  for (const auto& f : files) {
    uint64_t bytes = 0;
    Status s = f->table->VerifyIntegrity(&bytes);
    report->files_checked++;
    report->bytes_checked += bytes;
    RecordTableScrub(bytes, !s.ok());
    if (!s.ok()) {
      report->corrupt_files++;
      report->corrupt_paths.push_back(TableFileName(f->number));
      corrupt.emplace_back(f, s);
    }
  }
  lock->lock();

  for (const auto& [meta, cause] : corrupt) {
    if (QuarantineFileLocked(meta, cause)) report->quarantined_files++;
  }
}

bool KVStore::IsLiveTableFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& f : levels_.files[level]) {
      if (TableFileName(f->number) == path) return true;
    }
  }
  return false;
}

Status KVStore::VerifyWalTail(int shard, uint64_t number,
                              uint64_t* dropped_bytes) {
  const std::string path = WalFileName(shard, number);
  IOTDB_ASSIGN_OR_RETURN(auto file, env_->NewSequentialFile(path));
  LogCorruptionReporter reporter;
  log::Reader reader(file.get(), &reporter, /*checksum=*/true, path);
  Slice record;
  std::string scratch;
  while (reader.ReadRecord(&record, &scratch)) {
  }
  *dropped_bytes += reporter.dropped_bytes;
  return Status::OK();
}

Status KVStore::VerifyIntegrity(ScrubReport* report) {
  obs::TraceSpan verify_span("storage.scrub.verify", nullptr,
                             options_.clock);
  ScrubReport local;
  ScrubReport* rep = report != nullptr ? report : &local;

  std::unique_lock<std::mutex> lock(mu_);
  // Walk each shard's live WAL tail holding that shard's mutex with its
  // leader drained, so the flushed prefix is stable under the walk. The
  // live WAL is checked but never quarantined: its records also live in
  // the memtable, and rotation retires it naturally.
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> shard_lock(shard->mu);
    shard->cv.wait(shard_lock, [&] { return !shard->leader_active; });
    if (shard->log_file == nullptr) continue;
    shard->log_file->Flush().ok();
    uint64_t number = shard->log_number;
    IOTDB_RETURN_NOT_OK(
        VerifyWalTail(shard->id, number, &rep->wal_dropped_bytes));
    // The WAL tail walk is scrub work too: count its bytes so the paced
    // scrub accounting (and the FDR injected-vs-detected math) stays honest.
    auto wal_size = env_->FileSize(WalFileName(shard->id, number));
    if (wal_size.ok()) {
      rep->bytes_checked += wal_size.ValueOrDie();
      if (obs::Enabled()) {
        obs_.scrub_bytes_checked->Add(wal_size.ValueOrDie());
      }
    }
  }
  QuarantineCorruptTables(&lock, rep);
  if (options_.value_separation) {
    VerifyVlogFiles(&lock, rep);
  }
  return Status::OK();
}

Status KVStore::ScrubOneQueued(std::unique_lock<std::mutex>* lock) {
  std::shared_ptr<FileMeta> meta;
  while (meta == nullptr && !pending_scrub_.empty()) {
    uint64_t number = pending_scrub_.front();
    pending_scrub_.pop_front();
    for (int level = 0; level < kNumLevels && meta == nullptr; ++level) {
      for (const auto& f : levels_.files[level]) {
        if (f->number == number) {
          meta = f;
          break;
        }
      }
    }
  }
  if (meta == nullptr) return Status::OK();  // compacted away meanwhile

  lock->unlock();
  obs::TraceSpan scrub_span("storage.scrub.file", nullptr, options_.clock);
  uint64_t bytes = 0;
  Status s = meta->table->VerifyIntegrity(&bytes);
  scrub_span.SetArg("bytes", bytes);
  scrub_span.Stop();
  lock->lock();

  RecordTableScrub(bytes, !s.ok());
  if (!s.ok()) {
    QuarantineFileLocked(meta, s);
  }
  return Status::OK();  // a corrupt finding is healed, not a background error
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Status KVStore::Put(const WriteOptions& options, const Slice& key,
                    const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status KVStore::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

void KVStore::PublishSequence(SequenceNumber first, SequenceNumber last) {
  std::lock_guard<std::mutex> lock(seq_publish_mu_);
  SequenceNumber visible = visible_seq_.load(std::memory_order_relaxed);
  if (first != visible + 1) {
    // An earlier-sequenced block on another shard is still committing:
    // buffer this one so visibility stays a contiguous sequence prefix.
    pending_publish_[first] = last;
    return;
  }
  SequenceNumber newest = last;
  auto it = pending_publish_.begin();
  while (it != pending_publish_.end() && it->first == newest + 1) {
    newest = it->second;
    it = pending_publish_.erase(it);
  }
  visible_seq_.store(newest, std::memory_order_release);
}

Status KVStore::BackgroundErrorSnapshot() {
  std::lock_guard<std::mutex> lock(error_mu_);
  return background_error_;
}

void KVStore::SetBackgroundError(const Status& s) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (background_error_.ok()) background_error_ = s;
}

void KVStore::NotifyAllShards() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->cv.notify_all();
  }
}

std::vector<std::unique_lock<std::mutex>> KVStore::FreezeAllShards() {
  // Ascending index order (the only multi-shard acquisition in the store).
  // Waiting out a leader is safe: an active leader finishes with only its
  // own shard mutex (it clears leader_active before ever touching mu_),
  // and no new leader can start on a shard whose mutex we already hold.
  std::vector<std::unique_lock<std::mutex>> guards;
  guards.reserve(shards_.size());
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> shard_lock(shard->mu);
    shard->cv.wait(shard_lock, [&] { return !shard->leader_active; });
    guards.push_back(std::move(shard_lock));
  }
  return guards;
}

Status KVStore::Write(const WriteOptions& options, WriteBatch* batch) {
  const int nshards = static_cast<int>(shards_.size());
  if (nshards == 1 || batch->Count() <= 1) {
    int target = 0;
    if (nshards > 1 && batch->Count() == 1) {
      // Single-entry batch: route it whole, no split needed.
      class FirstKey final : public WriteBatch::Handler {
       public:
        void Put(const Slice& key, const Slice&) override { Capture(key); }
        void Delete(const Slice& key) override { Capture(key); }
        std::string key;
        bool has = false;

       private:
        void Capture(const Slice& k) {
          if (!has) {
            key = k.ToString();
            has = true;
          }
        }
      } first;
      batch->Iterate(&first).ok();
      if (first.has) target = ShardForKey(Slice(first.key));
    }
    return CommitToShard(shards_[target].get(), options, batch);
  }

  // Split by shard. Each per-shard sub-batch commits atomically on its own
  // WAL partition; cross-shard visibility is published in sequence order
  // as the sub-batches complete (see the header contract).
  std::vector<WriteBatch> parts(static_cast<size_t>(nshards));
  class Splitter final : public WriteBatch::Handler {
   public:
    Splitter(const KVStore* store, std::vector<WriteBatch>* parts)
        : store_(store), parts_(parts) {}

    void Put(const Slice& key, const Slice& value) override {
      (*parts_)[store_->ShardForKey(key)].Put(key, value);
    }

    void Delete(const Slice& key) override {
      (*parts_)[store_->ShardForKey(key)].Delete(key);
    }

   private:
    const KVStore* const store_;
    std::vector<WriteBatch>* const parts_;
  } splitter(this, &parts);
  IOTDB_RETURN_NOT_OK(batch->Iterate(&splitter));

  int only_shard = -1;
  int populated = 0;
  for (int i = 0; i < nshards; ++i) {
    if (parts[i].Count() > 0) {
      only_shard = i;
      populated++;
    }
  }
  if (populated == 0) {
    return CommitToShard(shards_[0].get(), options, batch);
  }
  if (populated == 1) {
    // All keys landed on one shard: commit the caller's batch unsplit so
    // its exact entry order (and full atomicity) is preserved.
    return CommitToShard(shards_[only_shard].get(), options, batch);
  }
  Status status;
  for (int i = 0; i < nshards && status.ok(); ++i) {
    if (parts[i].Count() == 0) continue;
    status = CommitToShard(shards_[i].get(), options, &parts[i]);
  }
  return status;
}

Status KVStore::PutMany(const WriteOptions& options,
                        std::span<const KvEntry> entries) {
  if (entries.empty()) return Status::OK();
  const int nshards = static_cast<int>(shards_.size());
  if (nshards == 1) {
    WriteBatch batch;
    for (const KvEntry& e : entries) batch.Put(e.key, e.value);
    return CommitToShard(shards_[0].get(), options, &batch);
  }
  // One routing pass, one group commit per populated shard.
  std::vector<WriteBatch> parts(static_cast<size_t>(nshards));
  for (const KvEntry& e : entries) {
    parts[ShardForKey(e.key)].Put(e.key, e.value);
  }
  Status status;
  for (int i = 0; i < nshards && status.ok(); ++i) {
    if (parts[i].Count() == 0) continue;
    status = CommitToShard(shards_[i].get(), options, &parts[i]);
  }
  return status;
}

Status KVStore::CommitToShard(WriteShard* shard, const WriteOptions& options,
                              WriteBatch* batch) {
  WriterState w(batch, options.sync || options_.wal_sync);
  const bool tracing = obs::TraceBuffer::Enabled();
  if (tracing) w.ctx = obs::CurrentTraceContext();
  // Attribution: time queued behind the shard's leader (for a follower
  // that is the op's whole storage latency — the leader commits its rows).
  // Clock reads are gated on an installed breadcrumb so unattributed ops
  // pay only the TLS load.
  obs::OpBreadcrumb* bc = obs::CurrentBreadcrumb();
  const uint64_t queue_t0 = bc != nullptr ? options_.clock->NowMicros() : 0;

  std::unique_lock<std::mutex> lock(shard->mu);
  shard->writers.push_back(&w);
  while (!w.done && &w != shard->writers.front()) {
    w.cv.wait(lock);
  }
  if (w.done) {
    if (bc != nullptr) {
      obs::AddStageMicros(obs::Stage::kShardQueueWait,
                          options_.clock->NowMicros() - queue_t0);
    }
    return w.status;
  }

  // This thread is the shard's group-commit leader. Write stalls
  // (MakeRoomForWrite) count as queue wait too: time the op spent blocked
  // before its commit could proceed.
  bool switched = false;
  Status status = MakeRoomForWrite(shard, &lock, &switched);
  if (bc != nullptr) {
    obs::AddStageMicros(obs::Stage::kShardQueueWait,
                        options_.clock->NowMicros() - queue_t0);
  }
  WriterState* last_writer = &w;
  bool separated_commit = false;
  uint64_t group_commit_ts = 0;  // WAL-commit wall time, for follower links
  if (status.ok()) {
    WriteBatch* updates = BuildBatchGroup(shard, &last_writer);
    const int batch_count = updates->Count();
    if (batch_count > 0) {
      // Sequence discipline: one fetch_add allocates the whole group's
      // block — no store mutex anywhere on the hot path.
      const SequenceNumber first_seq =
          seq_alloc_.fetch_add(static_cast<uint64_t>(batch_count),
                               std::memory_order_relaxed) +
          1;
      const SequenceNumber last_seq =
          first_seq + static_cast<SequenceNumber>(batch_count) - 1;
      updates->SetSequence(first_seq);

      // The WAL append and memtable insert happen outside the shard mutex:
      // new writers queue behind last_writer, and only the leader touches
      // this shard's log. leader_active keeps memtable switches (and the
      // GC freeze) from pulling the shard out from under us.
      shard->leader_active = true;
      lock.unlock();
      WriteBatch* to_commit = updates;
      const uint64_t vlog_t0 =
          bc != nullptr && options_.value_separation
              ? options_.clock->NowMicros()
              : 0;
      if (options_.value_separation) {
        // Key-value separation: divert large values into the active vlog
        // file and commit a batch of pointers instead. vlog_mu_ serialises
        // leaders of different shards appending to the shared active file.
        // The vlog bytes are flushed (synced when the commit syncs)
        // *before* the WAL record referencing them, so a replayable
        // pointer always has its record on disk.
        std::lock_guard<std::mutex> vlog_lock(vlog_mu_);
        if (vlog_writer_ == nullptr) {
          // A previous roll failed to reopen the active file; retry.
          status = OpenVlogWriterVlogHeld();
        }
        if (status.ok()) {
          status = SeparateBatch(updates, &shard->sep_batch);
        }
        if (status.ok()) {
          to_commit = &shard->sep_batch;
          status = w.sync ? vlog_writer_->Sync() : vlog_writer_->Flush();
        }
        if (status.ok()) separated_commit = true;
      }
      if (vlog_t0 != 0) {
        obs::AddStageMicros(obs::Stage::kVlog,
                            options_.clock->NowMicros() - vlog_t0);
      }
      const bool observe = obs::Enabled();
      uint64_t t0 = (observe || tracing) ? options_.clock->NowMicros() : 0;
      if (status.ok()) {
        status = shard->log->AddRecord(to_commit->Contents());
      }
      uint64_t t1 = observe ? options_.clock->NowMicros() : 0;
      if (status.ok() && w.sync) {
        status = shard->log_file->Sync();
      } else if (status.ok()) {
        status = shard->log_file->Flush();
      }
      uint64_t wal_end = 0;
      if (observe || tracing) {
        // One commit, two sinks, zero extra clock reads: the histograms
        // get the append/sync split, the trace ring the whole span. The
        // shard id is the span arg so a trace viewer shows group commits
        // on different shards overlapping.
        uint64_t t2 = options_.clock->NowMicros();
        wal_end = t2;
        if (observe) {
          obs_.wal_append_micros->Record(t1 - t0);
          obs_.wal_sync_micros->Record(t2 - t1);
          obs_.group_commit_kvps->Record(
              static_cast<uint64_t>(batch_count));
        }
        obs::AddStageMicros(obs::Stage::kWalSync, t2 - t0);
        group_commit_ts = t0;
        if (tracing) {
          // Link the group commit into the leader op's trace (when it has
          // one); queued followers are flow-linked in the handoff loop
          // below.
          obs::TraceBuffer::Record("storage.wal.group_commit", t0, t2 - t0,
                                   w.ctx.valid() ? w.ctx.Child()
                                                 : obs::TraceContext(),
                                   "shard",
                                   static_cast<uint64_t>(shard->id));
        }
      }
      if (status.ok()) {
        status = to_commit->InsertInto(shard->mem);
      }
      const uint64_t wal_bytes = to_commit->Contents().size();
      // Publish even when the commit failed (the pre-shard store burned
      // failed groups' sequences too): an unpublished hole would stall
      // every later block's visibility forever.
      PublishSequence(first_seq, last_seq);
      if (bc != nullptr && wal_end != 0) {
        // Commit wait: memtable insert + sequence publication, the leader
        // work after the WAL hits disk.
        obs::AddStageMicros(obs::Stage::kCommitWait,
                            options_.clock->NowMicros() - wal_end);
      }
      lock.lock();
      shard->leader_active = false;
      shard->cv.notify_all();

      if (status.ok()) {
        shard->puts.Add(static_cast<uint64_t>(batch_count));
        shard->wal_bytes.Add(wal_bytes);
        counters_.puts.Add(static_cast<uint64_t>(batch_count));
        if (observe) {
          obs_.puts->Add(static_cast<uint64_t>(batch_count));
          shard->obs_puts->Add(static_cast<uint64_t>(batch_count));
          shard->obs_wal_bytes->Add(wal_bytes);
        }
      }
    }
    if (updates == &shard->tmp_batch) shard->tmp_batch.Clear();
    shard->sep_batch.Clear();
  }

  while (true) {
    WriterState* ready = shard->writers.front();
    shard->writers.pop_front();
    if (ready != &w) {
      if (tracing && ready->ctx.valid() && group_commit_ts != 0) {
        // Leader handoff: this follower's rows rode the leader's group
        // commit. A zero-duration join event parented under the follower's
        // op keeps its trace flow-connected across the handoff.
        obs::TraceBuffer::Record("storage.group_commit.join",
                                 group_commit_ts, 0, ready->ctx.Child(),
                                 "shard", static_cast<uint64_t>(shard->id));
      }
      ready->status = status;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last_writer) break;
  }
  if (!shard->writers.empty()) {
    shard->writers.front()->cv.notify_one();
  }
  lock.unlock();

  // Store-level follow-up that needs mu_ — never taken while a shard mutex
  // is held: schedule the flush of a switched-out memtable, roll the vlog.
  if (switched || separated_commit) {
    std::lock_guard<std::mutex> store_lock(mu_);
    if (separated_commit && status.ok()) {
      // A failed reopen leaves no active writer and the next leader's
      // commit retries. The committed write itself succeeded.
      Status roll = MaybeRollVlogLocked();
      if (!roll.ok()) {
        IOTDB_LOG(Error) << "vlog roll failed: " << roll.ToString();
      }
    }
    MaybeScheduleBackgroundWork();
  }
  return status;
}

WriteBatch* KVStore::BuildBatchGroup(WriteShard* shard,
                                     WriterState** last_writer) {
  assert(!shard->writers.empty());
  WriterState* first = shard->writers.front();
  WriteBatch* result = first->batch;

  size_t size = first->batch->ApproximateSize();
  // Small writes get a smaller group limit to keep their latency down.
  size_t max_size = kMaxGroupCommitBytes;
  if (size <= 128 * 1024) {
    max_size = size + 128 * 1024;
  }

  *last_writer = first;
  auto iter = shard->writers.begin();
  ++iter;  // skip first
  for (; iter != shard->writers.end(); ++iter) {
    WriterState* w = *iter;
    if (w->sync && !first->sync) break;  // don't escalate sync scope
    size += w->batch->ApproximateSize();
    if (size > max_size) break;
    if (result == first->batch) {
      // Switch to the scratch batch so we don't mutate the caller's.
      result = &shard->tmp_batch;
      assert(result->Count() == 0);
      result->Append(*first->batch);
    }
    result->Append(*w->batch);
    *last_writer = w;
  }
  return result;
}

Status KVStore::MakeRoomForWrite(WriteShard* shard,
                                 std::unique_lock<std::mutex>* lock,
                                 bool* switched) {
  uint64_t stall_start = 0;
  for (;;) {
    Status err = BackgroundErrorSnapshot();
    if (!err.ok()) return err;
    if (shard->mem->ApproximateMemoryUsage() <= options_.write_buffer_size) {
      break;
    }
    if (shard->imm != nullptr) {
      // Previous memtable still flushing: stall.
      if (stall_start == 0) stall_start = options_.clock->NowMicros();
      shard->cv.wait(*lock);
      continue;
    }
    if (l0_files_.load(std::memory_order_acquire) >=
        static_cast<uint64_t>(options_.l0_stall_trigger)) {
      if (stall_start == 0) stall_start = options_.clock->NowMicros();
      shard->cv.wait(*lock);
      continue;
    }
    IOTDB_RETURN_NOT_OK(SwitchMemTable(shard));
    // Scheduling the flush needs mu_; the leader does it after its commit,
    // with the shard mutex released (see CommitToShard).
    *switched = true;
  }
  if (stall_start != 0) {
    uint64_t stalled = options_.clock->NowMicros() - stall_start;
    counters_.write_stall_micros.Add(stalled);
    shard->stall_micros.Add(stalled);
    if (obs::Enabled()) {
      obs_.write_stalls->Increment();
      obs_.write_stall_micros->Add(stalled);
      shard->obs_stall_micros->Add(stalled);
    }
  }
  return Status::OK();
}

Status KVStore::SwitchMemTable(WriteShard* shard) {
  assert(shard->imm == nullptr);
  // Start a fresh WAL partition for the new memtable.
  uint64_t new_log_number =
      next_file_number_.fetch_add(1, std::memory_order_relaxed);
  IOTDB_ASSIGN_OR_RETURN(
      auto new_log_file,
      env_->NewWritableFile(WalFileName(shard->id, new_log_number)));
  if (shard->log_file != nullptr) shard->log_file->Close();
  shard->log_file = std::move(new_log_file);
  shard->log = std::make_unique<log::Writer>(shard->log_file.get());
  shard->log_number = new_log_number;
  // wal_keep is NOT advanced here: the outgoing memtable's records live in
  // the old partition until FlushShard installs their table.

  shard->imm = shard->mem;
  shard->has_imm.store(true, std::memory_order_release);
  shard->mem = new MemTable(icmp_);
  shard->mem->Ref();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Background flush & compaction
// ---------------------------------------------------------------------------

void KVStore::MaybeScheduleBackgroundWork() {
  if (background_scheduled_ || shutting_down_) return;
  bool any_imm = false;
  for (const auto& shard : shards_) {
    if (shard->has_imm.load(std::memory_order_acquire)) {
      any_imm = true;
      break;
    }
  }
  if (!any_imm && !NeedsCompaction() && pending_scrub_.empty() &&
      pending_vlog_scrub_.empty() && !NeedsVlogGcLocked()) {
    return;
  }
  background_scheduled_ = true;
  background_pool_->Submit([this] { BackgroundCall(); });
}

void KVStore::BackgroundCall() {
  std::unique_lock<std::mutex> lock(mu_);
  assert(background_scheduled_);
  if (!shutting_down_) {
    Status s;
    WriteShard* flush_shard = nullptr;
    for (auto& shard : shards_) {
      if (shard->has_imm.load(std::memory_order_acquire)) {
        flush_shard = shard.get();
        break;
      }
    }
    if (flush_shard != nullptr) {
      s = FlushShard(flush_shard, &lock);
    } else if (NeedsCompaction()) {
      s = RunCompaction(&lock);
    } else if (!pending_scrub_.empty()) {
      // Idle cycle: pace the background scrubber between compactions.
      s = ScrubOneQueued(&lock);
    } else if (!pending_vlog_scrub_.empty()) {
      s = ScrubOneVlogQueued(&lock);
    } else if (NeedsVlogGcLocked()) {
      // One tail file per idle cycle, paced like the background scrub.
      s = GarbageCollectLocked(&lock, /*chunk_size=*/1, nullptr);
    }
    if (!s.ok()) {
      IOTDB_LOG(Error) << "background work failed: " << s.ToString();
      if (s.IsCorruption()) {
        // A corrupt input must not poison the store forever: quarantine
        // whatever fails verification and let the retry run against the
        // survivors. Zero quarantines means every live table is clean —
        // the corrupt input was already quarantined out from under this
        // work unit (e.g. by a concurrent scrub), so a retry succeeds;
        // bounded, because rot that keeps reappearing on clean tables
        // means the media corrupts faster than we can quarantine.
        ScrubReport report;
        QuarantineCorruptTables(&lock, &report);
        if (report.quarantined_files > 0) {
          background_corruption_retries_ = 0;
        } else if (++background_corruption_retries_ > 3) {
          SetBackgroundError(s);
        }
      } else {
        SetBackgroundError(s);
      }
    } else {
      background_corruption_retries_ = 0;
    }
    UpdateShardImbalanceGauge();
  }
  background_scheduled_ = false;
  MaybeScheduleBackgroundWork();
  background_work_finished_cv_.notify_all();
  lock.unlock();
  // Stall and error waiters park on their shard's condvar; the state they
  // wait on (L0 counts, background errors, compaction progress) changes
  // under mu_, so fan the wakeup out to every shard.
  NotifyAllShards();
}

Status KVStore::FlushShard(WriteShard* shard,
                           std::unique_lock<std::mutex>* lock) {
  MemTable* imm;
  uint64_t wal_number;
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    imm = shard->imm;
    // The current partition started exactly when this imm was switched
    // out, so everything the imm holds lives in partitions before it. No
    // switch can interleave with the flush: switching needs imm == null.
    wal_number = shard->log_number;
  }
  if (imm == nullptr) return Status::OK();
  uint64_t file_number =
      next_file_number_.fetch_add(1, std::memory_order_relaxed);

  lock->unlock();
  obs::TraceSpan flush_span("storage.flush", nullptr, options_.clock);
  // The immutable memtable cannot change; build its table without the lock.
  Status s;
  std::shared_ptr<FileMeta> meta;
  {
    Options table_options = options_;
    table_options.comparator = &icmp_;
    auto file_result = env_->NewWritableFile(TableFileName(file_number));
    if (!file_result.ok()) {
      s = file_result.status();
    } else {
      auto file = std::move(file_result).MoveValueUnsafe();
      TableBuilder builder(table_options, file.get());
      auto iter = imm->NewIterator();
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        builder.Add(iter->key(), iter->value());
      }
      if (builder.NumEntries() > 0) {
        s = builder.Finish();
        if (s.ok()) s = file->Sync();
        if (s.ok()) s = file->Close();
        if (s.ok()) s = OpenTable(file_number, &meta);
      } else {
        builder.Abandon();
        file->Close();
        env_->RemoveFile(TableFileName(file_number)).ok();
      }
    }
  }
  if (meta != nullptr) flush_span.SetArg("bytes", meta->file_size);
  flush_span.Stop();
  lock->lock();

  if (!s.ok()) return s;
  if (meta != nullptr) {
    // Newest L0 file goes first.
    levels_.files[0].insert(levels_.files[0].begin(), meta);
    SyncL0CountLocked();
    counters_.memtable_flushes.Increment();
    counters_.bytes_flushed.Add(meta->file_size);
    if (obs::Enabled()) {
      obs_.memtable_flushes->Increment();
      obs_.bytes_flushed->Add(meta->file_size);
    }
    if (options_.background_scrub) pending_scrub_.push_back(meta->number);
  }
  {
    // Retire the imm and advance the WAL keep threshold in one critical
    // section, after the table is installed in the version set: a manifest
    // written by any mu_ holder sees either the old threshold (and keeps
    // the flushed records' partition) or the new one plus the table.
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->imm = nullptr;
    shard->has_imm.store(false, std::memory_order_release);
    shard->wal_keep.store(wal_number, std::memory_order_release);
    shard->cv.notify_all();
  }
  imm->Unref();
  IOTDB_RETURN_NOT_OK(WriteManifest());
  RemoveObsoleteFiles();
  return Status::OK();
}

bool KVStore::NeedsCompaction() const {
  if (levels_.NumFiles(0) >=
      static_cast<uint64_t>(options_.l0_compaction_trigger)) {
    return true;
  }
  for (int level = 1; level < kNumLevels - 1; ++level) {
    if (levels_.LevelBytes(level) > MaxBytesForLevel(level)) return true;
  }
  return false;
}

std::vector<std::shared_ptr<FileMeta>> KVStore::FilesOverlappingRange(
    int level, const Slice& begin_user_key,
    const Slice& end_user_key) const {
  std::vector<std::shared_ptr<FileMeta>> result;
  for (const auto& f : levels_.files[level]) {
    if (FileOverlapsRange(icmp_, *f, begin_user_key, end_user_key)) {
      result.push_back(f);
    }
  }
  return result;
}

bool KVStore::IsBaseLevelForKey(int output_level,
                                const Slice& user_key) const {
  const Comparator* ucmp = icmp_.user_comparator();
  for (int level = output_level + 1; level < kNumLevels; ++level) {
    for (const auto& f : levels_.files[level]) {
      if (ucmp->Compare(user_key, ExtractUserKey(Slice(f->smallest))) >= 0 &&
          ucmp->Compare(user_key, ExtractUserKey(Slice(f->largest))) <= 0) {
        return false;
      }
    }
  }
  return true;
}

Status KVStore::RunCompaction(std::unique_lock<std::mutex>* lock) {
  // Pick the compaction level.
  int level = -1;
  if (levels_.NumFiles(0) >=
      static_cast<uint64_t>(options_.l0_compaction_trigger)) {
    level = 0;
  } else {
    for (int l = 1; l < kNumLevels - 1; ++l) {
      if (levels_.LevelBytes(l) > MaxBytesForLevel(l)) {
        level = l;
        break;
      }
    }
  }
  if (level < 0) return Status::OK();
  return RunCompactionAtLevel(level, lock);
}

Status KVStore::RunCompactionAtLevel(int level,
                                     std::unique_lock<std::mutex>* lock) {
  if (levels_.files[level].empty()) return Status::OK();
  // Level inputs: all of L0 (ranges overlap), or the first file of a deeper
  // level (round-robin would be fairer; first-file is adequate here because
  // the IoT workload appends mostly-ascending keys).
  std::vector<std::shared_ptr<FileMeta>> inputs;
  if (level == 0) {
    inputs = levels_.files[0];
  } else {
    inputs.push_back(levels_.files[level].front());
  }
  assert(!inputs.empty());

  // Compute the user-key range of the inputs.
  const Comparator* ucmp = icmp_.user_comparator();
  std::string begin = ExtractUserKey(Slice(inputs[0]->smallest)).ToString();
  std::string end = ExtractUserKey(Slice(inputs[0]->largest)).ToString();
  for (const auto& f : inputs) {
    Slice s = ExtractUserKey(Slice(f->smallest));
    Slice l = ExtractUserKey(Slice(f->largest));
    if (ucmp->Compare(s, Slice(begin)) < 0) begin = s.ToString();
    if (ucmp->Compare(l, Slice(end)) > 0) end = l.ToString();
  }

  const int output_level = level + 1;
  std::vector<std::shared_ptr<FileMeta>> next_inputs =
      FilesOverlappingRange(output_level, Slice(begin), Slice(end));

  // Trivial move: a single input with no overlap below. Disallowed when a
  // compaction filter is configured — the file must be rewritten so the
  // filter sees its entries.
  if (inputs.size() == 1 && next_inputs.empty() &&
      options_.compaction_filter == nullptr) {
    auto moved = inputs[0];
    auto& src = levels_.files[level];
    src.erase(std::remove(src.begin(), src.end(), moved), src.end());
    auto& dst = levels_.files[output_level];
    auto pos = std::lower_bound(
        dst.begin(), dst.end(), moved, [this](const auto& a, const auto& b) {
          return icmp_.Compare(Slice(a->smallest), Slice(b->smallest)) < 0;
        });
    dst.insert(pos, moved);
    SyncL0CountLocked();
    counters_.compactions.Increment();
    if (obs::Enabled()) obs_.compactions->Increment();
    IOTDB_RETURN_NOT_OK(WriteManifest());
    return Status::OK();
  }

  SequenceNumber smallest_snapshot = SmallestSnapshot();

  std::vector<std::shared_ptr<FileMeta>> all_inputs = inputs;
  all_inputs.insert(all_inputs.end(), next_inputs.begin(), next_inputs.end());

  lock->unlock();
  obs::TraceSpan compaction_span("storage.compaction", nullptr,
                                 options_.clock);
  // Merge outside the lock: input tables are immutable.
  Status s;
  std::vector<std::shared_ptr<FileMeta>> outputs;
  uint64_t bytes_read = 0;
  // Dead-byte estimates learned from dropped value pointers; applied to the
  // vlog bookkeeping at install time (under mu_) to gate background GC.
  std::map<uint64_t, uint64_t> vlog_dead;
  {
    std::vector<std::unique_ptr<Iterator>> children;
    for (const auto& f : all_inputs) {
      children.push_back(f->table->NewIterator(ReadOptions()));
      bytes_read += f->file_size;
    }
    auto merged = NewMergingIterator(&icmp_, std::move(children));

    Options table_options = options_;
    table_options.comparator = &icmp_;

    std::unique_ptr<WritableFile> out_file;
    std::unique_ptr<TableBuilder> builder;
    uint64_t out_number = 0;
    std::string current_user_key;
    bool has_current_user_key = false;
    SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

    auto finish_output = [&]() -> Status {
      if (builder == nullptr) return Status::OK();
      uint64_t entries = builder->NumEntries();
      Status fs = builder->Finish();
      if (fs.ok()) fs = out_file->Sync();
      if (fs.ok()) fs = out_file->Close();
      builder.reset();
      out_file.reset();
      if (fs.ok() && entries > 0) {
        std::shared_ptr<FileMeta> meta;
        fs = OpenTable(out_number, &meta);
        if (fs.ok()) outputs.push_back(std::move(meta));
      }
      return fs;
    };

    for (merged->SeekToFirst(); s.ok() && merged->Valid(); merged->Next()) {
      Slice key = merged->key();
      ParsedInternalKey ikey;
      bool drop = false;
      if (!ParseInternalKey(key, &ikey)) {
        // Keep unparsable keys verbatim (mirrors LevelDB's safety choice).
        current_user_key.clear();
        has_current_user_key = false;
        last_sequence_for_key = kMaxSequenceNumber;
      } else {
        if (!has_current_user_key ||
            ucmp->Compare(ikey.user_key, Slice(current_user_key)) != 0) {
          current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
          has_current_user_key = true;
          last_sequence_for_key = kMaxSequenceNumber;
        }
        const bool newest_of_key =
            (last_sequence_for_key == kMaxSequenceNumber);
        if (last_sequence_for_key <= smallest_snapshot) {
          drop = true;  // shadowed by a newer entry of the same key
        } else if (ikey.type == ValueType::kDeletion &&
                   ikey.sequence <= smallest_snapshot &&
                   IsBaseLevelForKey(output_level, ikey.user_key)) {
          drop = true;  // tombstone with nothing underneath
        } else if (newest_of_key && ikey.type == ValueType::kValue &&
                   ikey.sequence <= smallest_snapshot &&
                   options_.compaction_filter != nullptr &&
                   IsBaseLevelForKey(output_level, ikey.user_key) &&
                   options_.compaction_filter->ShouldDrop(ikey.user_key,
                                                          merged->value())) {
          // Retention: the filter ages the entry out. Older versions in
          // this compaction fall to the shadowing rule; deeper levels hold
          // none (base-level check).
          drop = true;
        }
        last_sequence_for_key = ikey.sequence;
      }

      if (drop) {
        if (options_.value_separation) {
          vlog::ValuePointer ptr;
          if (vlog::DecodeValuePointer(merged->value(), &ptr)) {
            vlog_dead[ptr.file_no] += ptr.size;
          }
        }
        continue;
      }

      if (builder == nullptr) {
        out_number = next_file_number_.fetch_add(1, std::memory_order_relaxed);
        auto file_result = env_->NewWritableFile(TableFileName(out_number));
        if (!file_result.ok()) {
          s = file_result.status();
          break;
        }
        out_file = std::move(file_result).MoveValueUnsafe();
        builder = std::make_unique<TableBuilder>(table_options,
                                                 out_file.get());
      }
      builder->Add(key, merged->value());
      if (builder->FileSize() >= kMaxOutputFileBytes) {
        s = finish_output();
      }
    }
    if (s.ok()) s = merged->status();
    if (s.ok()) {
      s = finish_output();
    } else if (builder != nullptr) {
      builder->Abandon();
    }
  }
  compaction_span.SetArg("bytes_read", bytes_read);
  compaction_span.Stop();
  lock->lock();

  if (!s.ok()) return s;

  // Install: drop inputs, insert outputs sorted by smallest key.
  for (int l : {level, output_level}) {
    auto& files = levels_.files[l];
    files.erase(std::remove_if(files.begin(), files.end(),
                               [&](const std::shared_ptr<FileMeta>& f) {
                                 return std::find(all_inputs.begin(),
                                                  all_inputs.end(),
                                                  f) != all_inputs.end();
                               }),
                files.end());
  }
  auto& dst = levels_.files[output_level];
  for (auto& out : outputs) {
    auto pos = std::lower_bound(
        dst.begin(), dst.end(), out, [this](const auto& a, const auto& b) {
          return icmp_.Compare(Slice(a->smallest), Slice(b->smallest)) < 0;
        });
    dst.insert(pos, out);
    counters_.bytes_compacted.Add(out->file_size);
    if (obs::Enabled()) obs_.compaction_bytes_written->Add(out->file_size);
    if (options_.background_scrub) pending_scrub_.push_back(out->number);
  }
  SyncL0CountLocked();
  counters_.compactions.Increment();
  counters_.bytes_compacted.Add(bytes_read);
  if (obs::Enabled()) {
    obs_.compactions->Increment();
    obs_.compaction_bytes_read->Add(bytes_read);
  }
  for (const auto& [file_no, dead] : vlog_dead) {
    for (auto& vf : vlog_files_) {
      if (vf.number == file_no) {
        vf.dead_bytes = std::min(vf.size, vf.dead_bytes + dead);
        break;
      }
    }
  }
  IOTDB_RETURN_NOT_OK(WriteManifest());
  RemoveObsoleteFiles();
  return Status::OK();
}

SequenceNumber KVStore::SmallestSnapshot() const {
  if (snapshots_.empty()) return visible_seq_.load(std::memory_order_acquire);
  return *snapshots_.begin();
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

namespace {

struct GetState {
  const InternalKeyComparator* icmp;
  Slice user_key;
  SequenceNumber snapshot;

  bool found = false;
  SequenceNumber best_sequence = 0;
  bool is_deletion = false;
  std::string value;
};

void GetHandler(void* arg, const Slice& internal_key, const Slice& v) {
  GetState* state = static_cast<GetState*>(arg);
  ParsedInternalKey parsed;
  if (!ParseInternalKey(internal_key, &parsed)) return;
  if (state->icmp->user_comparator()->Compare(parsed.user_key,
                                              state->user_key) != 0) {
    return;
  }
  if (parsed.sequence > state->snapshot) return;
  if (state->found && parsed.sequence <= state->best_sequence) return;
  state->found = true;
  state->best_sequence = parsed.sequence;
  state->is_deletion = (parsed.type == ValueType::kDeletion);
  if (!state->is_deletion) state->value.assign(v.data(), v.size());
}

}  // namespace

Result<std::string> KVStore::Get(const ReadOptions& options,
                                 const Slice& key) {
  MemTable* mem;
  MemTable* imm;
  std::vector<std::shared_ptr<FileMeta>> candidates;
  counters_.gets.Increment();
  if (obs::Enabled()) obs_.gets->Increment();
  // The key lives in exactly one shard's memtables; tables hold entries
  // from every shard but sequence filtering keeps lookups correct.
  WriteShard* shard = shards_[ShardForKey(key)].get();
  // Snapshot before pinning any source: the visible prefix only grows, so
  // a memtable pinned afterwards holds every entry <= snapshot it ever
  // will (entries published later carry larger sequences and filter out).
  const SequenceNumber snapshot = VisibleSequence();
  // Under separation, pin the read so GC defers physical deletion of vlog
  // files this lookup may still dereference into (local classes share the
  // enclosing member function's access).
  struct ReadPin {
    KVStore* store = nullptr;
    ~ReadPin() {
      if (store != nullptr) store->OnIteratorClosed();
    }
  } pin;
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    mem = shard->mem;
    mem->Ref();
    imm = shard->imm;
    if (imm != nullptr) imm->Ref();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int level = 0; level < kNumLevels; ++level) {
      for (const auto& f : levels_.files[level]) {
        if (FileOverlapsRange(icmp_, *f, key, key)) {
          candidates.push_back(f);
        }
      }
    }
    if (options_.value_separation) {
      open_readers_++;
      pin.store = this;
    }
  }

  std::string value;
  Status s;
  Result<std::string> result = Status::NotFound("key not found");
  bool done = false;
  if (mem->Get(key, snapshot, &value, &s)) {
    result = s.ok() ? Result<std::string>(std::move(value))
                    : Result<std::string>(s);
    done = true;
  } else if (imm != nullptr && imm->Get(key, snapshot, &value, &s)) {
    result = s.ok() ? Result<std::string>(std::move(value))
                    : Result<std::string>(s);
    done = true;
  }
  mem->Unref();
  if (imm != nullptr) imm->Unref();
  if (done) {
    if (result.ok() && options_.value_separation) {
      std::string raw = std::move(result).MoveValueUnsafe();
      IOTDB_RETURN_NOT_OK(MaterializeValue(key, &raw));
      return raw;
    }
    return result;
  }

  GetState state;
  state.icmp = &icmp_;
  state.user_key = key;
  state.snapshot = snapshot;
  std::string lookup_key = MakeLookupKey(key, snapshot);
  for (const auto& f : candidates) {
    Status ts = f->table->InternalGet(options, Slice(lookup_key), &state,
                                      GetHandler);
    if (!ts.ok()) {
      if (ts.IsCorruption()) {
        // Evict the damaged table right away so it never serves another
        // read; the caller still sees the corruption and can fail over to
        // a healthy replica.
        std::lock_guard<std::mutex> lock(mu_);
        QuarantineFileLocked(f, ts);
      }
      return ts;
    }
  }
  if (!state.found || state.is_deletion) {
    return Status::NotFound("key not found");
  }
  if (options_.value_separation) {
    IOTDB_RETURN_NOT_OK(MaterializeValue(key, &state.value));
  }
  return std::move(state.value);
}

std::unique_ptr<Iterator> KVStore::NewInternalIterator(
    const ReadOptions& options,
    std::vector<std::shared_ptr<Table>>* pinned_tables,
    std::vector<MemTable*>* pinned_mems) {
  std::vector<std::unique_ptr<Iterator>> children;
  // Newest sources first so the merger prefers them on ties. Every shard's
  // memtables participate; the caller's snapshot (taken before this runs)
  // filters out entries published after it.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    children.push_back(shard->mem->NewIterator());
    shard->mem->Ref();
    pinned_mems->push_back(shard->mem);
    if (shard->imm != nullptr) {
      children.push_back(shard->imm->NewIterator());
      shard->imm->Ref();
      pinned_mems->push_back(shard->imm);
    }
  }
  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& f : levels_.files[level]) {
      children.push_back(f->table->NewIterator(options));
      pinned_tables->push_back(f->table);
    }
  }
  return NewMergingIterator(&icmp_, std::move(children));
}

/// Lazily dereferences value pointers for iteration: keys stream straight
/// from the LSM; the vlog record is only read when value() is called.
/// A failed dereference surfaces through status() and yields an empty
/// value. Registered with the store so GC defers physical deletion of
/// reclaimed vlog files while any iterator might still point into them.
class VlogDerefIterator final : public Iterator {
 public:
  VlogDerefIterator(KVStore* store, std::unique_ptr<Iterator> inner)
      : store_(store), inner_(std::move(inner)) {}

  ~VlogDerefIterator() override {
    inner_.reset();
    store_->OnIteratorClosed();
  }

  bool Valid() const override { return inner_->Valid(); }
  void SeekToFirst() override {
    inner_->SeekToFirst();
    materialized_valid_ = false;
  }
  void SeekToLast() override {
    inner_->SeekToLast();
    materialized_valid_ = false;
  }
  void Seek(const Slice& target) override {
    inner_->Seek(target);
    materialized_valid_ = false;
  }
  void Next() override {
    inner_->Next();
    materialized_valid_ = false;
  }
  void Prev() override {
    inner_->Prev();
    materialized_valid_ = false;
  }
  Slice key() const override { return inner_->key(); }

  Slice value() const override {
    if (!materialized_valid_) {
      materialized_ = inner_->value().ToString();
      Status s = store_->MaterializeValue(inner_->key(), &materialized_);
      if (!s.ok()) {
        if (deref_status_.ok()) deref_status_ = s;
        materialized_.clear();
      }
      materialized_valid_ = true;
    }
    return materialized_;
  }

  Status status() const override {
    if (!deref_status_.ok()) return deref_status_;
    return inner_->status();
  }

 private:
  KVStore* const store_;
  std::unique_ptr<Iterator> inner_;
  mutable std::string materialized_;
  mutable bool materialized_valid_ = false;
  mutable Status deref_status_;
};

std::unique_ptr<Iterator> KVStore::NewIterator(const ReadOptions& options) {
  std::vector<std::shared_ptr<Table>> pinned_tables;
  std::vector<MemTable*> pinned_mems;
  // Snapshot before pinning sources (see Get for the ordering argument).
  const SequenceNumber snapshot = VisibleSequence();
  std::unique_ptr<Iterator> internal;
  bool separated = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    internal = NewInternalIterator(options, &pinned_tables, &pinned_mems);
    if (options_.value_separation) {
      open_readers_++;
      separated = true;
    }
  }
  auto db_iter = NewDBIterator(&icmp_, std::move(internal), snapshot);
  auto pinned = std::make_unique<PinningIterator>(
      std::move(db_iter), std::move(pinned_tables), std::move(pinned_mems));
  if (separated) {
    return std::make_unique<VlogDerefIterator>(this, std::move(pinned));
  }
  return pinned;
}

Status KVStore::Scan(const ReadOptions& options, const Slice& start,
                     const Slice& end_exclusive, size_t limit,
                     std::vector<std::pair<std::string, std::string>>* out) {
  counters_.scans.Increment();
  if (obs::Enabled()) obs_.scans->Increment();
  auto iter = NewIterator(options);
  const Comparator* ucmp = icmp_.user_comparator();
  for (start.empty() ? iter->SeekToFirst() : iter->Seek(start);
       iter->Valid(); iter->Next()) {
    if (!end_exclusive.empty() &&
        ucmp->Compare(iter->key(), end_exclusive) >= 0) {
      break;
    }
    out->emplace_back(iter->key().ToString(), iter->value().ToString());
    if (limit > 0 && out->size() >= limit) break;
  }
  return iter->status();
}

SequenceNumber KVStore::GetSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  const SequenceNumber snapshot = VisibleSequence();
  snapshots_.insert(snapshot);
  return snapshot;
}

void KVStore::ReleaseSnapshot(SequenceNumber snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(snapshot);
  if (it != snapshots_.end()) snapshots_.erase(it);
  MaybeDeleteVlogFilesLocked();
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

Status KVStore::FlushMemTable() {
  // Phase 1: switch every shard with data out to an immutable memtable.
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> shard_lock(shard->mu);
    if (shard->mem->NumEntries() == 0 && shard->imm == nullptr) continue;
    if (shard->mem->NumEntries() > 0) {
      while (shard->imm != nullptr || shard->leader_active) {
        Status err = BackgroundErrorSnapshot();
        if (!err.ok()) return err;
        shard->cv.wait(shard_lock);
      }
      if (shard->mem->NumEntries() > 0) {
        IOTDB_RETURN_NOT_OK(SwitchMemTable(shard.get()));
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    MaybeScheduleBackgroundWork();
  }
  // Phase 2: wait for the background thread to drain every imm.
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> shard_lock(shard->mu);
    while (shard->imm != nullptr && BackgroundErrorSnapshot().ok()) {
      shard->cv.wait(shard_lock);
    }
  }
  return BackgroundErrorSnapshot();
}

Status KVStore::CompactAll() {
  IOTDB_RETURN_NOT_OK(FlushMemTable());
  std::unique_lock<std::mutex> lock(mu_);
  while (background_scheduled_) {
    background_work_finished_cv_.wait(lock);
  }
  // Claim the background slot so no concurrent compaction interferes.
  background_scheduled_ = true;
  Status s;
  for (int level = 0; s.ok() && level < kNumLevels - 1; ++level) {
    while (s.ok() && !levels_.files[level].empty()) {
      s = RunCompactionAtLevel(level, &lock);
    }
  }
  background_scheduled_ = false;
  MaybeScheduleBackgroundWork();
  background_work_finished_cv_.notify_all();
  lock.unlock();
  // L0 stall waiters park on their shard condvar; wake them now that the
  // level counts changed.
  NotifyAllShards();
  return s;
}

void KVStore::WaitForBackgroundWork() {
  auto any_imm = [this] {
    for (const auto& shard : shards_) {
      if (shard->has_imm.load(std::memory_order_acquire)) return true;
    }
    return false;
  };
  std::unique_lock<std::mutex> lock(mu_);
  while (background_scheduled_ || any_imm()) {
    background_work_finished_cv_.wait(lock);
  }
}

KVStoreStats KVStore::GetStats() {
  KVStoreStats stats;
  stats.puts = counters_.puts.Value();
  stats.gets = counters_.gets.Value();
  stats.scans = counters_.scans.Value();
  stats.memtable_flushes = counters_.memtable_flushes.Value();
  stats.compactions = counters_.compactions.Value();
  stats.write_stall_micros = counters_.write_stall_micros.Value();
  stats.bytes_flushed = counters_.bytes_flushed.Value();
  stats.bytes_compacted = counters_.bytes_compacted.Value();
  stats.wal_recovery_dropped_bytes =
      counters_.wal_recovery_dropped_bytes.Value();
  stats.scrubbed_files = counters_.scrubbed_files.Value();
  stats.quarantined_files = counters_.quarantined_files.Value();
  stats.vlog_appended_bytes = counters_.vlog_appended_bytes.Value();
  stats.vlog_dereferences = counters_.vlog_dereferences.Value();
  stats.vlog_gc_reclaimed_bytes = counters_.vlog_gc_reclaimed_bytes.Value();
  stats.vlog_recovery_dropped_pointers =
      counters_.vlog_recovery_dropped_pointers.Value();
  for (const auto& shard : shards_) {
    stats.shard_puts.push_back(shard->puts.Value());
    stats.shard_stall_micros.push_back(shard->stall_micros.Value());
    stats.shard_wal_bytes.push_back(shard->wal_bytes.Value());
  }
  stats.shard_imbalance_pct = UpdateShardImbalanceGauge();
  {
    // The level file lists and vlog set still need the store mutex.
    std::lock_guard<std::mutex> lock(mu_);
    for (int level = 0; level < kNumLevels; ++level) {
      stats.num_files[level] = static_cast<int>(levels_.NumFiles(level));
      stats.level_bytes[level] = levels_.LevelBytes(level);
    }
    std::lock_guard<std::mutex> vlog_lock(vlog_mu_);
    stats.vlog_files =
        vlog_files_.size() + (vlog_writer_ != nullptr ? 1 : 0);
  }
  if (block_cache_ != nullptr) {
    stats.block_cache_hits = block_cache_->hits();
    stats.block_cache_misses = block_cache_->misses();
  }
  return stats;
}

double KVStore::UpdateShardImbalanceGauge() {
  // Imbalance = hottest shard's put count as a percentage of the per-shard
  // mean; 100 means perfectly even, N*100 means one shard took everything.
  uint64_t total = 0;
  uint64_t max_puts = 0;
  for (const auto& shard : shards_) {
    uint64_t p = shard->puts.Value();
    total += p;
    max_puts = std::max(max_puts, p);
  }
  double pct = 100.0;
  if (total > 0) {
    const double mean =
        static_cast<double>(total) / static_cast<double>(shards_.size());
    pct = 100.0 * static_cast<double>(max_puts) / mean;
  }
  if (obs::Enabled()) {
    obs_.shard_imbalance->Set(static_cast<int64_t>(pct));
  }
  return pct;
}

uint64_t KVStore::CountKeysSlow() {
  auto iter = NewIterator(ReadOptions());
  uint64_t n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// Key-value separation (vlog)
// ---------------------------------------------------------------------------

std::string KVStore::VlogName(uint64_t number) const {
  return vlog::VlogFileName(dbname_, number);
}

Status KVStore::RecoverVlogFiles() {
  // Vlog files on disk that the manifest does not list as sealed: at most
  // one should exist in practice — the file that was active when the
  // previous incarnation died. Seal it at its valid record prefix; WAL
  // replay drops any pointer past that prefix (torn tail).
  IOTDB_ASSIGN_OR_RETURN(auto files, env_->ListDir(dbname_));
  for (const std::string& name : files) {
    uint64_t number;
    std::string suffix;
    if (!ParseFileName(name, &number, &suffix) || suffix != "vlog") continue;
    bool known = false;
    for (const auto& vf : vlog_files_) {
      if (vf.number == number) {
        known = true;
        break;
      }
    }
    if (known) continue;
    std::string contents;
    IOTDB_RETURN_NOT_OK(
        env_->ReadFileToString(dbname_ + "/" + name, &contents));
    Slice input(contents);
    uint64_t valid = 0;
    while (!input.empty()) {
      Slice key, value;
      uint32_t record_size = 0;
      if (!vlog::ParseRecord(&input, &key, &value, &record_size).ok()) break;
      valid += record_size;
    }
    if (valid == 0) {
      env_->RemoveFile(dbname_ + "/" + name).ok();
      continue;
    }
    if (valid < contents.size()) {
      IOTDB_LOG(Warn) << dbname_ << ": sealing crashed vlog " << name
                      << " at " << valid << "/" << contents.size()
                      << " valid bytes";
    }
    vlog_files_.push_back(vlog::VlogFileInfo{number, valid, 0});
  }
  std::sort(vlog_files_.begin(), vlog_files_.end(),
            [](const auto& a, const auto& b) { return a.number < b.number; });
  for (const auto& vf : vlog_files_) {
    // Recovery is single-threaded; a plain max-update suffices.
    if (vf.number + 1 > next_file_number_.load(std::memory_order_relaxed)) {
      next_file_number_.store(vf.number + 1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status KVStore::OpenVlogWriterLocked() {
  std::lock_guard<std::mutex> vlog_lock(vlog_mu_);
  return OpenVlogWriterVlogHeld();
}

Status KVStore::OpenVlogWriterVlogHeld() {
  uint64_t number = next_file_number_.fetch_add(1, std::memory_order_relaxed);
  IOTDB_ASSIGN_OR_RETURN(auto file, env_->NewWritableFile(VlogName(number)));
  vlog_writer_ =
      std::make_unique<vlog::VlogWriter>(std::move(file), number, 0);
  return Status::OK();
}

Status KVStore::SealActiveVlogLocked() {
  // Called with mu_ held. vlog_mu_ excludes concurrent leader appends for
  // the duration of the seal.
  uint64_t number;
  uint64_t size;
  {
    std::lock_guard<std::mutex> vlog_lock(vlog_mu_);
    if (vlog_writer_ == nullptr) return Status::OK();
    IOTDB_RETURN_NOT_OK(vlog_writer_->Sync());
    number = vlog_writer_->file_no();
    size = vlog_writer_->offset();
    vlog_writer_.reset();
  }
  if (size == 0) {
    // Nothing was ever written: drop the empty file instead of sealing it.
    env_->RemoveFile(VlogName(number)).ok();
    return Status::OK();
  }
  vlog_files_.push_back(vlog::VlogFileInfo{number, size, 0});
  if (options_.background_scrub) pending_vlog_scrub_.push_back(number);
  return Status::OK();
}

Status KVStore::MaybeRollVlogLocked() {
  {
    std::lock_guard<std::mutex> vlog_lock(vlog_mu_);
    if (vlog_writer_ == nullptr ||
        vlog_writer_->offset() < options_.vlog_file_size) {
      return Status::OK();
    }
  }
  IOTDB_RETURN_NOT_OK(SealActiveVlogLocked());
  IOTDB_RETURN_NOT_OK(OpenVlogWriterLocked());
  IOTDB_RETURN_NOT_OK(WriteManifest());
  MaybeScheduleBackgroundWork();  // the sealed file queued a scrub
  return Status::OK();
}

Status KVStore::SeparateBatch(WriteBatch* updates, WriteBatch* out) {
  // Leader-only, called under vlog_mu_ (which serialises appends to the
  // shared active vlog across shard leaders). Values at or above
  // min_value_size divert into the active vlog; everything the LSM stores
  // carries a one-byte tag so inline values and pointers coexist.
  class Separator final : public WriteBatch::Handler {
   public:
    Separator(KVStore* store, WriteBatch* out) : store_(store), out_(out) {}

    void Put(const Slice& key, const Slice& value) override {
      stored_.clear();
      if (value.size() >= store_->options_.min_value_size) {
        vlog::ValuePointer ptr;
        Status s = store_->vlog_writer_->Add(key, value, &ptr);
        if (!s.ok()) {
          if (status_.ok()) status_ = s;
          return;
        }
        vlog::EncodeValuePointer(&stored_, ptr);
        separated_records_++;
        separated_bytes_ += ptr.size;
      } else {
        stored_.reserve(value.size() + 1);
        stored_.push_back(vlog::kInlineTag);
        stored_.append(value.data(), value.size());
      }
      out_->Put(key, Slice(stored_));
    }

    void Delete(const Slice& key) override { out_->Delete(key); }

    const Status& status() const { return status_; }
    uint64_t separated_records() const { return separated_records_; }
    uint64_t separated_bytes() const { return separated_bytes_; }

   private:
    KVStore* const store_;
    WriteBatch* const out_;
    std::string stored_;
    Status status_;
    uint64_t separated_records_ = 0;
    uint64_t separated_bytes_ = 0;
  };

  out->Clear();
  Separator sep(this, out);
  IOTDB_RETURN_NOT_OK(updates->Iterate(&sep));
  IOTDB_RETURN_NOT_OK(sep.status());
  out->SetSequence(updates->sequence());
  if (sep.separated_records() > 0) {
    counters_.vlog_appended_bytes.Add(sep.separated_bytes());
    if (obs::Enabled()) {
      obs_.vlog_appended_records->Add(sep.separated_records());
      obs_.vlog_appended_bytes->Add(sep.separated_bytes());
    }
  }
  return Status::OK();
}

Status KVStore::MaterializeValue(const Slice& user_key, std::string* value) {
  if (value->empty()) {
    return Status::Corruption("separated value missing tag byte");
  }
  if ((*value)[0] == vlog::kInlineTag) {
    value->erase(0, 1);
    return Status::OK();
  }
  vlog::ValuePointer ptr;
  if (!vlog::DecodeValuePointer(Slice(*value), &ptr)) {
    return Status::Corruption("malformed value pointer");
  }
  vlog::VlogReader::DerefStats stats;
  std::string out;
  Status s = vlog_reader_->Get(ptr, user_key, &out, &stats);
  counters_.vlog_dereferences.Increment();
  if (obs::Enabled()) {
    obs_.vlog_dereferences->Increment();
    if (stats.cache_hits > 0) {
      obs_.vlog_deref_cache_hits->Add(stats.cache_hits);
    }
    if (stats.cache_misses > 0) {
      obs_.vlog_deref_cache_misses->Add(stats.cache_misses);
    }
  }
  if (!s.ok()) {
    // A rotten record poisons the whole file's trust: quarantine it so no
    // later read trips over it, and surface the error — the cluster layer
    // fails the read over to a healthy replica and repairs from there.
    if (s.IsCorruption()) QuarantineVlogFile(ptr.file_no, s);
    return s;
  }
  *value = std::move(out);
  return Status::OK();
}

Status KVStore::RawGetFrozen(const Slice& user_key, SequenceNumber snapshot,
                             bool* found, std::string* raw_value) {
  // Newest LSM version of `user_key`, tag byte and all — no vlog
  // dereference. Used by GC to decide record liveness. The caller holds
  // mu_ plus every shard mutex (FreezeAllShards), so the key's shard
  // memtables can be read without re-locking.
  *found = false;
  WriteShard* shard = shards_[ShardForKey(user_key)].get();
  std::string value;
  Status s;
  if (shard->mem->Get(user_key, snapshot, &value, &s) ||
      (shard->imm != nullptr &&
       shard->imm->Get(user_key, snapshot, &value, &s))) {
    if (s.IsNotFound()) return Status::OK();  // newest version: tombstone
    IOTDB_RETURN_NOT_OK(s);
    *found = true;
    *raw_value = std::move(value);
    return Status::OK();
  }
  GetState state;
  state.icmp = &icmp_;
  state.user_key = user_key;
  state.snapshot = snapshot;
  std::string lookup_key = MakeLookupKey(user_key, snapshot);
  for (int level = 0; level < kNumLevels; ++level) {
    for (const auto& f : levels_.files[level]) {
      if (!FileOverlapsRange(icmp_, *f, user_key, user_key)) continue;
      IOTDB_RETURN_NOT_OK(f->table->InternalGet(
          ReadOptions(), Slice(lookup_key), &state, GetHandler));
    }
  }
  if (state.found && !state.is_deletion) {
    *found = true;
    *raw_value = std::move(state.value);
  }
  return Status::OK();
}

bool KVStore::IsVlogLiveLocked(uint64_t number) const {
  for (const auto& vf : vlog_files_) {
    if (vf.number == number) return true;
  }
  std::lock_guard<std::mutex> vlog_lock(vlog_mu_);
  return vlog_writer_ != nullptr && vlog_writer_->file_no() == number;
}

bool KVStore::IsLiveVlogFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& vf : vlog_files_) {
    if (VlogName(vf.number) == path) return true;
  }
  std::lock_guard<std::mutex> vlog_lock(vlog_mu_);
  return vlog_writer_ != nullptr && VlogName(vlog_writer_->file_no()) == path;
}

bool KVStore::NeedsVlogGcLocked() const {
  if (!options_.value_separation || !options_.background_vlog_gc) {
    return false;
  }
  if (vlog_gc_running_ || vlog_files_.empty()) return false;
  const vlog::VlogFileInfo& tail = vlog_files_.front();
  if (tail.size == 0) return false;
  return static_cast<double>(tail.dead_bytes) /
             static_cast<double>(tail.size) >=
         options_.vlog_gc_dead_ratio;
}

Status KVStore::GarbageCollect(uint64_t chunk_size,
                               uint64_t* reclaimed_bytes) {
  if (reclaimed_bytes != nullptr) *reclaimed_bytes = 0;
  if (!options_.value_separation) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  while (vlog_gc_running_) {
    background_work_finished_cv_.wait(lock);
  }
  return GarbageCollectLocked(&lock, chunk_size, reclaimed_bytes);
}

Status KVStore::GarbageCollectLocked(std::unique_lock<std::mutex>* lock,
                                     uint64_t chunk_size,
                                     uint64_t* reclaimed_bytes) {
  vlog_gc_running_ = true;
  struct Running {  // clears the flag on every exit path
    KVStore* store;
    ~Running() {
      store->vlog_gc_running_ = false;
      store->background_work_finished_cv_.notify_all();
    }
  } running{this};

  obs::TraceSpan gc_span("storage.vlog.gc", nullptr, options_.clock);
  uint64_t processed = 0;
  uint64_t reclaimed_total = 0;
  uint64_t scanned_total = 0;
  uint64_t rewritten = 0;
  // One pass covers at most the files sealed when it started. GC re-puts
  // land in the active vlog, which may roll and seal *new* files mid-pass;
  // chasing those (all-live by construction) would never terminate.
  const uint64_t pass_limit =
      vlog_files_.empty() ? 0 : vlog_files_.back().number;
  Status status;
  while (status.ok() && !vlog_files_.empty() && !shutting_down_) {
    if (chunk_size > 0 && processed >= chunk_size) break;
    vlog::VlogFileInfo tail = vlog_files_.front();
    if (tail.number > pass_limit) break;

    lock->unlock();
    // The tail file is sealed (immutable): scan it without the lock.
    std::vector<vlog::GcRecord> records;
    uint64_t file_scanned = 0;
    Status scan = vlog::ScanFileForGc(env_, dbname_, tail.number, tail.size,
                                      &records, &file_scanned);
    lock->lock();

    scanned_total += file_scanned;
    if (!scan.ok()) {
      // Records past the damage may still be live: quarantine (keeps the
      // bytes for forensics and replica repair) rather than delete.
      IOTDB_LOG(Error) << "vlog GC scan of file " << tail.number
                       << " failed: " << scan.ToString();
      if (scan.IsCorruption()) {
        QuarantineVlogFileLocked(tail.number, scan);
      }
      status = scan;
      break;
    }
    // The set may have changed while unlocked (concurrent quarantine).
    if (vlog_files_.empty() || vlog_files_.front().number != tail.number) {
      continue;
    }

    {
      // The liveness check reads every shard's memtables and the re-put
      // batch must commit against the exact state it checked: freeze all
      // shards (quiesces every group-commit leader) for the duration.
      std::vector<std::unique_lock<std::mutex>> frozen = FreezeAllShards();
      std::vector<WriteBatch> rebatches(shards_.size());
      uint64_t live_bytes = 0;
      {
        std::lock_guard<std::mutex> vlog_lock(vlog_mu_);
        if (vlog_writer_ == nullptr) {
          status = OpenVlogWriterVlogHeld();
        }
        if (status.ok()) {
          // Allocated == visible while frozen (no in-flight commits), so
          // reading at the allocation frontier sees every committed entry.
          const SequenceNumber read_snapshot =
              seq_alloc_.load(std::memory_order_acquire);
          for (const auto& rec : records) {
            // Live iff the newest LSM version of the key is exactly this
            // pointer; overwritten and deleted keys fail the comparison.
            std::string expect;
            vlog::EncodeValuePointer(&expect, rec.ptr);
            bool found = false;
            std::string raw;
            status =
                RawGetFrozen(Slice(rec.key), read_snapshot, &found, &raw);
            if (!status.ok()) break;
            if (!found || raw != expect) continue;  // dead record
            vlog::ValuePointer fresh;
            status =
                vlog_writer_->Add(Slice(rec.key), Slice(rec.value), &fresh);
            if (!status.ok()) break;
            std::string stored;
            vlog::EncodeValuePointer(&stored, fresh);
            rebatches[ShardForKey(Slice(rec.key))].Put(Slice(rec.key),
                                                       Slice(stored));
            live_bytes += rec.ptr.size;
          }
          bool any_live = false;
          for (const auto& rb : rebatches) {
            if (rb.Count() > 0) {
              any_live = true;
              break;
            }
          }
          if (status.ok() && any_live) {
            // Vlog bytes durable before any WAL record that references
            // them.
            status = vlog_writer_->Sync();
          }
        }
      }
      if (!status.ok()) break;

      // Commit each shard's re-puts like a write: WAL record, then the
      // memtable, visibility published in sequence order.
      for (size_t i = 0; i < shards_.size(); ++i) {
        WriteBatch& rb = rebatches[i];
        if (rb.Count() == 0) continue;
        WriteShard* shard = shards_[i].get();
        const uint64_t count = rb.Count();
        const SequenceNumber first_seq =
            seq_alloc_.fetch_add(count, std::memory_order_relaxed) + 1;
        rb.SetSequence(first_seq);
        status = shard->log->AddRecord(rb.Contents());
        if (status.ok()) status = shard->log_file->Sync();
        if (status.ok()) status = rb.InsertInto(shard->mem);
        // Publish even on failure: the sequences are burned either way.
        PublishSequence(first_seq, first_seq + count - 1);
        if (!status.ok()) break;
        rewritten += count;
      }
      if (!status.ok()) break;

      processed += tail.size;
      reclaimed_total += tail.size - live_bytes;
    }

    // Retire the tail. Physical deletion waits for readers that may still
    // dereference the superseded pointers.
    vlog_files_.erase(vlog_files_.begin());
    for (auto it = pending_vlog_scrub_.begin();
         it != pending_vlog_scrub_.end();) {
      it = (*it == tail.number) ? pending_vlog_scrub_.erase(it) : it + 1;
    }
    vlog_pending_delete_.push_back(tail.number);
    vlog_reader_->Evict(tail.number);
    MaybeDeleteVlogFilesLocked();

    Status roll = MaybeRollVlogLocked();
    if (!roll.ok()) {
      IOTDB_LOG(Error) << "vlog roll during GC failed: " << roll.ToString();
    }
    status = WriteManifest();
  }

  counters_.vlog_gc_reclaimed_bytes.Add(reclaimed_total);
  if (obs::Enabled()) {
    obs_.vlog_gc_passes->Increment();
    obs_.vlog_gc_scanned_bytes->Add(scanned_total);
    obs_.vlog_gc_reclaimed_bytes->Add(reclaimed_total);
    obs_.vlog_gc_rewritten_records->Add(rewritten);
  }
  gc_span.SetArg("scanned_bytes", scanned_total);
  gc_span.SetArg("reclaimed_bytes", reclaimed_total);
  gc_span.Stop();
  if (reclaimed_bytes != nullptr) *reclaimed_bytes = reclaimed_total;
  return status;
}

void KVStore::QuarantineVlogFile(uint64_t number, const Status& cause) {
  std::lock_guard<std::mutex> lock(mu_);
  QuarantineVlogFileLocked(number, cause);
}

void KVStore::QuarantineVlogFileLocked(uint64_t number, const Status& cause) {
  {
    std::lock_guard<std::mutex> vlog_lock(vlog_mu_);
    if (vlog_writer_ != nullptr && vlog_writer_->file_no() == number) {
      // Seal first so no leader appends to a path that quarantine just
      // renamed away (vlog_mu_ excludes appends for this scope). Sync is
      // best effort — the file is being retired anyway.
      vlog_writer_->Sync().ok();
      vlog_files_.push_back(
          vlog::VlogFileInfo{number, vlog_writer_->offset(), 0});
      vlog_writer_.reset();
      Status reopen = OpenVlogWriterVlogHeld();
      if (!reopen.ok()) {
        // The next leader's commit retries the reopen.
        IOTDB_LOG(Error) << "vlog reopen after quarantine failed: "
                         << reopen.ToString();
      }
    }
  }
  bool was_live = false;
  for (auto it = vlog_files_.begin(); it != vlog_files_.end(); ++it) {
    if (it->number == number) {
      vlog_files_.erase(it);
      was_live = true;
      break;
    }
  }
  if (!was_live) return;  // already quarantined or reclaimed
  for (auto it = pending_vlog_scrub_.begin();
       it != pending_vlog_scrub_.end();) {
    it = (*it == number) ? pending_vlog_scrub_.erase(it) : it + 1;
  }
  vlog_reader_->Evict(number);
  QuarantinePath(VlogName(number), cause);
  WriteManifest().ok();  // quarantine must survive a restart; best effort
}

void KVStore::VerifyVlogFiles(std::unique_lock<std::mutex>* lock,
                              ScrubReport* report) {
  // Snapshot the sealed set plus the active file's flushed prefix; the
  // walk itself runs without the lock (readers and writers proceed, new
  // appends land past each file's recorded limit).
  struct Target {
    uint64_t number;
    uint64_t limit;
  };
  std::vector<Target> targets;
  for (const auto& vf : vlog_files_) {
    targets.push_back({vf.number, vf.size});
  }
  {
    std::lock_guard<std::mutex> vlog_lock(vlog_mu_);
    if (vlog_writer_ != nullptr && vlog_writer_->offset() > 0) {
      if (vlog_writer_->Flush().ok()) {
        targets.push_back({vlog_writer_->file_no(), vlog_writer_->offset()});
      }
    }
  }

  lock->unlock();
  std::vector<std::pair<Target, Status>> corrupt;
  for (const auto& t : targets) {
    uint64_t bytes = 0;
    Status s = vlog_reader_->VerifyFile(t.number, t.limit, &bytes);
    report->files_checked++;
    report->bytes_checked += bytes;
    RecordVlogScrub(bytes, !s.ok());
    if (!s.ok()) {
      report->corrupt_files++;
      report->corrupt_paths.push_back(VlogName(t.number));
      corrupt.emplace_back(t, s);
    }
  }
  lock->lock();

  for (const auto& [target, cause] : corrupt) {
    if (!IsVlogLiveLocked(target.number)) continue;  // raced GC/quarantine
    QuarantineVlogFileLocked(target.number, cause);
    report->quarantined_files++;
  }
}

Status KVStore::ScrubOneVlogQueued(std::unique_lock<std::mutex>* lock) {
  uint64_t number = 0;
  uint64_t limit = 0;
  bool found = false;
  while (!found && !pending_vlog_scrub_.empty()) {
    number = pending_vlog_scrub_.front();
    pending_vlog_scrub_.pop_front();
    for (const auto& vf : vlog_files_) {
      if (vf.number == number) {
        limit = vf.size;
        found = true;
        break;
      }
    }
  }
  if (!found) return Status::OK();  // reclaimed or quarantined meanwhile

  lock->unlock();
  obs::TraceSpan scrub_span("storage.scrub.file", nullptr, options_.clock);
  uint64_t bytes = 0;
  Status s = vlog_reader_->VerifyFile(number, limit, &bytes);
  scrub_span.SetArg("bytes", bytes);
  scrub_span.Stop();
  lock->lock();

  RecordVlogScrub(bytes, !s.ok());
  if (!s.ok() && IsVlogLiveLocked(number)) {
    QuarantineVlogFileLocked(number, s);
  }
  return Status::OK();  // a corrupt finding is healed, not a background error
}

void KVStore::RecordVlogScrub(uint64_t bytes, bool corrupt) {
  counters_.scrubbed_files.Increment();
  if (obs::Enabled()) {
    obs_.scrub_files_checked->Increment();
    obs_.scrub_bytes_checked->Add(bytes);
    if (corrupt) obs_.scrub_corruption_detected->Increment();
  }
}

void KVStore::MaybeDeleteVlogFilesLocked() {
  if (vlog_pending_delete_.empty()) return;
  if (open_readers_ > 0 || !snapshots_.empty()) return;
  for (uint64_t number : vlog_pending_delete_) {
    if (vlog_reader_ != nullptr) vlog_reader_->Evict(number);
    env_->RemoveFile(VlogName(number)).ok();
  }
  vlog_pending_delete_.clear();
}

void KVStore::OnIteratorClosed() {
  std::lock_guard<std::mutex> lock(mu_);
  open_readers_--;
  MaybeDeleteVlogFilesLocked();
}

}  // namespace storage
}  // namespace iotdb
