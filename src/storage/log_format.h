#ifndef IOTDB_STORAGE_LOG_FORMAT_H_
#define IOTDB_STORAGE_LOG_FORMAT_H_

namespace iotdb {
namespace storage {
namespace log {

/// WAL record framing (LevelDB format): the file is a sequence of 32 KiB
/// blocks; each record fragment is
///   checksum (4) | length (2) | type (1) | payload
/// and records that cross block boundaries are split into
/// kFirst/kMiddle/kLast fragments.
enum RecordType {
  kZeroType = 0,  // reserved for preallocated files
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
static constexpr int kMaxRecordType = kLastType;

static constexpr int kBlockSize = 32768;

// checksum (4) + length (2) + type (1)
static constexpr int kHeaderSize = 4 + 2 + 1;

}  // namespace log
}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_LOG_FORMAT_H_
