#ifndef IOTDB_STORAGE_CACHE_H_
#define IOTDB_STORAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace iotdb {
namespace storage {

/// Sharded LRU cache mapping string keys to shared_ptr<void> values with an
/// accounted charge, used as the SSTable block cache. Thread-safe.
class LruCache {
 public:
  explicit LruCache(size_t capacity_bytes, int shard_bits = 4);

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Inserts (replacing any prior entry) with the given charge.
  void Insert(const std::string& key, std::shared_ptr<void> value,
              size_t charge);

  /// Returns the cached value or nullptr, promoting the entry on hit.
  std::shared_ptr<void> Lookup(const std::string& key);

  void Erase(const std::string& key);

  size_t TotalCharge() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<void> value;
    size_t charge;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    size_t charge = 0;
    size_t capacity = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;

    void EvictIfNeeded();
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  std::unique_ptr<Shard[]> shards_;
  size_t num_shards_;
};

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_CACHE_H_
