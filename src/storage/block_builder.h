#ifndef IOTDB_STORAGE_BLOCK_BUILDER_H_
#define IOTDB_STORAGE_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace iotdb {
namespace storage {

class Comparator;

/// Builds an SSTable block with shared-prefix key compression and restart
/// points (LevelDB block format):
///
///   entry := varint(shared) varint(non_shared) varint(value_len)
///            key_delta value
///   block := entries... restarts[fixed32...] num_restarts[fixed32]
class BlockBuilder {
 public:
  BlockBuilder(int block_restart_interval, const Comparator* comparator);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  void Reset();

  /// Keys must be added in strictly increasing comparator order.
  void Add(const Slice& key, const Slice& value);

  /// Appends the restart array and returns the complete block contents. The
  /// returned Slice remains valid until Reset().
  Slice Finish();

  /// Current uncompressed size estimate (entries + restart array).
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const int block_restart_interval_;
  const Comparator* comparator_;

  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_;     // entries since the last restart point
  bool finished_;
  std::string last_key_;
};

}  // namespace storage
}  // namespace iotdb

#endif  // IOTDB_STORAGE_BLOCK_BUILDER_H_
