# Script mode (cmake -P): configure a thread-sanitized build of the
# cluster_net test suite in BUILD_DIR, build just that target, and run it.
# Invoked as a ctest from the normal (unsanitized) build so the quorum
# coordinator's concurrency — mailbox delivery threads, the retry/straggler
# timer, the hint drain loop, and fault-channel timers — always also runs
# under TSan; the suite links only iotdb_cluster and below, which keeps the
# nested build small enough for single-core builders.
if(NOT SOURCE_DIR OR NOT BUILD_DIR)
  message(FATAL_ERROR "usage: cmake -DSOURCE_DIR=... -DBUILD_DIR=... -P "
                      "cluster_net_tsan_tier.cmake")
endif()

message(STATUS "cluster_net_tsan tier: configuring ${BUILD_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DIOTDB_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR "cluster_net_tsan tier: configure failed (${rc})")
endif()

message(STATUS "cluster_net_tsan tier: building cluster_net_tests")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --target cluster_net_tests
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR "cluster_net_tsan tier: build failed (${rc})")
endif()

message(STATUS "cluster_net_tsan tier: running cluster_net_tests under TSan")
execute_process(
  COMMAND ${BUILD_DIR}/tests/cluster_net_tests
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR
          "cluster_net_tsan tier: cluster_net_tests failed under TSan (${rc})")
endif()
