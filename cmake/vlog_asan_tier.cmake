# Script mode (cmake -P): configure an address-sanitized build of the vlog
# test suite in BUILD_DIR, build just that target, and run it. Invoked as a
# ctest from the normal (unsanitized) build so the value-log GC and
# deferred-deletion lifetime tests always also run under ASan; the vlog
# suite links only iotdb_storage + iotdb_common, which keeps the nested
# build small enough for single-core builders.
if(NOT SOURCE_DIR OR NOT BUILD_DIR)
  message(FATAL_ERROR "usage: cmake -DSOURCE_DIR=... -DBUILD_DIR=... -P "
                      "vlog_asan_tier.cmake")
endif()

message(STATUS "vlog_asan tier: configuring ${BUILD_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DIOTDB_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR "vlog_asan tier: configure failed (${rc})")
endif()

message(STATUS "vlog_asan tier: building vlog_tests")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --target vlog_tests
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR "vlog_asan tier: build failed (${rc})")
endif()

message(STATUS "vlog_asan tier: running vlog_tests under ASan")
execute_process(
  COMMAND ${BUILD_DIR}/tests/vlog_tests
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR "vlog_asan tier: vlog_tests failed under ASan (${rc})")
endif()
