# Script mode (cmake -P): configure a thread-sanitized build of the obs
# test suite in BUILD_DIR, build just that target, and run it. Invoked as a
# ctest from the normal (unsanitized) build so the obs concurrency tests
# always also run under TSan; the obs suite links only iotdb_obs +
# iotdb_common, which keeps the nested build small enough for single-core
# builders.
if(NOT SOURCE_DIR OR NOT BUILD_DIR)
  message(FATAL_ERROR "usage: cmake -DSOURCE_DIR=... -DBUILD_DIR=... -P "
                      "obs_tsan_tier.cmake")
endif()

message(STATUS "obs_tsan tier: configuring ${BUILD_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DIOTDB_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR "obs_tsan tier: configure failed (${rc})")
endif()

message(STATUS "obs_tsan tier: building obs_tests + obs_cluster_tests")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR}
          --target obs_tests obs_cluster_tests
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR "obs_tsan tier: build failed (${rc})")
endif()

message(STATUS "obs_tsan tier: running obs_tests under TSan")
execute_process(
  COMMAND ${BUILD_DIR}/tests/obs_tests
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR "obs_tsan tier: obs_tests failed under TSan (${rc})")
endif()

# The cross-layer causal-tracing tests drive a real replicated cluster
# (driver thread -> shard group commit -> channel mailbox -> replica
# apply), exactly the cross-thread interplay TSan exists to check.
message(STATUS "obs_tsan tier: running obs_cluster_tests under TSan")
execute_process(
  COMMAND ${BUILD_DIR}/tests/obs_cluster_tests
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR
          "obs_tsan tier: obs_cluster_tests failed under TSan (${rc})")
endif()
