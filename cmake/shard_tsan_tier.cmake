# Script mode (cmake -P): configure a thread-sanitized build of the
# storage_shard test suite in BUILD_DIR, build just that target, and run
# it. Invoked as a ctest from the normal (unsanitized) build so the sharded
# write path's concurrency — per-shard group-commit leaders, block sequence
# allocation and prefix publication, memtable switches racing the
# background flusher, and the freeze-all-shards GC path — always also runs
# under TSan; the suite links only iotdb_storage and below, which keeps the
# nested build small enough for single-core builders.
if(NOT SOURCE_DIR OR NOT BUILD_DIR)
  message(FATAL_ERROR "usage: cmake -DSOURCE_DIR=... -DBUILD_DIR=... -P "
                      "shard_tsan_tier.cmake")
endif()

message(STATUS "shard_tsan tier: configuring ${BUILD_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DIOTDB_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR "shard_tsan tier: configure failed (${rc})")
endif()

message(STATUS "shard_tsan tier: building storage_shard_tests")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --target storage_shard_tests
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR "shard_tsan tier: build failed (${rc})")
endif()

message(STATUS "shard_tsan tier: running storage_shard_tests under TSan")
execute_process(
  COMMAND ${BUILD_DIR}/tests/storage_shard_tests
  RESULT_VARIABLE rc)
if(rc)
  message(FATAL_ERROR
          "shard_tsan tier: storage_shard_tests failed under TSan (${rc})")
endif()
