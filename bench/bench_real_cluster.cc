// Real-execution companion to the model-based figure benches: runs the
// actual TPCx-IoT kit (real drivers, real queries) against the real
// in-process gateway cluster (real LSM stores, real replication) at 2, 4,
// and 8 nodes on THIS host. Numbers depend on the build machine — the
// point is that the entire code path the paper describes executes natively
// end to end, not just in the calibrated model.
//
//   --kvps=N            total kvps per run (default 40000)
//   --subs=N            substations (default 2)
//   --metrics-out=FILE  obs registry snapshot (JSON) across all runs
//   --timeline-out=FILE per-second registry-delta timeline (JSON) across
//                       all runs
//   --trace-out=FILE    span trace (Chrome trace_event JSON, open in
//                       Perfetto) across all runs
//   --scrub             enable background scrubbing on every store and run a
//                       full integrity verification after each cluster's runs
//   --net-faults        route replication through a seeded FaultChannel and
//                       slow one replica by 50 ms per message: writes keep
//                       meeting quorum on the fast replicas while the
//                       straggler's rows arrive as hinted handoff; prints
//                       quorum-met vs hinted so the graceful-degradation
//                       path is visible (cross-check the FDR Availability
//                       section)
//   --slowops-out=FILE  slow-op flight recorder of the last measured
//                       execution (JSON, per-stage breakdowns)
//   --report-dir=DIR    write the FDR artefacts (executive summary, full
//                       disclosure report, metrics/timeline/slowops JSON)
//                       per cluster size into DIR/n<nodes>/; the FDR gains
//                       the "Latency attribution" section
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "iot/benchmark_driver.h"
#include "iot/report.h"
#include "obs/metrics.h"
#include "storage/env.h"

using namespace iotdb;  // NOLINT — bench brevity

int main(int argc, char** argv) {
  uint64_t total_kvps = 40000;
  int substations = 2;
  int write_shards = 0;  // 0 = auto (hardware concurrency)
  bool scrub = false;
  bool net_faults = false;
  std::string report_dir;
  // Shared flags (--metrics-out/--timeline-out/--trace-out) come from
  // benchutil; ParseArgs ignores this bench's own flags and vice versa.
  benchutil::Args args = benchutil::ParseArgs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--kvps=", 7) == 0) {
      total_kvps = strtoull(argv[i] + 7, nullptr, 10);
    } else if (strncmp(argv[i], "--subs=", 7) == 0) {
      substations = atoi(argv[i] + 7);
    } else if (strncmp(argv[i], "--write-shards=", 15) == 0) {
      write_shards = atoi(argv[i] + 15);
    } else if (strcmp(argv[i], "--scrub") == 0) {
      scrub = true;
    } else if (strcmp(argv[i], "--net-faults") == 0) {
      net_faults = true;
    } else if (strncmp(argv[i], "--report-dir=", 13) == 0) {
      report_dir = argv[i] + 13;
    }
  }
  benchutil::StartCollection(args);

  printf("============================================================\n");
  printf("Real-execution kit run (in-process cluster on this host)\n");
  printf("%d substations x %llu kvps total, warmup + measured, "
         "2 iterations\n",
         substations, static_cast<unsigned long long>(total_kvps));
  printf("============================================================\n");
  printf("%8s %14s %14s %14s %12s\n", "nodes", "IoTps", "measured[s]",
         "queries", "q-avg[ms]");

  uint64_t total_ingested = 0;  // across every warmup + measured run
  for (int nodes : {2, 4, 8}) {
    cluster::ClusterOptions cluster_options;
    cluster_options.num_nodes = nodes;
    cluster_options.replication_factor = 3;
    cluster_options.shard_key_fn = iot::TpcxIotShardKey;
    cluster_options.storage_options.background_scrub = scrub;
    cluster_options.storage_options.write_shards = write_shards;
    if (net_faults) {
      cluster_options.enable_net_fault_injection = true;
      cluster_options.net_fault_seed = 42;
      // Keep the straggler from stalling ingest: hint it out fast.
      cluster_options.straggler_timeout_micros = 20'000;
    }
    auto sut_result = cluster::Cluster::Start(cluster_options);
    if (!sut_result.ok()) {
      fprintf(stderr, "cluster start failed: %s\n",
              sut_result.status().ToString().c_str());
      return 1;
    }
    auto sut = std::move(sut_result).MoveValueUnsafe();

    iot::BenchmarkConfig config;
    config.num_driver_instances = substations;
    config.total_kvps = total_kvps;
    config.batch_size = 500;
    config.write_shards = write_shards;
    config.min_run_seconds = 0;      // host-scale run
    config.min_per_sensor_rate = 0;
    if (net_faults) {
      // 50 ms slow replica preset: every message into the last node is
      // delayed, so quorum is carried by the other replicas and the
      // straggler converges via hints.
      config.fault_net_delay_node = nodes - 1;
      config.fault_net_delay_ms = 50;
    }
    iot::BenchmarkDriver driver(config, sut.get());
    iot::BenchmarkResult result = driver.Run();
    if (!result.status.ok()) {
      fprintf(stderr, "run failed: %s\n", result.status.ToString().c_str());
      return 1;
    }
    for (const auto& iter : result.iterations) {
      total_ingested += iter.warmup.metrics.kvps_ingested +
                        iter.measured.metrics.kvps_ingested;
    }
    const auto& measured =
        result.iterations[result.performance_run].measured;
    Histogram queries = measured.MergedQueryLatency();
    printf("%8d %14.0f %14.2f %14llu %12.2f\n", nodes, result.IoTps(),
           measured.metrics.ElapsedSeconds(),
           static_cast<unsigned long long>(queries.count()),
           queries.Mean() / 1000.0);
    // Stage-attribution reconciliation: on this replicated path the op's
    // critical path is the cluster stage group, so its per-stage p99 sum
    // should land near the measured insert p99 (the FDR "Latency
    // attribution" section prints the full table and the PASS/WARN gate).
    {
      const obs::MetricsSnapshot& delta = measured.obs_delta;
      auto p99 = [&delta](const char* name) -> double {
        auto it = delta.histograms.find(name);
        return it == delta.histograms.end() || it->second.count == 0
                   ? 0.0
                   : it->second.Percentile(99);
      };
      double stage_sum = p99("attrib.fanout_send_micros") +
                         p99("attrib.quorum_wait_micros") +
                         p99("attrib.retry_backoff_micros");
      double op_p99 = p99("driver.insert_batch_micros");
      if (stage_sum > 0.0 && op_p99 > 0.0) {
        printf("%8s attribution: cluster-stage p99 sum %.0f us vs insert "
               "p99 %.0f us (%.0f%%)\n",
               "", stage_sum, op_p99, 100.0 * stage_sum / op_p99);
      }
    }
    if (!report_dir.empty()) {
      iot::SutDescription sut_desc;
      sut_desc.nodes = nodes;
      iot::PricedConfiguration pricing =
          iot::PricedConfiguration::ReferenceGatewayConfig(nodes);
      std::string dir = report_dir + "/n" + std::to_string(nodes);
      Status s = iot::WriteReportFiles(storage::Env::Posix(), dir, result,
                                       pricing, sut_desc);
      if (s.ok()) {
        printf("%8s FDR artefacts written to %s\n", "", dir.c_str());
      } else {
        fprintf(stderr, "report write failed: %s\n", s.ToString().c_str());
      }
    }
    if (net_faults) {
      const cluster::AvailabilityStats& avail = measured.availability;
      const cluster::NetFaultCounters& net = measured.net_faults;
      printf("%8s net-faults: %llu writes attempted, %llu quorum-met "
             "(%.2f%%), %llu unavailable; %llu straggler-hinted kvps, "
             "%llu messages delayed\n",
             "", static_cast<unsigned long long>(avail.writes_attempted),
             static_cast<unsigned long long>(avail.writes_quorum_met),
             avail.writes_attempted == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(avail.writes_quorum_met) /
                       static_cast<double>(avail.writes_attempted),
             static_cast<unsigned long long>(avail.writes_unavailable),
             static_cast<unsigned long long>(avail.straggler_hinted_kvps),
             static_cast<unsigned long long>(net.delayed));
    }
    if (scrub) {
      // The driver purges the SUT after its runs, so report what the
      // background scrubber covered while the workload was live.
      obs::MetricsSnapshot snap =
          obs::MetricsRegistry::Global().TakeSnapshot();
      auto counter = [&snap](const char* name) -> unsigned long long {
        auto it = snap.counters.find(name);
        return it == snap.counters.end() ? 0 : it->second;
      };
      printf("%8s scrub: %llu files / %llu bytes checked in background, "
             "%llu corrupt, %llu quarantined\n",
             "", counter("storage.scrub.files_checked"),
             counter("storage.scrub.bytes_checked"),
             counter("storage.scrub.corruption_detected"),
             counter("storage.quarantine.files"));
    }
  }
  printf("\nNote: single-host numbers; replication work scales with "
         "min(3, nodes), so more nodes = more total writes on one "
         "machine.\n");
  benchutil::MaybeWriteMetrics(args);
  benchutil::MaybeWriteTimeline(args, total_ingested);
  benchutil::MaybeWriteTrace(args);
  benchutil::MaybeWriteSlowOps(args);
  return 0;
}
