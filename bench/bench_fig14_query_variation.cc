// Reproduces Figure 14: min/max/avg query elapsed time with coefficient of
// variation annotations, plus the 95th percentiles discussed in the text.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::ParseArgs(argc, argv);
  benchutil::PrintHeader("Figure 14: query latency variation (8 nodes)",
                         "TPCx-IoT paper Fig. 14");

  auto results = benchutil::Sweep(8, args);
  printf("%12s %10s %10s %10s %10s %8s\n", "substations", "min[ms]",
         "avg[ms]", "p95[ms]", "max[ms]", "CoV");
  for (const auto& r : results) {
    const auto& q = r.measured.query_latency;
    printf("%12d %10.1f %10.1f %10.1f %10.1f %8.2f\n",
           r.config.substations, q.min_us / 1000.0, q.mean_us / 1000.0,
           q.p95_us / 1000.0, q.max_us / 1000.0, q.CoV());
  }
  printf("\nPaper reference: min/avg in low double-digit ms; max exceeds "
         "1000 ms from 4 substations on; CoV > 1 for every run; p95 below "
         "25 ms up to 16 substations, 185 ms at 32, 143 ms at 48.\n");
  benchutil::MaybeWriteMetrics(args);
  return 0;
}
