// Storage-engine micro-benchmarks (google-benchmark): component costs of
// the LSM engine on this host. Not a paper figure — supporting data for
// DESIGN.md's substrate claims.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/random.h"
#include "storage/bloom.h"
#include "storage/env.h"
#include "storage/kvstore.h"
#include "storage/write_batch.h"

namespace {

using iotdb::Random;
using iotdb::storage::BloomFilterBuilder;
using iotdb::storage::Env;
using iotdb::storage::KVStore;
using iotdb::storage::NewMemEnv;
using iotdb::storage::Options;
using iotdb::storage::ReadOptions;
using iotdb::storage::WriteBatch;
using iotdb::storage::WriteOptions;

struct StoreFixture {
  std::unique_ptr<Env> env = NewMemEnv();
  std::unique_ptr<KVStore> store;

  explicit StoreFixture(bool value_separation = false) {
    Options options;
    options.env = env.get();
    options.write_buffer_size = 8 << 20;
    options.value_separation = value_separation;
    store = KVStore::Open(options, "/bench").MoveValueUnsafe();
  }
};

// sep=0: values inline in the LSM. sep=1: WiscKey-style key-value
// separation, the 1 KiB payload goes to the vlog and the tree keeps a
// 21-byte pointer.
void BM_KVStorePut1KiB(benchmark::State& state) {
  StoreFixture fixture(state.range(0) != 0);
  Random rng(1);
  std::string value(1024 - 24, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    char key[32];
    snprintf(key, sizeof(key), "key%020llu",
             static_cast<unsigned long long>(i++));
    benchmark::DoNotOptimize(
        fixture.store->Put(WriteOptions(), key, value));
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_KVStorePut1KiB)->ArgName("sep")->Arg(0)->Arg(1);

void BM_KVStoreBatchPut(benchmark::State& state) {
  StoreFixture fixture;
  const int batch_size = static_cast<int>(state.range(0));
  std::string value(1000, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    WriteBatch batch;
    for (int j = 0; j < batch_size; ++j) {
      char key[32];
      snprintf(key, sizeof(key), "key%020llu",
               static_cast<unsigned long long>(i++));
      batch.Put(key, value);
    }
    benchmark::DoNotOptimize(fixture.store->Write(WriteOptions(), &batch));
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_KVStoreBatchPut)->Arg(10)->Arg(100)->Arg(1000);

// sep=1 measures the pointer-dereference read path (vlog positional read +
// checksum + deref cache) against the inline baseline.
void BM_KVStoreGet(benchmark::State& state) {
  StoreFixture fixture(state.range(0) != 0);
  std::string value(1000, 'v');
  const int kKeys = 10000;
  for (int i = 0; i < kKeys; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d", i);
    fixture.store->Put(WriteOptions(), key, value);
  }
  fixture.store->FlushMemTable();
  Random rng(7);
  for (auto _ : state) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d",
             static_cast<int>(rng.Uniform(kKeys)));
    benchmark::DoNotOptimize(fixture.store->Get(ReadOptions(), key));
  }
}
BENCHMARK(BM_KVStoreGet)->ArgName("sep")->Arg(0)->Arg(1);

void BM_KVStoreScan100(benchmark::State& state) {
  StoreFixture fixture;
  std::string value(1000, 'v');
  const int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d", i);
    fixture.store->Put(WriteOptions(), key, value);
  }
  fixture.store->FlushMemTable();
  Random rng(9);
  for (auto _ : state) {
    char start[32];
    int base = static_cast<int>(rng.Uniform(kKeys - 100));
    snprintf(start, sizeof(start), "key%08d", base);
    std::vector<std::pair<std::string, std::string>> rows;
    benchmark::DoNotOptimize(
        fixture.store->Scan(ReadOptions(), start, iotdb::Slice(), 100,
                            &rows));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_KVStoreScan100);

void BM_BloomFilterBuild(benchmark::State& state) {
  std::vector<std::string> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back("key" + std::to_string(i));
  for (auto _ : state) {
    BloomFilterBuilder builder(10);
    for (const std::string& key : keys) builder.AddKey(key);
    benchmark::DoNotOptimize(builder.Finish());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_BloomFilterBuild);

void BM_BloomFilterProbe(benchmark::State& state) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 10000; ++i) builder.AddKey("key" + std::to_string(i));
  std::string filter = builder.Finish();
  Random rng(3);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Uniform(20000));
    benchmark::DoNotOptimize(
        iotdb::storage::BloomFilterMayMatch(filter, key));
  }
}
BENCHMARK(BM_BloomFilterProbe);

}  // namespace

BENCHMARK_MAIN();
