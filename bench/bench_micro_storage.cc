// Storage-engine micro-benchmarks (google-benchmark): component costs of
// the LSM engine on this host. Not a paper figure — supporting data for
// DESIGN.md's substrate claims.
//
// Before the google-benchmark suites run, main() executes the sharded
// write-path gates (pass/fail, like bench_micro_obs): 8-thread PutMany at
// write_shards=8 vs write_shards=1 side-by-side, a WAL group-commit
// cross-shard overlap check from the trace ring, and an effective ns/op
// budget. The binary exits non-zero when a gate fails. --trace-out=FILE
// additionally writes the gate run's spans as Chrome trace_event JSON.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/trace.h"
#include "storage/bloom.h"
#include "storage/env.h"
#include "storage/kvstore.h"
#include "storage/write_batch.h"

namespace {

using iotdb::Random;
using iotdb::storage::BloomFilterBuilder;
using iotdb::storage::Env;
using iotdb::storage::KVStore;
using iotdb::storage::NewMemEnv;
using iotdb::storage::Options;
using iotdb::storage::ReadOptions;
using iotdb::storage::WriteBatch;
using iotdb::storage::WriteOptions;

struct StoreFixture {
  std::unique_ptr<Env> env = NewMemEnv();
  std::unique_ptr<KVStore> store;

  explicit StoreFixture(bool value_separation = false) {
    Options options;
    options.env = env.get();
    options.write_buffer_size = 8 << 20;
    options.value_separation = value_separation;
    store = KVStore::Open(options, "/bench").MoveValueUnsafe();
  }
};

// sep=0: values inline in the LSM. sep=1: WiscKey-style key-value
// separation, the 1 KiB payload goes to the vlog and the tree keeps a
// 21-byte pointer.
void BM_KVStorePut1KiB(benchmark::State& state) {
  StoreFixture fixture(state.range(0) != 0);
  Random rng(1);
  std::string value(1024 - 24, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    char key[32];
    snprintf(key, sizeof(key), "key%020llu",
             static_cast<unsigned long long>(i++));
    benchmark::DoNotOptimize(
        fixture.store->Put(WriteOptions(), key, value));
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_KVStorePut1KiB)->ArgName("sep")->Arg(0)->Arg(1);

void BM_KVStoreBatchPut(benchmark::State& state) {
  StoreFixture fixture;
  const int batch_size = static_cast<int>(state.range(0));
  std::string value(1000, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    WriteBatch batch;
    for (int j = 0; j < batch_size; ++j) {
      char key[32];
      snprintf(key, sizeof(key), "key%020llu",
               static_cast<unsigned long long>(i++));
      batch.Put(key, value);
    }
    benchmark::DoNotOptimize(fixture.store->Write(WriteOptions(), &batch));
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_KVStoreBatchPut)->Arg(10)->Arg(100)->Arg(1000);

// sep=1 measures the pointer-dereference read path (vlog positional read +
// checksum + deref cache) against the inline baseline.
void BM_KVStoreGet(benchmark::State& state) {
  StoreFixture fixture(state.range(0) != 0);
  std::string value(1000, 'v');
  const int kKeys = 10000;
  for (int i = 0; i < kKeys; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d", i);
    fixture.store->Put(WriteOptions(), key, value);
  }
  fixture.store->FlushMemTable();
  Random rng(7);
  for (auto _ : state) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d",
             static_cast<int>(rng.Uniform(kKeys)));
    benchmark::DoNotOptimize(fixture.store->Get(ReadOptions(), key));
  }
}
BENCHMARK(BM_KVStoreGet)->ArgName("sep")->Arg(0)->Arg(1);

void BM_KVStoreScan100(benchmark::State& state) {
  StoreFixture fixture;
  std::string value(1000, 'v');
  const int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "key%08d", i);
    fixture.store->Put(WriteOptions(), key, value);
  }
  fixture.store->FlushMemTable();
  Random rng(9);
  for (auto _ : state) {
    char start[32];
    int base = static_cast<int>(rng.Uniform(kKeys - 100));
    snprintf(start, sizeof(start), "key%08d", base);
    std::vector<std::pair<std::string, std::string>> rows;
    benchmark::DoNotOptimize(
        fixture.store->Scan(ReadOptions(), start, iotdb::Slice(), 100,
                            &rows));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_KVStoreScan100);

void BM_BloomFilterBuild(benchmark::State& state) {
  std::vector<std::string> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back("key" + std::to_string(i));
  for (auto _ : state) {
    BloomFilterBuilder builder(10);
    for (const std::string& key : keys) builder.AddKey(key);
    benchmark::DoNotOptimize(builder.Finish());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_BloomFilterBuild);

void BM_BloomFilterProbe(benchmark::State& state) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 10000; ++i) builder.AddKey("key" + std::to_string(i));
  std::string filter = builder.Finish();
  Random rng(3);
  for (auto _ : state) {
    std::string key = "key" + std::to_string(rng.Uniform(20000));
    benchmark::DoNotOptimize(
        iotdb::storage::BloomFilterMayMatch(filter, key));
  }
}
BENCHMARK(BM_BloomFilterProbe);

// ---------------------------------------------------------------------------
// Sharded write-path gates (pass/fail; run before the benchmark suites)
// ---------------------------------------------------------------------------

// Effective aggregate cost ceiling for the 8-thread sharded run: generous
// enough for a loaded single-core builder, tight enough to catch a
// sync-per-put or lock-convoy regression (those blow past 100 µs/op).
constexpr double kShardedPutBudgetNs = 50000.0;

constexpr int kGateThreads = 8;
constexpr int kGateBatch = 50;           // entries per PutMany call
constexpr int kGateBatchesPerThread = 50;  // 8 * 50 * 50 = 20k kvps per rep

/// One timed rep: `threads` writers each PutMany disjoint 1 KB kvps into a
/// fresh store with `write_shards` shards. Returns kvps/s.
double RunShardedPutRep(int write_shards) {
  std::unique_ptr<Env> env = NewMemEnv();
  Options options;
  options.env = env.get();
  options.write_buffer_size = 64 << 20;  // keep flushes out of the timing
  options.write_shards = write_shards;
  auto store = KVStore::Open(options, "/gate").MoveValueUnsafe();

  std::string value(1000, 'v');
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kGateThreads);
  for (int t = 0; t < kGateThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      std::vector<std::string> keys(kGateBatch);
      std::vector<iotdb::storage::KvEntry> entries(kGateBatch);
      for (int b = 0; b < kGateBatchesPerThread; ++b) {
        for (int j = 0; j < kGateBatch; ++j) {
          char key[32];
          snprintf(key, sizeof(key), "t%02db%04dk%04d", t, b, j);
          keys[j] = key;
          entries[j] = {iotdb::Slice(keys[j]), iotdb::Slice(value)};
        }
        if (!store
                 ->PutMany(WriteOptions(),
                           std::span<const iotdb::storage::KvEntry>(
                               entries.data(), entries.size()))
                 .ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  auto end = std::chrono::steady_clock::now();
  if (failures.load() > 0) return 0.0;
  double seconds = std::chrono::duration<double>(end - start).count();
  double total_kvps = static_cast<double>(kGateThreads) * kGateBatch *
                      kGateBatchesPerThread;
  return seconds > 0 ? total_kvps / seconds : 0.0;
}

/// Best of two reps (back-to-back runs on a shared builder are noisy).
double RunShardedPut(int write_shards) {
  return std::max(RunShardedPutRep(write_shards),
                  RunShardedPutRep(write_shards));
}

/// True when two WAL group-commit spans with different shard ids overlap
/// in time anywhere in the trace ring.
bool GroupCommitSpansOverlapAcrossShards() {
  struct Span {
    uint64_t start;
    uint64_t end;
    uint64_t shard;
  };
  std::vector<Span> spans;
  for (const iotdb::obs::TraceEvent& ev :
       iotdb::obs::TraceBuffer::Snapshot()) {
    if (ev.name == nullptr ||
        strcmp(ev.name, "storage.wal.group_commit") != 0) {
      continue;
    }
    spans.push_back(
        {ev.start_micros, ev.start_micros + ev.duration_micros,
         ev.arg_value});
  }
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.start < b.start; });
  uint64_t open_end = 0;
  uint64_t open_shard = 0;
  bool have_open = false;
  for (const Span& s : spans) {
    if (have_open && s.start < open_end && s.shard != open_shard) {
      return true;
    }
    if (!have_open || s.end > open_end) {
      open_end = s.end;
      open_shard = s.shard;
      have_open = true;
    }
  }
  return false;
}

/// Runs the gates; returns the number of failures.
int RunShardGates(const char* trace_out) {
  const unsigned hw = std::thread::hardware_concurrency();
  // Ideal scaling on an 8-way host is 8x; demand a honest fraction of the
  // parallelism this host actually has, capped at the issue's 3x bar.
  const double required_ratio =
      std::min(3.0, 0.75 * static_cast<double>(
                               std::min(8u, std::max(1u, hw))));

  printf("--- sharded write path gates (%d threads, %u hw threads) ---\n",
         kGateThreads, hw);

  // Trace the sharded run so the overlap check (and --trace-out) sees the
  // per-shard WAL group-commit spans.
  iotdb::obs::TraceBuffer::StartTracing();
  const double kvps_sharded = RunShardedPut(8);
  const bool overlap = GroupCommitSpansOverlapAcrossShards();
  std::string trace_json;
  if (trace_out != nullptr) {
    trace_json = iotdb::obs::TraceBuffer::ToChromeTraceJson();
  }
  iotdb::obs::TraceBuffer::StopTracing();
  const double kvps_single = RunShardedPut(1);

  printf("  %-44s %10.0f kvps/s\n", "PutMany 8 threads, write_shards=1",
         kvps_single);
  printf("  %-44s %10.0f kvps/s\n", "PutMany 8 threads, write_shards=8",
         kvps_sharded);
  const double ratio = kvps_single > 0 ? kvps_sharded / kvps_single : 0.0;
  const double ns_per_op =
      kvps_sharded > 0 ? 1e9 / kvps_sharded : 1e18;

  int failures = 0;
  printf("  [%s] shard scaling: %.2fx (required %.2fx)\n",
         ratio >= required_ratio ? "PASS" : "FAIL", ratio, required_ratio);
  if (ratio < required_ratio) failures++;

  if (hw >= 2) {
    printf("  [%s] WAL group-commit spans overlap across >=2 shards\n",
           overlap ? "PASS" : "FAIL");
    if (!overlap) failures++;
  } else {
    printf("  [SKIP] span overlap check (single hardware thread%s)\n",
           overlap ? "; overlap seen anyway" : "");
  }

  printf("  [%s] effective sharded put cost: %.0f ns/op (budget %.0f)\n",
         ns_per_op < kShardedPutBudgetNs ? "PASS" : "FAIL", ns_per_op,
         kShardedPutBudgetNs);
  if (ns_per_op >= kShardedPutBudgetNs) failures++;

  if (trace_out != nullptr) {
    FILE* f = fopen(trace_out, "w");
    if (f != nullptr) {
      fwrite(trace_json.data(), 1, trace_json.size(), f);
      fclose(f);
      printf("  trace written to %s (%zu bytes); open in Perfetto\n",
             trace_out, trace_json.size());
    } else {
      printf("  could not write trace to %s\n", trace_out);
    }
  }
  printf("\n");
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  // Split off flags google-benchmark does not know (it aborts on them).
  const char* trace_out = nullptr;
  bool skip_gates = false;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    if (strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (strcmp(argv[i], "--skip-gates") == 0) {
      skip_gates = true;
    } else {
      bench_argv.push_back(argv[i]);
    }
  }

  int failures = skip_gates ? 0 : RunShardGates(trace_out);

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return failures == 0 ? 0 : 1;
}
