// Reproduces Figure 16 and Table III: system-wide and per-sensor IoTps for
// 2-, 4-, and 8-node gateway clusters across 1..48 substations.
#include <cstdio>

#include "bench/bench_util.h"

using iotdb::iot::ExperimentResult;

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::ParseArgs(argc, argv);
  benchutil::PrintHeader(
      "Figure 16 / Table III: scale-out across 2, 4, 8 gateway nodes",
      "TPCx-IoT paper Fig. 16, Table III");

  auto n2 = benchutil::Sweep(2, args);
  auto n4 = benchutil::Sweep(4, args);
  auto n8 = benchutil::Sweep(8, args);

  printf("%12s | %12s %12s %12s | %10s %10s %10s\n", "substations",
         "2-node", "4-node", "8-node", "2n/sensor", "4n/sensor",
         "8n/sensor");
  for (size_t i = 0; i < n8.size(); ++i) {
    printf("%12d | %12.0f %12.0f %12.0f | %10.1f %10.1f %10.1f\n",
           n8[i].config.substations, n2[i].SystemIoTps(),
           n4[i].SystemIoTps(), n8[i].SystemIoTps(),
           n2[i].PerSensorIoTps(), n4[i].PerSensorIoTps(),
           n8[i].PerSensorIoTps());
  }

  printf("\nPaper reference [IoTps]:\n");
  printf("  2-node: 21909, 38939, 63076, 105877, 114508, 114764, 115486\n");
  printf("  4-node: 15706, 33612, 57113,  90160, 125603, 132100, 134248\n");
  printf("  8-node:  9806, 26999, 56822,  84602, 133940, 186109, 182815\n");
  printf("Shape checks: 2-node wins at 1 substation; 8-node delivers the\n"
         "highest peak; 4-node crosses 2-node between 8 and 16 "
         "substations.\n");
  benchutil::MaybeWriteMetrics(args);
  return 0;
}
