// Reproduces Figure 11: measured average per-sensor IoTps vs substations,
// against the 20 kvps/s validity floor.
#include <cstdio>

#include "bench/bench_util.h"
#include "iot/rules.h"

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::ParseArgs(argc, argv);
  benchutil::PrintHeader("Figure 11: per-sensor IoTps vs substations "
                         "(8 nodes, floor = 20 kvps/s)",
                         "TPCx-IoT paper Fig. 11");

  auto results = benchutil::Sweep(8, args);
  printf("%12s %16s %10s\n", "substations", "per-sensor", "valid?");
  for (const auto& r : results) {
    printf("%12d %16.1f %10s\n", r.config.substations, r.PerSensorIoTps(),
           r.MeetsRateRequirement() ? "yes" : "NO (<20)");
  }
  printf("\nPaper reference: 49.0, 67.5, 71.0, 52.9, 41.9, 29.1, 19.0 -- "
         "the floor is crossed at 48 substations.\n");
  benchutil::MaybeWriteMetrics(args);
  return 0;
}
