// Reproduces Figure 15 and Table II: fastest/slowest/average per-substation
// ingest completion time and the growing fastest-vs-slowest gap.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::ParseArgs(argc, argv);
  benchutil::PrintHeader("Figure 15 / Table II: per-substation ingest time "
                         "spread (8 nodes)",
                         "TPCx-IoT paper Fig. 15, Table II");

  auto results = benchutil::Sweep(8, args);
  printf("%12s %10s %10s %10s %10s %10s\n", "substations", "min[s]",
         "max[s]", "avg[s]", "diff[s]", "diff[%]");
  for (const auto& r : results) {
    double min_s = r.MinDriverSeconds();
    double max_s = r.MaxDriverSeconds();
    double avg_s = r.AvgDriverSeconds();
    double diff = max_s - min_s;
    double rel = min_s > 0 ? 100.0 * diff / min_s : 0;
    printf("%12d %10.0f %10.0f %10.0f %10.0f %10.1f\n",
           r.config.substations, min_s, max_s, avg_s, diff, rel);
  }
  printf("\nPaper reference (relative gap): 0%%, 5%%, 13%%, 12%%, 14%%, "
         "37%%, 81%% -- hash placement plus queueing amplification near "
         "saturation.\n");
  benchutil::MaybeWriteMetrics(args);
  return 0;
}
