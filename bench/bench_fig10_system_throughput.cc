// Reproduces Figure 10: system-wide IoTps vs substations on 8 nodes, with
// the scaling factors S_i relative to one substation.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::ParseArgs(argc, argv);
  benchutil::PrintHeader("Figure 10: system-wide IoTps and scaling factors "
                         "(8 nodes)",
                         "TPCx-IoT paper Fig. 10");

  auto results = benchutil::Sweep(8, args);
  double base = results.empty() ? 0 : results[0].SystemIoTps();

  printf("%12s %16s %10s %s\n", "substations", "IoTps", "S_i", "regime");
  for (const auto& r : results) {
    double s = base > 0 ? r.SystemIoTps() / base : 0;
    const char* regime =
        s > r.config.substations ? "super-linear"
                                 : (r.config.substations > 1 ? "sub-linear"
                                                             : "baseline");
    printf("%12d %16.0f %10.2f %s\n", r.config.substations, r.SystemIoTps(),
           s, regime);
  }
  printf("\nPaper reference: S_2=2.8, S_4=5.5, S_8=8.6 (super-linear), "
         "S_16=13.7, S_32=19.0, S_48=18.6 (sub-linear).\n");
  benchutil::MaybeWriteMetrics(args);
  return 0;
}
