// Reproduces Figure 10: system-wide IoTps vs substations on 8 nodes, with
// the scaling factors S_i relative to one substation. Also prints the
// key-value-separation write-amplification cross-check: the same 1 KiB
// ingest with and without Options::value_separation, compared on the
// storage.compaction.* registry counters.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "storage/kvstore.h"

namespace {

struct WriteAmpResult {
  uint64_t ingested_bytes = 0;
  uint64_t compaction_bytes = 0;  // bytes written by flush + compaction
  uint64_t vlog_bytes = 0;        // bytes appended to the value log
  uint64_t gc_reclaimed = 0;
};

// Ingests kKeys x ~1 KiB values (the TPCx-IoT payload shape) into a fresh
// store, forces the LSM to digest everything, and reports the registry
// delta of compaction traffic. The separated run also garbage-collects so
// a --trace-out capture includes storage.vlog.gc spans.
WriteAmpResult RunWriteAmpWorkload(bool value_separation, uint64_t scale) {
  namespace st = iotdb::storage;
  auto& registry = iotdb::obs::MetricsRegistry::Global();
  iotdb::obs::Counter* flushed =
      registry.GetCounter("storage.memtable.bytes_flushed");
  iotdb::obs::Counter* compacted =
      registry.GetCounter("storage.compaction.bytes_written");
  iotdb::obs::Counter* vlog_appended =
      registry.GetCounter("storage.vlog.appended_bytes");
  iotdb::obs::Counter* gc_reclaimed =
      registry.GetCounter("storage.vlog.gc_reclaimed_bytes");
  const uint64_t flushed0 = flushed->Value();
  const uint64_t compacted0 = compacted->Value();
  const uint64_t vlog0 = vlog_appended->Value();
  const uint64_t gc0 = gc_reclaimed->Value();

  auto env = st::NewMemEnv();
  st::Options options;
  options.env = env.get();
  options.write_buffer_size = 256 * 1024;  // small: many flush/compact turns
  options.value_separation = value_separation;
  options.background_vlog_gc = false;  // GC explicitly below
  auto store = st::KVStore::Open(options, "/writeamp").MoveValueUnsafe();

  const uint64_t kKeys = 20000 / (scale > 0 ? scale : 1);
  const std::string value(1000, 'v');
  WriteAmpResult result;
  for (uint64_t i = 0; i < kKeys; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "sub0001.sensor%08llu",
             static_cast<unsigned long long>(i % (kKeys / 2 + 1)));
    store->Put(st::WriteOptions(), key, value);
    result.ingested_bytes += value.size();
  }
  store->FlushMemTable().ok();
  store->CompactAll().ok();
  if (value_separation) {
    uint64_t reclaimed = 0;
    store->GarbageCollect(0, &reclaimed).ok();
  }
  store->WaitForBackgroundWork();
  store.reset();

  result.compaction_bytes =
      (flushed->Value() - flushed0) + (compacted->Value() - compacted0);
  result.vlog_bytes = vlog_appended->Value() - vlog0;
  result.gc_reclaimed = gc_reclaimed->Value() - gc0;
  return result;
}

void PrintWriteAmpCrossCheck(uint64_t scale) {
  printf("\nWrite-amplification cross-check (1 KiB values, overwrite-heavy "
         "ingest):\n");
  printf("%14s %16s %18s %12s %10s\n", "mode", "ingested_B", "flush+compact_B",
         "vlog_B", "write-amp");
  WriteAmpResult baseline = RunWriteAmpWorkload(false, scale);
  WriteAmpResult separated = RunWriteAmpWorkload(true, scale);
  auto amp = [](const WriteAmpResult& r) {
    return r.ingested_bytes > 0
               ? static_cast<double>(r.compaction_bytes + r.vlog_bytes) /
                     static_cast<double>(r.ingested_bytes)
               : 0.0;
  };
  printf("%14s %16llu %18llu %12llu %9.2fx\n", "baseline",
         static_cast<unsigned long long>(baseline.ingested_bytes),
         static_cast<unsigned long long>(baseline.compaction_bytes),
         static_cast<unsigned long long>(baseline.vlog_bytes), amp(baseline));
  printf("%14s %16llu %18llu %12llu %9.2fx\n", "value_sep",
         static_cast<unsigned long long>(separated.ingested_bytes),
         static_cast<unsigned long long>(separated.compaction_bytes),
         static_cast<unsigned long long>(separated.vlog_bytes),
         amp(separated));
  if (separated.compaction_bytes > 0) {
    printf("compaction-byte reduction: %.1fx (vlog GC reclaimed %llu B)\n",
           static_cast<double>(baseline.compaction_bytes) /
               static_cast<double>(separated.compaction_bytes),
           static_cast<unsigned long long>(separated.gc_reclaimed));
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::ParseArgs(argc, argv);
  benchutil::StartCollection(args);
  benchutil::PrintHeader("Figure 10: system-wide IoTps and scaling factors "
                         "(8 nodes)",
                         "TPCx-IoT paper Fig. 10");

  auto results = benchutil::Sweep(8, args);
  double base = results.empty() ? 0 : results[0].SystemIoTps();

  printf("%12s %16s %10s %s\n", "substations", "IoTps", "S_i", "regime");
  for (const auto& r : results) {
    double s = base > 0 ? r.SystemIoTps() / base : 0;
    const char* regime =
        s > r.config.substations ? "super-linear"
                                 : (r.config.substations > 1 ? "sub-linear"
                                                             : "baseline");
    printf("%12d %16.0f %10.2f %s\n", r.config.substations, r.SystemIoTps(),
           s, regime);
  }
  printf("\nPaper reference: S_2=2.8, S_4=5.5, S_8=8.6 (super-linear), "
         "S_16=13.7, S_32=19.0, S_48=18.6 (sub-linear).\n");

  PrintWriteAmpCrossCheck(args.scale);

  benchutil::MaybeWriteMetrics(args);
  benchutil::MaybeWriteTimeline(args);
  benchutil::MaybeWriteTrace(args);
  return 0;
}
