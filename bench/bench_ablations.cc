// Ablation benches for the design choices DESIGN.md calls out: each toggles
// one mechanism of the calibrated gateway model and shows which paper
// phenomenon disappears.
//
//   1. WAL group commit      -> super-linear scaling region (Fig. 10)
//   2. sequential fan-out    -> node-count inversion at 1 substation
//                               (Fig. 16 / Table III)
//   3. flush/compaction stalls -> query latency tails, CoV > 1 (Fig. 14)
//   4. hash region placement -> per-substation ingest-time spread
//                               (Fig. 15 / Table II)
#include <cstdio>

#include "bench/bench_util.h"

using iotdb::iot::ExperimentConfig;
using iotdb::iot::ExperimentResult;
using iotdb::iot::HardwareProfile;
using iotdb::iot::PaperRowsFor;
using iotdb::iot::RunExperiment;

namespace {

ExperimentResult Run(int nodes, int substations, uint64_t scale,
                     const HardwareProfile& profile) {
  ExperimentConfig config;
  config.nodes = nodes;
  config.substations = substations;
  config.total_kvps = PaperRowsFor(substations);
  config.scale_divisor = scale;
  config.profile = profile;
  return RunExperiment(config);
}

void AblateGroupCommit(uint64_t scale) {
  printf("--- Ablation 1: WAL group-commit amortisation ---\n");
  HardwareProfile with = HardwareProfile::UcsBlade();
  HardwareProfile without = with;
  without.amortize_wal_sync = false;

  double base_with = Run(8, 1, scale, with).SystemIoTps();
  double base_without = Run(8, 1, scale, without).SystemIoTps();
  printf("%12s %14s %14s\n", "substations", "S_i (with)", "S_i (without)");
  for (int p : {2, 4, 8}) {
    double s_with = Run(8, p, scale, with).SystemIoTps() / base_with;
    double s_without =
        Run(8, p, scale, without).SystemIoTps() / base_without;
    printf("%12d %14.2f %14.2f\n", p, s_with, s_without);
  }
  printf("Expected: with amortisation S_i > i (super-linear); without it "
         "S_i <= ~i.\n\n");
}

void AblateFanout(uint64_t scale) {
  printf("--- Ablation 2: sequential per-node fan-out ---\n");
  HardwareProfile sequential = HardwareProfile::UcsBlade();
  HardwareProfile parallel = sequential;
  parallel.parallel_fanout = true;

  printf("%8s %20s %20s\n", "nodes", "1-sub IoTps (seq)",
         "1-sub IoTps (par)");
  for (int nodes : {2, 4, 8}) {
    printf("%8d %20.0f %20.0f\n", nodes,
           Run(nodes, 1, scale, sequential).SystemIoTps(),
           Run(nodes, 1, scale, parallel).SystemIoTps());
  }
  printf("Expected: sequential fan-out makes larger clusters SLOWER at one "
         "substation (the paper's inversion); parallel fan-out flattens "
         "it.\n\n");
}

void AblateStalls(uint64_t scale) {
  printf("--- Ablation 3: volume-triggered flush/compaction stalls ---\n");
  HardwareProfile with = HardwareProfile::UcsBlade();
  HardwareProfile without = with;
  without.flush_stall_us = 0;

  ExperimentResult r_with = Run(8, 16, scale, with);
  ExperimentResult r_without = Run(8, 16, scale, without);
  printf("%10s %12s %12s %8s\n", "", "max [ms]", "avg [ms]", "CoV");
  printf("%10s %12.1f %12.1f %8.2f\n", "with",
         r_with.measured.query_latency.max_us / 1000.0,
         r_with.measured.query_latency.mean_us / 1000.0,
         r_with.measured.query_latency.CoV());
  printf("%10s %12.1f %12.1f %8.2f\n", "without",
         r_without.measured.query_latency.max_us / 1000.0,
         r_without.measured.query_latency.mean_us / 1000.0,
         r_without.measured.query_latency.CoV());
  printf("Expected: removing stalls collapses the >1000 ms maxima and "
         "drops CoV below 1.\n\n");
}

void AblatePlacement(uint64_t scale) {
  printf("--- Ablation 4: hash region placement ---\n");
  HardwareProfile hashed = HardwareProfile::UcsBlade();
  HardwareProfile balanced = hashed;
  balanced.placement = HardwareProfile::Placement::kRoundRobin;

  printf("%12s %18s %18s\n", "substations", "gap% (hashed)",
         "gap% (round-robin)");
  for (int p : {8, 32, 48}) {
    ExperimentResult r_hash = Run(8, p, scale, hashed);
    ExperimentResult r_rr = Run(8, p, scale, balanced);
    auto gap = [](const ExperimentResult& r) {
      double min_s = r.MinDriverSeconds();
      return min_s > 0
                 ? 100.0 * (r.MaxDriverSeconds() - min_s) / min_s
                 : 0.0;
    };
    printf("%12d %18.1f %18.1f\n", p, gap(r_hash), gap(r_rr));
  }
  printf("Expected: the fastest-vs-slowest substation gap (Table II, up to "
         "81%%) shrinks under balanced placement.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::ParseArgs(argc, argv);
  // Ablations don't need paper scale; default to a fast divisor unless the
  // user forced one.
  uint64_t scale = args.scale == 1 ? 20 : args.scale;
  benchutil::PrintHeader("Ablations: which mechanism produces which paper "
                         "phenomenon",
                         "DESIGN.md ablation index");
  AblateGroupCommit(scale);
  AblateFanout(scale);
  AblateStalls(scale);
  AblatePlacement(scale);
  benchutil::MaybeWriteMetrics(args);
  return 0;
}
