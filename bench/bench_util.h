#ifndef IOTDB_BENCH_BENCH_UTIL_H_
#define IOTDB_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "iot/experiments.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/slowops.h"
#include "obs/trace.h"

namespace benchutil {

/// Common command line for the bench binaries:
///   --scale=N            divide kvp counts and the run-time floors by N
///                        for quick runs (curve shapes preserved).
///                        Default 1 = paper scale.
///   --full               alias for --scale=1.
///   --metrics-out=FILE   write an obs registry snapshot (JSON) of the
///                        bench's runs to FILE. Disables the sweep result
///                        cache, since cached runs produce no metrics.
///   --timeline-out=FILE  sample the registry once per second for the whole
///                        bench and write the per-interval timeline (JSON).
///   --trace-out=FILE     collect spans (WAL commits, flushes, compactions,
///                        fan-out, queries, ...) and write Chrome
///                        trace_event JSON; open in Perfetto.
///   --slowops-out=FILE   write the slow-op flight recorder's K slowest
///                        attributed ops (JSON, per-stage breakdowns) to
///                        FILE at the end of the bench.
struct Args {
  uint64_t scale = 1;
  std::string metrics_out;
  std::string timeline_out;
  std::string trace_out;
  std::string slowops_out;
};

inline Args ParseArgs(int argc, char** argv) {
  Args args;
  const char* env = getenv("TPCX_IOT_FULL");
  if (env != nullptr && env[0] == '1') args.scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--full") == 0) {
      args.scale = 1;
    } else if (strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = strtoull(argv[i] + 8, nullptr, 10);
      if (args.scale == 0) args.scale = 1;
    } else if (strncmp(argv[i], "--metrics-out=", 14) == 0) {
      args.metrics_out = argv[i] + 14;
    } else if (strncmp(argv[i], "--timeline-out=", 15) == 0) {
      args.timeline_out = argv[i] + 15;
    } else if (strncmp(argv[i], "--trace-out=", 12) == 0) {
      args.trace_out = argv[i] + 12;
    } else if (strncmp(argv[i], "--slowops-out=", 14) == 0) {
      args.slowops_out = argv[i] + 14;
    }
  }
  return args;
}

/// Sweeps are cached per (nodes, scale) so the figure benches that share
/// the Table I runs do not recompute them.
inline std::string CachePath(int nodes, uint64_t scale) {
  return "/tmp/tpcx_iot_sweep_n" + std::to_string(nodes) + "_s" +
         std::to_string(scale) + ".cache";
}

inline std::vector<iotdb::iot::ExperimentResult> Sweep(int nodes,
                                                       uint64_t scale) {
  return iotdb::iot::SweepCached(nodes, scale, CachePath(nodes, scale));
}

/// Sweep honouring --metrics-out: a metrics run bypasses the result cache
/// (a cache hit would skip the instrumented execution and leave the
/// snapshot empty).
inline std::vector<iotdb::iot::ExperimentResult> Sweep(int nodes,
                                                       const Args& args) {
  if (!args.metrics_out.empty()) {
    return iotdb::iot::RunSubstationSweep(nodes, args.scale);
  }
  return Sweep(nodes, args.scale);
}

inline bool WriteFile(const std::string& path, const std::string& data) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  fwrite(data.data(), 1, data.size(), f);
  fclose(f);
  return true;
}

/// Writes the global registry snapshot to --metrics-out (no-op when the
/// flag is absent). Call once at the end of main.
inline void MaybeWriteMetrics(const Args& args) {
  if (args.metrics_out.empty()) return;
  std::string json = iotdb::obs::MetricsRegistry::Global()
                         .TakeSnapshot()
                         .ToJson();
  if (WriteFile(args.metrics_out, json)) {
    printf("\nmetrics snapshot written to %s (%zu bytes)\n",
           args.metrics_out.c_str(), json.size());
  }
}

/// The process-wide sampler behind --timeline-out: one bench-lifetime
/// timeline spanning every run the binary executes (per-execution
/// timelines remain the BenchmarkDriver's job).
inline iotdb::obs::Sampler& ProcessSampler() {
  static iotdb::obs::Sampler sampler;
  return sampler;
}

/// Starts the collection the flags ask for. Call once after ParseArgs,
/// before the first run. No-op for absent flags (and the sampler refuses
/// to start while observability is disabled).
inline void StartCollection(const Args& args) {
  if (!args.timeline_out.empty()) ProcessSampler().Start();
  if (!args.trace_out.empty()) iotdb::obs::TraceBuffer::StartTracing();
  // Arm the flight recorder for benches that drive storage directly; runs
  // that go through the BenchmarkDriver re-arm it per workload execution,
  // so the final snapshot describes the last measured execution.
  if (!args.slowops_out.empty()) iotdb::obs::SlowOpRecorder::StartRun();
}

/// Stops the process sampler and writes --timeline-out. Pass the bench's
/// own count of ingested kvps (when it has one) to print the cross-check
/// the per-interval series is supposed to satisfy: interval ingest deltas
/// telescope, so their sum must equal the run total.
inline void MaybeWriteTimeline(const Args& args,
                               uint64_t expected_ingest_kvps = 0) {
  if (args.timeline_out.empty()) return;
  ProcessSampler().Stop();
  iotdb::obs::Timeline timeline = ProcessSampler().TakeTimeline();
  if (!WriteFile(args.timeline_out, timeline.ToJson())) return;
  uint64_t interval_sum = timeline.CounterTotal("driver.ingest.kvps");
  printf("timeline written to %s (%zu intervals, interval ingest sum %llu "
         "kvps)\n",
         args.timeline_out.c_str(), timeline.intervals.size(),
         static_cast<unsigned long long>(interval_sum));
  if (expected_ingest_kvps > 0) {
    double diff =
        interval_sum >= expected_ingest_kvps
            ? static_cast<double>(interval_sum - expected_ingest_kvps)
            : static_cast<double>(expected_ingest_kvps - interval_sum);
    printf("timeline check: interval sum vs run total %llu kvps: %.3f%% "
           "off\n",
           static_cast<unsigned long long>(expected_ingest_kvps),
           100.0 * diff / static_cast<double>(expected_ingest_kvps));
  }
}

/// Stops tracing and writes --trace-out as Chrome trace_event JSON
/// (chrome://tracing or https://ui.perfetto.dev).
inline void MaybeWriteTrace(const Args& args) {
  if (args.trace_out.empty()) return;
  iotdb::obs::TraceBuffer::StopTracing();
  std::string json = iotdb::obs::TraceBuffer::ToChromeTraceJson();
  if (WriteFile(args.trace_out, json)) {
    printf("trace written to %s (%zu bytes, %llu spans dropped); open in "
           "Perfetto\n",
           args.trace_out.c_str(), json.size(),
           static_cast<unsigned long long>(
               iotdb::obs::TraceBuffer::DroppedSpans()));
  }
}

/// Writes the slow-op flight recorder's current top-K to --slowops-out
/// (no-op when the flag is absent). Call once at the end of main.
inline void MaybeWriteSlowOps(const Args& args) {
  if (args.slowops_out.empty()) return;
  std::vector<iotdb::obs::SlowOpRecorder::Record> records =
      iotdb::obs::SlowOpRecorder::TakeSnapshot();
  iotdb::obs::SlowOpRecorder::StopRun();
  std::string json = iotdb::obs::SlowOpRecorder::ToJson(records);
  if (WriteFile(args.slowops_out, json)) {
    printf("slow-op flight recorder written to %s (%zu ops)\n",
           args.slowops_out.c_str(), records.size());
  }
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  printf("============================================================\n");
  printf("%s\n", title);
  printf("(reproduces %s; virtual-time gateway model, scale divisor applies"
         " to kvp counts and run-time floors)\n",
         paper_ref);
  printf("============================================================\n");
}

}  // namespace benchutil

#endif  // IOTDB_BENCH_BENCH_UTIL_H_
