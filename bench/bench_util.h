#ifndef IOTDB_BENCH_BENCH_UTIL_H_
#define IOTDB_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "iot/experiments.h"
#include "obs/metrics.h"

namespace benchutil {

/// Common command line for the figure benches:
///   --scale=N            divide kvp counts and the run-time floors by N
///                        for quick runs (curve shapes preserved).
///                        Default 1 = paper scale.
///   --full               alias for --scale=1.
///   --metrics-out=FILE   write an obs registry snapshot (JSON) of the
///                        bench's runs to FILE. Disables the sweep result
///                        cache, since cached runs produce no metrics.
struct Args {
  uint64_t scale = 1;
  std::string metrics_out;
};

inline Args ParseArgs(int argc, char** argv) {
  Args args;
  const char* env = getenv("TPCX_IOT_FULL");
  if (env != nullptr && env[0] == '1') args.scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--full") == 0) {
      args.scale = 1;
    } else if (strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = strtoull(argv[i] + 8, nullptr, 10);
      if (args.scale == 0) args.scale = 1;
    } else if (strncmp(argv[i], "--metrics-out=", 14) == 0) {
      args.metrics_out = argv[i] + 14;
    }
  }
  return args;
}

/// Sweeps are cached per (nodes, scale) so the figure benches that share
/// the Table I runs do not recompute them.
inline std::string CachePath(int nodes, uint64_t scale) {
  return "/tmp/tpcx_iot_sweep_n" + std::to_string(nodes) + "_s" +
         std::to_string(scale) + ".cache";
}

inline std::vector<iotdb::iot::ExperimentResult> Sweep(int nodes,
                                                       uint64_t scale) {
  return iotdb::iot::SweepCached(nodes, scale, CachePath(nodes, scale));
}

/// Sweep honouring --metrics-out: a metrics run bypasses the result cache
/// (a cache hit would skip the instrumented execution and leave the
/// snapshot empty).
inline std::vector<iotdb::iot::ExperimentResult> Sweep(int nodes,
                                                       const Args& args) {
  if (!args.metrics_out.empty()) {
    return iotdb::iot::RunSubstationSweep(nodes, args.scale);
  }
  return Sweep(nodes, args.scale);
}

/// Writes the global registry snapshot to --metrics-out (no-op when the
/// flag is absent). Call once at the end of main.
inline void MaybeWriteMetrics(const Args& args) {
  if (args.metrics_out.empty()) return;
  std::string json = iotdb::obs::MetricsRegistry::Global()
                         .TakeSnapshot()
                         .ToJson();
  FILE* f = fopen(args.metrics_out.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", args.metrics_out.c_str());
    return;
  }
  fwrite(json.data(), 1, json.size(), f);
  fclose(f);
  printf("\nmetrics snapshot written to %s (%zu bytes)\n",
         args.metrics_out.c_str(), json.size());
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  printf("============================================================\n");
  printf("%s\n", title);
  printf("(reproduces %s; virtual-time gateway model, scale divisor applies"
         " to kvp counts and run-time floors)\n",
         paper_ref);
  printf("============================================================\n");
}

}  // namespace benchutil

#endif  // IOTDB_BENCH_BENCH_UTIL_H_
