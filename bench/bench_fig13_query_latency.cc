// Reproduces Figure 13: average system-wide query elapsed time vs
// substations on 8 nodes.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::ParseArgs(argc, argv);
  benchutil::PrintHeader("Figure 13: average query elapsed time (8 nodes)",
                         "TPCx-IoT paper Fig. 13");

  auto results = benchutil::Sweep(8, args);
  printf("%12s %16s\n", "substations", "avg query [ms]");
  for (const auto& r : results) {
    printf("%12d %16.1f\n", r.config.substations,
           r.measured.query_latency.mean_us / 1000.0);
  }
  printf("\nPaper reference: 11.8-14.4 ms up to 8 substations, 33.1 ms at "
         "16, easing to 29.1 (32) and 25.4 (48) as the shrinking "
         "per-sensor rate makes the scans cheaper.\n");
  benchutil::MaybeWriteMetrics(args);
  return 0;
}
