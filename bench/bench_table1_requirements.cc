// Reproduces Table I: experiment parameters and requirement fulfilment for
// the 8-node configuration, substations 1..48.
#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"
#include "iot/rules.h"

using iotdb::iot::ExperimentResult;
using iotdb::iot::Rules;

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::ParseArgs(argc, argv);
  benchutil::PrintHeader("Table I: Experiment Parameters & Requirement "
                         "Fulfillment (8 nodes)",
                         "TPCx-IoT paper Table I");

  auto results = benchutil::Sweep(8, args);

  printf("%12s %14s %12s %12s %14s %12s | %s\n", "substations",
         "rows[million]", "warmup[s]", "measured[s]", "sys[kvps/s]",
         "per-sensor", "requirements");
  for (const ExperimentResult& r : results) {
    bool time_ok = r.MeetsTimeRequirement();
    bool rate_ok = r.MeetsRateRequirement();
    printf("%12d %14.0f %12.0f %12.0f %14.0f %12.1f | time:%s rate>=20:%s\n",
           r.config.substations,
           static_cast<double>(r.measured.kvps_ingested) / 1e6,
           r.warmup.elapsed_seconds, r.measured.elapsed_seconds,
           r.SystemIoTps(), r.PerSensorIoTps(), time_ok ? "PASS" : "FAIL",
           rate_ok ? "PASS" : "FAIL");
  }
  printf("\nPaper reference (8-node): 1->9806, 2->26999, 4->56822, "
         "8->84602, 16->133940, 32->186109, 48->182815 kvps/s;\n"
         "per-sensor 49.0, 67.5, 71.0, 52.9, 41.9, 29.1, 19.0 "
         "(floor 20 crossed at 48 substations).\n");
  benchutil::MaybeWriteMetrics(args);
  return 0;
}
