// Overhead budget check for the obs subsystem (plain main, not
// google-benchmark: the <10 ns assertion below is a pass/fail gate, so the
// binary exits non-zero when the budget is blown).
//
// Methodology: min-of-trials. Each trial times a tight loop of operations;
// the minimum across trials is the best estimate of the uncontended cost
// (scheduling noise and cache warmup only ever inflate a trial). Atomic
// RMW side effects keep the loops from being optimized away.
#include <chrono>
#include <cstdio>

#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace {

constexpr int kTrials = 9;
constexpr uint64_t kOpsPerTrial = 4 * 1000 * 1000;

// Uncontended counter increment must stay under this (single thread, hot
// cache) or the always-on per-store counters in the storage layer become a
// measurable tax on the write path.
constexpr double kCounterBudgetNs = 10.0;

// TraceBuffer::Record with tracing disabled is a single relaxed load and a
// branch — the price every instrumented call site pays all the time, so it
// shares the counter budget.
constexpr double kDisabledTraceBudgetNs = 10.0;

// Enabled span record: two relaxed ring-slot stores plus a release head
// publish, no locks and no allocation. Generous bound; it exists to catch a
// regression that adds a lock or a syscall to the hot path, not to measure
// the exact store cost.
constexpr double kEnabledTraceBudgetNs = 200.0;

// Extra cost of recording a span WITH a causal TraceContext over a plain
// record: three more relaxed slot stores. Catches a regression that adds
// allocation or id hashing to context propagation.
constexpr double kContextOverheadBudgetNs = 25.0;

// Breadcrumb + stage attribution with the registry disabled
// (IOTDB_OBS_DISABLED): the ScopedOpBreadcrumb constructor is one branch
// and AddStageMicros one TLS load + branch — the disabled path must stay
// free, so it shares the disabled-tracing budget.
constexpr double kDisabledBreadcrumbBudgetNs = kDisabledTraceBudgetNs;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

template <typename Fn>
double MinNsPerOp(Fn&& fn) {
  double best = 1e18;
  for (int t = 0; t < kTrials; ++t) {
    uint64_t start = NowNanos();
    for (uint64_t i = 0; i < kOpsPerTrial; ++i) fn(i);
    uint64_t elapsed = NowNanos() - start;
    double ns = static_cast<double>(elapsed) /
                static_cast<double>(kOpsPerTrial);
    if (ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main() {
  using iotdb::obs::Counter;
  using iotdb::obs::LatencyHistogram;

  printf("obs micro-benchmark: %d trials x %llu ops, min-of-trials\n\n",
         kTrials, static_cast<unsigned long long>(kOpsPerTrial));

  Counter counter;
  double counter_ns = MinNsPerOp([&](uint64_t) { counter.Increment(); });
  printf("  %-44s %8.2f ns/op (budget %.0f)\n",
         "Counter::Increment (uncontended)", counter_ns, kCounterBudgetNs);

  LatencyHistogram hist;
  double hist_ns =
      MinNsPerOp([&](uint64_t i) { hist.Record(i & 0xffff); });
  printf("  %-44s %8.2f ns/op\n", "LatencyHistogram::Record", hist_ns);

  iotdb::obs::SetEnabled(false);
  double gated_ns = MinNsPerOp([&](uint64_t) {
    if (iotdb::obs::Enabled()) counter.Increment();
  });
  printf("  %-44s %8.2f ns/op\n", "gated increment (registry disabled)",
         gated_ns);

  double timer_ns = MinNsPerOp([&](uint64_t) {
    iotdb::obs::ScopedTimer timer(&hist);
  });
  printf("  %-44s %8.2f ns/op\n", "ScopedTimer (registry disabled)",
         timer_ns);
  iotdb::obs::SetEnabled(true);

  // Tracing disabled (the default): Record must be a single branch.
  double trace_off_ns = MinNsPerOp([&](uint64_t i) {
    iotdb::obs::TraceBuffer::Record("bench.span", i, 1);
  });
  printf("  %-44s %8.2f ns/op (budget %.0f)\n",
         "TraceBuffer::Record (tracing disabled)", trace_off_ns,
         kDisabledTraceBudgetNs);

  // Tracing enabled: relaxed stores into the per-thread ring.
  iotdb::obs::TraceBuffer::StartTracing();
  double trace_on_ns = MinNsPerOp([&](uint64_t i) {
    iotdb::obs::TraceBuffer::Record("bench.span", i, 1, "i", i);
  });
  // Same record carrying a causal context: the marginal cost of the three
  // id stores is the price every traced hop on the write path pays.
  const iotdb::obs::TraceContext bench_ctx = iotdb::obs::TraceContext::Mint();
  double trace_ctx_ns = MinNsPerOp([&](uint64_t i) {
    iotdb::obs::TraceBuffer::Record("bench.span", i, 1, bench_ctx, "i", i);
  });
  uint64_t traced =
      iotdb::obs::TraceBuffer::Snapshot().size() +
      iotdb::obs::TraceBuffer::DroppedSpans();
  iotdb::obs::TraceBuffer::StopTracing();
  printf("  %-44s %8.2f ns/op (budget %.0f)\n",
         "TraceBuffer::Record (tracing enabled)", trace_on_ns,
         kEnabledTraceBudgetNs);
  double ctx_overhead_ns =
      trace_ctx_ns > trace_on_ns ? trace_ctx_ns - trace_on_ns : 0.0;
  printf("  %-44s %8.2f ns/op (+%.2f over plain, budget +%.0f)\n",
         "TraceBuffer::Record (with context)", trace_ctx_ns,
         ctx_overhead_ns, kContextOverheadBudgetNs);

  // Stage attribution with observability disabled: breadcrumb install and
  // AddStageMicros must cost a branch, nothing more.
  iotdb::obs::SetEnabled(false);
  double bc_disabled_ns = MinNsPerOp([&](uint64_t i) {
    iotdb::obs::ScopedOpBreadcrumb bc("bench.op", 0, 1);
    iotdb::obs::AddStageMicros(iotdb::obs::Stage::kVlog, i);
  });
  iotdb::obs::SetEnabled(true);
  printf("  %-44s %8.2f ns/op (budget %.0f)\n",
         "breadcrumb + stage (registry disabled)", bc_disabled_ns,
         kDisabledBreadcrumbBudgetNs);

  // Sanity: the side effects above really happened.
  if (counter.Value() == 0 || hist.TakeSnapshot().count == 0 ||
      traced == 0) {
    fprintf(stderr, "FAIL: instrument side effects were optimized away\n");
    return 1;
  }

  bool failed = false;
  if (counter_ns >= kCounterBudgetNs) {
    fprintf(stderr,
            "\nFAIL: uncontended counter increment %.2f ns/op exceeds the "
            "%.0f ns budget\n",
            counter_ns, kCounterBudgetNs);
    failed = true;
  }
  if (trace_off_ns >= kDisabledTraceBudgetNs) {
    fprintf(stderr,
            "\nFAIL: disabled-tracing span record %.2f ns/op exceeds the "
            "%.0f ns budget\n",
            trace_off_ns, kDisabledTraceBudgetNs);
    failed = true;
  }
  if (trace_on_ns >= kEnabledTraceBudgetNs) {
    fprintf(stderr,
            "\nFAIL: enabled span record %.2f ns/op exceeds the %.0f ns "
            "budget\n",
            trace_on_ns, kEnabledTraceBudgetNs);
    failed = true;
  }
  if (ctx_overhead_ns >= kContextOverheadBudgetNs) {
    fprintf(stderr,
            "\nFAIL: context propagation adds %.2f ns/op over a plain span "
            "record, exceeding the %.0f ns budget\n",
            ctx_overhead_ns, kContextOverheadBudgetNs);
    failed = true;
  }
  if (bc_disabled_ns >= kDisabledBreadcrumbBudgetNs) {
    fprintf(stderr,
            "\nFAIL: disabled breadcrumb + stage attribution %.2f ns/op "
            "exceeds the %.0f ns budget\n",
            bc_disabled_ns, kDisabledBreadcrumbBudgetNs);
    failed = true;
  }
  if (failed) return 1;
  printf("\nPASS: all hot-path instruments within budget\n");
  return 0;
}
