// Overhead budget check for the obs subsystem (plain main, not
// google-benchmark: the <10 ns assertion below is a pass/fail gate, so the
// binary exits non-zero when the budget is blown).
//
// Methodology: min-of-trials. Each trial times a tight loop of operations;
// the minimum across trials is the best estimate of the uncontended cost
// (scheduling noise and cache warmup only ever inflate a trial). Atomic
// RMW side effects keep the loops from being optimized away.
#include <chrono>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace {

constexpr int kTrials = 9;
constexpr uint64_t kOpsPerTrial = 4 * 1000 * 1000;

// Uncontended counter increment must stay under this (single thread, hot
// cache) or the always-on per-store counters in the storage layer become a
// measurable tax on the write path.
constexpr double kCounterBudgetNs = 10.0;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

template <typename Fn>
double MinNsPerOp(Fn&& fn) {
  double best = 1e18;
  for (int t = 0; t < kTrials; ++t) {
    uint64_t start = NowNanos();
    for (uint64_t i = 0; i < kOpsPerTrial; ++i) fn(i);
    uint64_t elapsed = NowNanos() - start;
    double ns = static_cast<double>(elapsed) /
                static_cast<double>(kOpsPerTrial);
    if (ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main() {
  using iotdb::obs::Counter;
  using iotdb::obs::LatencyHistogram;

  printf("obs micro-benchmark: %d trials x %llu ops, min-of-trials\n\n",
         kTrials, static_cast<unsigned long long>(kOpsPerTrial));

  Counter counter;
  double counter_ns = MinNsPerOp([&](uint64_t) { counter.Increment(); });
  printf("  %-44s %8.2f ns/op (budget %.0f)\n",
         "Counter::Increment (uncontended)", counter_ns, kCounterBudgetNs);

  LatencyHistogram hist;
  double hist_ns =
      MinNsPerOp([&](uint64_t i) { hist.Record(i & 0xffff); });
  printf("  %-44s %8.2f ns/op\n", "LatencyHistogram::Record", hist_ns);

  iotdb::obs::SetEnabled(false);
  double gated_ns = MinNsPerOp([&](uint64_t) {
    if (iotdb::obs::Enabled()) counter.Increment();
  });
  printf("  %-44s %8.2f ns/op\n", "gated increment (registry disabled)",
         gated_ns);

  double timer_ns = MinNsPerOp([&](uint64_t) {
    iotdb::obs::ScopedTimer timer(&hist);
  });
  printf("  %-44s %8.2f ns/op\n", "ScopedTimer (registry disabled)",
         timer_ns);
  iotdb::obs::SetEnabled(true);

  // Sanity: the side effects above really happened.
  if (counter.Value() == 0 || hist.TakeSnapshot().count == 0) {
    fprintf(stderr, "FAIL: instrument side effects were optimized away\n");
    return 1;
  }

  if (counter_ns >= kCounterBudgetNs) {
    fprintf(stderr,
            "\nFAIL: uncontended counter increment %.2f ns/op exceeds the "
            "%.0f ns budget\n",
            counter_ns, kCounterBudgetNs);
    return 1;
  }
  printf("\nPASS: counter increment within the %.0f ns budget\n",
         kCounterBudgetNs);
  return 0;
}
