// Workload-generation micro-benchmarks (google-benchmark): the cost of the
// TPCx-IoT kvp generation path (the Figure 8 inner loop) and the YCSB
// generator layer.
#include <benchmark/benchmark.h>

#include "common/clock.h"
#include "iot/data_generator.h"
#include "iot/query.h"
#include "ycsb/generator.h"

namespace {

using iotdb::ManualClock;
using iotdb::iot::DataGenerator;
using iotdb::iot::Kvp;
using iotdb::iot::QueryGenerator;

void BM_KvpGeneration(benchmark::State& state) {
  ManualClock clock(0);
  DataGenerator generator("sub0001", ~0ull >> 1, 7, &clock);
  for (auto _ : state) {
    clock.Advance(5);
    Kvp kvp = generator.Next();
    benchmark::DoNotOptimize(kvp.key.data());
    benchmark::DoNotOptimize(kvp.value.data());
  }
  state.SetBytesProcessed(state.iterations() * 1024);
  state.counters["kvps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KvpGeneration);

void BM_ReadingGenerationOnly(benchmark::State& state) {
  ManualClock clock(0);
  DataGenerator generator("sub0001", ~0ull >> 1, 7, &clock);
  for (auto _ : state) {
    clock.Advance(5);
    benchmark::DoNotOptimize(generator.NextReading());
  }
}
BENCHMARK(BM_ReadingGenerationOnly);

void BM_QueryGeneration(benchmark::State& state) {
  ManualClock clock(1ull << 41);
  QueryGenerator generator("sub0001", 7, &clock);
  for (auto _ : state) {
    clock.Advance(1000);
    benchmark::DoNotOptimize(generator.Next());
  }
}
BENCHMARK(BM_QueryGeneration);

void BM_ZipfianNext(benchmark::State& state) {
  iotdb::ycsb::ZipfianGenerator generator(static_cast<uint64_t>(
      state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Next());
  }
}
BENCHMARK(BM_ZipfianNext)->Arg(1000)->Arg(1000000);

void BM_ScrambledZipfianNext(benchmark::State& state) {
  iotdb::ycsb::ScrambledZipfianGenerator generator(1000000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Next());
  }
}
BENCHMARK(BM_ScrambledZipfianNext);

}  // namespace

BENCHMARK_MAIN();
