// Reproduces Figure 8: bare kvp generation speed and driver-host CPU
// utilisation for 1..64 driver instances writing to /dev/null.
//
// Two parts: (a) the real single-thread generation rate of this
// reproduction's C++ DataGenerator, measured on this host; (b) the paper's
// 56-hardware-thread Java driver host, reproduced with the calibrated
// contention model (that hardware is simulated; see DESIGN.md).
#include <cstdio>

#include "iot/driver_host_model.h"

using iotdb::iot::DriverHostProfile;
using iotdb::iot::GenerationPoint;

int main() {
  printf("============================================================\n");
  printf("Figure 8: driver generation speed and CPU utilisation\n");
  printf("============================================================\n");

  double real_rate = iotdb::iot::MeasureGenerationRate(500);
  printf("Measured single-thread generation rate of this C++ driver on "
         "this host: %.0f kvps/s\n\n", real_rate);

  DriverHostProfile profile;
  printf("Modeled driver host (2x14-core Xeon, 56 HT, 10 threads/driver):\n");
  printf("%10s %18s %10s %10s\n", "drivers", "total [kvps/s]", "CPU %",
         "sys %");
  for (const GenerationPoint& p :
       iotdb::iot::ModelGenerationSweep(profile)) {
    printf("%10d %18.0f %10.1f %10.1f\n", p.drivers, p.kvps_per_sec,
           p.cpu_percent, p.sys_percent);
  }
  printf("\nPaper reference: 120k kvps/s at 1 driver (4%% CPU), peak "
         "~1.1M at 32 drivers (75%% CPU), dropping to ~0.9M at 64 drivers "
         "(100%% CPU, sys 5%%->15%%).\n");
  return 0;
}
