// Reproduces Figure 12: average number of kvps aggregated per query (both
// 5-second windows), with the 200-row validity floor.
#include <cstdio>

#include "bench/bench_util.h"
#include "iot/rules.h"

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::ParseArgs(argc, argv);
  benchutil::PrintHeader("Figure 12: kvps aggregated per query (8 nodes, "
                         "floor = 200)",
                         "TPCx-IoT paper Fig. 12");

  auto results = benchutil::Sweep(8, args);
  printf("%12s %18s %10s\n", "substations", "avg rows/query", "valid?");
  for (const auto& r : results) {
    double rows = r.measured.avg_rows_per_query;
    printf("%12d %18.1f %10s\n", r.config.substations, rows,
           rows >= iotdb::iot::Rules::kMinKvpsPerQuery ? "yes" : "NO (<200)");
  }
  printf("\nShape: tracks Figure 11 times 10 (two 5-second windows), "
         "dropping below 200 only at 48 substations.\n");
  benchutil::MaybeWriteMetrics(args);
  return 0;
}
