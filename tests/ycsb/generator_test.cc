#include "ycsb/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace iotdb {
namespace ycsb {
namespace {

TEST(CounterGeneratorTest, MonotoneAndLast) {
  CounterGenerator gen(100);
  EXPECT_EQ(gen.Next(), 100u);
  EXPECT_EQ(gen.Next(), 101u);
  EXPECT_EQ(gen.Last(), 101u);
  gen.Set(5);
  EXPECT_EQ(gen.Next(), 5u);
}

TEST(UniformGeneratorTest, CoversRangeUniformly) {
  UniformGenerator gen(10, 19, 7);
  std::map<uint64_t, int> counts;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    uint64_t v = gen.Next();
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 19u);
    counts[v]++;
    EXPECT_EQ(gen.Last(), v);
  }
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count, kN / 10, kN / 100) << value;
  }
}

TEST(ZipfianGeneratorTest, StaysInRange) {
  ZipfianGenerator gen(1000);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(ZipfianGeneratorTest, HeadIsHot) {
  ZipfianGenerator gen(10000, ZipfianGenerator::kZipfianConstant, 11);
  uint64_t head_hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (gen.Next() < 100) head_hits++;  // top 1% of the keyspace
  }
  // Under zipf(0.99) the top 1% draws far more than 1% of accesses.
  EXPECT_GT(head_hits, static_cast<uint64_t>(kN) / 5);
}

TEST(ZipfianGeneratorTest, ItemCountGrowth) {
  ZipfianGenerator gen(10);
  gen.SetItemCount(1000000);
  bool saw_large = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = gen.Next();
    ASSERT_LT(v, 1000000u);
    if (v >= 10) saw_large = true;
  }
  EXPECT_TRUE(saw_large);
}

TEST(ScrambledZipfianTest, SpreadsHotKeys) {
  ScrambledZipfianGenerator gen(100000, 13);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[gen.Next()]++;
  // The hottest key is hot...
  int max_count = 0;
  uint64_t hottest = 0;
  for (const auto& [value, count] : counts) {
    if (count > max_count) {
      max_count = count;
      hottest = value;
    }
  }
  EXPECT_GT(max_count, 1000);
  // ...but not clustered at 0 (FNV scrambling).
  EXPECT_GT(hottest, 100u);
}

TEST(SkewedLatestTest, FavoursRecentInserts) {
  CounterGenerator basis(1000);
  SkewedLatestGenerator gen(&basis, 17);
  uint64_t recent = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    uint64_t v = gen.Next();
    ASSERT_LE(v, basis.Last());
    if (v + 10 >= basis.Last()) recent++;
  }
  EXPECT_GT(recent, static_cast<uint64_t>(kN) / 4);
}

TEST(HotspotGeneratorTest, HotFractionRespected) {
  HotspotGenerator gen(0, 999, 0.1, 0.9, 19);
  uint64_t hot = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (gen.Next() < 100) hot++;
  }
  EXPECT_NEAR(static_cast<double>(hot) / kN, 0.9, 0.02);
}

TEST(DiscreteGeneratorTest, WeightsAreHonoured) {
  DiscreteGenerator gen(23);
  gen.AddValue("READ", 0.7);
  gen.AddValue("INSERT", 0.2);
  gen.AddValue("SCAN", 0.1);
  std::map<std::string, int> counts;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) counts[gen.Next()]++;
  EXPECT_NEAR(counts["READ"] / static_cast<double>(kN), 0.7, 0.02);
  EXPECT_NEAR(counts["INSERT"] / static_cast<double>(kN), 0.2, 0.02);
  EXPECT_NEAR(counts["SCAN"] / static_cast<double>(kN), 0.1, 0.02);
}

TEST(FnvTest, DeterministicAndSpreading) {
  EXPECT_EQ(FnvHash64(1), FnvHash64(1));
  EXPECT_NE(FnvHash64(1), FnvHash64(2));
  // Low bits vary even for sequential inputs.
  std::set<uint64_t> low_bits;
  for (uint64_t i = 0; i < 64; ++i) low_bits.insert(FnvHash64(i) % 64);
  EXPECT_GT(low_bits.size(), 32u);
}

// Parameterised distribution sanity: every generator respects its range for
// many seeds (property-style sweep).
class GeneratorRangeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorRangeTest, AllGeneratorsStayInRange) {
  uint64_t seed = GetParam();
  UniformGenerator uniform(0, 99, seed);
  ZipfianGenerator zipf(100, ZipfianGenerator::kZipfianConstant, seed);
  ScrambledZipfianGenerator scrambled(100, seed);
  HotspotGenerator hotspot(0, 99, 0.2, 0.8, seed);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(uniform.Next(), 100u);
    EXPECT_LT(zipf.Next(), 100u);
    EXPECT_LT(scrambled.Next(), 100u);
    EXPECT_LT(hotspot.Next(), 100u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorRangeTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace ycsb
}  // namespace iotdb
