#include "ycsb/workloads.h"

#include <gtest/gtest.h>

#include "storage/env.h"
#include "storage/kvstore.h"
#include "ycsb/bindings.h"
#include "ycsb/client.h"
#include "ycsb/core_workload.h"

namespace iotdb {
namespace ycsb {
namespace {

TEST(StandardWorkloadTest, AllSixPresetsAreValid) {
  for (char name : {'a', 'b', 'c', 'd', 'e', 'f'}) {
    auto props = StandardWorkload(name);
    ASSERT_TRUE(props.ok()) << name;
    auto workload = CoreWorkload::Create(props.ValueOrDie());
    EXPECT_TRUE(workload.ok()) << name << ": "
                               << workload.status().ToString();
  }
  EXPECT_TRUE(StandardWorkload('A').ok());  // case-insensitive
  EXPECT_FALSE(StandardWorkload('z').ok());
}

TEST(StandardWorkloadTest, PresetsEncodeTheRightMix) {
  Properties a = StandardWorkload('a').ValueOrDie();
  EXPECT_EQ(a.Get("readproportion"), "0.5");
  EXPECT_EQ(a.Get("updateproportion"), "0.5");

  Properties c = StandardWorkload('c').ValueOrDie();
  EXPECT_EQ(c.Get("readproportion"), "1.0");

  Properties d = StandardWorkload('d').ValueOrDie();
  EXPECT_EQ(d.Get("requestdistribution"), "latest");

  Properties e = StandardWorkload('e').ValueOrDie();
  EXPECT_EQ(e.Get("scanproportion"), "0.95");
}

TEST(StandardWorkloadTest, WorkloadsRunEndToEnd) {
  auto env = storage::NewMemEnv();
  storage::Options options;
  options.env = env.get();
  auto store = storage::KVStore::Open(options, "/wl").MoveValueUnsafe();
  KVStoreDB db(store.get());

  for (char name : {'a', 'c', 'e'}) {
    Properties props = StandardWorkload(name).ValueOrDie();
    props.Set("recordcount", "200");
    props.Set("operationcount", "400");
    auto workload = CoreWorkload::Create(props).MoveValueUnsafe();
    Measurements measurements;
    ClientOptions client_options;
    ClientResult load =
        RunLoadPhase(client_options, &db, workload.get(), &measurements);
    EXPECT_EQ(load.failures, 0u) << name;
    ClientResult txn = RunTransactionPhase(client_options, &db,
                                           workload.get(), &measurements);
    EXPECT_EQ(txn.operations, 400u) << name;
    EXPECT_EQ(txn.failures, 0u) << name;
  }
}

}  // namespace
}  // namespace ycsb
}  // namespace iotdb
