#include "ycsb/status_reporter.h"

#include <gtest/gtest.h>

#include <vector>

namespace iotdb {
namespace ycsb {
namespace {

TEST(StatusReporterTest, EmitsSamplesWhileRunning) {
  std::atomic<uint64_t> ops{0};
  std::vector<StatusReporter::Sample> samples;
  std::mutex mu;
  StatusReporter reporter(&ops, 30000 /* 30ms */,
                          [&](const StatusReporter::Sample& sample) {
                            std::lock_guard<std::mutex> lock(mu);
                            samples.push_back(sample);
                          });
  reporter.Start();
  for (int i = 0; i < 5; ++i) {
    ops.fetch_add(100);
    Clock::Real()->SleepMicros(25000);
  }
  reporter.Stop();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_GE(samples.size(), 2u);
  // Totals are monotone and end at the final count.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].total_ops, samples[i - 1].total_ops);
    EXPECT_GT(samples[i].elapsed_micros, samples[i - 1].elapsed_micros);
  }
  EXPECT_EQ(samples.back().total_ops, 500u);
  EXPECT_GT(samples.back().cumulative_ops_per_sec, 0.0);
}

TEST(StatusReporterTest, StartStopAreIdempotent) {
  std::atomic<uint64_t> ops{0};
  StatusReporter reporter(&ops, 10000, [](const auto&) {});
  reporter.Start();
  reporter.Start();
  reporter.Stop();
  reporter.Stop();
}

TEST(StatusReporterTest, FormatIsHumanReadable) {
  StatusReporter::Sample sample;
  sample.elapsed_micros = 10 * 1000000;
  sample.total_ops = 123456;
  sample.interval_ops_per_sec = 1000.4;
  sample.cumulative_ops_per_sec = 12345.6;
  std::string line = StatusReporter::Format(sample);
  EXPECT_NE(line.find("10 sec"), std::string::npos);
  EXPECT_NE(line.find("123456 operations"), std::string::npos);
  EXPECT_NE(line.find("12346 ops/sec"), std::string::npos);
}

}  // namespace
}  // namespace ycsb
}  // namespace iotdb
