// CoreWorkload, Measurements, client, and DB binding tests.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "common/properties.h"
#include "storage/env.h"
#include "storage/kvstore.h"
#include "ycsb/bindings.h"
#include "ycsb/client.h"
#include "ycsb/core_workload.h"
#include "ycsb/db.h"
#include "ycsb/measurements.h"

namespace iotdb {
namespace ycsb {
namespace {

TEST(MeasurementsTest, RecordsPerOpHistograms) {
  Measurements m;
  m.Record("READ", 100);
  m.Record("READ", 200);
  m.Record("INSERT", 50);
  m.RecordFailure("READ");

  Histogram reads = m.GetHistogram("READ");
  EXPECT_EQ(reads.count(), 2u);
  EXPECT_EQ(reads.min(), 100u);
  EXPECT_EQ(reads.max(), 200u);
  EXPECT_EQ(m.GetFailures("READ"), 1u);
  EXPECT_EQ(m.GetFailures("INSERT"), 0u);
  EXPECT_EQ(m.GetHistogram("UNKNOWN").count(), 0u);
}

TEST(MeasurementsTest, MergeAndReport) {
  Measurements a, b;
  a.Record("READ", 10);
  b.Record("READ", 30);
  b.Record("SCAN", 99);
  a.Merge(b);
  EXPECT_EQ(a.GetHistogram("READ").count(), 2u);
  EXPECT_EQ(a.GetHistogram("SCAN").count(), 1u);
  std::string report = a.Report();
  EXPECT_NE(report.find("READ"), std::string::npos);
  EXPECT_NE(report.find("SCAN"), std::string::npos);
  a.Reset();
  EXPECT_EQ(a.GetHistogram("READ").count(), 0u);
}

TEST(NullDBTest, SwallowsEverything) {
  NullDB db;
  EXPECT_TRUE(db.Insert("k", "v").ok());
  EXPECT_TRUE(db.InsertBatch({{"a", "1"}, {"b", "2"}}).ok());
  EXPECT_TRUE(db.Read("k").status().IsNotFound());
  std::vector<std::pair<std::string, std::string>> rows;
  EXPECT_TRUE(db.Scan("s", "a", "z", 0, &rows).ok());
  EXPECT_TRUE(rows.empty());
}

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = storage::NewMemEnv();
    storage::Options options;
    options.env = env_.get();
    store_ = storage::KVStore::Open(options, "/ycsb").MoveValueUnsafe();
    db_ = std::make_unique<KVStoreDB>(store_.get());
  }

  std::unique_ptr<CoreWorkload> MakeWorkload(const std::string& text) {
    Properties props;
    EXPECT_TRUE(props.ParseText(text).ok());
    auto result = CoreWorkload::Create(props);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).MoveValueUnsafe();
  }

  std::unique_ptr<storage::Env> env_;
  std::unique_ptr<storage::KVStore> store_;
  std::unique_ptr<DB> db_;
};

TEST_F(WorkloadTest, LoadPhaseInsertsRecordCount) {
  auto workload = MakeWorkload("recordcount=500\noperationcount=0\n");
  Measurements m;
  ClientOptions options;
  ClientResult result = RunLoadPhase(options, db_.get(), workload.get(), &m);
  EXPECT_EQ(result.operations, 500u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(m.GetHistogram("INSERT").count(), 500u);
  EXPECT_EQ(store_->CountKeysSlow(), 500u);
}

TEST_F(WorkloadTest, TransactionsFollowMix) {
  auto workload = MakeWorkload(
      "recordcount=200\noperationcount=1000\n"
      "readproportion=0.5\nupdateproportion=0.3\nscanproportion=0.2\n"
      "requestdistribution=uniform\n");
  Measurements m;
  ClientOptions options;
  RunLoadPhase(options, db_.get(), workload.get(), &m);
  m.Reset();
  ClientResult result =
      RunTransactionPhase(options, db_.get(), workload.get(), &m);
  EXPECT_EQ(result.operations, 1000u);
  EXPECT_EQ(result.failures, 0u);
  auto snapshot = m.Snapshot();
  uint64_t total = snapshot["READ"].count() + snapshot["UPDATE"].count() +
                   snapshot["SCAN"].count();
  EXPECT_EQ(total, 1000u);
  EXPECT_NEAR(snapshot["READ"].count(), 500, 80);
  EXPECT_NEAR(snapshot["UPDATE"].count(), 300, 70);
  EXPECT_NEAR(snapshot["SCAN"].count(), 200, 60);
}

TEST_F(WorkloadTest, MultiThreadedClientCompletes) {
  auto workload = MakeWorkload(
      "recordcount=300\noperationcount=600\nreadproportion=1.0\n"
      "updateproportion=0\n");
  Measurements m;
  ClientOptions options;
  options.threads = 4;
  RunLoadPhase(options, db_.get(), workload.get(), &m);
  EXPECT_EQ(store_->CountKeysSlow(), 300u);
  ClientResult result =
      RunTransactionPhase(options, db_.get(), workload.get(), &m);
  EXPECT_EQ(result.operations, 600u);
  EXPECT_EQ(result.failures, 0u);
}

TEST_F(WorkloadTest, TargetThroughputThrottles) {
  auto workload = MakeWorkload(
      "recordcount=300\noperationcount=0\n");
  Measurements m;
  ClientOptions options;
  // Burst is ~100 permits, so ~200 inserts are paced at 1 ms each.
  options.target_ops_per_sec = 1000;
  ClientResult result = RunLoadPhase(options, db_.get(), workload.get(), &m);
  EXPECT_GE(result.elapsed_micros, 150000u);
}

TEST_F(WorkloadTest, InvalidPropertiesRejected) {
  Properties props;
  ASSERT_TRUE(props.ParseText("recordcount=0\n").ok());
  EXPECT_FALSE(CoreWorkload::Create(props).ok());

  Properties bad_dist;
  ASSERT_TRUE(bad_dist.ParseText("requestdistribution=bogus\n").ok());
  EXPECT_FALSE(CoreWorkload::Create(bad_dist).ok());
}

TEST_F(WorkloadTest, KeyNamesAreStable) {
  EXPECT_EQ(CoreWorkload::BuildKeyName(1), CoreWorkload::BuildKeyName(1));
  EXPECT_NE(CoreWorkload::BuildKeyName(1), CoreWorkload::BuildKeyName(2));
  EXPECT_EQ(CoreWorkload::BuildKeyName(7).substr(0, 4), "user");
}

TEST(ClusterDBTest, RoundTripsThroughCluster) {
  cluster::ClusterOptions options;
  options.num_nodes = 3;
  auto cluster = cluster::Cluster::Start(options).MoveValueUnsafe();
  ClusterDB db(cluster.get());
  ASSERT_TRUE(db.Insert("key", "value").ok());
  EXPECT_EQ(db.Read("key").ValueOrDie(), "value");
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(db.Scan("key", "key", "kez", 0, &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
}

}  // namespace
}  // namespace ycsb
}  // namespace iotdb
