#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "storage/env.h"
#include "storage/kvstore.h"
#include "storage/write_batch.h"

namespace iotdb {
namespace storage {
namespace {

// Functional coverage for the sharded write path: hash routing, per-shard
// WAL partitions, the WriteBatch splitter, vectorized ingest (PutMany),
// per-shard observability, recovery across shard-count changes, and the
// sequence-publication contract (snapshots are exact prefixes of global
// sequence history even with concurrent writers on different shards).

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

std::string Value(int i) { return "value-" + std::to_string(i); }

std::unique_ptr<KVStore> OpenStore(Env* env, int write_shards,
                                   const std::string& name = "/db") {
  Options options;
  options.env = env;
  options.write_shards = write_shards;
  options.write_buffer_size = 1 << 20;
  auto result = KVStore::Open(options, name);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).MoveValueUnsafe();
}

TEST(ShardWritePathTest, RoundTripAcrossShards) {
  auto env = NewMemEnv();
  auto store = OpenStore(env.get(), 4);
  ASSERT_EQ(store->num_write_shards(), 4);

  const int kN = 500;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store->Put(WriteOptions(), Key(i), Value(i)).ok());
  }
  for (int i = 0; i < kN; ++i) {
    auto r = store->Get(ReadOptions(), Key(i));
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(r.ValueOrDie(), Value(i));
  }

  // Sequential keys must spread over more than one shard (FNV-1a routing),
  // and routing must agree with the store's own answer key by key.
  std::set<int> shards_used;
  for (int i = 0; i < kN; ++i) {
    int shard = store->ShardForKey(Key(i));
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, store->num_write_shards());
    shards_used.insert(shard);
  }
  EXPECT_GT(shards_used.size(), 1u);
}

TEST(ShardWritePathTest, EachShardHasItsOwnWalPartition) {
  auto env = NewMemEnv();
  auto store = OpenStore(env.get(), 4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Put(WriteOptions(), Key(i), Value(i)).ok());
  }

  // WAL partitions are named wal-<shard>-<number>.log; every shard must
  // own at least one live partition.
  auto listing = env->ListDir("/db");
  ASSERT_TRUE(listing.ok());
  std::set<int> wal_shards;
  for (const auto& name : listing.ValueOrDie()) {
    int shard = -1;
    if (sscanf(name.c_str(), "wal-%d-", &shard) == 1) {
      wal_shards.insert(shard);
    }
  }
  EXPECT_EQ(wal_shards, (std::set<int>{0, 1, 2, 3}));
}

TEST(ShardWritePathTest, PutManyRoutesEveryEntry) {
  auto env = NewMemEnv();
  auto store = OpenStore(env.get(), 4);

  const int kN = 1000;
  std::vector<std::string> keys, values;
  keys.reserve(kN);
  values.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    keys.push_back(Key(i));
    values.push_back(Value(i));
  }
  std::vector<KvEntry> entries;
  entries.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    entries.push_back({Slice(keys[i]), Slice(values[i])});
  }
  ASSERT_TRUE(store
                  ->PutMany(WriteOptions(),
                            std::span<const KvEntry>(entries.data(),
                                                     entries.size()))
                  .ok());
  for (int i = 0; i < kN; ++i) {
    auto r = store->Get(ReadOptions(), Key(i));
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(r.ValueOrDie(), Value(i));
  }
  EXPECT_EQ(store->CountKeysSlow(), static_cast<uint64_t>(kN));

  // The vectorized path feeds the same per-shard counters as Put.
  KVStoreStats stats = store->GetStats();
  ASSERT_EQ(stats.shard_puts.size(), 4u);
  uint64_t total = 0;
  int nonzero = 0;
  for (uint64_t p : stats.shard_puts) {
    total += p;
    if (p > 0) ++nonzero;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kN));
  EXPECT_GT(nonzero, 1);
}

TEST(ShardWritePathTest, WriteBatchSplitterHandlesPutsAndDeletes) {
  auto env = NewMemEnv();
  auto store = OpenStore(env.get(), 4);

  const int kN = 200;
  WriteBatch batch;
  for (int i = 0; i < kN; ++i) {
    batch.Put(Key(i), Value(i));
  }
  ASSERT_TRUE(store->Write(WriteOptions(), &batch).ok());

  // One batch mixing overwrites and deletes that hash to different shards.
  WriteBatch mixed;
  for (int i = 0; i < kN; ++i) {
    if (i % 3 == 0) {
      mixed.Delete(Key(i));
    } else if (i % 3 == 1) {
      mixed.Put(Key(i), Value(i) + "-v2");
    }
  }
  ASSERT_TRUE(store->Write(WriteOptions(), &mixed).ok());

  for (int i = 0; i < kN; ++i) {
    auto r = store->Get(ReadOptions(), Key(i));
    if (i % 3 == 0) {
      EXPECT_TRUE(r.status().IsNotFound()) << Key(i);
    } else if (i % 3 == 1) {
      ASSERT_TRUE(r.ok()) << Key(i);
      EXPECT_EQ(r.ValueOrDie(), Value(i) + "-v2");
    } else {
      ASSERT_TRUE(r.ok()) << Key(i);
      EXPECT_EQ(r.ValueOrDie(), Value(i));
    }
  }
}

TEST(ShardWritePathTest, PerShardStatsAndImbalanceGauge) {
  auto env = NewMemEnv();
  auto store = OpenStore(env.get(), 4);

  const int kN = 800;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store->Put(WriteOptions(), Key(i), Value(i)).ok());
  }
  KVStoreStats stats = store->GetStats();
  ASSERT_EQ(stats.shard_puts.size(), 4u);
  ASSERT_EQ(stats.shard_stall_micros.size(), 4u);
  ASSERT_EQ(stats.shard_wal_bytes.size(), 4u);

  uint64_t total_puts = 0, total_wal_bytes = 0;
  for (size_t i = 0; i < 4; ++i) {
    total_puts += stats.shard_puts[i];
    total_wal_bytes += stats.shard_wal_bytes[i];
    // Every shard that absorbed puts must have written WAL bytes.
    if (stats.shard_puts[i] > 0) {
      EXPECT_GT(stats.shard_wal_bytes[i], 0u);
    }
  }
  EXPECT_EQ(total_puts, static_cast<uint64_t>(kN));
  EXPECT_GT(total_wal_bytes, 0u);
  // Hottest shard is at least the mean; a wildly skewed hash would push
  // this toward 400% on 4 shards.
  EXPECT_GE(stats.shard_imbalance_pct, 100.0);
  EXPECT_LT(stats.shard_imbalance_pct, 400.0);
}

TEST(ShardWritePathTest, FlushAcrossShardsAndKeepWriting) {
  auto env = NewMemEnv();
  auto store = OpenStore(env.get(), 4);

  const int kN = 300;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store->Put(WriteOptions(), Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(store->FlushMemTable().ok());
  for (int i = kN; i < 2 * kN; ++i) {
    ASSERT_TRUE(store->Put(WriteOptions(), Key(i), Value(i)).ok());
  }
  for (int i = 0; i < 2 * kN; ++i) {
    auto r = store->Get(ReadOptions(), Key(i));
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(r.ValueOrDie(), Value(i));
  }

  ScrubReport report;
  ASSERT_TRUE(store->VerifyIntegrity(&report).ok());
  EXPECT_EQ(report.corrupt_files, 0u);
  EXPECT_EQ(report.quarantined_files, 0u);
}

TEST(ShardWritePathTest, OrderlyReopenRecoversEveryShard) {
  auto env = NewMemEnv();
  const int kN = 400;
  {
    auto store = OpenStore(env.get(), 4);
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(store->Put(WriteOptions(), Key(i), Value(i)).ok());
    }
    // Half the data flushed, half left in the four WAL partitions: the
    // merge-replay has to interleave all of them by sequence.
    ASSERT_TRUE(store->FlushMemTable().ok());
    for (int i = kN; i < 2 * kN; ++i) {
      ASSERT_TRUE(store->Put(WriteOptions(), Key(i), Value(i)).ok());
    }
  }
  auto store = OpenStore(env.get(), 4);
  for (int i = 0; i < 2 * kN; ++i) {
    auto r = store->Get(ReadOptions(), Key(i));
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(r.ValueOrDie(), Value(i));
  }
  EXPECT_EQ(store->CountKeysSlow(), static_cast<uint64_t>(2 * kN));
}

TEST(ShardWritePathTest, ReplayOrderPreservesOverwritesAcrossPartitions) {
  auto env = NewMemEnv();
  const int kN = 120;
  {
    auto store = OpenStore(env.get(), 4);
    // Three rounds of overwrites to the same keys: replay must apply WAL
    // records in global sequence order or a stale version would win.
    for (int round = 1; round <= 3; ++round) {
      for (int i = 0; i < kN; ++i) {
        ASSERT_TRUE(store
                        ->Put(WriteOptions(), Key(i),
                              Value(i) + "-r" + std::to_string(round))
                        .ok());
      }
    }
  }
  auto store = OpenStore(env.get(), 4);
  for (int i = 0; i < kN; ++i) {
    auto r = store->Get(ReadOptions(), Key(i));
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(r.ValueOrDie(), Value(i) + "-r3");
  }
}

TEST(ShardWritePathTest, ReopenWithDifferentShardCount) {
  auto env = NewMemEnv();
  const int kN = 250;
  {
    auto store = OpenStore(env.get(), 4);
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(store->Put(WriteOptions(), Key(i), Value(i)).ok());
    }
  }
  // Recovery re-routes by the current hash, so the shard count is a free
  // tunable between runs — including collapsing to one shard.
  for (int shards : {2, 1, 8}) {
    auto store = OpenStore(env.get(), shards);
    ASSERT_EQ(store->num_write_shards(), shards);
    for (int i = 0; i < kN; ++i) {
      auto r = store->Get(ReadOptions(), Key(i));
      ASSERT_TRUE(r.ok()) << "shards=" << shards << " " << Key(i);
      EXPECT_EQ(r.ValueOrDie(), Value(i));
    }
    // Keep the store mutating so the next reopen also replays fresh state.
    ASSERT_TRUE(
        store->Put(WriteOptions(), "reopen" + std::to_string(shards), "ok")
            .ok());
  }
}

TEST(ShardWritePathTest, AutoShardCountUsesHardwareConcurrency) {
  auto env = NewMemEnv();
  auto store = OpenStore(env.get(), 0);
  int expect = static_cast<int>(std::thread::hardware_concurrency());
  if (expect < 1) expect = 1;
  if (expect > 64) expect = 64;
  EXPECT_EQ(store->num_write_shards(), expect);
  ASSERT_TRUE(store->Put(WriteOptions(), "auto", "ok").ok());
  EXPECT_EQ(store->Get(ReadOptions(), "auto").ValueOrDie(), "ok");
}

// Satellite 1 regression: sequence allocation + publication. Eight
// concurrent writers, each appending its own key series in program order.
// Because a single writer's puts get strictly increasing sequences and a
// snapshot admits exactly the published prefix seq <= S, every iterator
// must see, for each writer, a *prefix* of that writer's series — a gap
// (key i visible while key j < i is not) would mean visibility got
// published out of sequence order.
TEST(ShardWritePathTest, SnapshotIsolationUnderConcurrentWriters) {
  auto env = NewMemEnv();
  auto store = OpenStore(env.get(), 8);

  constexpr int kWriters = 8;
  constexpr int kPerWriter = 400;
  auto writer_key = [](int w, int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "w%02d-%05d", w, i);
    return std::string(buf);
  };

  std::atomic<bool> go{false};
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerWriter; ++i) {
        ASSERT_TRUE(
            store->Put(WriteOptions(), writer_key(w, i), Value(i)).ok());
      }
    });
  }

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto it = store->NewIterator(ReadOptions());
      int max_seen[kWriters];
      int count_seen[kWriters];
      for (int w = 0; w < kWriters; ++w) {
        max_seen[w] = -1;
        count_seen[w] = 0;
      }
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        int w = 0, i = 0;
        ASSERT_EQ(sscanf(it->key().ToString().c_str(), "w%d-%d", &w, &i), 2);
        if (i > max_seen[w]) max_seen[w] = i;
        ++count_seen[w];
      }
      ASSERT_TRUE(it->status().ok());
      for (int w = 0; w < kWriters; ++w) {
        // Prefix property: seeing index i implies seeing all j < i.
        ASSERT_EQ(count_seen[w], max_seen[w] + 1)
            << "writer " << w << " has a visibility gap";
      }
    }
  });

  go.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // After every writer joined, everything is published and visible.
  uint64_t expect = static_cast<uint64_t>(kWriters) * kPerWriter;
  EXPECT_EQ(store->CountKeysSlow(), expect);
}

// Snapshot sequences are cut from the published prefix: a snapshot taken
// between two of a writer's puts must order between their sequences, and
// snapshots are monotone even when the intervening writes landed on many
// different shards (block allocation must not leak unpublished sequences
// into GetSnapshot).
TEST(ShardWritePathTest, SnapshotSequencesAreMonotoneAcrossShards) {
  auto env = NewMemEnv();
  auto store = OpenStore(env.get(), 8);

  SequenceNumber last = store->GetSnapshot();
  std::vector<SequenceNumber> pinned{last};
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(store->Put(WriteOptions(), Key(i), Value(i)).ok());
    SequenceNumber snap = store->GetSnapshot();
    ASSERT_GT(snap, last) << "snapshot did not advance past put " << i;
    last = snap;
    pinned.push_back(snap);
  }
  // Pinned snapshots hold compaction back without deadlocking the sharded
  // flush path.
  ASSERT_TRUE(store->FlushMemTable().ok());
  for (SequenceNumber snap : pinned) store->ReleaseSnapshot(snap);
  ASSERT_TRUE(store->CompactAll().ok());
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(store->Get(ReadOptions(), Key(i)).ValueOrDie(), Value(i));
  }
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
