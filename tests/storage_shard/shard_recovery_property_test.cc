#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/kvstore.h"

namespace iotdb {
namespace storage {
namespace {

// Crash-recovery property for the partitioned WAL: a crash mid-group-commit
// tears the unsynced tail of every shard's WAL partition independently.
// Merge-replay must reconstruct exactly some per-shard *prefix* of the
// acked writes, applied in global sequence order:
//
//  * every synced (acked-durable) write survives with its exact value;
//  * per shard, the surviving unsynced writes are a contiguous prefix of
//    the order they were issued to that shard (a WAL is append-only, so a
//    torn tail can only drop a suffix);
//  * no key ever reads as garbage — only a committed value or NotFound.
//
// One hundred seeds drive the mix of synced/unsynced counts, value sizes
// and crash torn-tail randomness.
class ShardRecoveryPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static std::string SyncedKey(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "sync%06d", i);
    return buf;
  }
  static std::string UnsyncedKey(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "unsy%06d", i);
    return buf;
  }
  static std::string Value(const std::string& key, uint64_t seed,
                           size_t len) {
    std::string v = key + ":" + std::to_string(seed) + ":";
    v.append(len, static_cast<char>('a' + seed % 26));
    return v;
  }
};

TEST_P(ShardRecoveryPropertyTest, ReplayRestoresAckedPrefixPerShard) {
  const uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  auto base = NewMemEnv();
  FaultInjectionEnv fenv(base.get(), seed);
  fenv.SetTornTailProbability(1.0);

  Options options;
  options.env = &fenv;
  options.write_buffer_size = 1 << 20;  // keep everything in the WALs
  options.write_shards = 4;

  const int kSynced = 20 + static_cast<int>(rng() % 40);
  const int kUnsynced = 60 + static_cast<int>(rng() % 120);
  const size_t value_len = 32 + static_cast<size_t>(rng() % 160);

  // Issue order of unsynced writes per shard, and each write's value.
  std::vector<std::vector<std::string>> unsynced_per_shard(4);
  std::map<std::string, std::string> values;

  {
    auto result = KVStore::Open(options, "/db");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto store = std::move(result).MoveValueUnsafe();
    ASSERT_EQ(store->num_write_shards(), 4);

    WriteOptions synced;
    synced.sync = true;
    for (int i = 0; i < kSynced; ++i) {
      std::string key = SyncedKey(i);
      values[key] = Value(key, seed, value_len);
      ASSERT_TRUE(store->Put(synced, key, values[key]).ok());
    }

    // Unsynced writes to fresh keys, spread over all partitions by the
    // hash. Recording the store's own routing gives the per-shard issue
    // order the prefix check needs.
    for (int i = 0; i < kUnsynced; ++i) {
      std::string key = UnsyncedKey(i);
      values[key] = Value(key, seed, value_len);
      ASSERT_TRUE(store->Put(WriteOptions(), key, values[key]).ok());
      unsynced_per_shard[store->ShardForKey(key)].push_back(key);
    }

    // Abrupt death mid-stream: every WAL partition loses an independent
    // random chunk of its unsynced tail (torn final record included).
    fenv.MarkCrashed("/db");
    store.reset();
    ASSERT_TRUE(fenv.Crash("/db").ok());
    fenv.ClearCrashed("/db");
  }

  auto result = KVStore::Open(options, "/db");
  ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                           << result.status().ToString();
  auto store = std::move(result).MoveValueUnsafe();

  // Synced writes are acked durable: exact survival, no exceptions.
  for (int i = 0; i < kSynced; ++i) {
    auto r = store->Get(ReadOptions(), SyncedKey(i));
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": synced key lost: "
                        << SyncedKey(i);
    EXPECT_EQ(r.ValueOrDie(), values[SyncedKey(i)]);
  }

  // Unsynced writes: per shard, survivors must be a contiguous prefix of
  // the issue order, each with its exact committed value.
  for (int shard = 0; shard < 4; ++shard) {
    const auto& issued = unsynced_per_shard[shard];
    size_t survivors = 0;
    bool in_prefix = true;
    for (const std::string& key : issued) {
      auto r = store->Get(ReadOptions(), key);
      if (r.ok()) {
        ASSERT_TRUE(in_prefix)
            << "seed " << seed << " shard " << shard << ": key " << key
            << " survived after an earlier write to the same shard was "
               "lost — replay is not a sequence-order prefix";
        EXPECT_EQ(r.ValueOrDie(), values[key]) << "seed " << seed;
        ++survivors;
      } else {
        ASSERT_TRUE(r.status().IsNotFound())
            << "seed " << seed << ": " << r.status().ToString();
        in_prefix = false;
      }
    }
    (void)survivors;
  }

  // The recovered store is healthy: clean integrity walk, still writable.
  ScrubReport report;
  ASSERT_TRUE(store->VerifyIntegrity(&report).ok());
  EXPECT_EQ(report.corrupt_files, 0u) << "seed " << seed;
  EXPECT_EQ(report.quarantined_files, 0u) << "seed " << seed;
  ASSERT_TRUE(store->Put(WriteOptions(), "post-crash", "alive").ok());
  EXPECT_EQ(store->Get(ReadOptions(), "post-crash").ValueOrDie(), "alive");
}

// Value-separated variant: pointer records in one shard's WAL must never
// dangle into a torn vlog tail after replay (pointer validation drops
// them), regardless of which shard carried the pointer.
TEST_P(ShardRecoveryPropertyTest, VlogPointersValidatedAcrossPartitions) {
  const uint64_t seed = GetParam();
  if (seed % 5 != 0) GTEST_SKIP() << "vlog variant runs on every 5th seed";
  auto base = NewMemEnv();
  FaultInjectionEnv fenv(base.get(), seed);
  fenv.SetTornTailProbability(1.0);

  Options options;
  options.env = &fenv;
  options.write_buffer_size = 1 << 20;
  options.write_shards = 4;
  options.value_separation = true;
  options.min_value_size = 64;
  options.background_vlog_gc = false;

  const int kSynced = 30;
  const int kUnsynced = 90;
  std::map<std::string, std::string> values;
  {
    auto result = KVStore::Open(options, "/db");
    ASSERT_TRUE(result.ok());
    auto store = std::move(result).MoveValueUnsafe();
    WriteOptions synced;
    synced.sync = true;
    for (int i = 0; i < kSynced; ++i) {
      std::string key = SyncedKey(i);
      values[key] = Value(key, seed, 200);  // above min_value_size
      ASSERT_TRUE(store->Put(synced, key, values[key]).ok());
    }
    for (int i = 0; i < kUnsynced; ++i) {
      std::string key = UnsyncedKey(i);
      values[key] = Value(key, seed, 200);
      ASSERT_TRUE(store->Put(WriteOptions(), key, values[key]).ok());
    }
    fenv.MarkCrashed("/db");
    store.reset();
    ASSERT_TRUE(fenv.Crash("/db").ok());
    fenv.ClearCrashed("/db");
  }

  auto result = KVStore::Open(options, "/db");
  ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                           << result.status().ToString();
  auto store = std::move(result).MoveValueUnsafe();
  for (int i = 0; i < kSynced; ++i) {
    auto r = store->Get(ReadOptions(), SyncedKey(i));
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << SyncedKey(i);
    EXPECT_EQ(r.ValueOrDie(), values[SyncedKey(i)]);
  }
  for (int i = 0; i < kUnsynced; ++i) {
    auto r = store->Get(ReadOptions(), UnsyncedKey(i));
    if (r.ok()) {
      // Never garbage and never a dangling-pointer error.
      EXPECT_EQ(r.ValueOrDie(), values[UnsyncedKey(i)]) << "seed " << seed;
    } else {
      ASSERT_TRUE(r.status().IsNotFound())
          << "seed " << seed << ": " << r.status().ToString();
    }
  }
  ScrubReport report;
  ASSERT_TRUE(store->VerifyIntegrity(&report).ok());
  EXPECT_EQ(report.corrupt_files, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardRecoveryPropertyTest,
                         ::testing::Range<uint64_t>(1, 101));

// Deterministic torn-tail drill, one WAL partition at a time: corrupt the
// final bytes of exactly one shard's WAL, reopen, and check that only that
// shard lost (a suffix of) its writes while every other partition replays
// in full. Run for each of the four partitions.
class ShardTornTailTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardTornTailTest, TearingOnePartitionOnlyAffectsThatShard) {
  const int victim = GetParam();
  auto env = NewMemEnv();

  Options options;
  options.env = env.get();
  options.write_buffer_size = 1 << 20;
  options.write_shards = 4;

  const int kN = 400;
  auto key = [](int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return std::string(buf);
  };
  std::vector<std::vector<std::string>> per_shard(4);
  {
    auto result = KVStore::Open(options, "/db");
    ASSERT_TRUE(result.ok());
    auto store = std::move(result).MoveValueUnsafe();
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(store->Put(WriteOptions(), key(i), "v" + key(i)).ok());
      per_shard[store->ShardForKey(key(i))].push_back(key(i));
    }
    for (const auto& shard_keys : per_shard) {
      ASSERT_GT(shard_keys.size(), 2u) << "hash failed to spread keys";
    }
  }

  // Tear the victim partition's tail in place: the last record's checksum
  // no longer verifies, so replay must stop there and drop the suffix.
  std::string victim_wal;
  auto listing = env->ListDir("/db");
  ASSERT_TRUE(listing.ok());
  for (const auto& name : listing.ValueOrDie()) {
    int shard = -1;
    if (sscanf(name.c_str(), "wal-%d-", &shard) == 1 && shard == victim) {
      victim_wal = "/db/" + name;
    }
  }
  ASSERT_FALSE(victim_wal.empty()) << "no WAL partition for shard " << victim;
  auto size = env->FileSize(victim_wal);
  ASSERT_TRUE(size.ok());
  ASSERT_GT(size.ValueOrDie(), 16u);
  std::string garbage(16, '\xff');
  ASSERT_TRUE(env->OverwriteFileRange(victim_wal, size.ValueOrDie() - 16,
                                      garbage)
                  .ok());

  auto result = KVStore::Open(options, "/db");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto store = std::move(result).MoveValueUnsafe();

  for (int shard = 0; shard < 4; ++shard) {
    size_t survivors = 0;
    bool in_prefix = true;
    for (const std::string& k : per_shard[shard]) {
      auto r = store->Get(ReadOptions(), k);
      if (r.ok()) {
        ASSERT_TRUE(in_prefix)
            << "shard " << shard << ": non-prefix survival at " << k;
        EXPECT_EQ(r.ValueOrDie(), "v" + k);
        ++survivors;
      } else {
        ASSERT_TRUE(r.status().IsNotFound()) << r.status().ToString();
        in_prefix = false;
      }
    }
    if (shard == victim) {
      // The torn record is gone but the prefix before it replayed.
      EXPECT_LT(survivors, per_shard[shard].size()) << "shard " << shard;
    } else {
      EXPECT_EQ(survivors, per_shard[shard].size())
          << "undamaged shard " << shard << " lost writes";
    }
  }

  // Recovered store keeps working, including on the torn shard.
  for (const auto& shard_keys : per_shard) {
    for (const std::string& k : shard_keys) {
      ASSERT_TRUE(store->Put(WriteOptions(), k, "rewritten").ok());
    }
  }
  EXPECT_EQ(store->CountKeysSlow(), static_cast<uint64_t>(kN));
}

INSTANTIATE_TEST_SUITE_P(Partitions, ShardTornTailTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace storage
}  // namespace iotdb
