#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/env.h"
#include "storage/kvstore.h"
#include "storage/vlog_format.h"

namespace iotdb {
namespace storage {
namespace {

// ---------------------------------------------------------------------------
// Record format

TEST(VlogFormatTest, RecordRoundTrip) {
  std::string buf;
  uint32_t size = vlog::AppendRecord(&buf, "sensor-key", "payload-value");
  ASSERT_EQ(size, buf.size());

  Slice input(buf);
  Slice key, value;
  uint32_t record_size = 0;
  ASSERT_TRUE(vlog::ParseRecord(&input, &key, &value, &record_size).ok());
  EXPECT_EQ(key, Slice("sensor-key"));
  EXPECT_EQ(value, Slice("payload-value"));
  EXPECT_EQ(record_size, size);
  EXPECT_TRUE(input.empty());
}

TEST(VlogFormatTest, MultipleRecordsParseInSequence) {
  std::string buf;
  for (int i = 0; i < 10; ++i) {
    vlog::AppendRecord(&buf, "k" + std::to_string(i),
                       std::string(100 + i, 'v'));
  }
  Slice input(buf);
  for (int i = 0; i < 10; ++i) {
    Slice key, value;
    uint32_t record_size = 0;
    ASSERT_TRUE(vlog::ParseRecord(&input, &key, &value, &record_size).ok());
    EXPECT_EQ(key, Slice("k" + std::to_string(i)));
    EXPECT_EQ(value.size(), 100u + i);
  }
  EXPECT_TRUE(input.empty());
}

TEST(VlogFormatTest, FlippedBitFailsChecksum) {
  std::string buf;
  vlog::AppendRecord(&buf, "key", std::string(64, 'v'));
  for (size_t bit : {size_t{0}, buf.size() * 8 / 2, buf.size() * 8 - 1}) {
    std::string damaged = buf;
    damaged[bit / 8] ^= static_cast<char>(1 << (bit % 8));
    Slice input(damaged);
    Slice key, value;
    uint32_t record_size = 0;
    Status s = vlog::ParseRecord(&input, &key, &value, &record_size);
    EXPECT_TRUE(s.IsCorruption()) << "bit " << bit << ": " << s.ToString();
  }
}

TEST(VlogFormatTest, TruncatedRecordIsCorruption) {
  std::string buf;
  vlog::AppendRecord(&buf, "key", std::string(64, 'v'));
  for (size_t len = 0; len < buf.size(); len += 7) {
    Slice input(buf.data(), len);
    Slice key, value;
    uint32_t record_size = 0;
    EXPECT_TRUE(vlog::ParseRecord(&input, &key, &value, &record_size)
                    .IsCorruption())
        << "prefix length " << len;
  }
}

TEST(VlogFormatTest, ValuePointerRoundTrip) {
  vlog::ValuePointer ptr;
  ptr.file_no = 0x1122334455667788ull;
  ptr.offset = 0x99aabbccddeeff00ull;
  ptr.size = 0xdeadbeef;

  std::string encoded;
  vlog::EncodeValuePointer(&encoded, ptr);
  ASSERT_EQ(encoded.size(), vlog::kValuePointerEncodedSize);
  ASSERT_TRUE(vlog::IsValuePointer(encoded));

  vlog::ValuePointer decoded;
  ASSERT_TRUE(vlog::DecodeValuePointer(encoded, &decoded));
  EXPECT_TRUE(decoded == ptr);
}

TEST(VlogFormatTest, InlineTaggedValueIsNotAPointer) {
  // An inline value of exactly pointer size must not be mistaken for one.
  std::string inline_value(1, vlog::kInlineTag);
  inline_value.append(vlog::kValuePointerEncodedSize - 1, 'x');
  EXPECT_FALSE(vlog::IsValuePointer(inline_value));
}

// ---------------------------------------------------------------------------
// End-to-end separation through the store

class VlogStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.env = env_.get();
    options_.write_buffer_size = 64 * 1024;
    options_.value_separation = true;
    options_.min_value_size = 64;
    options_.background_vlog_gc = false;
    Open();
  }

  void Open() {
    auto result = KVStore::Open(options_, "/db");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    store_ = std::move(result).MoveValueUnsafe();
  }

  void Reopen() {
    store_.reset();
    Open();
  }

  std::string Get(const std::string& key) {
    auto r = store_->Get(ReadOptions(), key);
    return r.ok() ? r.ValueOrDie() : "NOT_FOUND";
  }

  static std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  static std::string BigValue(int i, char fill = 'v') {
    std::string v = "val" + std::to_string(i) + ":";
    v.append(200, fill);
    return v;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<KVStore> store_;
};

TEST_F(VlogStoreTest, LargeValuesAreSeparatedSmallStayInline) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "small", "tiny").ok());
  ASSERT_TRUE(store_->Put(WriteOptions(), "large", BigValue(1)).ok());

  auto stats = store_->GetStats();
  EXPECT_GT(stats.vlog_appended_bytes, 0u);
  EXPECT_GE(stats.vlog_files, 1u);

  EXPECT_EQ(Get("small"), "tiny");
  EXPECT_EQ(Get("large"), BigValue(1));
  EXPECT_GE(store_->GetStats().vlog_dereferences, 1u);
}

TEST_F(VlogStoreTest, NoVlogTrafficWhenAllValuesSmall) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), "small").ok());
  }
  EXPECT_EQ(store_->GetStats().vlog_appended_bytes, 0u);
}

TEST_F(VlogStoreTest, SeparatedValuesSurviveFlushCompactionAndReopen) {
  const int kN = 500;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), BigValue(i)).ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(Get(Key(i)), BigValue(i)) << Key(i);
  }

  ASSERT_TRUE(store_->CompactAll().ok());
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(Get(Key(i)), BigValue(i)) << Key(i);
  }

  Reopen();
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(Get(Key(i)), BigValue(i)) << Key(i);
  }
}

TEST_F(VlogStoreTest, OverwritesAndDeletesBehaveNormally) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", BigValue(1)).ok());
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", BigValue(2)).ok());
  EXPECT_EQ(Get("k"), BigValue(2));

  ASSERT_TRUE(store_->Delete(WriteOptions(), "k").ok());
  EXPECT_EQ(Get("k"), "NOT_FOUND");

  // Big -> small transition: the newest version is inline again.
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", BigValue(3)).ok());
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", "small").ok());
  EXPECT_EQ(Get("k"), "small");
}

TEST_F(VlogStoreTest, IteratorAndScanDereferencePointers) {
  for (int i = 0; i < 50; ++i) {
    std::string value = (i % 2 == 0) ? BigValue(i) : "s" + std::to_string(i);
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), value).ok());
  }
  ASSERT_TRUE(store_->FlushMemTable().ok());

  auto iter = store_->NewIterator(ReadOptions());
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++count) {
    int i = count;
    std::string expected =
        (i % 2 == 0) ? BigValue(i) : "s" + std::to_string(i);
    EXPECT_EQ(iter->key(), Slice(Key(i)));
    EXPECT_EQ(iter->value(), Slice(expected)) << Key(i);
  }
  EXPECT_TRUE(iter->status().ok()) << iter->status().ToString();
  EXPECT_EQ(count, 50);

  // Backward too.
  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key(), Slice(Key(49)));
  EXPECT_EQ(iter->value(), Slice("s49"));
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value(), Slice(BigValue(48)));
  iter.reset();

  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(store_->Scan(ReadOptions(), Key(10), Key(14), 0, &rows).ok());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].second, BigValue(10));
  EXPECT_EQ(rows[1].second, "s11");
}

TEST_F(VlogStoreTest, ActiveVlogRollsAtFileSizeLimit) {
  options_.vlog_file_size = 8 * 1024;
  Reopen();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), BigValue(i)).ok());
  }
  auto stats = store_->GetStats();
  EXPECT_GT(stats.vlog_files, 2u) << "expected several rolled vlog files";
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(Get(Key(i)), BigValue(i)) << Key(i);
  }
  Reopen();
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(Get(Key(i)), BigValue(i)) << Key(i);
  }
}

TEST_F(VlogStoreTest, ManifestSeparationFlagWinsOverOptions) {
  ASSERT_TRUE(store_->Put(WriteOptions(), "k", BigValue(1)).ok());
  ASSERT_TRUE(store_->FlushMemTable().ok());

  // Reopening with the flag off must not lose access to separated values:
  // the manifest's vlog_sep bit overrides the Options mismatch.
  options_.value_separation = false;
  Reopen();
  EXPECT_EQ(Get("k"), BigValue(1));
  ASSERT_TRUE(store_->Put(WriteOptions(), "k2", BigValue(2)).ok());
  EXPECT_EQ(Get("k2"), BigValue(2));
  EXPECT_GT(store_->GetStats().vlog_appended_bytes, 0u)
      << "store must keep separating: the manifest says vlog_sep 1";
}

TEST_F(VlogStoreTest, PlainStoreStaysPlainDespiteOptionsFlag) {
  // A store created without separation keeps rejecting it on reopen, so a
  // fleet-wide Options change cannot silently mix formats mid-store.
  options_.value_separation = false;
  ASSERT_TRUE(KVStore::Destroy(options_, "/plain").ok());
  {
    auto result = KVStore::Open(options_, "/plain");
    ASSERT_TRUE(result.ok());
    auto plain = std::move(result).MoveValueUnsafe();
    ASSERT_TRUE(plain->Put(WriteOptions(), "k", BigValue(1)).ok());
    ASSERT_TRUE(plain->FlushMemTable().ok());
  }
  options_.value_separation = true;
  auto result = KVStore::Open(options_, "/plain");
  ASSERT_TRUE(result.ok());
  auto plain = std::move(result).MoveValueUnsafe();
  ASSERT_TRUE(plain->Put(WriteOptions(), "k2", BigValue(2)).ok());
  EXPECT_EQ(plain->GetStats().vlog_appended_bytes, 0u);
  auto r = plain->Get(ReadOptions(), "k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), BigValue(1));
}

TEST_F(VlogStoreTest, WalReplayRestoresSeparatedValues) {
  // No flush: everything lives in WAL + vlog only.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store_->Put(WriteOptions(), Key(i), BigValue(i)).ok());
  }
  Reopen();
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(Get(Key(i)), BigValue(i)) << Key(i);
  }
}

TEST_F(VlogStoreTest, MixedWorkloadMatchesModelAcrossReopen) {
  options_.vlog_file_size = 16 * 1024;
  Reopen();
  Random rng(20260808);
  std::map<std::string, std::string> model;
  for (int round = 0; round < 3; ++round) {
    for (int op = 0; op < 400; ++op) {
      std::string key = Key(static_cast<int>(rng.Uniform(120)));
      switch (rng.Uniform(4)) {
        case 0:
          ASSERT_TRUE(store_->Delete(WriteOptions(), key).ok());
          model.erase(key);
          break;
        case 1: {
          std::string small = "s" + std::to_string(rng.Uniform(1000));
          ASSERT_TRUE(store_->Put(WriteOptions(), key, small).ok());
          model[key] = small;
          break;
        }
        default: {
          std::string big(64 + rng.Uniform(512),
                          static_cast<char>('a' + rng.Uniform(26)));
          ASSERT_TRUE(store_->Put(WriteOptions(), key, big).ok());
          model[key] = big;
          break;
        }
      }
    }
    if (round == 1) {
      ASSERT_TRUE(store_->FlushMemTable().ok());
      ASSERT_TRUE(store_->CompactAll().ok());
    }
    for (const auto& [key, value] : model) {
      ASSERT_EQ(Get(key), value) << key;
    }
    std::vector<std::pair<std::string, std::string>> rows;
    ASSERT_TRUE(store_->Scan(ReadOptions(), "", "", 0, &rows).ok());
    ASSERT_EQ(rows.size(), model.size());
    auto it = model.begin();
    for (const auto& [key, value] : rows) {
      ASSERT_EQ(key, it->first);
      ASSERT_EQ(value, it->second);
      ++it;
    }
    Reopen();
  }
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
