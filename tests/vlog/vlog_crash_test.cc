#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/kvstore.h"

namespace iotdb {
namespace storage {
namespace {

// Crash-recovery property for key-value separation: after an abrupt crash
// that tears the unsynced tails of both the WAL and the value log, every
// key must read as NotFound or a previously committed value — never
// garbage, and never a dangling pointer error. Synced writes must survive
// exactly.
class VlogCrashTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  static std::string Value(int i, int version) {
    std::string v = "v" + std::to_string(version) + ":" + Key(i) + ":";
    v.append(180, static_cast<char>('a' + version % 26));
    return v;
  }
};

TEST_P(VlogCrashTest, TornVlogTailNeverServesGarbage) {
  const uint64_t seed = GetParam();
  auto base = NewMemEnv();
  FaultInjectionEnv fenv(base.get(), seed);
  fenv.SetTornTailProbability(1.0);

  Options options;
  options.env = &fenv;
  options.write_buffer_size = 256 * 1024;  // keep everything in WAL + vlog
  options.value_separation = true;
  options.min_value_size = 64;
  options.background_vlog_gc = false;

  const int kSynced = 40;
  const int kTotal = 120;
  // allowed[key] = set of values a post-crash read may legitimately return;
  // "" stands for NotFound.
  std::map<std::string, std::set<std::string>> allowed;
  {
    auto result = KVStore::Open(options, "/db");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto store = std::move(result).MoveValueUnsafe();

    // Phase 1: synced writes. Durable, so NotFound is not acceptable.
    WriteOptions synced;
    synced.sync = true;
    for (int i = 0; i < kSynced; ++i) {
      ASSERT_TRUE(store->Put(synced, Key(i), Value(i, 1)).ok());
      allowed[Key(i)] = {Value(i, 1)};
    }

    // Phase 2: unsynced writes — fresh keys and overwrites of synced ones.
    // Any prefix of them may survive the crash.
    for (int i = 0; i < kTotal; ++i) {
      ASSERT_TRUE(store->Put(WriteOptions(), Key(i), Value(i, 2)).ok());
      allowed[Key(i)].insert(Value(i, 2));
      if (i >= kSynced) allowed[Key(i)].insert("");  // may be lost entirely
    }

    // Abrupt death: background threads can no longer touch the disk, then
    // every unsynced tail is torn (WAL and vlog alike).
    fenv.MarkCrashed("/db");
    store.reset();
    ASSERT_TRUE(fenv.Crash("/db").ok());
    fenv.ClearCrashed("/db");
  }
  EXPECT_GT(fenv.counters().crashes, 0u);

  auto result = KVStore::Open(options, "/db");
  ASSERT_TRUE(result.ok()) << "recovery failed: "
                           << result.status().ToString();
  auto store = std::move(result).MoveValueUnsafe();

  for (int i = 0; i < kTotal; ++i) {
    auto r = store->Get(ReadOptions(), Key(i));
    std::string got;
    if (r.ok()) {
      got = r.ValueOrDie();
    } else {
      ASSERT_TRUE(r.status().IsNotFound())
          << Key(i) << ": post-crash read must be a value or NotFound, got "
          << r.status().ToString();
      got = "";
    }
    EXPECT_TRUE(allowed[Key(i)].count(got))
        << Key(i) << " returned a value that was never committed: \""
        << got.substr(0, 32) << "...\" (seed " << seed << ")";
  }

  // The recovered store is internally consistent: a full scrub of tables,
  // WAL tail and vlog files finds nothing to quarantine (the torn vlog
  // tail was sealed at its last valid record during recovery).
  ScrubReport report;
  ASSERT_TRUE(store->VerifyIntegrity(&report).ok());
  EXPECT_EQ(report.corrupt_files, 0u);
  EXPECT_EQ(report.quarantined_files, 0u);

  // And it keeps working as a store.
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_TRUE(store->Put(WriteOptions(), Key(i), Value(i, 3)).ok());
  }
  for (int i = 0; i < kTotal; ++i) {
    auto r = store->Get(ReadOptions(), Key(i));
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(r.ValueOrDie(), Value(i, 3));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VlogCrashTest,
                         ::testing::Values(1, 7, 21, 42, 1234, 9999, 31337,
                                           20260808));

// Deterministic pointer-loss drill: truncate the value log behind the WAL's
// back so replay sees intact pointer records whose vlog bytes are gone.
// Recovery must drop exactly those pointers (NotFound), keep earlier keys
// readable, and count the drops.
TEST(VlogTruncationTest, ReplayDropsPointersIntoTruncatedVlog) {
  auto env = NewMemEnv();
  Options options;
  options.env = env.get();
  options.write_buffer_size = 256 * 1024;
  options.value_separation = true;
  options.min_value_size = 64;
  options.background_vlog_gc = false;

  const int kN = 60;
  auto value = [](int i) {
    std::string v = "val" + std::to_string(i) + ":";
    v.append(200, 'x');
    return v;
  };

  {
    auto result = KVStore::Open(options, "/db");
    ASSERT_TRUE(result.ok());
    auto store = std::move(result).MoveValueUnsafe();
    for (int i = 0; i < kN; ++i) {
      char key[32];
      snprintf(key, sizeof(key), "key%06d", i);
      ASSERT_TRUE(store->Put(WriteOptions(), key, value(i)).ok());
    }
    // No flush, no clean shutdown bookkeeping needed: state = WAL + vlog.
  }

  // Truncate the (single, active) vlog file to half its size. The WAL still
  // replays all kN records; the second half's pointers now dangle.
  auto listing = env->ListDir("/db");
  ASSERT_TRUE(listing.ok());
  std::string vlog_path;
  for (const auto& name : listing.ValueOrDie()) {
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".vlog") == 0) {
      ASSERT_TRUE(vlog_path.empty()) << "expected exactly one vlog file";
      vlog_path = "/db/" + name;
    }
  }
  ASSERT_FALSE(vlog_path.empty());
  std::string contents;
  ASSERT_TRUE(env->ReadFileToString(vlog_path, &contents).ok());
  ASSERT_TRUE(env->RemoveFile(vlog_path).ok());
  ASSERT_TRUE(
      env->WriteStringToFile(
             vlog_path, Slice(contents.data(), contents.size() / 2))
          .ok());

  auto result = KVStore::Open(options, "/db");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto store = std::move(result).MoveValueUnsafe();

  int found = 0, dropped = 0;
  bool saw_drop_after_keep = false, last_was_drop = false;
  for (int i = 0; i < kN; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    auto r = store->Get(ReadOptions(), key);
    if (r.ok()) {
      EXPECT_EQ(r.ValueOrDie(), value(i)) << key;
      EXPECT_FALSE(last_was_drop)
          << key << ": keys were written in vlog order, so survivors must "
                    "form a prefix";
      ++found;
    } else {
      ASSERT_TRUE(r.status().IsNotFound()) << r.status().ToString();
      last_was_drop = true;
      saw_drop_after_keep = true;
      ++dropped;
    }
  }
  EXPECT_GT(found, 0);
  EXPECT_GT(dropped, 0);
  EXPECT_TRUE(saw_drop_after_keep);
  EXPECT_GE(store->GetStats().vlog_recovery_dropped_pointers,
            static_cast<uint64_t>(dropped));
}

}  // namespace
}  // namespace storage
}  // namespace iotdb
